"""Legacy setup shim.

This environment has no ``wheel`` package (offline), so pip cannot take
the PEP 660 editable route; with no ``[build-system]`` table in
pyproject.toml and this file present, ``pip install -e .`` falls back to
``setup.py develop``, which works everywhere.
"""

from setuptools import setup

setup()
