"""The unified persistent artifact store (repro.store).

Four layers of assurance:

1. **codec round-trips** (hypothesis): plans, tiled schedules and chain
   programs survive encode → pickle → decode bit-for-bit, over
   randomized meshes, block sizes and tilings;
2. **store discipline**: schema-version bumps invalidate (counted, not
   raised), corrupt and truncated files degrade to recomputation,
   per-kind disable keeps the disk untouched;
3. **concurrency**: many processes hammering one key leave exactly one
   valid document (atomic ``os.replace`` publish);
4. **cross-process warm start**: a second process replaying an
   identical workload performs zero plan construction, zero tiling
   inspection, zero kernel emission (``builds == 0`` per kind) — the
   acceptance the CI warm-start job enforces on the real apps.
"""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import store
from repro.core import (
    INC,
    READ,
    RW,
    WRITE,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    kernel,
    par_loop,
)
from repro.core.access import IDX_ID
from repro.core.chain import LoopSpec, compile_chain
from repro.core.plan import build_plan

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@kernel("store_scale")
def store_scale(x, y):
    y[0] = 2.0 * x[0]


@kernel("store_gather")
def store_gather(w, a, b):
    a[0] += w[0]
    b[0] += w[0]


def ring(n, tag=""):
    nodes = Set(n, f"nodes{tag}")
    edges = Set(n, f"edges{tag}")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    return nodes, edges, Map(edges, nodes, 2, conn, f"e2n{tag}")


@pytest.fixture
def fresh_store(tmp_path, monkeypatch):
    """An isolated store root with zeroed counters."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    store.reset_store_stats()
    yield tmp_path / "store"
    store.reset_store_stats()


def trace_specs(rng_seed, n):
    """A two-loop direct+indirect trace over a fresh ring mesh."""
    nodes, edges, e2n = ring(n, tag=f"t{rng_seed}")
    w = Dat(edges, 1, 1.0, name="w")
    s = Dat(edges, 1, name="s")
    r = Dat(nodes, 1, name="r")
    return [
        LoopSpec(
            kernel=store_scale, set=edges,
            args=(arg_dat(w, IDX_ID, None, READ),
                  arg_dat(s, IDX_ID, None, WRITE)),
            n=edges.total_size, start=0,
        ),
        LoopSpec(
            kernel=store_gather, set=edges,
            args=(arg_dat(s, IDX_ID, None, READ),
                  arg_dat(r, 0, e2n, INC),
                  arg_dat(r, 1, e2n, INC)),
            n=edges.total_size, start=0,
        ),
    ]


# ----------------------------------------------------------------------
# Codec round-trips
# ----------------------------------------------------------------------
class TestPlanCodec:
    @settings(**SETTINGS)
    @given(
        n=st.integers(min_value=2, max_value=64),
        block_size=st.sampled_from([4, 16, 64]),
        scheme=st.sampled_from(["two_level", "full_permute", "block_permute"]),
    )
    def test_roundtrip_indirect(self, n, block_size, scheme):
        nodes, edges, e2n = ring(n, tag=f"pc{n}{scheme}")
        w = Dat(edges, 1, 1.0)
        r = Dat(nodes, 1)
        args = (arg_dat(w, IDX_ID, None, READ), arg_dat(r, 0, e2n, INC))
        plan = build_plan(edges, args, block_size, scheme, "auto")
        doc = pickle.loads(pickle.dumps(store.encode_plan(plan)))
        back = store.decode_plan(doc, edges)
        assert back.scheme == plan.scheme
        assert back.is_direct == plan.is_direct
        assert back.n_block_colors == plan.n_block_colors
        np.testing.assert_array_equal(back.block_colors, plan.block_colors)
        np.testing.assert_array_equal(
            back.layout.offsets, plan.layout.offsets
        )
        assert len(back.blocks_by_color) == len(plan.blocks_by_color)
        for a, b in zip(back.blocks_by_color, plan.blocks_by_color):
            np.testing.assert_array_equal(a, b)
        if plan.permutation is not None:
            np.testing.assert_array_equal(
                back.permutation.order, plan.permutation.order
            )
        # The decoded plan executes: phases cover every element once.
        covered = np.concatenate(
            [ph.elems for ph in back.phases(edges.total_size)]
        )
        assert sorted(covered.tolist()) == list(range(edges.total_size))

    def test_roundtrip_direct(self):
        nodes, edges, _ = ring(12, tag="pdirect")
        w = Dat(edges, 1, 1.0)
        s = Dat(edges, 1)
        args = (arg_dat(w, IDX_ID, None, READ),
                arg_dat(s, IDX_ID, None, WRITE))
        plan = build_plan(edges, args, 8, "two_level", "auto")
        back = store.decode_plan(store.encode_plan(plan), edges)
        assert back.is_direct
        assert back.n_block_colors == plan.n_block_colors


class TestTiledCodec:
    @settings(**SETTINGS)
    @given(
        n=st.integers(min_value=4, max_value=48),
        tile_size=st.sampled_from([4, 8, 32]),
        profile=st.sampled_from(["phases", "ascending"]),
    )
    def test_roundtrip(self, n, tile_size, profile):
        rt = Runtime("vectorized", block_size=16)
        specs = trace_specs(f"tc{n}{tile_size}{profile}", n)
        compiled = compile_chain(specs, rt, tiling=tile_size)
        sched = compiled.tiled_for(profile)
        doc = pickle.loads(pickle.dumps(store.encode_tiled(sched)))
        back = store.decode_tiled(doc)
        assert back.tile_size == sched.tile_size
        assert back.profile == sched.profile
        assert len(back.parts) == len(sched.parts)
        for p, q in zip(back.parts, sched.parts):
            assert type(p) is type(q)
            if hasattr(q, "loop_indices"):
                assert p.loop_indices == q.loop_indices
                assert p.n_tiles == q.n_tiles
                np.testing.assert_array_equal(p.tile_colors, q.tile_colors)
                for ps, qs in zip(p.slices, q.slices):
                    np.testing.assert_array_equal(ps.order, qs.order)
                    np.testing.assert_array_equal(ps.cuts, qs.cuts)
            else:
                assert p.loop_index == q.loop_index

    def test_rejects_unknown_part_kind(self):
        with pytest.raises(ValueError, match="unknown schedule part"):
            store.decode_tiled(
                {"parts": [{"kind": "nonsense"}], "tile_size": 4,
                 "profile": "phases"}
            )


class TestChainCodec:
    @settings(**SETTINGS)
    @given(n=st.integers(min_value=4, max_value=48))
    def test_roundtrip(self, n):
        rt = Runtime("vectorized", block_size=16)
        specs = trace_specs(f"cc{n}", n)
        compiled = compile_chain(specs, rt)
        doc = pickle.loads(pickle.dumps(store.encode_chain(compiled)))
        plans = [rt.plan_for(s.kernel, s.set, s.args) for s in specs]
        back = store.decode_chain(doc, specs, plans)
        assert back.n_loops == compiled.n_loops
        assert len(back.groups) == len(compiled.groups)
        for g, h in zip(back.groups, compiled.groups):
            assert len(g.loops) == len(h.loops)
            assert g.n == h.n and g.start == h.start
        assert back.analysis == compiled.analysis
        assert back.tiling == compiled.tiling
        assert back.tile_size == compiled.tile_size

    def test_rejects_wrong_trace_length(self):
        rt = Runtime("vectorized", block_size=16)
        specs = trace_specs("ccbad", 8)
        doc = store.encode_chain(compile_chain(specs, rt))
        with pytest.raises(ValueError, match="does not match"):
            store.decode_chain(doc, specs[:1], [None])

    def test_rejects_nonpartition_groups(self):
        rt = Runtime("vectorized", block_size=16)
        specs = trace_specs("ccpart", 8)
        doc = store.encode_chain(compile_chain(specs, rt))
        doc["groups"] = [[0], [0]]
        plans = [rt.plan_for(s.kernel, s.set, s.args) for s in specs]
        with pytest.raises(ValueError, match="partition"):
            store.decode_chain(doc, specs, plans)


class TestKernelcCodec:
    def test_roundtrip_source_and_negative(self):
        assert store.decode_kernelc(store.encode_kernelc("def f(): pass")) \
            == "def f(): pass"
        assert store.decode_kernelc(store.encode_kernelc(None)) is None
        with pytest.raises(TypeError):
            store.decode_kernelc({"source": 42})


# ----------------------------------------------------------------------
# Store discipline
# ----------------------------------------------------------------------
class TestStoreDiscipline:
    def test_put_get_and_counters(self, fresh_store):
        s = store.store_for("plan")
        assert s.get("k" * 64) is None
        assert store.counters("plan")["disk_misses"] == 1
        assert s.put("k" * 64, {"x": 1})
        assert s.get("k" * 64) == {"x": 1}
        c = store.counters("plan")
        assert c["writes"] == 1 and c["disk_hits"] == 1

    def test_none_key_short_circuits(self, fresh_store):
        s = store.store_for("kernelc")
        assert s.get(None) is None
        assert not s.put(None, {"x": 1})
        assert store.counters("kernelc") == {
            n: 0 for n in store.COUNTER_NAMES
        }

    def test_schema_bump_invalidates(self, fresh_store, monkeypatch):
        s = store.store_for("plan")
        s.put("a" * 64, {"x": 1})
        monkeypatch.setitem(store.SCHEMA_VERSIONS, "plan", 99)
        fresh = store.ArtifactStore("plan")
        assert fresh.schema == 99
        assert fresh.get("a" * 64) is None  # stale: counted, unlinked
        assert store.counters("plan")["corrupt"] == 1
        assert fresh.entry_count() == 0

    def test_corrupt_and_truncated_tolerated(self, fresh_store):
        s = store.store_for("tiled")
        s.put("b" * 64, {"x": 1})
        path = s.path_for("b" * 64)
        path.write_bytes(b"\x80\x04 garbage not a pickle")
        assert s.get("b" * 64) is None
        assert store.counters("tiled")["corrupt"] == 1
        s.put("c" * 64, {"y": 2})
        s.path_for("c" * 64).write_bytes(
            s.path_for("c" * 64).read_bytes()[:10]
        )
        assert s.get("c" * 64) is None
        assert store.counters("tiled")["corrupt"] == 2

    def test_wrong_kind_or_key_rejected(self, fresh_store):
        a = store.store_for("plan")
        b = store.store_for("chain")
        a.put("d" * 64, {"x": 1})
        b.directory().mkdir(parents=True, exist_ok=True)
        os.replace(a.path_for("d" * 64), b.path_for("d" * 64))
        assert b.get("d" * 64) is None  # kind mismatch
        assert store.counters("chain")["corrupt"] == 1
        a.put("e" * 64, {"x": 1})
        os.replace(a.path_for("e" * 64), a.path_for("f" * 64))
        assert a.get("f" * 64) is None  # key mismatch
        assert store.counters("plan")["corrupt"] == 1

    def test_per_kind_disable(self, fresh_store, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DISABLE", "plan,tiled")
        assert store.store_disabled("plan")
        assert store.store_disabled("tiled")
        assert not store.store_disabled("chain")
        s = store.store_for("plan")
        assert not s.put("g" * 64, {"x": 1})
        assert s.entry_count() == 0
        monkeypatch.setenv("REPRO_STORE_DISABLE", "1")
        assert store.store_disabled("chain")

    def test_lru_eviction_bounds_entries(self, fresh_store, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "8")
        s = store.store_for("plan")
        for i in range(40):
            s.put(f"{i:064d}", {"i": i})
        # Sweeps run every 16 writes, so the count stays near the bound.
        assert s.entry_count() <= 8 + 16
        assert store.counters("plan")["evictions"] > 0
        # The newest entries survive (mtime LRU).
        assert s.get(f"{39:064d}") == {"i": 39}

    def test_atomic_write_leaves_no_partials(self, fresh_store):
        s = store.store_for("chain")
        for i in range(5):
            s.put(f"{i:064d}", {"i": i})
        leftovers = [
            p for p in s.directory().iterdir() if p.name.startswith(".")
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
class TestConcurrentWriters:
    def test_many_processes_one_key(self, fresh_store):
        script = (
            "import sys\n"
            "from repro import store\n"
            "s = store.store_for('plan')\n"
            "for i in range(50):\n"
            "    s.put('k' * 64, {'writer': int(sys.argv[1]), 'i': i})\n"
            "    assert s.get('k' * 64) is not None\n"
        )
        env = dict(os.environ, REPRO_CACHE_DIR=str(fresh_store),
                   PYTHONPATH=str(Path(__file__).resolve().parent.parent
                                  / "src"))
        procs = [
            subprocess.Popen([sys.executable, "-c", script, str(i)], env=env)
            for i in range(4)
        ]
        assert [p.wait() for p in procs] == [0, 0, 0, 0]
        # Exactly one (complete, valid) document survives the stampede.
        s = store.store_for("plan")
        doc = s.get("k" * 64)
        assert doc is not None and doc["i"] == 49
        assert s.entry_count() == 1


# ----------------------------------------------------------------------
# Cross-process warm start (the tentpole acceptance, in miniature)
# ----------------------------------------------------------------------
WARM_SCRIPT = """\
import json, sys
import numpy as np
from repro import store
from repro.core import (Runtime, par_loop, arg_dat, Dat, Map, Set,
                        READ, WRITE, INC, IDX_ID)
from repro.core.kernel import Kernel

def scale(x, y):
    y[0] = 2.0 * x[0]

def gather(w, a, b):
    a[0] += w[0]
    b[0] += w[0]

n = 40
nodes = Set(n, "nodes")
edges = Set(n, "edges")
conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
e2n = Map(edges, nodes, 2, conn, "e2n")
rt = Runtime("vectorized", block_size=16)
w = Dat(edges, 1, 1.0, name="w")
s = Dat(edges, 1, name="s")
r = Dat(nodes, 1, name="r")
for step in range(3):
    with rt.chain(tiling=8):
        par_loop(Kernel("warm_scale", scale), edges,
                 arg_dat(w, IDX_ID, None, READ),
                 arg_dat(s, IDX_ID, None, WRITE), runtime=rt)
        par_loop(Kernel("warm_gather", gather), edges,
                 arg_dat(s, IDX_ID, None, READ),
                 arg_dat(r, 0, e2n, INC),
                 arg_dat(r, 1, e2n, INC), runtime=rt)
print(json.dumps({
    "result": float(r.data.sum()),
    "stats": {k: store.store_stats(k)
              for k in ("plan", "chain", "tiled", "kernelc")},
}))
"""


class TestWarmStart:
    def _run(self, cache_dir):
        env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
                   PYTHONPATH=str(Path(__file__).resolve().parent.parent
                                  / "src"))
        # The script must live in a real file: kernelc keys hash
        # ``inspect.getsource`` of the kernel, which ``python -c``
        # code cannot provide (those kernels degrade to unkeyed).
        script = Path(cache_dir).parent / "warm_script.py"
        script.write_text(WARM_SCRIPT)
        out = subprocess.run(
            [sys.executable, str(script)],
            env=env, capture_output=True, text=True,
        )
        assert out.returncode == 0, out.stderr[-2000:]
        return json.loads(out.stdout)

    def test_second_process_replays_with_zero_builds(self, tmp_path):
        cache = tmp_path / "shared"
        cold = self._run(cache)
        warm = self._run(cache)
        assert warm["result"] == cold["result"]
        for kind in ("plan", "chain", "tiled", "kernelc"):
            assert cold["stats"][kind]["builds"] > 0, kind
            assert warm["stats"][kind]["builds"] == 0, kind
            assert warm["stats"][kind]["disk_hits"] > 0, kind
            assert warm["stats"][kind]["writes"] == 0, kind

    def test_corrupted_store_degrades_to_rebuild(self, tmp_path):
        cache = tmp_path / "shared"
        cold = self._run(cache)
        # Garbage every persisted document.
        for p in cache.rglob("*.pkl"):
            p.write_bytes(b"not a pickle at all")
        warm = self._run(cache)
        assert warm["result"] == cold["result"]
        total_corrupt = sum(
            warm["stats"][k]["corrupt"]
            for k in ("plan", "chain", "tiled", "kernelc")
        )
        assert total_corrupt > 0
        for kind in ("plan", "chain", "tiled", "kernelc"):
            assert warm["stats"][kind]["builds"] > 0, kind
