"""The native backend's degradation ladder and on-disk compile cache.

The chain-level native JIT must never be load-bearing for correctness:

* no C compiler (``REPRO_NATIVE_DISABLE_CC=1``, the CI fallback job)
  -> the backend runs the pure vectorized path, bitwise identical;
* a compiler but an un-nativizable loop -> per-chain scalar ascending
  fallback, still bitwise identical, counted in ``fallbacks``;
* a warm on-disk cache -> a *second process* replays the compiled .so
  without ever invoking the compiler (``disk_hits`` > 0, 0 compiles).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    INC,
    READ,
    Dat,
    Runtime,
    Set,
    arg_dat,
    kernel,
    make_backend,
    par_loop,
)
from repro.core.access import IDX_ID
from repro.kernelc import compiler_available, reset_native_cache

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")


@kernel("nb_scale")
def nb_scale(a, b):
    b[0] += 2.0 * a[0] - 0.5 * a[1]
    b[1] += a[0] * a[1]


@kernel("nb_mixed")
def nb_mixed(a32, b):
    b[0] += a32[0] + 1.0


def _run_chained(backend_name, layout=None, tiling=None):
    rt = Runtime(make_backend(backend_name), layout=layout)
    s1 = Set(24, "nbset")
    rng = np.random.default_rng(7)
    a = Dat(s1, 2, rng.standard_normal((24, 2)), name="nba")
    b = Dat(s1, 2, np.zeros((24, 2)), name="nbb")
    with rt.chain(tiling=tiling):
        par_loop(nb_scale, s1,
                 arg_dat(a, IDX_ID, None, READ),
                 arg_dat(b, IDX_ID, None, INC), runtime=rt)
    return b.data.copy(), rt


class TestCompilerUnavailable:
    def test_backend_constructs_and_matches_sequential(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE_CC", "1")
        reset_native_cache()
        ref, _ = _run_chained("sequential")
        for layout in ("aos", "soa"):
            for tiling in (None, 8):
                got, rt = _run_chained("native", layout=layout,
                                       tiling=tiling)
                assert np.array_equal(ref, got), (layout, tiling)
                s = rt.stats()["native_cache"]
                assert s["compiles"] == 0 and s["failures"] == 0

    def test_disable_env_forces_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE_CC", "1")
        assert not compiler_available()


class TestUnsupportedLoopFallback:
    @pytest.mark.skipif(not compiler_available(),
                        reason="no C compiler in this environment")
    def test_mixed_dtype_chain_falls_back_bitwise(self):
        """float32+float64 args in one kernel are outside the native
        subset; the chain must still run (scalar ascending) and match
        sequential bitwise, with the miss counted."""
        reset_native_cache()

        def run(backend_name):
            rt = Runtime(make_backend(backend_name))
            s1 = Set(16, "mixset")
            rng = np.random.default_rng(3)
            a32 = Dat(s1, 1, rng.standard_normal((16, 1)), np.float32,
                      name="ma")
            b = Dat(s1, 1, np.zeros((16, 1)), name="mb")
            with rt.chain():
                par_loop(nb_mixed, s1,
                         arg_dat(a32, IDX_ID, None, READ),
                         arg_dat(b, IDX_ID, None, INC), runtime=rt)
            return b.data.copy(), rt

        ref, _ = run("sequential")
        got, rt = run("native")
        assert np.array_equal(ref, got)
        s = rt.stats()["native_cache"]
        assert s["fallbacks"] >= 1
        assert s["compiles"] == 0


_CACHE_SCRIPT = """
import json
import numpy as np
from repro.core import Runtime, Set, Dat, arg_dat, kernel, par_loop
from repro.core.access import IDX_ID, READ, INC
from repro.kernelc import native_cache_stats

@kernel("warm_kern")
def warm_kern(a, b):
    b[0] += 3.0 * a[0] + a[1] * a[1]
    b[1] += a[0] - a[1]

rt = Runtime("native")
s1 = Set(32, "warmset")
rng = np.random.default_rng(11)
a = Dat(s1, 2, rng.standard_normal((32, 2)), name="wa")
b = Dat(s1, 2, np.zeros((32, 2)), name="wb")
with rt.chain():
    par_loop(warm_kern, s1,
             arg_dat(a, IDX_ID, None, READ),
             arg_dat(b, IDX_ID, None, INC), runtime=rt)
print(json.dumps({"stats": native_cache_stats(),
                  "checksum": float(b.data.sum())}))
"""


class TestDiskCacheAcrossProcesses:
    @pytest.mark.skipif(not compiler_available(),
                        reason="no C compiler in this environment")
    def test_second_process_skips_the_compiler(self, tmp_path):
        script = tmp_path / "warm.py"
        script.write_text(_CACHE_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env["REPRO_NATIVE_CACHE"] = str(tmp_path / "cache")
        env.pop("REPRO_NATIVE_DISABLE_CC", None)

        def invoke():
            proc = subprocess.run(
                [sys.executable, str(script)], env=env,
                capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout.strip().splitlines()[-1])

        cold = invoke()
        assert cold["stats"]["compiles"] == 1
        assert cold["stats"]["disk_hits"] == 0
        # Cold process left the artifacts behind...
        assert list((tmp_path / "cache").glob("*.so"))
        # ...so an entirely fresh process loads the .so, zero compiles.
        warm = invoke()
        assert warm["stats"]["compiles"] == 0
        assert warm["stats"]["disk_hits"] == 1
        assert warm["checksum"] == cold["checksum"]
