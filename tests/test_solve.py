"""The par_loop CG solver: correctness, determinism, chain integration.

``repro.solve`` expresses SpMV and the CG vector updates as parallel
loops; these tests pin (a) that it actually solves linear systems,
(b) that the iterate sequence is bitwise identical across backends,
layouts and {eager, chained, tiled} modes (the determinism contract of
the module docstring), and (c) that it accepts matrix-free operators.
"""

import numpy as np
import pytest

from repro.core import (
    INC,
    Dat,
    Map,
    Mat,
    Runtime,
    Set,
    arg_mat,
    kernel,
    par_loop,
)
from repro.solve import CGResult, MatOperator, cg, make_spmv_kernel
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX, runtime_for


@kernel("ring_stiffness")
def ring_stiffness(K):
    K[0] += 2.2
    K[1] += -1.0
    K[2] += -1.0
    K[3] += 2.2


def ring_system(n=48, seed=0):
    """An SPD ring "FEM" system: local [[2.2,-1],[-1,2.2]] blocks."""
    nodes = Set(n, "nodes")
    elems = Set(n, "elems")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2n = Map(elems, nodes, 2, conn, "e2n")
    mat = Mat(e2n, e2n, name="A")
    par_loop(ring_stiffness, elems, arg_mat(mat, INC),
             runtime=Runtime("sequential"))
    mat.assemble()
    rng = np.random.default_rng(seed)
    bvals = rng.standard_normal(n)
    return nodes, mat, bvals


class TestCGSolves:
    def test_solves_against_dense_reference(self):
        nodes, mat, bvals = ring_system()
        b = Dat(nodes, 1, bvals, name="b")
        x = Dat(nodes, 1, name="x")
        res = cg(MatOperator(mat), b, x, runtime=Runtime("vectorized"),
                 tol=1e-12, maxiter=500)
        assert isinstance(res, CGResult)
        assert res.converged
        assert res.residual <= 1e-12
        ref = np.linalg.solve(mat.todense(), bvals)
        np.testing.assert_allclose(x.data[:, 0], ref, atol=1e-9)
        # History: initial residual plus one entry per iteration,
        # monotone-ish to convergence.
        assert len(res.history) == res.iterations + 1
        assert res.history[-1] == res.residual

    def test_warm_start_converges_immediately(self):
        nodes, mat, bvals = ring_system()
        b = Dat(nodes, 1, bvals, name="b")
        x = Dat(nodes, 1, name="x")
        cg(MatOperator(mat), b, x, tol=1e-13, maxiter=500,
           runtime=Runtime("vectorized"))
        res2 = cg(MatOperator(mat), b, x, tol=1e-10, maxiter=500,
                  runtime=Runtime("vectorized"))
        assert res2.iterations == 0 and res2.converged

    def test_maxiter_exhaustion_reports_not_converged(self):
        nodes, mat, bvals = ring_system()
        b = Dat(nodes, 1, bvals, name="b")
        x = Dat(nodes, 1, name="x")
        res = cg(MatOperator(mat), b, x, tol=1e-14, maxiter=2,
                 runtime=Runtime("vectorized"))
        assert not res.converged and res.iterations == 2

    def test_non_spd_raises(self):
        @kernel("indefinite")
        def indefinite(K):
            K[0] += -1.0
            K[3] += -1.0

        n = 8
        nodes = Set(n, "nodes")
        elems = Set(n, "elems")
        conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
        e2n = Map(elems, nodes, 2, conn, "e2n")
        mat = Mat(e2n, e2n)
        par_loop(indefinite, elems, arg_mat(mat, INC),
                 runtime=Runtime("sequential"))
        mat.assemble()
        b = Dat(nodes, 1, 1.0, name="b")
        x = Dat(nodes, 1, name="x")
        with pytest.raises(ValueError, match="positive definite"):
            cg(MatOperator(mat), b, x, runtime=Runtime("sequential"))

    def test_tiling_requires_chained(self):
        nodes, mat, bvals = ring_system()
        b = Dat(nodes, 1, bvals, name="b")
        x = Dat(nodes, 1, name="x")
        with pytest.raises(ValueError, match="chained"):
            cg(MatOperator(mat), b, x, tiling="auto", chained=False)


class TestCGDeterminism:
    def _solve(self, backend, scheme, options, layout=None, chained=False,
               tiling=None):
        nodes, mat, bvals = ring_system()
        rt = runtime_for(backend, scheme, options, layout=layout)
        b = Dat(nodes, 1, bvals, name="b")
        x = Dat(nodes, 1, name="x")
        res = cg(MatOperator(mat), b, x, runtime=rt, tol=1e-12,
                 maxiter=500, chained=chained, tiling=tiling)
        return x.data[: nodes.size, 0].copy(), res

    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    def test_bitwise_across_backends_and_layouts(self, backend, scheme,
                                                 options, layout):
        ref, ref_res = self._solve("sequential", "two_level", {})
        got, res = self._solve(backend, scheme, options, layout=layout)
        np.testing.assert_array_equal(got, ref)
        assert res.history == ref_res.history

    @pytest.mark.parametrize("mode", ["chained", "tiled"])
    def test_bitwise_across_modes(self, mode):
        ref, ref_res = self._solve("vectorized", "two_level", {})
        got, res = self._solve(
            "vectorized", "two_level", {}, chained=True,
            tiling="auto" if mode == "tiled" else None,
        )
        np.testing.assert_array_equal(got, ref)
        assert res.history == ref_res.history

    def test_chained_solve_hits_chain_cache(self):
        nodes, mat, bvals = ring_system()
        rt = Runtime("vectorized")
        b = Dat(nodes, 1, bvals, name="b")
        x = Dat(nodes, 1, name="x")
        res = cg(MatOperator(mat), b, x, runtime=rt, tol=1e-12,
                 maxiter=500, chained=True)
        stats = rt.stats()["chain_cache"]
        # Steady-state CG iterations replay a handful of memoized
        # traces (the flush points split one iteration into sub-traces).
        assert res.iterations > 3
        assert stats["hits"] >= res.iterations
        assert stats["misses"] <= 5


class TestMatrixFreeOperator:
    def test_custom_operator(self):
        """cg() is matrix-free friendly: any .apply(x, y) object works."""
        nodes, mat, bvals = ring_system()
        dense = mat.todense()

        class DenseOperator:
            def apply(self, x, y, runtime=None):
                y.data[:, 0] = dense @ x.data[:, 0]

        b = Dat(nodes, 1, bvals, name="b")
        x = Dat(nodes, 1, name="x")
        res = cg(DenseOperator(), b, x, runtime=Runtime("sequential"),
                 tol=1e-12, maxiter=500)
        assert res.converged
        np.testing.assert_allclose(
            x.data[:, 0], np.linalg.solve(dense, bvals), atol=1e-9
        )


class TestSpmvKernel:
    def test_memoized_per_width(self):
        assert make_spmv_kernel(7) is make_spmv_kernel(7)
        assert make_spmv_kernel(7) is not make_spmv_kernel(9)

    def test_width_validation(self):
        with pytest.raises(ValueError, match="width"):
            make_spmv_kernel(0)

    def test_generated_vector_form_exists(self):
        """The padded-row SpMV must take the batched fast path."""
        from repro.kernelc import vectorizable

        assert vectorizable(make_spmv_kernel(9))
