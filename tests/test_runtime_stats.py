"""Runtime.stats() cache counters under eviction pressure.

The runtime exposes seven cache kinds (loop -> plan -> chain [fused and
tiled entries] -> kernelc -> native -> tune); long-running processes
rely on the LRU bounds actually holding and on the hit/miss/eviction
counters telling the truth.  These tests squeeze each cache below its
working set and pin both; the native compile cache (process-global,
sha-keyed, disk-backed) gets its own counter pinning below, and the
normalized counter schema every kind shares (hits / misses / evictions
/ entries / max_entries, plus kind-specific extras) is pinned in
TestStatsSurface.
"""

import numpy as np

from repro.core import (
    INC,
    READ,
    WRITE,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    kernel,
    par_loop,
)
from repro.core.access import IDX_ID
from repro.kernelc import KernelCompileCache


@kernel("stats_inc")
def stats_inc(w, a):
    a[0] += w[0]


@kernel("stats_copy")
def stats_copy(a, b):
    b[0] = a[0]


def ring(n=16, tag=""):
    nodes = Set(n, f"nodes{tag}")
    elems = Set(n, f"elems{tag}")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    return nodes, elems, Map(elems, nodes, 2, conn, f"e2n{tag}")


def indirect_loop(rt, m, elems, nodes, slot=0):
    w = Dat(elems, 1, 1.0)
    acc = Dat(nodes, 1)
    par_loop(stats_inc, elems,
             arg_dat(w, IDX_ID, None, READ),
             arg_dat(acc, slot, m, INC), runtime=rt)


class TestLoopCacheEviction:
    def test_bound_held_and_counted(self):
        rt = Runtime("sequential", loop_cache_entries=3)
        meshes = [ring(tag=str(i)) for i in range(5)]
        for nodes, elems, m in meshes:
            indirect_loop(rt, m, elems, nodes)
        s = rt.stats()["loop_cache"]
        assert s["max_entries"] == 3
        assert s["entries"] <= 3
        assert s["misses"] == 5
        assert s["evictions"] == 2
        # Replaying the evicted first shape misses again (was dropped).
        nodes, elems, m = meshes[0]
        indirect_loop(rt, m, elems, nodes)
        s = rt.stats()["loop_cache"]
        assert s["misses"] == 6
        # A warm shape hits without growing the cache.
        indirect_loop(rt, m, elems, nodes)
        s = rt.stats()["loop_cache"]
        assert s["hits"] == 1
        assert s["entries"] <= 3

    def test_lru_order_protects_recent(self):
        rt = Runtime("sequential", loop_cache_entries=2)
        (n1, e1, m1), (n2, e2, m2), (n3, e3, m3) = [
            ring(tag=f"lru{i}") for i in range(3)
        ]
        indirect_loop(rt, m1, e1, n1)
        indirect_loop(rt, m2, e2, n2)
        indirect_loop(rt, m1, e1, n1)      # touch 1 -> 2 becomes LRU
        indirect_loop(rt, m3, e3, n3)      # evicts 2, keeps 1
        before = rt.stats()["loop_cache"]["hits"]
        indirect_loop(rt, m1, e1, n1)      # still cached
        assert rt.stats()["loop_cache"]["hits"] == before + 1


class TestPlanCacheEviction:
    def test_bound_held_and_rebuilt_on_return(self):
        rt = Runtime("sequential", plan_cache_entries=2,
                     loop_cache_entries=None)
        meshes = [ring(tag=f"p{i}") for i in range(4)]
        for nodes, elems, m in meshes:
            indirect_loop(rt, m, elems, nodes)
        s = rt.stats()["plan_cache"]
        assert s["max_entries"] == 2
        assert s["entries"] <= 2
        assert s["misses"] == 4
        assert s["evictions"] == 2
        # Different slot of a cached map's racing column = new structure.
        nodes, elems, m = meshes[-1]
        indirect_loop(rt, m, elems, nodes, slot=1)
        assert rt.stats()["plan_cache"]["misses"] == 5


class TestChainCacheEviction:
    def _trace(self, rt, dats, tiling=None):
        a, b = dats
        with rt.chain(tiling=tiling):
            par_loop(stats_copy, a.set,
                     arg_dat(a, IDX_ID, None, READ),
                     arg_dat(b, IDX_ID, None, WRITE), runtime=rt)

    def test_fused_and_tiled_are_distinct_entries(self):
        rt = Runtime("vectorized", chain_cache_entries=4)
        s1 = Set(16, "c1")
        dats = (Dat(s1, 1, 1.0), Dat(s1, 1))
        self._trace(rt, dats)
        self._trace(rt, dats, tiling=8)
        st = rt.stats()["chain_cache"]
        assert st["misses"] == 2       # same trace, two lowerings
        assert st["entries"] == 2
        self._trace(rt, dats)
        self._trace(rt, dats, tiling=8)
        st = rt.stats()["chain_cache"]
        assert st["hits"] == 2

    def test_bound_held_under_distinct_traces(self):
        rt = Runtime("vectorized", chain_cache_entries=2)
        sets = [Set(8, f"cc{i}") for i in range(4)]
        all_dats = [(Dat(s, 1, 1.0), Dat(s, 1)) for s in sets]
        for dats in all_dats:
            self._trace(rt, dats)
        st = rt.stats()["chain_cache"]
        assert st["max_entries"] == 2
        assert st["entries"] <= 2
        assert st["evictions"] == 2
        # The evicted first trace recompiles.
        self._trace(rt, all_dats[0])
        assert rt.stats()["chain_cache"]["misses"] == 5

    def test_tiled_entries_respect_the_same_bound(self):
        rt = Runtime("vectorized", chain_cache_entries=2)
        s1 = Set(32, "ct")
        dats = (Dat(s1, 1, 1.0), Dat(s1, 1))
        for tiling in (None, 8, 16):
            self._trace(rt, dats, tiling=tiling)
        st = rt.stats()["chain_cache"]
        assert st["entries"] <= 2
        assert st["evictions"] == 1


class TestKernelcCacheEviction:
    def test_bound_held_with_negative_entries(self):
        cache = KernelCompileCache(max_entries=2)

        def shape(dim):
            s = Set(4, f"k{dim}")
            a = Dat(s, dim, 1.0)
            b = Dat(s, dim)
            return (arg_dat(a, IDX_ID, None, READ),
                    arg_dat(b, IDX_ID, None, WRITE))

        @kernel("kc_copy")
        def kc_copy(a, b):
            b[0] = a[0]

        for dim in (1, 2, 3):
            assert cache.vector_for(kc_copy, shape(dim)) is not None
        s = cache.stats()
        assert s["max_entries"] == 2
        assert s["entries"] <= 2
        assert s["misses"] == 3
        assert s["evictions"] == 1
        # Unvectorizable kernels cache a *negative* entry (a lambda has
        # no retrievable body for the IR parser).
        from repro.core.kernel import Kernel

        bad = Kernel("bad", eval("lambda a, b: None"))
        assert cache.vector_for(bad, shape(1)) is None
        s = cache.stats()
        assert s["failures"] == 1
        assert cache.vector_for(bad, shape(1)) is None
        assert cache.stats()["hits"] >= 1

    def test_global_cache_surfaces_in_runtime_stats(self):
        rt = Runtime("vectorized")
        stats = rt.stats()
        assert set(stats["kernelc_cache"]) == {
            "hits", "misses", "failures", "evictions", "entries",
            "max_entries", "store",
        }


class TestStatsSurface:
    #: Counter keys every cache kind reports (the normalized schema).
    CANONICAL = {"hits", "misses", "evictions", "entries", "max_entries"}
    #: Uniform disk-layer keys every persistent kind's ``store``
    #: sub-dict reports (repro.store.base.COUNTER_NAMES + entry count).
    STORE = {"disk_hits", "disk_misses", "writes", "corrupt", "evictions",
             "builds", "disk_entries", "max_entries"}

    def test_all_seven_cache_kinds_reported(self):
        rt = Runtime("vectorized", chain_cache_entries=4)
        s1 = Set(8, "surf")
        a, b = Dat(s1, 1, 1.0), Dat(s1, 1)
        with rt.chain(tiling=4):
            par_loop(stats_copy, s1,
                     arg_dat(a, IDX_ID, None, READ),
                     arg_dat(b, IDX_ID, None, WRITE), runtime=rt)
        stats = rt.stats()
        for kind in ("loop_cache", "plan_cache", "chain_cache",
                     "tiled_cache", "kernelc_cache", "native_cache",
                     "tune_cache"):
            assert self.CANONICAL <= set(stats[kind]), kind
        # The six persistent kinds all report the uniform disk-layer
        # counters of repro.store; the loop cache (call-site identity,
        # unpersistable) is the only kind without one.
        for kind in ("plan_cache", "chain_cache", "tiled_cache",
                     "kernelc_cache", "native_cache", "tune_cache"):
            assert set(stats[kind]["store"]) == self.STORE, kind
        assert "store" not in stats["loop_cache"]
        # The native compile cache keeps its historical sha-keyed
        # counters next to the normalized aliases.
        assert set(stats["native_cache"]) == self.CANONICAL | {
            "compiles", "disk_hits", "mem_hits", "failures", "fallbacks",
            "store",
        }
        # The tuning DB adds its probe bookkeeping to the schema.
        assert set(stats["tune_cache"]) == self.CANONICAL | {
            "writes", "corrupt", "probes", "probe_fallbacks", "store",
        }
        # The tiled lowering is a chain-cache entry kind: its key
        # includes the tiling request, so fused and tiled coexist.
        assert stats["chain_cache"]["entries"] >= 1
        assert "stats_copy" in stats["kernels"]

    def test_profile_snapshot_surfaces_in_stats(self):
        rt = Runtime("vectorized")
        s1 = Set(8, "prof")
        a, b = Dat(s1, 1, 1.0), Dat(s1, 1)
        par_loop(stats_copy, s1,
                 arg_dat(a, IDX_ID, None, READ),
                 arg_dat(b, IDX_ID, None, WRITE), runtime=rt)
        profile = rt.stats()["profile"]
        assert "stats_copy" in profile["loops"]
        entry = profile["loops"]["stats_copy"]
        assert entry["calls"] == 1
        assert entry["kind"] == "direct"
        assert entry["est_bytes"] > 0
        assert entry["seconds"] >= 0
        # The compute leg of the roofline profile: IR-derived flop
        # counts and the resulting bound classification.
        assert entry["flops_per_element"] >= 0
        assert entry["est_flops"] >= 0
        assert entry["est_gflops"] >= 0
        assert entry["bound"] in ("compute", "bandwidth")
        # A copy moves bytes and adds nothing: bandwidth-bound.
        assert entry["bound"] == "bandwidth"

    def test_profile_classifies_compute_bound_loops(self):
        from repro.apps.aero import AeroSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("vectorized")
        sim = AeroSim(make_airfoil_mesh(12, 6), runtime=rt,
                      operator="matfree")
        sim.run(1)
        loops = rt.stats()["profile"]["loops"]
        rho = loops["rho_calc"]
        # rho_calc's per-node transcendental work tips it past the
        # machine-balance flops/byte line.
        assert rho["flops_per_element"] > 0
        assert rho["bound"] == "compute"
        coeffs = next(v for k, v in loops.items()
                      if k.startswith("matfree_coeffs_w"))
        # The coefficient build streams quadrature tables: heavy flops,
        # heavier traffic.
        assert coeffs["flops_per_element"] > 100
        assert coeffs["bound"] == "bandwidth"

    def test_clear_caches_resets_counters(self):
        rt = Runtime("sequential")
        nodes, elems, m = ring(tag="clr")
        indirect_loop(rt, m, elems, nodes)
        rt.clear_caches()
        s = rt.stats()
        assert s["loop_cache"]["entries"] == 0
        assert s["loop_cache"]["hits"] == 0
        assert s["plan_cache"]["entries"] == 0
        assert s["chain_cache"]["entries"] == 0


class TestNativeCacheCounters:
    """The 6th cache kind: chain-level native compilation counters."""

    def _chained_step(self, tag):
        rt = Runtime("native", chain_cache_entries=4)
        s1 = Set(16, f"nat{tag}")
        a, b = Dat(s1, 1, 1.0, name="na"), Dat(s1, 1, name="nb")
        with rt.chain():
            par_loop(stats_copy, s1,
                     arg_dat(a, IDX_ID, None, READ),
                     arg_dat(b, IDX_ID, None, WRITE), runtime=rt)
        return rt, b

    def test_compile_then_memory_hit(self, tmp_path, monkeypatch):
        from repro.kernelc import compiler_available, reset_native_cache
        import pytest

        if not compiler_available():
            pytest.skip("no C compiler in this environment")
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        reset_native_cache()
        rt, b = self._chained_step("a")
        s = rt.stats()["native_cache"]
        assert s["compiles"] == 1
        assert s["failures"] == 0
        assert s["fallbacks"] == 0
        assert s["entries"] == 1
        # The translation unit and its .so both land in the disk cache.
        assert len(list(tmp_path.glob("*.so"))) == 1
        assert len(list(tmp_path.glob("*.c"))) == 1
        # A fresh runtime re-traces the same chain: same source hash,
        # so the in-process library cache answers without the compiler.
        rt2, _ = self._chained_step("a")
        s = rt2.stats()["native_cache"]
        assert s["compiles"] == 1
        assert s["mem_hits"] >= 1

    def test_disabled_compiler_keeps_counters_silent(self, monkeypatch):
        from repro.kernelc import reset_native_cache

        monkeypatch.setenv("REPRO_NATIVE_DISABLE_CC", "1")
        reset_native_cache()
        rt, b = self._chained_step("off")
        assert np.array_equal(b.data, np.ones((16, 1)))  # vec fallback ran
        s = rt.stats()["native_cache"]
        store = s.pop("store")
        assert s == {"compiles": 0, "disk_hits": 0, "mem_hits": 0,
                     "failures": 0, "fallbacks": 0, "entries": 0,
                     "hits": 0, "misses": 0, "evictions": 0,
                     "max_entries": None}
        # The disk layer stayed silent too (reset_native_cache zeroed
        # it, and the disabled path never touched the store).
        assert store["disk_hits"] == 0 and store["builds"] == 0
