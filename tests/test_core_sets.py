"""Unit tests for Set, Dat, Map, Global and Arg descriptors."""

import numpy as np
import pytest

from repro.core import (
    INC,
    MAX,
    MIN,
    READ,
    RW,
    WRITE,
    Arg,
    Dat,
    Global,
    Map,
    Set,
    arg_dat,
    arg_gbl,
    identity_map,
)
from repro.core.access import IDX_ALL, IDX_ID


class TestSet:
    def test_basic(self):
        s = Set(10, "s")
        assert len(s) == 10
        assert s.core_size == 10
        assert s.total_size == 10

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Set(-1)

    def test_core_and_exec_regions(self):
        s = Set(10, core_size=6, exec_size=3)
        assert s.total_size == 13
        assert s.core_size == 6

    def test_core_size_bounds(self):
        with pytest.raises(ValueError):
            Set(5, core_size=7)
        with pytest.raises(ValueError):
            Set(5, exec_size=-1)

    def test_identity_semantics(self):
        a, b = Set(3), Set(3)
        assert a == a
        assert a != b
        assert len({a, b}) == 2

    def test_auto_names_unique(self):
        assert Set(1).name != Set(1).name


class TestMap:
    def test_shape_and_column(self):
        frm, to = Set(4), Set(6)
        m = Map(frm, to, 2, np.array([[0, 1], [2, 3], [4, 5], [0, 5]]))
        assert m.arity == 2
        np.testing.assert_array_equal(m.column(1), [1, 3, 5, 5])
        np.testing.assert_array_equal(m[3], [0, 5])

    def test_flat_values_reshaped(self):
        frm, to = Set(3), Set(9)
        m = Map(frm, to, 3, np.arange(9))
        assert m.values.shape == (3, 3)

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            Map(Set(3), Set(5), 2, np.zeros(5, dtype=int))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Map(Set(2), Set(3), 1, np.array([0, 3]))
        with pytest.raises(ValueError):
            Map(Set(2), Set(3), 1, np.array([0, -1]))

    def test_column_index_bounds(self):
        m = identity_map(Set(4))
        with pytest.raises(IndexError):
            m.column(1)

    def test_identity_map(self):
        s = Set(5)
        m = identity_map(s)
        np.testing.assert_array_equal(m.values[:, 0], np.arange(5))

    def test_nonexec_target_extent_allowed(self):
        to = Set(3, exec_size=1)
        to.nonexec_size = 2  # simulated-MPI read-only halo
        m = Map(Set(2), to, 1, np.array([4, 5]))
        assert m.values.max() == 5


class TestDat:
    def test_zero_init(self):
        d = Dat(Set(4), 3)
        assert d.data.shape == (4, 3)
        assert (d.data == 0).all()

    def test_broadcast_init(self):
        d = Dat(Set(4), 2, data=[1.0, 2.0])
        np.testing.assert_array_equal(d.data, [[1, 2]] * 4)

    def test_flat_init_reshaped(self):
        d = Dat(Set(2), 2, data=np.arange(4.0))
        np.testing.assert_array_equal(d.data, [[0, 1], [2, 3]])

    def test_dtype_parametric(self):
        d = Dat(Set(3), 1, dtype=np.float32)
        assert d.dtype == np.float32
        assert d.itemsize == 4

    def test_nbytes_owned_only(self):
        s = Set(4, exec_size=2)
        d = Dat(s, 2, dtype=np.float64)
        assert d.data.shape == (6, 2)
        assert d.nbytes == 4 * 2 * 8

    def test_soa_roundtrip(self):
        d = Dat(Set(3), 2, data=np.arange(6.0))
        soa = d.soa()
        assert soa.shape == (2, 3)
        soa[0, 0] = 99.0
        d.from_soa(soa)
        assert d.data[0, 0] == 99.0

    def test_from_soa_shape_check(self):
        d = Dat(Set(3), 2)
        with pytest.raises(ValueError):
            d.from_soa(np.zeros((3, 2)))

    def test_copy_and_zero(self):
        d = Dat(Set(2), 1, data=[5.0])
        c = d.copy()
        c.zero()
        assert (d.data == 5).all() and (c.data == 0).all()

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            Dat(Set(2), 0)


class TestGlobal:
    def test_scalar_value(self):
        g = Global(1, 3.5)
        assert g.value == 3.5
        g.value = 7
        assert g.value == 7.0

    def test_reduction_identities(self):
        g = Global(2, dtype=np.float64)
        assert (g.identity_for(INC) == 0).all()
        assert (g.identity_for(MIN) == np.finfo(np.float64).max).all()
        assert (g.identity_for(MAX) == np.finfo(np.float64).min).all()

    def test_combine(self):
        g = Global(1, 5.0)
        g.combine(INC, np.array([2.0]))
        assert g.value == 7.0
        g.combine(MIN, np.array([3.0]))
        assert g.value == 3.0
        g.combine(MAX, np.array([10.0]))
        assert g.value == 10.0

    def test_combine_read_rejected(self):
        with pytest.raises(ValueError):
            Global(1).combine(READ, np.array([1.0]))

    def test_int_identities(self):
        g = Global(1, dtype=np.int64)
        assert g.identity_for(MIN)[0] == np.iinfo(np.int64).max


class TestAccess:
    def test_flags(self):
        assert READ.reads and not READ.writes
        assert WRITE.writes and not WRITE.reads
        assert RW.reads and RW.writes and not RW.is_reduction
        assert INC.is_reduction and MIN.is_reduction and MAX.is_reduction


class TestArg:
    def setup_method(self):
        self.frm = Set(4, "edges")
        self.to = Set(6, "nodes")
        self.m = Map(self.frm, self.to, 2, np.zeros((4, 2), dtype=int), "m")
        self.d_to = Dat(self.to, 3, name="on_nodes")
        self.d_frm = Dat(self.frm, 1, name="on_edges")

    def test_direct(self):
        a = arg_dat(self.d_frm, IDX_ID, None, READ)
        assert a.is_direct and not a.races

    def test_indirect_inc_races(self):
        a = arg_dat(self.d_to, 0, self.m, INC)
        assert a.is_indirect and a.races

    def test_indirect_read_no_race(self):
        assert not arg_dat(self.d_to, 1, self.m, READ).races

    def test_vector_arg(self):
        a = arg_dat(self.d_to, IDX_ALL, self.m, READ)
        assert a.is_vector

    def test_global_arg(self):
        a = arg_gbl(Global(1), INC)
        assert a.is_global and not a.races

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            arg_dat(self.d_to, 2, self.m, READ)

    def test_direct_with_index_rejected(self):
        with pytest.raises(ValueError):
            arg_dat(self.d_frm, 0, None, READ)

    def test_map_set_mismatch(self):
        with pytest.raises(ValueError):
            arg_dat(self.d_frm, 0, self.m, READ)  # dat on edges, map to nodes

    def test_global_write_rejected(self):
        with pytest.raises(ValueError):
            arg_gbl(Global(1), WRITE)

    def test_global_with_map_rejected(self):
        with pytest.raises(ValueError):
            Arg(dat=Global(1), index=0, map=self.m, access=READ)

    def test_describe(self):
        a = arg_dat(self.d_to, 0, self.m, INC)
        assert "m[0]" in a.describe() and "INC" in a.describe()
