"""Airfoil application tests: physics, backend equivalence, precision."""

import numpy as np
import pytest

from repro.apps.airfoil import (
    AirfoilConstants,
    AirfoilSim,
    make_kernels,
    reference_sweep,
)
from repro.core import Runtime, make_backend
from repro.mesh import make_airfoil_mesh

from repro.testing import BACKEND_MATRIX, runtime_for


@pytest.fixture(scope="module")
def mesh():
    return make_airfoil_mesh(20, 10)


def _generated_vector(kernel, nargs):
    """kernelc-generated batched form with every parameter lane-batched."""
    from repro.kernelc import compile_vector, kernel_ir

    return compile_vector(kernel_ir(kernel), [True] * nargs)


class TestKernels:
    def test_metadata_matches_table2(self):
        ks = make_kernels()
        assert ks["save_soln"].info.flops == 4
        assert ks["adt_calc"].info.flops == 64
        assert ks["adt_calc"].info.transcendentals == 5
        assert ks["res_calc"].info.flops == 73
        assert ks["bres_calc"].info.flops == 73
        assert ks["update"].info.flops == 17

    def test_simt_vectorization_flags(self):
        # Table VI: on CPU the OpenCL compiler vectorized adt_calc and
        # bres_calc but not save_soln / res_calc / update.
        ks = make_kernels()
        assert ks["adt_calc"].vectorizable_simt
        assert ks["bres_calc"].vectorizable_simt
        assert not ks["save_soln"].vectorizable_simt
        assert not ks["res_calc"].vectorizable_simt
        assert not ks["update"].vectorizable_simt

    def test_scalar_vector_agree_on_random_state(self, rng):
        ks = make_kernels()
        n = 16
        x = rng.random((n, 4, 2))
        q = rng.random((n, 4)) + 1.0
        q[:, 3] += 4.0  # keep energy high enough for real sound speed
        adt_s = np.zeros((n, 1))
        adt_v = np.zeros((n, 1))
        for i in range(n):
            ks["adt_calc"].scalar(x[i], q[i], adt_s[i])
        _generated_vector(ks["adt_calc"], 3)(x, q, adt_v)
        np.testing.assert_allclose(adt_v, adt_s, rtol=1e-14)

    def test_bres_mask_lowering_equals_branch(self, rng):
        # The emitter's mask lowering must agree with the scalar branch
        # exactly (the Section 4.2 rewrite, performed automatically).
        ks = make_kernels()
        n = 12
        x1 = rng.random((n, 2))
        x2 = rng.random((n, 2))
        q = rng.random((n, 4)) + 1.0
        q[:, 3] += 4.0
        adt = rng.random((n, 1)) + 0.1
        bound = rng.integers(1, 3, (n, 1)).astype(np.int64)
        res_s = np.zeros((n, 4))
        res_v = np.zeros((n, 4))
        for i in range(n):
            ks["bres_calc"].scalar(x1[i], x2[i], q[i], adt[i],
                                   res_s[i], bound[i])
        _generated_vector(ks["bres_calc"], 6)(x1, x2, q, adt, res_v, bound)
        np.testing.assert_allclose(res_v, res_s, rtol=1e-13, atol=1e-15)


class TestAgainstReference:
    def test_one_step_matches_reference(self, mesh):
        sim = AirfoilSim(mesh, runtime=Runtime("vectorized", block_size=64))
        ref = reference_sweep(mesh, sim.q.copy())
        rms = sim.step()
        np.testing.assert_allclose(sim.q, ref["q"], rtol=1e-12, atol=1e-14)
        assert rms == pytest.approx(ref["rms"], rel=1e-12)

    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_all_backends_match_reference(self, mesh, backend, scheme,
                                          options):
        sim = AirfoilSim(mesh, runtime=runtime_for(backend, scheme,
                                                   options, 48))
        ref = reference_sweep(mesh, sim.q.copy())
        sim.step()
        np.testing.assert_allclose(sim.q, ref["q"], rtol=1e-10, atol=1e-12)

    def test_vec_width_4_matches(self, mesh):
        rt = Runtime(make_backend("vectorized", vec=4), block_size=48)
        sim = AirfoilSim(mesh, runtime=rt)
        ref = reference_sweep(mesh, sim.q.copy())
        sim.step()
        np.testing.assert_allclose(sim.q, ref["q"], rtol=1e-12, atol=1e-14)


class TestPhysics:
    def test_residual_decreases(self, mesh):
        sim = AirfoilSim(mesh, runtime=Runtime("vectorized"))
        sim.run(30)
        h = sim.rms_history
        assert h[-1] < h[0]
        assert all(np.isfinite(h))

    def test_freestream_preserved_away_from_airfoil(self, mesh):
        # Far-field cells should stay near the free stream after a few
        # iterations (the perturbation is local to the airfoil).
        sim = AirfoilSim(mesh, runtime=Runtime("vectorized"))
        qinf = sim.constants.qinf()
        sim.run(5)
        cent = mesh.cell_centroids()
        far = np.hypot(cent[:, 0], cent[:, 1]) > 15.0
        np.testing.assert_allclose(
            sim.q[far], np.broadcast_to(qinf, sim.q[far].shape), rtol=5e-2
        )

    def test_state_stays_physical(self, mesh):
        sim = AirfoilSim(mesh, runtime=Runtime("vectorized"))
        sim.run(20)
        assert (sim.q[:, 0] > 0).all()       # density positive
        assert (sim.q[:, 3] > 0).all()       # energy positive

    def test_angle_of_attack_breaks_symmetry(self):
        m = make_airfoil_mesh(16, 8)
        sym = AirfoilSim(m, runtime=Runtime("vectorized"),
                         constants=AirfoilConstants(alpha_deg=0.0))
        sym.run(5)
        # Zero alpha: vertical momentum stays symmetric to mirror cells.
        assert abs(sym.q[:, 2].sum()) < abs(sym.q[:, 1].sum()) * 1e-2


class TestPrecision:
    def test_single_precision_runs(self, mesh):
        sim = AirfoilSim(mesh, dtype=np.float32,
                         runtime=Runtime("vectorized"))
        sim.run(5)
        assert sim.q.dtype == np.float32
        assert np.isfinite(sim.q).all()

    def test_sp_tracks_dp(self, mesh):
        dp = AirfoilSim(mesh, dtype=np.float64, runtime=Runtime("vectorized"))
        sp = AirfoilSim(mesh, dtype=np.float32, runtime=Runtime("vectorized"))
        dp.run(3)
        sp.run(3)
        np.testing.assert_allclose(sp.q, dp.q, rtol=2e-3, atol=2e-3)

    def test_memory_halves_in_sp(self, mesh):
        dp = AirfoilSim(mesh, dtype=np.float64)
        sp = AirfoilSim(mesh, dtype=np.float32)
        assert sp.state.p_q.nbytes * 2 == dp.state.p_q.nbytes


class TestDeterminism:
    def test_same_backend_bitwise_reproducible(self, mesh):
        a = AirfoilSim(mesh, runtime=Runtime("vectorized", block_size=64))
        b = AirfoilSim(mesh, runtime=Runtime("vectorized", block_size=64))
        a.run(4)
        b.run(4)
        np.testing.assert_array_equal(a.q, b.q)
