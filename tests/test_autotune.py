"""``backend="auto"``: numerics, pins, and the perfmodel link.

Three contracts pinned here:

* tuning never changes numerics — every app under ``Runtime("auto")``
  is bitwise identical to sequential eager execution, whatever the
  tuner picked and whichever layout it landed on;
* explicitly passed knobs are pins, not suggestions — the tuner only
  negotiates the remaining axes;
* the runtime actually *consumes* perfmodel predictions: candidate
  ranking is seeded by the calibrated efficiency tables (the
  previously display-only ``repro.perfmodel`` numbers gate which
  configurations get probed), and the calibration can be refitted from
  measured profiles.
"""

import numpy as np
import pytest

from repro.apps.aero import AeroSim
from repro.apps.airfoil import AirfoilSim
from repro.apps.volna import VolnaSim
from repro.core import Runtime, make_backend
from repro.mesh import make_airfoil_mesh, make_tri_mesh
from repro.perfmodel import (
    CALIBRATION,
    ArchCalibration,
    fit_calibration_from_profile,
)
from repro.tune import (
    Pins,
    TuneCandidate,
    TuneDecision,
    default_candidates,
    predict_candidate,
    rank_candidates,
    reset_tune_cache,
    tune_cache_stats,
)


@pytest.fixture(autouse=True)
def isolated_tune_cache(tmp_path, monkeypatch):
    """Every test negotiates against its own empty on-disk DB."""
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "tune"))
    monkeypatch.delenv("REPRO_TUNE_DISABLE", raising=False)
    reset_tune_cache()


def _airfoil(runtime, **kw):
    return AirfoilSim(make_airfoil_mesh(16, 8), runtime=runtime, **kw)


def _volna(runtime, **kw):
    return VolnaSim(make_tri_mesh(12, 9, 100_000.0, 75_000.0),
                    dtype=np.float64, runtime=runtime, **kw)


def _aero(runtime, **kw):
    return AeroSim(make_airfoil_mesh(16, 8), runtime=runtime, **kw)


class TestAutoNeverChangesNumerics:
    """Acceptance: auto is bitwise identical to sequential eager."""

    @pytest.mark.parametrize("layout", ["aos", "soa"])
    def test_airfoil(self, layout):
        auto = _airfoil(Runtime("auto", layout=layout))
        auto.run(3)
        ref = _airfoil(Runtime(make_backend("sequential")), chained=False)
        ref.run(3)
        assert np.array_equal(auto.q, ref.q)
        assert auto.rms_history == ref.rms_history

    @pytest.mark.parametrize("layout", ["aos", "soa"])
    def test_volna(self, layout):
        auto = _volna(Runtime("auto", layout=layout))
        auto.run(3)
        ref = _volna(Runtime(make_backend("sequential")), chained=False)
        ref.run(3)
        assert np.array_equal(auto.q, ref.q)
        assert auto.dt_history == ref.dt_history

    @pytest.mark.parametrize("layout", ["aos", "soa"])
    def test_aero(self, layout):
        auto = _aero(Runtime("auto", layout=layout))
        auto.run(2)
        ref = _aero(Runtime(make_backend("sequential")), chained=False)
        ref.run(2)
        assert np.array_equal(auto.phi, ref.phi)
        rt = auto._runtime()
        if rt.tuned_decision.operator == "matfree":
            # Matfree never stages or assembles — the solution is the
            # contract, the CSR values intentionally stay untouched.
            assert auto.state.mat.assemble_calls == 0
        else:
            assert np.array_equal(auto.state.mat.data,
                                  ref.state.mat.data)

    def test_unpinned_layout_is_negotiable(self):
        # No layout passed: the tuner owns the axis, and whatever it
        # picks the state actually carries it (realloc happened).
        rt = Runtime("auto")
        sim = _airfoil(rt)
        assert sim.state.p_q.layout == rt.tuned_decision.layout


class TestPinsAndReuse:
    def test_explicit_knobs_are_pins(self):
        rt = Runtime("auto", layout="soa")
        sim = _airfoil(rt, chained=False)
        d = rt.tuned_decision
        assert d.layout == "soa"
        assert d.chained is False
        assert sim.chained is False
        assert sim.state.p_q.layout == "soa"

    def test_disable_env_short_circuits(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_DISABLE", "1")
        rt = Runtime("auto")
        _airfoil(rt)
        assert rt.tuned_decision.source == "disabled"
        stats = tune_cache_stats()
        assert stats["probes"] == 0
        assert stats["writes"] == 0
        assert not (tmp_path / "tune").exists()  # zero disk traffic

    def test_second_runtime_replays_from_db_without_probes(self):
        rt1 = Runtime("auto")
        _airfoil(rt1)
        probes_after_first = tune_cache_stats()["probes"]
        assert rt1.tuned_decision.source == "probe"
        rt2 = Runtime("auto")
        _airfoil(rt2)
        assert rt2.tuned_decision.source == "db"
        assert tune_cache_stats()["probes"] == probes_after_first
        assert rt2.tuned_decision.backend == rt1.tuned_decision.backend

    def test_second_sim_on_a_tuned_runtime_reuses_the_decision(self):
        rt = Runtime("auto")
        _airfoil(rt)
        probes = tune_cache_stats()["probes"]
        hits = tune_cache_stats()["hits"]
        _airfoil(rt)  # same runtime: no negotiation at all
        assert tune_cache_stats()["probes"] == probes
        assert tune_cache_stats()["hits"] == hits


class TestOperatorAxis:
    """Apps with interchangeable operator realizations expose them as a
    tuning axis; apps without one are untouched."""

    def test_default_candidates_cross_the_operator_axis(self):
        base = default_candidates()
        crossed = default_candidates(operators=("assembled", "matfree"))
        assert len(crossed) == 2 * len(base)
        assert {c.operator for c in crossed} == {"assembled", "matfree"}
        assert all(c.operator is None for c in base)

    def test_pinned_operator_collapses_the_axis(self):
        pins = Pins(operator="matfree")
        cands = default_candidates(pins,
                                   operators=("assembled", "matfree"))
        assert cands
        assert all(c.operator == "matfree" for c in cands)

    def test_decision_roundtrips_operator(self):
        d = TuneDecision("native", "soa", True, None,
                         operator="matfree")
        d2 = TuneDecision.from_dict(d.to_dict())
        assert d2.operator == "matfree"
        assert d2.candidate().operator == "matfree"
        # Decisions persisted before the axis existed load as None.
        old = TuneDecision.from_dict(
            {"backend": "vectorized", "layout": "aos", "chained": True,
             "tiling": None})
        assert old.operator is None

    def test_predict_filters_loops_by_operator(self):
        infos = [
            {"name": "shared", "n": 1000, "kind": "direct",
             "bytes": 1e8, "operator": None},
            {"name": "asm_only", "n": 1000, "kind": "scatter",
             "bytes": 5e9, "operator": "assembled"},
            {"name": "mf_only", "n": 1000, "kind": "gather",
             "bytes": 1e8, "operator": "matfree"},
        ]
        asm = predict_candidate(
            TuneCandidate("vectorized", "aos", True, None,
                          operator="assembled"), infos)
        mf = predict_candidate(
            TuneCandidate("vectorized", "aos", True, None,
                          operator="matfree"), infos)
        # The assembled candidate pays for the 5 GB scatter loop the
        # matfree candidate never executes.
        assert asm > mf

    def test_flops_bound_loops_price_compute_time(self):
        cand = TuneCandidate("vectorized", "aos", True, None)
        cheap = predict_candidate(
            cand, [{"name": "l", "n": 1000, "kind": "direct",
                    "bytes": 1e6, "flops": 0.0}])
        hot = predict_candidate(
            cand, [{"name": "l", "n": 1000, "kind": "direct",
                    "bytes": 1e6, "flops": 1e12}])
        assert hot > cheap

    def test_aero_auto_negotiates_the_operator(self):
        rt = Runtime("auto")
        sim = _aero(rt)
        d = rt.tuned_decision
        assert d.operator in ("assembled", "matfree")
        assert sim.operator_mode == d.operator

    def test_explicit_operator_is_a_pin(self):
        rt = Runtime("auto")
        sim = _aero(rt, operator="assembled")
        assert rt.tuned_decision.operator == "assembled"
        assert sim.operator_mode == "assembled"
        sim.run(1)
        assert sim.state.mat.assemble_calls == 1

    def test_matfree_pin_runs_without_assembly(self):
        rt = Runtime("auto")
        sim = _aero(rt, operator="matfree")
        assert rt.tuned_decision.operator == "matfree"
        sim.run(2)
        assert sim.state.mat.assemble_calls == 0
        ref = _aero(Runtime(make_backend("sequential")), chained=False)
        ref.run(2)
        assert np.array_equal(sim.phi, ref.phi)

    def test_apps_without_the_axis_stay_unannotated(self):
        rt = Runtime("auto")
        _airfoil(rt)
        assert rt.tuned_decision.operator is None


class TestPerfmodelLink:
    """Satellite: the dead perfmodel link, closed and pinned."""

    def test_runtime_consumes_perfmodel_predictions(self, monkeypatch):
        """The tuner's candidate ranking runs over the sim's profiled
        loop classes — the perfmodel tables gate real decisions."""
        import repro.tune.tuner as tuner_mod

        calls = []
        real = tuner_mod.rank_candidates

        def spy(loop_infos, candidates, calibration=None):
            calls.append(list(loop_infos))
            return real(loop_infos, candidates, calibration)

        monkeypatch.setattr(tuner_mod, "rank_candidates", spy)
        rt = Runtime("auto")
        _airfoil(rt)
        assert calls, "negotiation never ranked candidates"
        infos = calls[0]
        assert infos, "ranking ran without profiled loop infos"
        kinds = {i["kind"] for i in infos}
        # Airfoil has direct kernels and the indirect-INC res/bres
        # loops; the ranking saw the real class structure.
        assert "scatter" in kinds
        assert all(i["bytes"] > 0 for i in infos)

    def test_calibration_changes_flip_the_ranking(self):
        """Same loops, same candidates — swapping the calibrated
        efficiency tables reorders the probe queue."""
        infos = [{"name": "g", "n": 50_000, "kind": "gather",
                  "bytes": 5e9}]
        cands = [
            TuneCandidate("vectorized", "aos", True, None),
            TuneCandidate("autovec", "aos", True, None),
        ]
        vec_wins = ArchCalibration(
            mem_eff_scalar={"gather": 0.4},
            mem_eff_vec={"gather": 0.9},
            mem_eff_auto={"gather": 0.05},
        )
        auto_wins = ArchCalibration(
            mem_eff_scalar={"gather": 0.4},
            mem_eff_vec={"gather": 0.05},
            mem_eff_auto={"gather": 0.9},
        )
        assert rank_candidates(infos, cands, vec_wins)[0].backend == \
            "vectorized"
        assert rank_candidates(infos, cands, auto_wins)[0].backend == \
            "autovec"

    def test_fit_calibration_from_measured_profile(self):
        base = CALIBRATION["cpu"]
        profile = {"loops": {
            # 20 GB/s achieved on direct traffic, 1 GB/s on scatter.
            "fast": {"kind": "direct", "seconds": 1.0, "est_bytes": 20e9},
            "slow": {"kind": "scatter", "seconds": 1.0, "est_bytes": 1e9},
        }}
        cal = fit_calibration_from_profile(profile)
        # The best class back-solves the peak under its base fraction,
        # so its fitted efficiency reproduces the base table's...
        assert cal.mem_eff_vec["direct"] == pytest.approx(
            base.mem_eff_vec["direct"])
        # ...while the 20x-slower scatter class drops well below it.
        assert cal.mem_eff_vec["scatter"] < base.mem_eff_vec["scatter"]
        assert cal.mem_eff_vec["scatter"] == pytest.approx(
            base.mem_eff_vec["direct"] / 20, rel=1e-6)
        # Unexercised classes keep the paper-fitted fractions; the
        # class ordering the model relies on survives the refit.
        assert cal.mem_eff_vec["gather"] == base.mem_eff_vec["gather"]
        assert cal.mem_eff_scalar["scatter"] < base.mem_eff_scalar["scatter"]
        # Explicit peak: fractions follow achieved / peak directly.
        cal40 = fit_calibration_from_profile(profile, peak_gbs=40.0)
        assert cal40.mem_eff_vec["direct"] == pytest.approx(0.5)
        # Empty profiles change nothing.
        assert fit_calibration_from_profile({"loops": {}}) is base

    def test_profile_snapshot_feeds_the_fit(self):
        """End to end: a real run's profile refits the calibration."""
        rt = Runtime(make_backend("vectorized"))
        sim = _airfoil(rt)
        sim.run(2)
        profile = rt.stats()["profile"]
        assert profile["loops"]
        cal = fit_calibration_from_profile(profile)
        assert isinstance(cal, ArchCalibration)
        for kind, eff in cal.mem_eff_vec.items():
            assert 0.0 < eff < 1.0, kind
