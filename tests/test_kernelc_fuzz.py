"""Differential fuzzing of the kernelc emitters (hypothesis).

Three compiled legs must reproduce the scalar interpreter bitwise on
randomized inputs:

* the generated **scalar stub** (codegen backend),
* the generated **vector kernel** (vectorized backend), and
* the **native C** chain program (native backend, cffi).

The kernels below deliberately mix the constructs the emitters lower —
polynomial arithmetic, math intrinsics, integer powers, comparisons,
branches, indirect gathers/INC scatters and global reductions — and
hypothesis drives the data: mesh sizes, layouts, RNG seeds and spliced
special values (signed zero, tiny magnitudes, exact integers).  Any
emitter that rounds differently, reassociates, or mis-handles an edge
value shows up as a one-ULP diff here long before it corrupts an app.
"""

import numpy as np
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core import (
    INC,
    MIN,
    READ,
    Dat,
    Global,
    Map,
    Set,
    arg_dat,
    arg_gbl,
    kernel,
    par_loop,
)
from repro.core.access import IDX_ALL, IDX_ID
from repro.testing import runtime_for

#: The differential legs.  ``sequential`` is the oracle; the other
#: three are the generated executables under test.  (This list is
#: intentionally NOT Backend-matrix driven: the property needs all
#: legs present even when REPRO_BACKEND pins the equivalence sweeps.)
LEGS = [
    ("sequential", "two_level", {}),
    ("codegen", "two_level", {}),
    ("vectorized", "two_level", {}),
    ("native", "two_level", {}),
]

CASES = st.fixed_dictionaries({
    "seed": st.integers(0, 2**32 - 1),
    "n": st.integers(1, 48),
    "layout": st.sampled_from(["aos", "soa"]),
    "special": st.sampled_from(
        [0.0, -0.0, 1.0, -1.0, 0.5, -2.0, 3.0, 1e-8, 7.25]
    ),
})

FUZZ_SETTINGS = dict(max_examples=12, deadline=None)


@kernel("fz_poly")
def fz_poly(x, y):
    y[0] = x[0] * x[0] - 2.5 * x[1] + 0.5
    y[1] = x[0] / (np.abs(x[1]) + 1.0)


@kernel("fz_math")
def fz_math(x, y):
    y[0] = np.sqrt(np.abs(x[0])) + np.minimum(x[0], x[1])
    y[1] = np.maximum(x[0] * x[1], -3.0) + min(x[1], 2.0)
    y[1] += x[0] ** 2 + max(x[0], 0.25) ** 0.5


@kernel("fz_branch")
def fz_branch(x, y):
    if x[0] > 0.0:
        y[0] = x[0] * x[1]
    else:
        y[0] = x[1] - x[0]
    y[1] = (x[1] > x[0]) * (x[0] + x[1])


@kernel("fz_flux")
def fz_flux(w, a, b, out0, out1, lo):
    d0 = a[0] - b[0]
    d1 = a[1] - b[1]
    s = w[0] * np.sqrt(d0 * d0 + d1 * d1)
    out0[0] += s
    out0[1] += d0 * s
    out1[0] += s
    out1[1] -= d1 * s
    lo[0] = min(lo[0], s)


@kernel("fz_gather_all")
def fz_gather_all(w, v, out):
    out[0] += w[0] * (v[0][0] + v[1][0])
    out[1] += w[0] * (v[0][1] - v[1][1])


def _direct_problem(case):
    rng = np.random.default_rng(case["seed"])
    xd = rng.standard_normal((case["n"], 2))
    xd[0, 0] = case["special"]
    return xd


def _run_direct(kern, backend, scheme, options, case):
    rt = runtime_for(backend, scheme, options, layout=case["layout"])
    elems = Set(case["n"], "elems")
    x = Dat(elems, 2, _direct_problem(case).copy(), name="x")
    y = Dat(elems, 2, np.zeros((case["n"], 2)), name="y")
    par_loop(kern, elems,
             arg_dat(x, IDX_ID, None, READ),
             arg_dat(y, IDX_ID, None, INC),
             runtime=rt)
    return y.data.copy()


def _ring(case):
    rng = np.random.default_rng(case["seed"])
    n = case["n"]
    nodes, edges = Set(n, "nodes"), Set(n, "edges")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2n = Map(edges, nodes, 2, conn.astype(np.int64), "e2n")
    wd = rng.standard_normal((n, 1))
    xd = rng.standard_normal((n, 2))
    xd[0, 0] = case["special"]
    return nodes, edges, e2n, wd, xd


def _run_flux(backend, scheme, options, case):
    nodes, edges, e2n, wd, xd = _ring(case)
    rt = runtime_for(backend, scheme, options, layout=case["layout"])
    w = Dat(edges, 1, wd.copy(), name="w")
    x = Dat(nodes, 2, xd.copy(), name="x")
    acc = Dat(nodes, 2, np.zeros_like(xd), name="acc")
    lo = Global(1, value=np.array([np.finfo(np.float64).max]), name="lo")
    par_loop(fz_flux, edges,
             arg_dat(w, IDX_ID, None, READ),
             arg_dat(x, 0, e2n, READ),
             arg_dat(x, 1, e2n, READ),
             arg_dat(acc, 0, e2n, INC),
             arg_dat(acc, 1, e2n, INC),
             arg_gbl(lo, MIN),
             runtime=rt)
    return acc.data.copy(), lo.value.copy()


def _run_gather_all(backend, scheme, options, case):
    nodes, edges, e2n, wd, xd = _ring(case)
    rt = runtime_for(backend, scheme, options, layout=case["layout"])
    w = Dat(edges, 1, wd.copy(), name="w")
    x = Dat(nodes, 2, xd.copy(), name="x")
    out = Dat(edges, 2, np.zeros((case["n"], 2)), name="out")
    par_loop(fz_gather_all, edges,
             arg_dat(w, IDX_ID, None, READ),
             arg_dat(x, IDX_ALL, e2n, READ),
             arg_dat(out, IDX_ID, None, INC),
             runtime=rt)
    return out.data.copy()


def _assert_legs_bitwise(run, case, label):
    ref = None
    for backend, scheme, options in LEGS:
        got = run(backend, scheme, options, case)
        if not isinstance(got, tuple):
            got = (got,)
        if ref is None:
            ref = got
            continue
        for r, g in zip(ref, got):
            assert np.array_equal(r, g), (
                f"{label}: backend {backend} diverged from sequential "
                f"(case={case}, max|diff|="
                f"{np.max(np.abs(np.asarray(r) - np.asarray(g)))})"
            )


@settings(**FUZZ_SETTINGS)
@given(case=CASES)
def test_direct_poly_bitwise(case):
    _assert_legs_bitwise(
        lambda *a: _run_direct(fz_poly, *a), case, "fz_poly")


@settings(**FUZZ_SETTINGS)
@given(case=CASES)
# Regression pin: an input where array ``x ** 2`` (np.square fast path)
# rounds one ulp away from scalar pow() — the emitters must take the
# scalar path (see kernelc/vector.py:_lane_pow, native.py:_pow).
@example(case={"seed": 6801, "n": 11, "layout": "aos", "special": 0.0})
def test_direct_math_bitwise(case):
    _assert_legs_bitwise(
        lambda *a: _run_direct(fz_math, *a), case, "fz_math")


@settings(**FUZZ_SETTINGS)
@given(case=CASES)
def test_direct_branch_bitwise(case):
    _assert_legs_bitwise(
        lambda *a: _run_direct(fz_branch, *a), case, "fz_branch")


@settings(**FUZZ_SETTINGS)
@given(case=CASES)
def test_indirect_inc_and_reduction_bitwise(case):
    _assert_legs_bitwise(_run_flux, case, "fz_flux")


@settings(**FUZZ_SETTINGS)
@given(case=CASES)
def test_vector_gather_bitwise(case):
    _assert_legs_bitwise(_run_gather_all, case, "fz_gather_all")
