"""Unit + property tests for the SIMD substrate (VecReg, intrinsics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd import (
    IntVec,
    Mask,
    VecReg,
    select,
    vabs,
    vector_width,
    vfma,
    vmax,
    vmin,
    vrecip,
    vsqrt,
)

lanes4 = st.lists(
    st.floats(-1e6, 1e6, allow_nan=False), min_size=4, max_size=4
)


class TestConstruction:
    def test_broadcast(self):
        v = VecReg.broadcast(2.5, 4)
        np.testing.assert_array_equal(v.lanes, [2.5] * 4)
        assert v.width == 4

    def test_aligned_load_store(self):
        buf = np.arange(8.0)
        v = VecReg.load(buf, 2, 4)
        np.testing.assert_array_equal(v.lanes, [2, 3, 4, 5])
        out = np.zeros(8)
        v.store(out, 1)
        np.testing.assert_array_equal(out[1:5], [2, 3, 4, 5])

    def test_load_out_of_bounds(self):
        with pytest.raises(IndexError):
            VecReg.load(np.zeros(4), 2, 4)

    def test_strided_load_store(self):
        # The AoS-component pattern of Fig 3b: &data[n*4+d] with stride 4.
        buf = np.arange(16.0)
        v = VecReg.load_strided(buf, 1, 4, 4)
        np.testing.assert_array_equal(v.lanes, [1, 5, 9, 13])
        out = np.zeros(16)
        v.store_strided(out, 1, 4)
        np.testing.assert_array_equal(out[[1, 5, 9, 13]], [1, 5, 9, 13])

    def test_gather(self):
        buf = np.arange(10.0) * 10
        v = VecReg.gather(buf, np.array([7, 0, 3, 3]))
        np.testing.assert_array_equal(v.lanes, [70, 0, 30, 30])

    def test_gather_with_intvec(self):
        idx = IntVec(np.array([1, 2]))
        v = VecReg.gather(np.arange(5.0), idx)
        np.testing.assert_array_equal(v.lanes, [1, 2])

    def test_lanes_copied_not_aliased(self):
        buf = np.arange(4.0)
        v = VecReg.load(buf, 0, 4)
        buf[0] = 99
        assert v.lanes[0] == 0.0

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            VecReg(np.zeros((2, 2)))


class TestScatter:
    def test_scatter_unique(self):
        buf = np.zeros(6)
        VecReg(np.array([1.0, 2.0, 3.0])).scatter(buf, np.array([4, 0, 2]))
        np.testing.assert_array_equal(buf, [2, 0, 3, 0, 1, 0])

    def test_scatter_duplicate_last_lane_wins(self):
        buf = np.zeros(3)
        VecReg(np.array([1.0, 2.0])).scatter(buf, np.array([1, 1]))
        assert buf[1] == 2.0  # IMCI in-order semantics

    def test_scatter_add_accumulates_duplicates(self):
        buf = np.zeros(3)
        VecReg(np.array([1.0, 2.0, 4.0])).scatter_add(
            buf, np.array([1, 1, 0])
        )
        np.testing.assert_array_equal(buf, [4, 3, 0])

    def test_masked_store(self):
        buf = np.zeros(4)
        v = VecReg(np.array([1.0, 2.0, 3.0, 4.0]))
        v.store_masked(buf, 0, Mask(np.array([True, False, True, False])))
        np.testing.assert_array_equal(buf, [1, 0, 3, 0])


class TestArithmetic:
    def test_ops_match_numpy(self):
        a = VecReg(np.array([1.0, -2.0, 3.0]))
        b = VecReg(np.array([4.0, 5.0, -6.0]))
        np.testing.assert_allclose((a + b).lanes, [5, 3, -3])
        np.testing.assert_allclose((a - b).lanes, [-3, -7, 9])
        np.testing.assert_allclose((a * b).lanes, [4, -10, -18])
        np.testing.assert_allclose((a / b).lanes, [0.25, -0.4, -0.5])
        np.testing.assert_allclose((-a).lanes, [-1, 2, -3])
        np.testing.assert_allclose(abs(a).lanes, [1, 2, 3])

    def test_scalar_operands(self):
        a = VecReg(np.array([1.0, 2.0]))
        np.testing.assert_allclose((2.0 * a).lanes, [2, 4])
        np.testing.assert_allclose((a + 1).lanes, [2, 3])
        np.testing.assert_allclose((1 - a).lanes, [0, -1])
        np.testing.assert_allclose((2 / a).lanes, [2, 1])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VecReg(np.zeros(2)) + VecReg(np.zeros(3))

    def test_fma(self):
        a = VecReg(np.array([1.0, 2.0]))
        r = a.fma(VecReg(np.array([3.0, 4.0])), VecReg(np.array([5.0, 6.0])))
        np.testing.assert_allclose(r.lanes, [8, 14])

    def test_horizontal_ops(self):
        v = VecReg(np.array([3.0, -1.0, 5.0]))
        assert v.hsum() == 7.0
        assert v.hmin() == -1.0
        assert v.hmax() == 5.0


class TestMasksAndSelect:
    def test_comparisons_yield_masks(self):
        a = VecReg(np.array([1.0, 5.0]))
        m = a < 3.0
        assert isinstance(m, Mask)
        np.testing.assert_array_equal(m.lanes, [True, False])
        np.testing.assert_array_equal((a >= 5.0).lanes, [False, True])
        np.testing.assert_array_equal(a.eq(5.0).lanes, [False, True])

    def test_mask_logic(self):
        m1 = Mask(np.array([True, False]))
        m2 = Mask(np.array([True, True]))
        np.testing.assert_array_equal((m1 & m2).lanes, [True, False])
        np.testing.assert_array_equal((m1 | m2).lanes, [True, True])
        np.testing.assert_array_equal((m1 ^ m2).lanes, [False, True])
        np.testing.assert_array_equal((~m1).lanes, [False, True])
        assert m2.all() and m1.any()

    def test_select_vecreg(self):
        a = VecReg(np.array([1.0, 2.0]))
        b = VecReg(np.array([10.0, 20.0]))
        r = select(a < 2.0, a, b)
        np.testing.assert_array_equal(r.lanes, [1.0, 20.0])

    def test_select_scalar_path(self):
        assert select(True, 1.0, 2.0) == 1.0
        assert select(False, 1.0, 2.0) == 2.0
        assert select(np.bool_(True), 3.0, 4.0) == 3.0

    def test_select_array_path(self):
        r = select(np.array([True, False]), np.array([1.0, 2.0]), 0.0)
        np.testing.assert_array_equal(r, [1.0, 0.0])


class TestIntrinsics:
    def test_polymorphic_over_arrays_and_vecreg(self):
        arr = np.array([4.0, 9.0])
        np.testing.assert_allclose(vsqrt(arr), [2, 3])
        np.testing.assert_allclose(vsqrt(VecReg(arr)).lanes, [2, 3])
        np.testing.assert_allclose(vmin(arr, 5.0), [4, 5])
        np.testing.assert_allclose(vmax(VecReg(arr), 5.0).lanes, [5, 9])
        np.testing.assert_allclose(vabs(np.array([-1.0])), [1])
        np.testing.assert_allclose(vrecip(np.array([2.0])), [0.5])
        np.testing.assert_allclose(
            vfma(arr, 2.0, 1.0), [9, 19]
        )
        np.testing.assert_allclose(
            vfma(VecReg(arr), VecReg(arr), VecReg(arr)).lanes, [20, 90]
        )

    def test_scalar_passthrough(self):
        assert vsqrt(4.0) == 2.0
        assert vmin(1.0, 2.0) == 1.0


class TestIntVec:
    def test_load_and_arith(self):
        iv = IntVec.load(np.array([5, 6, 7, 8]), 1, 2)
        np.testing.assert_array_equal(iv.lanes, [6, 7])
        np.testing.assert_array_equal((iv * 2).lanes, [12, 14])
        np.testing.assert_array_equal((iv + 1).lanes, [7, 8])
        np.testing.assert_array_equal((2 * iv).lanes, [12, 14])
        assert iv[0] == 6


class TestVectorWidth:
    def test_paper_widths(self):
        assert vector_width("avx", np.float64) == 4
        assert vector_width("avx", np.float32) == 8
        assert vector_width("imci", np.float64) == 8
        assert vector_width("imci", np.float32) == 16

    def test_unknown(self):
        with pytest.raises(KeyError):
            vector_width("sse", np.float64)


# ----------------------------------------------------------------------
# Property: VecReg pipelines agree with plain NumPy.
# ----------------------------------------------------------------------
@given(lanes4, lanes4)
@settings(max_examples=100, deadline=None)
def test_property_vecreg_matches_numpy(xs, ys):
    a, b = np.array(xs), np.array(ys)
    va, vb = VecReg(a), VecReg(b)
    np.testing.assert_array_equal((va + vb).lanes, a + b)
    np.testing.assert_array_equal((va * vb).lanes, a * b)
    np.testing.assert_array_equal(vmin(va, vb).lanes, np.minimum(a, b))
    np.testing.assert_array_equal(
        select(va < vb, va, vb).lanes, np.where(a < b, a, b)
    )


@given(
    st.lists(st.integers(0, 9), min_size=4, max_size=4),
    lanes4,
)
@settings(max_examples=100, deadline=None)
def test_property_gather_scatter_add_roundtrip(idx, vals):
    buf = np.zeros(10)
    v = VecReg(np.array(vals))
    v.scatter_add(buf, np.array(idx))
    expected = np.zeros(10)
    np.add.at(expected, np.array(idx), np.array(vals))
    np.testing.assert_allclose(buf, expected)
