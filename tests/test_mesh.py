"""Tests for mesh generators, renumbering, serialization, footprints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    airfoil_paper_dims,
    bandwidth,
    load_mesh,
    make_airfoil_mesh,
    make_tri_mesh,
    permute_set_numbering,
    rcm_renumber_cells,
    save_mesh,
    scramble,
    volna_paper_dims,
)


class TestAirfoilMesh:
    def test_set_size_formulas(self):
        ni, nj = 12, 5
        m = make_airfoil_mesh(ni, nj)
        assert m.cells.size == ni * nj
        assert m.nodes.size == ni * (nj + 1)
        assert m.edges.size == 2 * ni * nj - ni
        assert m.bedges.size == 2 * ni

    def test_paper_sizes_match_table4(self):
        # Table IV: 720 000 cells / 721 801 nodes / 1 438 600 edges.
        ni, nj = airfoil_paper_dims(720_000)
        cells = ni * nj
        nodes = ni * (nj + 1)
        edges = 2 * ni * nj - ni
        assert cells == 720_000
        assert abs(nodes - 721_801) / 721_801 < 0.002
        assert abs(edges - 1_438_600) / 1_438_600 < 0.002

    def test_every_cell_touched_by_four_edge_slots(self):
        m = make_airfoil_mesh(10, 4)
        counts = np.zeros(m.cells.size, dtype=int)
        np.add.at(counts, m.map("edge2cell").values.reshape(-1), 1)
        np.add.at(counts, m.map("bedge2cell").values.reshape(-1), 1)
        # Quads: every cell has exactly 4 faces.
        assert (counts == 4).all()

    def test_boundary_flags(self):
        m = make_airfoil_mesh(8, 3)
        bound = m.meta["bound"]
        assert set(np.unique(bound)) == {1, 2}
        assert (bound == 1).sum() == 8  # wall
        assert (bound == 2).sum() == 8  # far field

    def test_normal_orientation_interior(self):
        # (dy, -dx) from (x1 - x2) must point cell0 -> cell1.
        m = make_airfoil_mesh(16, 6)
        cent = m.cell_centroids()
        e2n = m.map("edge2node").values
        e2c = m.map("edge2cell").values
        x1 = m.coords[e2n[:, 0]]
        x2 = m.coords[e2n[:, 1]]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        d = cent[e2c[:, 1]] - cent[e2c[:, 0]]
        assert (dy * d[:, 0] - dx * d[:, 1] > 0).all()

    def test_normal_orientation_boundary(self):
        # Boundary normals must point out of the domain.
        m = make_airfoil_mesh(16, 6)
        cent = m.cell_centroids()
        b2n = m.map("bedge2node").values
        b2c = m.map("bedge2cell").values[:, 0]
        x1 = m.coords[b2n[:, 0]]
        x2 = m.coords[b2n[:, 1]]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        mid = 0.5 * (x1 + x2)
        d = mid - cent[b2c]
        assert (dy * d[:, 0] - dx * d[:, 1] > 0).all()

    def test_cell_corner_order_is_a_cycle(self):
        # Consecutive corners must share a quad edge (adt_calc walks them).
        m = make_airfoil_mesh(8, 3)
        x = m.coords[m.map("cell2node").values]  # (cells, 4, 2)
        for k in range(4):
            d = x[:, (k + 1) % 4] - x[:, k]
            assert (np.hypot(d[:, 0], d[:, 1]) > 0).all()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            make_airfoil_mesh(2, 4)
        with pytest.raises(ValueError):
            make_airfoil_mesh(8, 0)

    def test_validate_passes(self):
        make_airfoil_mesh(6, 2).validate()


class TestTriMesh:
    def test_set_size_formulas(self):
        nx, ny = 7, 5
        m = make_tri_mesh(nx, ny)
        assert m.cells.size == 2 * nx * ny
        assert m.nodes.size == (nx + 1) * (ny + 1)
        assert m.edges.size == 3 * nx * ny + nx + ny
        assert m.bedges.size == 2 * (nx + ny)

    def test_paper_ratio_match_table4(self):
        # Volna: 2 392 352 cells / 1 197 384 nodes / 3 589 735 edges.
        nx, ny = volna_paper_dims()
        cells = 2 * nx * ny
        nodes = (nx + 1) * (ny + 1)
        edges = 3 * nx * ny + nx + ny
        assert abs(cells - 2_392_352) / 2_392_352 < 0.001
        assert abs(nodes - 1_197_384) / 1_197_384 < 0.001
        assert abs(edges - 3_589_735) / 3_589_735 < 0.001

    def test_cell2edge_inverse_of_edge2cell(self):
        m = make_tri_mesh(5, 4)
        e2c = m.map("edge2cell").values
        c2e = m.map("cell2edge").values
        is_b = m.meta["is_boundary_edge"].astype(bool)
        for c in range(m.cells.size):
            for e in c2e[c]:
                assert c in e2c[e]
        # Interior edge appears in exactly the two cells it separates.
        for e in np.nonzero(~is_b)[0][:20]:
            c0, c1 = e2c[e]
            assert e in c2e[c0] and e in c2e[c1]

    def test_boundary_edges_mirror_cell(self):
        m = make_tri_mesh(4, 3)
        e2c = m.map("edge2cell").values
        is_b = m.meta["is_boundary_edge"].astype(bool)
        assert (e2c[is_b, 0] == e2c[is_b, 1]).all()
        assert (e2c[~is_b, 0] != e2c[~is_b, 1]).all()

    def test_triangle_areas_positive_and_sum(self):
        from repro.apps.volna import cell_areas

        m = make_tri_mesh(6, 4, 12.0, 8.0)
        areas = cell_areas(m)
        assert (areas > 0).all()
        assert areas.sum() == pytest.approx(12.0 * 8.0)

    def test_edge_lengths_close_mesh(self):
        # Sum of outward normals weighted by length per cell must vanish
        # (divergence theorem on each triangle).
        from repro.apps.volna import edge_geometry

        m = make_tri_mesh(5, 5)
        geom = edge_geometry(m)
        e2c = m.map("edge2cell").values
        acc = np.zeros((m.cells.size, 2))
        nl = geom[:, :2] * geom[:, 2:3]
        np.add.at(acc, e2c[:, 0], nl)
        is_b = geom[:, 3] > 0.5
        np.add.at(acc, e2c[~is_b, 1], -nl[~is_b])
        np.testing.assert_allclose(acc, 0.0, atol=1e-9)


class TestRenumbering:
    def test_scramble_preserves_topology(self):
        m = make_airfoil_mesh(8, 4)
        s = scramble(m, "cells", seed=3)
        # Edge-cell incidence counts are invariant under renumbering.
        c0 = np.bincount(m.map("edge2cell").values.reshape(-1),
                         minlength=m.cells.size)
        c1 = np.bincount(s.map("edge2cell").values.reshape(-1),
                         minlength=m.cells.size)
        assert sorted(c0.tolist()) == sorted(c1.tolist())

    def test_rcm_reduces_bandwidth_of_scrambled(self):
        m = scramble(make_airfoil_mesh(16, 8), "cells", seed=1)
        r = rcm_renumber_cells(m)
        assert bandwidth(r.map("edge2cell").values) < bandwidth(
            m.map("edge2cell").values
        )

    def test_node_renumber_moves_coords(self):
        m = make_tri_mesh(3, 3)
        perm = np.roll(np.arange(m.nodes.size), 1)
        r = permute_set_numbering(m, "nodes", perm)
        np.testing.assert_allclose(r.coords[perm[0]], m.coords[0])

    def test_invalid_permutation_rejected(self):
        m = make_tri_mesh(2, 2)
        with pytest.raises(ValueError):
            permute_set_numbering(m, "cells", np.zeros(m.cells.size, int))
        with pytest.raises(KeyError):
            permute_set_numbering(m, "faces", np.arange(3))

    def test_scramble_then_solve_matches(self):
        # Full pipeline invariance: Airfoil result is permutation of orig.
        from repro.apps.airfoil import AirfoilSim
        from repro.core import Runtime

        m = make_airfoil_mesh(10, 5)
        rng = np.random.default_rng(0)
        perm = rng.permutation(m.cells.size).astype(np.int64)
        sm = permute_set_numbering(m, "cells", perm)
        a = AirfoilSim(m, runtime=Runtime("vectorized", block_size=16))
        b = AirfoilSim(sm, runtime=Runtime("vectorized", block_size=16))
        a.run(3)
        b.run(3)
        np.testing.assert_allclose(b.q[perm], a.q, rtol=1e-10, atol=1e-12)


class TestMeshIO:
    def test_roundtrip(self, tmp_path):
        m = make_tri_mesh(4, 3)
        p = tmp_path / "mesh.npz"
        save_mesh(m, p)
        r = load_mesh(p)
        assert r.summary() == m.summary()
        np.testing.assert_array_equal(
            r.map("edge2cell").values, m.map("edge2cell").values
        )
        np.testing.assert_allclose(r.coords, m.coords)
        np.testing.assert_array_equal(
            r.meta["is_boundary_edge"], m.meta["is_boundary_edge"]
        )

    def test_airfoil_roundtrip(self, tmp_path):
        m = make_airfoil_mesh(6, 3)
        p = tmp_path / "airfoil.npz"
        save_mesh(m, p)
        r = load_mesh(p)
        np.testing.assert_array_equal(r.meta["bound"], m.meta["bound"])
        r.validate()


class TestFootprint:
    def test_airfoil_footprint_matches_table4(self):
        # Table IV: small Airfoil mesh 94(47) MB in double(single).
        ni, nj = airfoil_paper_dims(720_000)
        sizes = {
            "nodes": ni * (nj + 1),
            "cells": ni * nj,
            "edges": 2 * ni * nj - ni,
            "bedges": 2 * ni,
        }
        dat_dims = {"nodes": 2, "cells": 13, "bedges": 1}
        data_dp = sum(sizes[s] * d * 8 for s, d in dat_dims.items())
        data_sp = data_dp // 2
        # Our data-only accounting gives 82.4 MB; the paper's 94 MB also
        # includes one 2-arity int32 edge map (+11.5 MB) — both brackets
        # hold the paper value between data-only and data+maps.
        maps_int32 = (sizes["edges"] * 4 + sizes["cells"] * 4) * 4
        assert data_dp / 2**20 < 94 < (data_dp + maps_int32) / 2**20
        assert data_sp / 2**20 < 47 < (data_sp + maps_int32) / 2**20

    def test_memory_footprint_api(self):
        m = make_airfoil_mesh(8, 4)
        fp = m.memory_footprint({"nodes": 2, "cells": 13, "bedges": 1})
        assert fp["data"] == (
            m.nodes.size * 2 + m.cells.size * 13 + m.bedges.size * 1
        ) * 8
        assert fp["total"] == fp["data"] + fp["maps"]


@given(st.integers(3, 20), st.integers(1, 10))
@settings(max_examples=25, deadline=None)
def test_property_airfoil_euler_formula(ni, nj):
    """V - E + F = 0 for the O-mesh (an annulus: Euler characteristic 0)."""
    m = make_airfoil_mesh(ni, nj)
    V = m.nodes.size
    E = m.edges.size + m.bedges.size
    F = m.cells.size
    assert V - E + F == 0


@given(st.integers(1, 12), st.integers(1, 12))
@settings(max_examples=25, deadline=None)
def test_property_tri_euler_formula(nx, ny):
    """V - E + F = 1 for the triangulated disc-like rectangle."""
    m = make_tri_mesh(nx, ny)
    assert m.nodes.size - m.edges.size + m.cells.size == 1
