"""Unit + property tests for conflict extraction, coloring, permutations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring import (
    block_permute,
    color_blocks,
    color_elements,
    conflict_targets,
    element_colors_by_block,
    full_permute,
    greedy_color,
    is_valid_block_coloring,
    is_valid_coloring,
    jp_color,
    make_blocks,
    racing_slots,
)
from repro.core import INC, READ, Dat, Map, Set, arg_dat
from repro.core.access import IDX_ALL


def ring_args(n_edges: int, inc: bool = True):
    """Edges of a ring graph; consecutive edges share a node."""
    nodes = Set(n_edges, "nodes")
    edges = Set(n_edges, "edges")
    conn = np.stack(
        [np.arange(n_edges), (np.arange(n_edges) + 1) % n_edges], axis=1
    )
    m = Map(edges, nodes, 2, conn, "e2n")
    d = Dat(nodes, 1)
    acc = INC if inc else READ
    return edges, [arg_dat(d, 0, m, acc), arg_dat(d, 1, m, acc)]


class TestConflictTargets:
    def test_no_race_gives_none(self):
        _, args = ring_args(6, inc=False)
        targets, extent = conflict_targets(args, 6)
        assert targets is None and extent == 0

    def test_targets_shape(self):
        _, args = ring_args(6)
        targets, extent = conflict_targets(args, 6)
        assert targets.shape == (6, 2)
        assert extent == 6

    def test_racing_slots_dedup(self):
        edges, args = ring_args(4)
        # Duplicate INC arg on the same slot adds no new constraint.
        args = args + [args[0]]
        assert len(racing_slots(args)) == 2

    def test_vector_arg_covers_all_slots(self):
        nodes, edges = Set(5), Set(4)
        m = Map(edges, nodes, 3, np.zeros((4, 3), int), "m3")
        d = Dat(nodes, 1)
        slots = racing_slots([arg_dat(d, IDX_ALL, m, INC)])
        assert len(slots) == 3

    def test_two_target_sets_offset(self):
        a_set, b_set = Set(3, "a"), Set(3, "b")
        it = Set(3, "it")
        ma = Map(it, a_set, 1, np.array([0, 1, 2]), "ma")
        mb = Map(it, b_set, 1, np.array([0, 1, 2]), "mb")
        da, db = Dat(a_set, 1), Dat(b_set, 1)
        targets, extent = conflict_targets(
            [arg_dat(da, 0, ma, INC), arg_dat(db, 0, mb, INC)], 3
        )
        assert extent == 6
        # Same local index in different sets must NOT collide.
        assert targets[0, 0] != targets[0, 1]

    def test_validity_checker_catches_conflict(self):
        _, args = ring_args(4)
        targets, _ = conflict_targets(args, 4)
        bad = np.zeros(4, dtype=np.int32)  # all same color: edges share nodes
        assert not is_valid_coloring(bad, targets)

    def test_validity_checker_allows_self_duplicate(self):
        # A degenerate element hitting one target through two slots is not
        # a cross-element conflict.
        nodes, edges = Set(2, "n"), Set(1, "e")
        m = Map(edges, nodes, 2, np.array([[1, 1]]), "deg")
        d = Dat(nodes, 1)
        targets, _ = conflict_targets(
            [arg_dat(d, 0, m, INC), arg_dat(d, 1, m, INC)], 1
        )
        assert is_valid_coloring(np.zeros(1, dtype=np.int32), targets)


class TestGreedyAndJP:
    @pytest.mark.parametrize("fn", [greedy_color, jp_color])
    def test_ring_coloring_valid(self, fn):
        _, args = ring_args(10)
        targets, extent = conflict_targets(args, 10)
        colors, ncolors = fn(targets, 10, extent)
        assert is_valid_coloring(colors, targets)
        assert ncolors == colors.max() + 1
        assert 2 <= ncolors <= 4

    @pytest.mark.parametrize("fn", [greedy_color, jp_color])
    def test_no_targets_single_color(self, fn):
        colors, ncolors = fn(None, 5)
        assert ncolors == 1 and (colors == 0).all()

    def test_empty_set(self):
        colors, ncolors = greedy_color(None, 0)
        assert colors.size == 0 and ncolors == 0

    def test_method_dispatch(self):
        _, args = ring_args(8)
        targets, extent = conflict_targets(args, 8)
        for method in ("greedy", "jp", "auto"):
            colors, _ = color_elements(targets, 8, extent, method=method)
            assert is_valid_coloring(colors, targets)
        with pytest.raises(ValueError):
            color_elements(targets, 8, extent, method="nope")

    def test_jp_deterministic_per_seed(self):
        _, args = ring_args(20)
        targets, extent = conflict_targets(args, 20)
        c1, _ = jp_color(targets, 20, extent, seed=7)
        c2, _ = jp_color(targets, 20, extent, seed=7)
        np.testing.assert_array_equal(c1, c2)


class TestBlocks:
    def test_make_blocks_even(self):
        layout = make_blocks(10, 5)
        assert layout.nblocks == 2
        assert layout.block_range(1) == (5, 10)

    def test_make_blocks_remainder_absorbed(self):
        layout = make_blocks(11, 5)
        assert layout.nblocks == 2
        assert layout.block_range(1) == (5, 11)
        np.testing.assert_array_equal(layout.sizes(), [5, 6])

    def test_block_smaller_than_size(self):
        layout = make_blocks(3, 100)
        assert layout.nblocks == 1

    def test_empty(self):
        assert make_blocks(0, 4).nblocks == 0

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            make_blocks(5, 0)

    def test_block_coloring_valid(self):
        _, args = ring_args(24)
        targets, extent = conflict_targets(args, 24)
        layout = make_blocks(24, 4)
        colors, ncolors = color_blocks(layout, targets, extent)
        assert is_valid_block_coloring(layout, colors, targets)
        assert ncolors >= 2  # adjacent blocks share a node

    def test_block_coloring_direct(self):
        layout = make_blocks(8, 4)
        colors, ncolors = color_blocks(layout, None, 0)
        assert ncolors == 1 and (colors == 0).all()


class TestPermutations:
    def test_full_permute_is_bijection(self):
        _, args = ring_args(17)
        targets, extent = conflict_targets(args, 17)
        perm = full_permute(targets, 17, extent)
        assert sorted(perm.order.tolist()) == list(range(17))
        assert perm.color_offsets[-1] == 17

    def test_full_permute_colors_independent(self):
        _, args = ring_args(17)
        targets, extent = conflict_targets(args, 17)
        perm = full_permute(targets, 17, extent)
        for c in range(perm.ncolors):
            elems = perm.color_slice(c)
            seen = set()
            for e in elems:
                tg = set(targets[e].tolist())
                assert not (seen & tg)
                seen |= tg

    def test_block_permute_is_bijection(self):
        _, args = ring_args(23)
        targets, extent = conflict_targets(args, 23)
        layout = make_blocks(23, 5)
        bp = block_permute(layout, targets, extent)
        assert sorted(bp.order.tolist()) == list(range(23))

    def test_block_permute_blocks_contiguous(self):
        _, args = ring_args(20)
        targets, extent = conflict_targets(args, 20)
        layout = make_blocks(20, 5)
        bp = block_permute(layout, targets, extent)
        for b in range(layout.nblocks):
            lo, hi = layout.block_range(b)
            assert sorted(bp.order[lo:hi].tolist()) == list(range(lo, hi))

    def test_block_permute_color_groups_independent(self):
        _, args = ring_args(20)
        targets, extent = conflict_targets(args, 20)
        layout = make_blocks(20, 5)
        bp = block_permute(layout, targets, extent)
        for b in range(layout.nblocks):
            for c in range(bp.block_ncolors(b)):
                elems = bp.block_color_slice(b, c)
                seen = set()
                for e in elems:
                    tg = set(targets[e].tolist())
                    assert not (seen & tg)
                    seen |= tg

    def test_element_colors_by_block(self):
        _, args = ring_args(20)
        targets, extent = conflict_targets(args, 20)
        layout = make_blocks(20, 5)
        colors, ncolors = element_colors_by_block(layout, targets, extent)
        assert colors.shape == (20,)
        for b in range(layout.nblocks):
            lo, hi = layout.block_range(b)
            assert colors[lo:hi].max() + 1 <= ncolors[b]
            assert is_valid_coloring(colors[lo:hi], targets[lo:hi])


# ----------------------------------------------------------------------
# Property-based tests on random bipartite structures.
# ----------------------------------------------------------------------
@st.composite
def random_loop(draw):
    n_targets = draw(st.integers(2, 30))
    n_elems = draw(st.integers(1, 60))
    arity = draw(st.integers(1, 3))
    conn = draw(
        st.lists(
            st.lists(st.integers(0, n_targets - 1), min_size=arity,
                     max_size=arity),
            min_size=n_elems,
            max_size=n_elems,
        )
    )
    return n_targets, np.asarray(conn, dtype=np.int64)


@given(random_loop())
@settings(max_examples=60, deadline=None)
def test_property_colorings_always_valid(loop):
    n_targets, conn = loop
    n = conn.shape[0]
    targets = conn
    for fn in (greedy_color, jp_color):
        colors, ncolors = fn(targets, n, n_targets)
        assert is_valid_coloring(colors, targets)
        assert (colors >= 0).all()
        assert ncolors == colors.max() + 1


@given(random_loop(), st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_property_block_permute_bijection(loop, block_size):
    n_targets, conn = loop
    n = conn.shape[0]
    layout = make_blocks(n, block_size)
    bp = block_permute(layout, conn, n_targets)
    assert sorted(bp.order.tolist()) == list(range(n))


@given(random_loop())
@settings(max_examples=40, deadline=None)
def test_property_full_permute_color_groups(loop):
    n_targets, conn = loop
    n = conn.shape[0]
    perm = full_permute(conn, n, n_targets)
    covered = np.zeros(n, dtype=bool)
    for c in range(perm.ncolors):
        for e in perm.color_slice(c):
            covered[e] = True
    assert covered.all()
