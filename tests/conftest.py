"""Shared fixtures: small meshes, kernel sets, runtime configurations.

The backend matrix and runtime factory live in :mod:`repro.testing` (a
proper package module, immune to the ``conftest``-name collision with
``benchmarks/conftest.py``); they are re-exported here for convenience.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest

from repro.mesh import make_airfoil_mesh, make_tri_mesh
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX, runtime_for

__all__ = ["BACKEND_MATRIX", "LAYOUT_MATRIX", "runtime_for"]

# Isolate the persistent artifact store (repro.store): a test run must
# never read another process's ~/.cache/repro_artifacts — warm disk
# hits would make tests order- and history-dependent.  Set only when
# the caller did not: CI's corrupt-cache smoke step deliberately points
# the suite at a pre-corrupted store via REPRO_CACHE_DIR.
if "REPRO_CACHE_DIR" not in os.environ:
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-store-")


@pytest.fixture(scope="session")
def airfoil_mesh_small():
    return make_airfoil_mesh(16, 8)


@pytest.fixture(scope="session")
def tri_mesh_small():
    return make_tri_mesh(10, 8)


@pytest.fixture
def rng():
    return np.random.default_rng(42)
