"""Shared fixtures: small meshes, kernel sets, runtime configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Runtime
from repro.mesh import make_airfoil_mesh, make_tri_mesh


@pytest.fixture(scope="session")
def airfoil_mesh_small():
    return make_airfoil_mesh(16, 8)


@pytest.fixture(scope="session")
def tri_mesh_small():
    return make_tri_mesh(10, 8)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


#: (backend name, scheme, options) matrix every equivalence test sweeps.
BACKEND_MATRIX = [
    ("sequential", "two_level", {}),
    ("codegen", "two_level", {}),
    ("openmp", "two_level", {}),
    ("vectorized", "two_level", {}),
    ("vectorized", "full_permute", {}),
    ("vectorized", "block_permute", {}),
    ("simt", "two_level", {"device": "cpu"}),
    ("simt", "two_level", {"device": "phi"}),
    ("autovec", "full_permute", {}),
    ("autovec", "block_permute", {}),
]


def runtime_for(name: str, scheme: str, options: dict, block_size: int = 64
                ) -> Runtime:
    from repro.core import make_backend

    return Runtime(
        backend=make_backend(name, **options),
        block_size=block_size,
        scheme=scheme,
    )
