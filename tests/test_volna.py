"""Volna application tests: conservation, well-balancing, equivalence."""

import numpy as np
import pytest

from repro.apps.volna import (
    CoastalScenario,
    VolnaSim,
    bathymetry,
    cell_areas,
    edge_geometry,
    initial_state,
    make_kernels,
)
from repro.core import Runtime
from repro.mesh import make_tri_mesh

from repro.testing import BACKEND_MATRIX, runtime_for


@pytest.fixture(scope="module")
def mesh():
    scen = CoastalScenario()
    return make_tri_mesh(14, 10, scen.extent_x, scen.extent_y)


class TestBathymetry:
    def test_depth_profile_monotone_offshore(self):
        scen = CoastalScenario()
        xs = np.linspace(0, scen.extent_x, 50)
        pts = np.stack([xs, np.zeros(50)], axis=1)  # far from the bay
        zb = bathymetry(pts, scen)
        assert zb[0] == pytest.approx(-scen.ocean_depth)
        assert zb[-1] == pytest.approx(-scen.coast_depth, rel=0.2)
        assert (np.diff(zb) >= -1e-9).all()  # shoals toward the coast

    def test_bay_channel_deeper(self):
        scen = CoastalScenario()
        x = 0.8 * scen.extent_x
        in_bay = bathymetry(np.array([[x, 0.5 * scen.extent_y]]), scen)
        off_bay = bathymetry(np.array([[x, 0.05 * scen.extent_y]]), scen)
        assert in_bay[0] < off_bay[0]

    def test_initial_state_lake_at_rest_plus_hump(self):
        scen = CoastalScenario()
        pts = np.array(
            [[0.2 * scen.extent_x, 0.5 * scen.extent_y],   # at source
             [0.9 * scen.extent_x, 0.9 * scen.extent_y]]   # far away
        )
        q = initial_state(pts, scen)
        eta = q[:, 0] + q[:, 3]
        assert eta[0] == pytest.approx(scen.source_amplitude, rel=0.05)
        assert abs(eta[1]) < 1e-6
        assert (q[:, 1:3] == 0).all()

    def test_everything_wet(self, mesh):
        q = initial_state(mesh.cell_centroids())
        assert (q[:, 0] > 0).all()


class TestGeometry:
    def test_unit_normals(self, mesh):
        geom = edge_geometry(mesh)
        np.testing.assert_allclose(
            np.hypot(geom[:, 0], geom[:, 1]), 1.0, rtol=1e-12
        )

    def test_normals_point_cell0_to_cell1(self, mesh):
        geom = edge_geometry(mesh)
        e2c = mesh.map("edge2cell").values
        cent = mesh.cell_centroids()
        interior = geom[:, 3] < 0.5
        d = cent[e2c[:, 1]] - cent[e2c[:, 0]]
        dots = geom[:, 0] * d[:, 0] + geom[:, 1] * d[:, 1]
        assert (dots[interior] > 0).all()

    def test_areas_positive_sum_to_domain(self, mesh):
        scen = CoastalScenario()
        areas = cell_areas(mesh)
        assert (areas > 0).all()
        assert areas.sum() == pytest.approx(scen.extent_x * scen.extent_y)


class TestConservationAndBalance:
    def test_mass_exactly_conserved(self, mesh):
        sim = VolnaSim(mesh, dtype=np.float64, runtime=Runtime("vectorized"))
        m0 = sim.total_mass()
        sim.run(8)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-13)

    def test_lake_at_rest_is_steady(self, mesh):
        scen = CoastalScenario(source_amplitude=0.0)
        sim = VolnaSim(mesh, dtype=np.float64, scenario=scen,
                       runtime=Runtime("vectorized"))
        h0 = sim.q[:, 0].copy()
        sim.run(6)
        np.testing.assert_allclose(sim.q[:, 0], h0, atol=1e-9)
        assert np.abs(sim.q[:, 1:3]).max() < 1e-8

    def test_wave_propagates_outward(self, mesh):
        sim = VolnaSim(mesh, dtype=np.float64, runtime=Runtime("vectorized"))
        scen = sim.scenario
        cent = mesh.cell_centroids()
        src = np.array([scen.source_x * scen.extent_x,
                        scen.source_y * scen.extent_y])
        r = np.hypot(cent[:, 0] - src[0], cent[:, 1] - src[1])

        def wavefront_radius():
            eta = sim.q[:, 0] + sim.q[:, 3]
            significant = eta > 0.1 * scen.source_amplitude
            return r[significant].max() if significant.any() else 0.0

        r0 = wavefront_radius()
        sim.run(25)
        assert wavefront_radius() > r0

    def test_peak_amplitude_decays_in_deep_water(self, mesh):
        sim = VolnaSim(mesh, dtype=np.float64, runtime=Runtime("vectorized"))
        eta0 = sim.max_eta()
        sim.run(25)
        assert sim.max_eta() < eta0

    def test_dt_positive_and_cfl_scaled(self, mesh):
        sim = VolnaSim(mesh, dtype=np.float64, runtime=Runtime("vectorized"))
        dt = sim.step()
        assert dt > 0
        # dt should be on the order of CFL * min(edge)/sqrt(g*H).
        geom = edge_geometry(mesh)
        c = np.sqrt(9.81 * 3000.0)
        dt_scale = geom[:, 2].min() / c
        assert 0.05 * dt_scale < dt < 50 * dt_scale


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_step_equivalent_across_backends(self, mesh, backend, scheme,
                                             options):
        ref = VolnaSim(mesh, dtype=np.float64,
                       runtime=runtime_for("sequential", "two_level", {}, 48))
        ref.run(2)
        got = VolnaSim(mesh, dtype=np.float64,
                       runtime=runtime_for(backend, scheme, options, 48))
        got.run(2)
        np.testing.assert_allclose(got.q, ref.q, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(got.dt_history, ref.dt_history,
                                   rtol=1e-12)


class TestKernelForms:
    def test_scalar_vector_flux_agree(self, mesh, rng):
        ks = make_kernels()
        n = 20
        geom = np.zeros((n, 4))
        theta = rng.random(n) * 2 * np.pi
        geom[:, 0] = np.cos(theta)
        geom[:, 1] = np.sin(theta)
        geom[:, 2] = rng.random(n) + 0.5
        geom[:, 3] = (rng.random(n) > 0.7).astype(float)
        q0 = rng.random((n, 4)) * np.array([100, 20, 20, 0]) + \
            np.array([1, 0, 0, -100])
        q1 = rng.random((n, 4)) * np.array([100, 20, 20, 0]) + \
            np.array([1, 0, 0, -100])
        fs = np.zeros((n, 4))
        ss = np.zeros((n, 2))
        fv = np.zeros((n, 4))
        sv = np.zeros((n, 2))
        for i in range(n):
            ks["compute_flux"].scalar(geom[i], q0[i], q1[i], fs[i], ss[i])
        from repro.kernelc import compile_vector, kernel_ir

        compute_flux_vec = compile_vector(
            kernel_ir(ks["compute_flux"]), [True] * 5
        )
        compute_flux_vec(geom, q0, q1, fv, sv)
        np.testing.assert_allclose(fv, fs, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(sv, ss, rtol=1e-12)

    def test_dry_state_velocities_zeroed(self):
        from repro.apps.volna.kernels import _velocities

        u, v = _velocities(0.0, 5.0, -3.0)
        assert u == 0.0 and v == 0.0
        u, v = _velocities(2.0, 4.0, -2.0)
        assert u == 2.0 and v == -1.0

    def test_metadata_matches_table3(self):
        ks = make_kernels()
        assert ks["compute_flux"].info.flops == 154
        assert ks["numerical_flux"].info.flops == 9
        assert ks["space_disc"].info.flops == 23
        assert ks["RK_1"].info.flops == 12
        assert ks["RK_2"].info.flops == 16
        assert ks["sim_1"].info.flops == 0


class TestPrecision:
    def test_single_precision_stable(self, mesh):
        sim = VolnaSim(mesh, dtype=np.float32, runtime=Runtime("vectorized"))
        sim.run(10)
        assert sim.q.dtype == np.float32
        assert np.isfinite(sim.q).all()
        assert (sim.q[:, 0] >= 0).all()
