"""Tests for the benchmark harness and generators."""

import json

import pytest

from repro.bench import (
    ALL_FIGURES,
    ALL_TABLES,
    FigureSeries,
    ReportTable,
    measured_speedups,
    phi_tuning_time,
    time_app,
)


class TestReportTable:
    def test_render_alignment(self):
        t = ReportTable("demo")
        t.add(a=1, b="xy")
        t.add(a=22, b="z")
        text = t.render()
        assert "== demo ==" in text
        lines = text.splitlines()
        assert len({len(l) for l in lines[1:4]}) <= 2  # aligned columns

    def test_float_formatting(self):
        t = ReportTable("fmt")
        t.add(v=1234.5678)
        t.add(v=12.345)
        t.add(v=1.2345)
        t.add(v=0.0)
        text = t.render()
        assert "1235" in text and "12.3" in text and "1.23" in text

    def test_save_writes_txt_and_json(self, tmp_path):
        t = ReportTable("demo")
        t.add(x=1)
        t.note("a note")
        path = t.save("demo", tmp_path)
        assert path.read_text().startswith("== demo ==")
        blob = json.loads((tmp_path / "demo.json").read_text())
        assert blob["rows"] == [{"x": 1}]
        assert blob["notes"] == ["a note"]

    def test_row_for_and_column(self):
        t = ReportTable("demo")
        t.add(k="a", v=1)
        t.add(k="b", v=2)
        assert t.row_for("k", "b")["v"] == 2
        assert t.column("v") == [1, 2]
        with pytest.raises(KeyError):
            t.row_for("k", "c")

    def test_empty_render(self):
        assert "(no rows)" in ReportTable("empty").render()


class TestFigureSeries:
    def test_series_length_validation(self):
        f = FigureSeries("fig", "x", ["a", "b"])
        f.add_series("s", [1.0, 2.0])
        with pytest.raises(ValueError):
            f.add_series("bad", [1.0])

    def test_save_roundtrip(self, tmp_path):
        f = FigureSeries("fig", "x", ["a", "b"])
        f.add_series("s", [1.0, 2.0])
        f.note("hello")
        f.save("fig", tmp_path)
        blob = json.loads((tmp_path / "fig.json").read_text())
        assert blob["series"]["s"] == [1.0, 2.0]
        assert "hello" in (tmp_path / "fig.txt").read_text()


class TestGenerators:
    def test_registries_complete(self):
        assert set(ALL_TABLES) == {f"table{i}" for i in range(1, 10)}
        assert set(ALL_FIGURES) == {
            "figure5", "figure6", "figure7", "figure8a", "figure8b",
            "figure9",
        }

    def test_every_generator_produces_rows(self):
        for name, gen in ALL_TABLES.items():
            t = gen()
            assert t.rows, name
        for name, gen in ALL_FIGURES.items():
            f = gen()
            assert f.series and f.x, name

    def test_phi_tuning_surface_properties(self):
        base = 30.0
        best = phi_tuning_time(base, 12, 20, 1024)
        assert best >= base
        # Extreme splits are worse than the middling one.
        assert phi_tuning_time(base, 1, 240, 1024) > best
        assert phi_tuning_time(base, 60, 4, 256) > best


class TestMeasured:
    def test_time_app_runs(self):
        from repro.mesh import make_airfoil_mesh

        dt = time_app(
            "airfoil", "vectorized", "two_level", {},
            mesh=make_airfoil_mesh(8, 4), steps=1,
        )
        assert dt > 0

    def test_time_app_volna(self):
        from repro.mesh import make_tri_mesh

        dt = time_app(
            "volna", "vectorized", "two_level", {},
            mesh=make_tri_mesh(6, 4, 100_000.0, 75_000.0), steps=1,
        )
        assert dt > 0

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            time_app("weather", "vectorized", "two_level", {})

    def test_measured_speedups_table(self):
        from repro.mesh import make_airfoil_mesh

        configs = {
            "scalar (sequential)": ("sequential", "two_level", {}),
            "vectorized": ("vectorized", "two_level", {}),
        }
        t = measured_speedups(
            "airfoil", mesh=make_airfoil_mesh(8, 4), steps=1,
            configs=configs,
        )
        assert len(t.rows) == 2
        # Vectorized decisively faster even on a tiny mesh.
        assert t.rows[1]["speedup"] > 1.0
