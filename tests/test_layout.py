"""Layout and caching subsystem tests.

Three properties pin the new execution engine down:

1. **Layout transparency** — every backend produces results identical to
   the sequential/AoS reference under both ``aos`` and ``soa`` storage
   (the logical ``Dat.data`` view hides the physical order).
2. **Whole-color batching equivalence** — the mega-batch fast path is
   bitwise identical to chunked execution (phases preserve chunked
   element order; see core/plan.py).
3. **Cache coherence** — warm plan/loop/gather-index caches return
   exactly what cold planning computes.
"""

import numpy as np
import pytest

from repro.apps.airfoil import AirfoilSim
from repro.core import (
    INC,
    READ,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    dat_layout,
    get_default_layout,
    kernel,
    make_backend,
    par_loop,
    set_default_layout,
)
from repro.core.access import IDX_ID
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX, runtime_for


# ----------------------------------------------------------------------
# Dat layout mechanics.
# ----------------------------------------------------------------------
class TestDatLayout:
    def test_soa_storage_is_transposed_contiguous(self):
        s = Set(10, "s")
        vals = np.arange(30.0).reshape(10, 3)
        d = Dat(s, 3, vals, layout="soa")
        assert d.layout == "soa"
        assert d.storage.shape == (3, 10)
        assert d.storage.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(d.data, vals)
        # The logical view aliases the storage.
        d.data[4, 1] = -7.0
        assert d.storage[1, 4] == -7.0

    def test_aos_default_unchanged(self):
        s = Set(5, "s")
        d = Dat(s, 2)
        assert d.layout == "aos"
        assert d.data is d.storage

    def test_gather_scatter_2d_index_matches_aos(self):
        """Vector (IDX_ALL) args scatter with (chunk, arity) indices —
        the SoA path must swap only the component axis, not reverse all
        axes (regression: .T wrote transposed rows / shape-mismatched)."""
        idx = np.array([[0, 3], [5, 1], [2, 7]])       # (chunk=3, arity=2)
        vals = np.arange(24.0).reshape(3, 2, 4)        # (chunk, arity, dim)
        results = {}
        for layout in LAYOUT_MATRIX:
            d = Dat(Set(8, "s"), 4, np.arange(32.0), layout=layout)
            np.testing.assert_array_equal(d.gather(idx), d.data[idx])
            d.scatter(idx, vals)
            results[layout] = np.array(d.data)
        np.testing.assert_array_equal(results["soa"], results["aos"])
        np.testing.assert_array_equal(results["aos"][3], vals[0, 1])

    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    @pytest.mark.parametrize("scheme", ["full_permute", "block_permute"])
    def test_vector_write_arg_layout_equivalence(self, layout, scheme):
        """End-to-end: an IDX_ALL WRITE argument through the batched
        backend under both layouts (the scatter path the 2-D index
        regression above guards)."""
        from repro.core import IDX_ALL, WRITE

        @kernel("stamp_nodes", flops=1)
        def stamp_nodes(w, xs):
            xs[:, 0] = w[0]
            xs[:, 1] = -w[0]

        @stamp_nodes.vectorized
        def stamp_nodes_vec(w, xs):
            xs[:, :, 0] = w[:, 0][:, None]
            xs[:, :, 1] = -w[:, 0][:, None]

        def run(backend, scheme_, layout_):
            n = 12
            nodes = Set(2 * n, "nodes")
            elems = Set(n, "elems")
            conn = np.arange(2 * n).reshape(n, 2)      # disjoint targets
            m = Map(elems, nodes, 2, conn, "m")
            with dat_layout(layout_):
                w = Dat(elems, 1, np.arange(n, dtype=float).reshape(-1, 1))
                x = Dat(nodes, 2)
            rt = runtime_for(backend, scheme_, {}, block_size=4,
                             layout=layout_)
            par_loop(
                stamp_nodes, elems,
                arg_dat(w, IDX_ID, None, READ),
                arg_dat(x, IDX_ALL, m, WRITE),
                runtime=rt,
            )
            return np.array(x.data)

        ref = run("sequential", "two_level", "aos")
        got = run("vectorized", scheme, layout)
        np.testing.assert_array_equal(got, ref)

    def test_gather_scatter_roundtrip(self):
        s = Set(8, "s")
        for layout in LAYOUT_MATRIX:
            d = Dat(s, 2, np.arange(16.0), layout=layout)
            idx = np.array([5, 0, 3])
            g = d.gather(idx)
            np.testing.assert_array_equal(g, d.data[idx])
            d.scatter(idx, g * 2.0)
            np.testing.assert_array_equal(d.data[idx], g * 2.0)
            d.scatter_add(np.array([1, 1]), np.ones((2, 2)), serialize=True)
            np.testing.assert_array_equal(d.data[1], [4.0, 5.0])

    def test_soa_copy_and_roundtrip_preserve_layout(self):
        s = Set(6, "s")
        d = Dat(s, 4, np.arange(24.0), layout="soa")
        c = d.copy()
        assert c.layout == "soa"
        np.testing.assert_array_equal(c.data, d.data)
        soa = d.soa()
        assert soa.shape == (4, 6)
        soa *= 3.0
        d.from_soa(soa)
        np.testing.assert_array_equal(d.data, np.arange(24.0).reshape(6, 4) * 3.0)

    def test_default_layout_context(self):
        s = Set(3, "s")
        assert get_default_layout() == "aos"
        with dat_layout("soa"):
            assert Dat(s, 1).layout == "soa"
            with dat_layout(None):  # no-op passthrough
                assert Dat(s, 1).layout == "soa"
        assert Dat(s, 1).layout == "aos"
        previous = set_default_layout("soa")
        try:
            assert previous == "aos" and Dat(s, 1).layout == "soa"
        finally:
            set_default_layout(previous)

    def test_invalid_layout_rejected(self):
        s = Set(3, "s")
        with pytest.raises(ValueError, match="layout"):
            Dat(s, 1, layout="csr")
        with pytest.raises(ValueError, match="layout"):
            Runtime("sequential", layout="csr")


# ----------------------------------------------------------------------
# Backend equivalence across layouts.
# ----------------------------------------------------------------------
@kernel("flux_inc", flops=4)
def flux_inc(w, x0, x1, a0, a1):
    f = w[0] * (x0[0] - x1[0])
    a0[0] += f
    a1[0] -= f
    a0[1] += w[1]
    a1[1] -= w[1]


@flux_inc.vectorized
def flux_inc_vec(w, x0, x1, a0, a1):
    f = w[:, 0] * (x0[:, 0] - x1[:, 0])
    a0[:, 0] += f
    a1[:, 0] -= f
    a0[:, 1] += w[:, 1]
    a1[:, 1] -= w[:, 1]


def run_ring(backend, scheme, options, layout):
    rng = np.random.default_rng(7)
    n = 41
    nodes = Set(n, "nodes")
    edges = Set(n, "edges")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2n = Map(edges, nodes, 2, conn, "e2n")
    with dat_layout(layout):
        w = Dat(edges, 2, rng.standard_normal((n, 2)), name="w")
        x = Dat(nodes, 2, rng.standard_normal((n, 2)), name="x")
        acc = Dat(nodes, 2, name="acc")
    rt = runtime_for(backend, scheme, options, block_size=8, layout=layout)
    par_loop(
        flux_inc, edges,
        arg_dat(w, IDX_ID, None, READ),
        arg_dat(x, 0, e2n, READ),
        arg_dat(x, 1, e2n, READ),
        arg_dat(acc, 0, e2n, INC),
        arg_dat(acc, 1, e2n, INC),
        runtime=rt,
    )
    return np.array(acc.data)


class TestLayoutEquivalence:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    def test_matches_sequential_aos(self, backend, scheme, options, layout):
        ref = run_ring("sequential", "two_level", {}, "aos")
        got = run_ring(backend, scheme, options, layout)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    def test_airfoil_step_layout_equivalence(self, layout):
        mesh_args = (16, 8)
        from repro.mesh import make_airfoil_mesh

        ref_sim = AirfoilSim(
            make_airfoil_mesh(*mesh_args),
            runtime=Runtime("sequential", layout="aos"),
        )
        ref_sim.run(2)
        sim = AirfoilSim(
            make_airfoil_mesh(*mesh_args),
            runtime=Runtime("vectorized", layout=layout),
        )
        sim.run(2)
        assert sim.state.p_q.layout == layout
        np.testing.assert_allclose(
            sim.state.p_q.data, ref_sim.state.p_q.data, rtol=1e-10, atol=1e-12
        )


# ----------------------------------------------------------------------
# Whole-color batching vs chunked execution.
# ----------------------------------------------------------------------
class TestWholeColorBatching:
    @pytest.mark.parametrize(
        "scheme", ["two_level", "full_permute", "block_permute"]
    )
    def test_bitwise_identical_to_chunked(self, scheme):
        batched = run_ring("vectorized", scheme, {}, "aos")
        chunked = run_ring("vectorized", scheme, {"batch": "chunk"}, "aos")
        # Phases preserve the chunked element order, so the fast path is
        # not merely close — it is bitwise identical.
        np.testing.assert_array_equal(batched, chunked)

    def test_batch_mode_validation(self):
        with pytest.raises(ValueError, match="batch"):
            make_backend("vectorized", batch="mega")
        with pytest.raises(ValueError, match="vec=None"):
            make_backend("vectorized", vec=8, batch="color")

    def test_phase_index_cache_reused_across_steps(self):
        rt = Runtime("vectorized", block_size=64)
        from repro.mesh import make_airfoil_mesh

        # Eager mode: every step consults the phase index cache anew.
        sim = AirfoilSim(make_airfoil_mesh(16, 8), runtime=rt, chained=False)
        sim.step()
        plans = list(rt.plans._plans.values())
        stats_after_one = {
            id(p): dict(p.gather_stats) for p in plans if p.gather_stats
        }
        assert stats_after_one, "expected gather-index caches to populate"
        sim.step()
        for p in plans:
            if id(p) in stats_after_one:
                # Second step must hit the cache, never rebuild.
                assert p.gather_stats.get("misses", 0) == \
                    stats_after_one[id(p)].get("misses", 0)
                assert p.gather_stats.get("hits", 0) > \
                    stats_after_one[id(p)].get("hits", 0)

    def test_phase_index_cache_not_rebuilt_by_chained_replay(self):
        # Chained mode binds the gather indices once at replay-program
        # preparation; subsequent steps must not even *look up* the
        # index cache, let alone rebuild it.
        rt = Runtime("vectorized", block_size=64)
        from repro.mesh import make_airfoil_mesh

        sim = AirfoilSim(make_airfoil_mesh(16, 8), runtime=rt, chained=True)
        sim.step()
        plans = list(rt.plans._plans.values())
        misses_after_one = {
            id(p): p.gather_stats.get("misses", 0) for p in plans
        }
        hits_after_one = {id(p): p.gather_stats.get("hits", 0) for p in plans}
        sim.run(2)
        for p in plans:
            assert p.gather_stats.get("misses", 0) == misses_after_one[id(p)]
            assert p.gather_stats.get("hits", 0) == hits_after_one[id(p)]


@kernel("flux_inc_single", flops=1)
def flux_inc_single(w, a0):
    a0[0] += w[0]


@flux_inc_single.vectorized
def flux_inc_single_vec(w, a0):
    a0[:, 0] += w[:, 0]


# ----------------------------------------------------------------------
# Plan / loop cache regression: warm caches == cold planning.
# ----------------------------------------------------------------------
class TestCacheCoherence:
    def test_warm_cache_matches_cold_planning(self):
        from repro.mesh import make_airfoil_mesh

        warm_rt = Runtime("vectorized")
        warm = AirfoilSim(make_airfoil_mesh(16, 8), runtime=warm_rt)
        warm.run(3)
        assert warm_rt.loop_cache_hits > 0

        cold_rt = Runtime("vectorized")
        cold = AirfoilSim(make_airfoil_mesh(16, 8), runtime=cold_rt)
        for _ in range(3):
            cold_rt.clear_caches()
            cold.step()
        np.testing.assert_array_equal(
            warm.state.p_q.data, cold.state.p_q.data
        )

    def test_loop_cache_bounded_with_scratch_dats(self):
        """Allocating a fresh Dat per step must not grow the loop cache:
        the call-site key deliberately excludes Dat identity (plans never
        depend on which Dat flows through the access structure)."""
        n = 16
        nodes = Set(n, "nodes")
        edges = Set(n, "edges")
        conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
        e2n = Map(edges, nodes, 2, conn, "e2n")
        w = Dat(edges, 1, np.ones((n, 1)), name="w")
        rt = Runtime("vectorized", block_size=8)
        for _ in range(5):
            scratch = Dat(nodes, 1, name="scratch")
            par_loop(
                flux_inc_single, edges,
                arg_dat(w, IDX_ID, None, READ),
                arg_dat(scratch, 0, e2n, INC),
                runtime=rt,
            )
        assert len(rt._loop_plans) == 1
        assert rt.loop_cache_hits == 4

    def test_clear_caches_resets_counters(self):
        rt = Runtime("vectorized")
        from repro.mesh import make_airfoil_mesh

        sim = AirfoilSim(make_airfoil_mesh(16, 8), runtime=rt)
        sim.step()
        assert rt.cache_stats()["plans"] > 0
        rt.clear_caches()
        stats = rt.cache_stats()
        assert stats == {
            "loop_hits": 0, "loop_misses": 0,
            "plan_hits": 0, "plan_misses": 0, "plans": 0,
        }
