"""Tests for execution-plan construction and caching."""

import numpy as np
import pytest

from repro.core import (
    INC,
    READ,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    build_plan,
    par_loop,
    plan_signature,
)
from repro.core.kernel import Kernel
from repro.core.plan import SCHEMES, PlanCache


def grid_loop(n=30, seed=2):
    rng = np.random.default_rng(seed)
    nodes = Set(n, "nodes")
    elems = Set(2 * n, "elems")
    conn = rng.integers(0, n, size=(2 * n, 2))
    m = Map(elems, nodes, 2, conn, "m")
    d = Dat(nodes, 1)
    w = Dat(elems, 1)
    args = [
        arg_dat(w, -1, None, READ),
        arg_dat(d, 0, m, INC),
        arg_dat(d, 1, m, INC),
    ]
    return elems, args, m


class TestBuildPlan:
    def test_direct_plan_trivial(self):
        s = Set(10, "s")
        d = Dat(s, 1)
        plan = build_plan(s, [arg_dat(d, -1, None, READ)], block_size=4)
        assert plan.is_direct
        assert plan.n_block_colors == 1
        assert plan.max_elem_colors() == 1

    def test_indirect_read_is_direct_plan(self):
        elems, args, m = grid_loop()
        read_only = [args[0],
                     arg_dat(args[1].dat, 0, m, READ),
                     arg_dat(args[1].dat, 1, m, READ)]
        plan = build_plan(elems, read_only, block_size=8)
        assert plan.is_direct

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_schemes_populate_right_fields(self, scheme):
        elems, args, _ = grid_loop()
        plan = build_plan(elems, args, block_size=8, scheme=scheme)
        assert not plan.is_direct
        if scheme == "two_level":
            assert plan.elem_colors is not None
            assert plan.permutation is None
        elif scheme == "full_permute":
            assert plan.permutation is not None
            assert sorted(plan.permutation.order.tolist()) == list(
                range(elems.size)
            )
        else:
            assert plan.block_permutation is not None

    def test_block_colors_disjoint_targets(self):
        elems, args, m = grid_loop()
        plan = build_plan(elems, args, block_size=8)
        for blocks in plan.blocks_by_color:
            seen = set()
            for b in blocks:
                lo, hi = plan.layout.block_range(int(b))
                tgts = set(m.values[lo:hi].reshape(-1).tolist())
                assert not (seen & tgts)
                seen |= tgts

    def test_unknown_scheme_rejected(self):
        elems, args, _ = grid_loop()
        with pytest.raises(ValueError):
            build_plan(elems, args, scheme="rainbow")

    def test_plan_covers_exec_halo(self):
        nodes = Set(6, "nodes")
        elems = Set(4, "elems", exec_size=2)
        conn = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]])
        m = Map(elems, nodes, 2, conn, "m")
        d = Dat(nodes, 1)
        plan = build_plan(
            elems, [arg_dat(d, 0, m, INC), arg_dat(d, 1, m, INC)],
            block_size=3,
        )
        assert plan.layout.n_elements == 6  # owned + exec halo


class TestPlanSignatureAndCache:
    def test_signature_ignores_reads(self):
        elems, args, m = grid_loop()
        extra_read = arg_dat(args[1].dat, 0, m, READ)
        s1 = plan_signature(elems, args, 8, "two_level")
        s2 = plan_signature(elems, args + [extra_read], 8, "two_level")
        assert s1 == s2

    def test_signature_sensitive_to_racing_slot(self):
        elems, args, m = grid_loop()
        s1 = plan_signature(elems, args, 8, "two_level")
        s2 = plan_signature(elems, args[:2], 8, "two_level")  # one INC slot
        assert s1 != s2

    def test_signature_sensitive_to_block_size_and_scheme(self):
        elems, args, _ = grid_loop()
        sigs = {
            plan_signature(elems, args, bs, sch)
            for bs in (8, 16)
            for sch in ("two_level", "full_permute")
        }
        assert len(sigs) == 4

    def test_cache_hits(self):
        elems, args, _ = grid_loop()
        cache = PlanCache()
        p1 = cache.get(elems, args, 8, "two_level")
        p2 = cache.get(elems, args, 8, "two_level")
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1
        cache.get(elems, args, 16, "two_level")
        assert cache.misses == 2
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_runtime_reuses_plans_across_loops(self):
        elems, args, _ = grid_loop()
        rt = Runtime(backend="vectorized", block_size=8)

        def k(w, a0, a1):
            a0[0] += w[0]
            a1[0] += w[0]

        def kv(w, a0, a1):
            a0[:, 0] += w[:, 0]
            a1[:, 0] += w[:, 0]

        kern = Kernel("k", k, kv)
        par_loop(kern, elems, *args, runtime=rt)
        par_loop(kern, elems, *args, runtime=rt)
        # The repeated call site is answered by the loop cache; the
        # structural PlanCache built the plan exactly once.
        assert rt.loop_cache_hits == 1 and rt.loop_cache_misses == 1
        assert rt.plans.misses == 1 and len(rt.plans) == 1

    def test_loop_cache_shares_structural_plans(self):
        """Two kernels with the same racing structure share one plan."""
        elems, args, _ = grid_loop()
        rt = Runtime(backend="vectorized", block_size=8)

        def k(w, a0, a1):
            a0[0] += w[0]
            a1[0] += w[0]

        def kv(w, a0, a1):
            a0[:, 0] += w[:, 0]
            a1[:, 0] += w[:, 0]

        par_loop(Kernel("k1", k, kv), elems, *args, runtime=rt)
        par_loop(Kernel("k2", k, kv), elems, *args, runtime=rt)
        # Distinct call sites -> two loop-cache entries, but the second
        # falls through to a structural PlanCache hit (shared coloring).
        assert rt.loop_cache_misses == 2
        assert rt.plans.hits == 1 and len(rt.plans) == 1


class TestPlanOverride:
    def test_explicit_plan_used(self):
        elems, args, _ = grid_loop()
        plan = build_plan(elems, args, block_size=4, scheme="full_permute")
        rt = Runtime(backend="vectorized", block_size=999, scheme="two_level")

        def k(w, a0, a1):
            a0[0] += w[0]
            a1[0] += w[0]

        def kv(w, a0, a1):
            a0[:, 0] += w[:, 0]
            a1[:, 0] += w[:, 0]

        par_loop(Kernel("k", k, kv), elems, *args, runtime=rt, plan=plan)
        assert rt.plans.misses == 0  # cache bypassed
