"""Sparse-tiling inspector/executor: equivalence, coverage, coloring.

The central contract mirrors the chain suite's: tiled execution is
**bitwise identical** to eager execution — swept over the full
backend × scheme × layout matrix for Airfoil, plus Volna.  Around it:
inspector structure (segments, barriers, monotone cuts), the
exactly-once coverage and conflict-free tile-coloring properties
(randomized via hypothesis), cross-loop dependency ordering, the tiled
chain-cache entry kind, executor fallbacks, and tile-local mesh
renumbering.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    INC,
    READ,
    WRITE,
    Dat,
    Global,
    IDX_ID,
    Map,
    Runtime,
    Set,
    arg_dat,
    arg_gbl,
    kernel,
    par_loop,
)
from repro.coloring import is_valid_tile_coloring
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX, runtime_for
from repro.tiling import (
    TiledSegment,
    auto_tile_size,
    barrier_reason,
    check_tiling,
    segment_written_rows,
)


# ----------------------------------------------------------------------
# Toy problem and kernels
# ----------------------------------------------------------------------
@kernel("tile_scale", flops=1)
def tile_scale(w, s):
    s[0] = 2.0 * w[0]


@tile_scale.vectorized
def tile_scale_vec(w, s):
    s[:, 0] = 2.0 * w[:, 0]


@kernel("tile_spmv", flops=2)
def tile_spmv(s, r0, r1):
    r0[0] += s[0]
    r1[0] += s[0]


@tile_spmv.vectorized
def tile_spmv_vec(s, r0, r1):
    r0[:, 0] += s[:, 0]
    r1[:, 0] += s[:, 0]


@kernel("tile_norm", flops=1)
def tile_norm(r, out):
    out[0] = r[0] * r[0]


@tile_norm.vectorized
def tile_norm_vec(r, out):
    out[:, 0] = r[:, 0] * r[:, 0]


def ring_problem(n=60, seed=7):
    nodes = Set(n, "nodes")
    edges = Set(n, "edges")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2n = Map(edges, nodes, 2, conn, "e2n")
    w = Dat(edges, 1, np.random.default_rng(seed).random(n), name="w")
    s = Dat(edges, 1, name="s")
    r = Dat(nodes, 1, name="r")
    out = Dat(nodes, 1, name="out")
    return nodes, edges, e2n, w, s, r, out


def ring_chain_schedule(rt, tiling, n=60):
    """Record the scale → spmv → norm ring chain tiled; return
    (runtime, compiled chain, dats)."""
    nodes, edges, e2n, w, s, r, out = ring_problem(n)
    with rt.chain(tiling=tiling):
        par_loop(tile_scale, edges,
                 arg_dat(w, IDX_ID, None, READ),
                 arg_dat(s, IDX_ID, None, WRITE), runtime=rt)
        par_loop(tile_spmv, edges,
                 arg_dat(s, IDX_ID, None, READ),
                 arg_dat(r, 0, e2n, INC),
                 arg_dat(r, 1, e2n, INC), runtime=rt)
        par_loop(tile_norm, nodes,
                 arg_dat(r, IDX_ID, None, READ),
                 arg_dat(out, IDX_ID, None, WRITE), runtime=rt)
    compiled = next(iter(rt._chains.values()))
    return compiled, (w, s, r, out)


# ----------------------------------------------------------------------
# Tiled == eager, bitwise, across the whole matrix
# ----------------------------------------------------------------------
class TestTiledEagerEquivalence:
    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    @pytest.mark.parametrize("name,scheme,options", BACKEND_MATRIX)
    def test_airfoil_three_steps_bitwise(self, name, scheme, options, layout):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        eager = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=runtime_for(name, scheme, options, layout=layout),
            chained=False,
        )
        tiled = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=runtime_for(name, scheme, options, layout=layout),
            chained=True, tiling=40,
        )
        eager.run(3)
        tiled.run(3)
        for field in ("p_q", "p_qold", "p_adt", "p_res"):
            a = getattr(eager.state, field).data
            b = getattr(tiled.state, field).data
            assert np.array_equal(a, b), (
                f"{field} diverged on {name}/{scheme}/{layout}"
            )
        assert eager.rms_history == tiled.rms_history

    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    def test_volna_three_steps_bitwise(self, layout):
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_tri_mesh

        eager = VolnaSim(
            make_tri_mesh(10, 8), dtype=np.float64,
            runtime=runtime_for("vectorized", "two_level", {}, layout=layout),
            chained=False,
        )
        tiled = VolnaSim(
            make_tri_mesh(10, 8), dtype=np.float64,
            runtime=runtime_for("vectorized", "two_level", {}, layout=layout),
            chained=True, tiling=32,
        )
        eager.run(3)
        tiled.run(3)
        assert np.array_equal(eager.state.q.data, tiled.state.q.data)
        assert np.array_equal(eager.state.rhs.data, tiled.state.rhs.data)
        assert eager.dt_history == tiled.dt_history

    def test_auto_tiling_smoke(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        eager = AirfoilSim(
            make_airfoil_mesh(10, 5),
            runtime=Runtime("vectorized", block_size=32), chained=False,
        )
        tiled = AirfoilSim(
            make_airfoil_mesh(10, 5),
            runtime=Runtime("vectorized", block_size=32),
            chained=True, tiling="auto",
        )
        eager.run(2)
        tiled.run(2)
        assert np.array_equal(eager.state.p_q.data, tiled.state.p_q.data)

    def test_chunked_vectorized_falls_back_identically(self):
        """vec=8 (chunked mode) cannot slice; tiled must still match."""
        from repro.apps.airfoil import AirfoilSim
        from repro.core import make_backend
        from repro.mesh import make_airfoil_mesh

        eager = AirfoilSim(
            make_airfoil_mesh(10, 5),
            runtime=Runtime(make_backend("vectorized", vec=8), block_size=32),
            chained=False,
        )
        tiled = AirfoilSim(
            make_airfoil_mesh(10, 5),
            runtime=Runtime(make_backend("vectorized", vec=8), block_size=32),
            chained=True, tiling=40,
        )
        eager.run(2)
        tiled.run(2)
        assert np.array_equal(eager.state.p_q.data, tiled.state.p_q.data)

    def test_tiled_matches_fused_chained(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        fused = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=Runtime("vectorized", block_size=32), chained=True,
        )
        tiled = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=Runtime("vectorized", block_size=32),
            chained=True, tiling=64,
        )
        fused.run(3)
        tiled.run(3)
        assert np.array_equal(fused.state.p_q.data, tiled.state.p_q.data)
        assert fused.rms_history == tiled.rms_history


# ----------------------------------------------------------------------
# Inspector structure
# ----------------------------------------------------------------------
class TestInspector:
    def test_check_tiling_validates(self):
        assert check_tiling(None) is None
        assert check_tiling("auto") == "auto"
        assert check_tiling(128) == 128
        with pytest.raises(ValueError, match="tile size"):
            check_tiling(0)

    def test_airfoil_schedule_shape(self):
        """One airfoil step: [save, adt, res, bres] | update | [adt,
        res, bres] | update — global-reduction updates are barriers."""
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("vectorized", block_size=32)
        sim = AirfoilSim(make_airfoil_mesh(12, 6), runtime=rt,
                         chained=True, tiling=48)
        sim.step()
        compiled = next(iter(rt._chains.values()))
        sched = compiled.tiled
        kinds = [
            "seg" if isinstance(p, TiledSegment) else p.reason
            for p in sched.parts
        ]
        assert kinds == ["seg", "global-reduction", "seg",
                         "global-reduction"]
        assert [len(p.loop_indices) for p in sched.segments] == [4, 3]
        assert all(ok for ok in sched.covers_exactly_once().values())

    def test_monotone_contiguous_cuts(self):
        rt = Runtime("vectorized", block_size=16)
        compiled, _ = ring_chain_schedule(rt, tiling=16)
        sched = compiled.tiled
        assert len(sched.segments) == 1
        seg = sched.segments[0]
        assert seg.n_tiles == 4  # 60 edges / 16
        for sl in seg.slices:
            assert int(sl.cuts[0]) == 0
            assert int(sl.cuts[-1]) == sl.order.size
            assert np.all(np.diff(sl.cuts) >= 0)
            # Concatenating tile slices reproduces the eager order.
            cat = np.concatenate(
                [sl.tile_elems(t) for t in range(seg.n_tiles)]
            )
            assert np.array_equal(cat, sl.order)

    def test_cross_loop_dependencies_respected(self):
        """Semantic ordering property: if an earlier loop touches a row
        in tile t, any later loop's iteration touching that row sits in
        a tile >= t."""
        rt = Runtime("vectorized", block_size=16)
        compiled, _ = ring_chain_schedule(rt, tiling=16)
        seg = compiled.tiled.segments[0]
        loops = compiled.loops

        def rows_of(arg, elems):
            if arg.is_direct:
                return elems.reshape(-1, 1)
            if arg.is_vector:
                return arg.map.values[elems]
            return arg.map.values[elems, arg.index].reshape(-1, 1)

        last = {}
        for j, k in enumerate(seg.loop_indices):
            bl = loops[k]
            for t in range(seg.n_tiles):
                elems = seg.slices[j].tile_elems(t)
                if not elems.size:
                    continue
                for arg in bl.args:
                    if arg.is_global:
                        continue
                    for row in np.unique(rows_of(arg, elems)):
                        key = (arg.dat._uid, int(row))
                        prev = last.get(key, -1)
                        assert t >= prev, (
                            f"loop {k} tile {t} touches row {key} last "
                            f"touched in tile {prev}"
                        )
            # Update after the whole loop (constraints are cross-loop).
            for t in range(seg.n_tiles):
                elems = seg.slices[j].tile_elems(t)
                if not elems.size:
                    continue
                for arg in bl.args:
                    if arg.is_global:
                        continue
                    for row in np.unique(rows_of(arg, elems)):
                        key = (arg.dat._uid, int(row))
                        last[key] = max(last.get(key, -1), t)

    def test_tile_colors_conflict_free(self):
        rt = Runtime("vectorized", block_size=16)
        compiled, _ = ring_chain_schedule(rt, tiling=16)
        seg = compiled.tiled.segments[0]
        rows = segment_written_rows(compiled.loops, seg)
        assert seg.tile_colors.shape == (seg.n_tiles,)
        assert seg.n_tile_colors >= 1
        assert is_valid_tile_coloring(seg.tile_colors, rows)
        # A ring's neighbouring tiles share written nodes: > 1 color.
        assert seg.n_tile_colors > 1

    def test_barrier_reasons(self):
        nodes, edges, e2n, w, s, r, out = ring_problem()
        g = Global(1, name="g")

        class FakeLoop:
            def __init__(self, args):
                self.args = tuple(args)

        assert barrier_reason(FakeLoop([arg_gbl(g, INC)])) == (
            "global-reduction"
        )
        # Indirect INC + direct READ of the same Dat.
        rd = Dat(nodes, 1, name="rd")
        assert barrier_reason(FakeLoop([
            arg_dat(rd, 0, e2n, INC),
            arg_dat(rd, IDX_ID, None, READ),
        ])) == "indirect-write-and-read"
        # Plain sliceable loop.
        assert barrier_reason(FakeLoop([
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(r, 0, e2n, INC),
            arg_dat(r, 1, e2n, INC),
        ])) is None

    def test_singleton_segment_becomes_barrier(self):
        nodes, edges, e2n, w, s, r, out = ring_problem()
        rt = Runtime("vectorized", block_size=16)
        with rt.chain(tiling=16):
            par_loop(tile_scale, edges,
                     arg_dat(w, IDX_ID, None, READ),
                     arg_dat(s, IDX_ID, None, WRITE), runtime=rt)
        compiled = next(iter(rt._chains.values()))
        assert [p.reason for p in compiled.tiled.parts] == [
            "singleton-segment"
        ]

    def test_auto_tile_size_scales_with_data(self):
        rt = Runtime("vectorized", block_size=16)
        compiled, _ = ring_chain_schedule(rt, tiling=16)
        size = auto_tile_size(compiled.loops)
        assert size >= 256


# ----------------------------------------------------------------------
# Property-based: exactly-once coverage and valid colors on random meshes
# ----------------------------------------------------------------------
class TestInspectorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=120),
        tile_size=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_every_iteration_exactly_once_and_colors_valid(
        self, n, tile_size, seed
    ):
        """For random ring meshes and tile sizes, every iteration of
        every sliced loop executes exactly once across all tiles, and
        the tile coloring is conflict-free."""
        rng = np.random.default_rng(seed)
        nodes = Set(n, "pnodes")
        edges = Set(n, "pedges")
        conn = np.stack(
            [rng.permutation(n), (rng.permutation(n))], axis=1
        )
        e2n = Map(edges, nodes, 2, conn, "pe2n")
        w = Dat(edges, 1, rng.random(n), name="pw")
        s = Dat(edges, 1, name="ps")
        r = Dat(nodes, 1, name="pr")
        out = Dat(nodes, 1, name="pout")
        rt = Runtime("vectorized", block_size=16)
        with rt.chain(tiling=tile_size):
            par_loop(tile_scale, edges,
                     arg_dat(w, IDX_ID, None, READ),
                     arg_dat(s, IDX_ID, None, WRITE), runtime=rt)
            par_loop(tile_spmv, edges,
                     arg_dat(s, IDX_ID, None, READ),
                     arg_dat(r, 0, e2n, INC),
                     arg_dat(r, 1, e2n, INC), runtime=rt)
            par_loop(tile_norm, nodes,
                     arg_dat(r, IDX_ID, None, READ),
                     arg_dat(out, IDX_ID, None, WRITE), runtime=rt)
        compiled = next(iter(rt._chains.values()))
        sched = compiled.tiled
        for seg in sched.segments:
            for j, k in enumerate(seg.loop_indices):
                bl = compiled.loops[k]
                sl = seg.slices[j]
                cat = np.concatenate(
                    [sl.tile_elems(t) for t in range(seg.n_tiles)]
                )
                # Exactly once: the concatenation is a permutation of
                # the loop's range...
                assert np.array_equal(
                    np.sort(cat), np.arange(bl.start, bl.n)
                )
                # ...and in the loop's eager order.
                assert np.array_equal(cat, sl.order)
            assert is_valid_tile_coloring(
                seg.tile_colors,
                segment_written_rows(compiled.loops, seg),
            )
        # The numeric results equal eager execution bitwise.
        s_ref = 2.0 * w.data
        r_ref = np.zeros((n, 1))
        np.add.at(r_ref, conn[:, 0], s_ref)
        np.add.at(r_ref, conn[:, 1], s_ref)
        assert np.array_equal(s.data, s_ref)
        assert np.array_equal(out.data[:, 0], (r_ref * r_ref)[:, 0])

    @settings(max_examples=10, deadline=None)
    @given(
        nx=st.integers(min_value=3, max_value=10),
        ny=st.integers(min_value=3, max_value=10),
        tile_size=st.integers(min_value=8, max_value=96),
    )
    def test_random_tri_meshes_bitwise(self, nx, ny, tile_size):
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_tri_mesh

        eager = VolnaSim(
            make_tri_mesh(nx, ny), dtype=np.float64,
            runtime=Runtime("vectorized", block_size=32), chained=False,
        )
        tiled = VolnaSim(
            make_tri_mesh(nx, ny), dtype=np.float64,
            runtime=Runtime("vectorized", block_size=32),
            chained=True, tiling=tile_size,
        )
        eager.run(2)
        tiled.run(2)
        assert np.array_equal(eager.state.q.data, tiled.state.q.data)
        assert eager.dt_history == tiled.dt_history


# ----------------------------------------------------------------------
# Cache entry kinds and executor plumbing
# ----------------------------------------------------------------------
class TestTiledCachesAndExecutors:
    def test_tiling_is_a_chain_cache_entry_kind(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("vectorized", block_size=32)
        mesh = make_airfoil_mesh(10, 5)
        fused = AirfoilSim(mesh, runtime=rt, chained=True)
        fused.step()
        tiled = AirfoilSim(mesh, runtime=rt, chained=True, tiling=48)
        tiled.step()
        st_ = rt.stats()["chain_cache"]
        assert st_["entries"] == 2      # same trace, two lowerings
        assert st_["misses"] == 2
        tiled.step()                    # steady state replays
        assert rt.stats()["chain_cache"]["hits"] == 1

    def test_prepared_tiled_program_is_cached(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("vectorized", block_size=32)
        sim = AirfoilSim(make_airfoil_mesh(10, 5), runtime=rt,
                         chained=True, tiling=48)
        sim.run(3)
        compiled = next(iter(rt._chains.values()))
        keys = [k for k in compiled.exec_cache if isinstance(k, tuple)]
        assert keys, "tiled replay program was not cached"

    def test_scalar_backends_build_ascending_profile(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("sequential", block_size=32)
        sim = AirfoilSim(make_airfoil_mesh(10, 5), runtime=rt,
                         chained=True, tiling=48)
        sim.step()
        compiled = next(iter(rt._chains.values()))
        sched = compiled.tiled_for("ascending")
        assert sched is not None and sched.profile == "ascending"
        for seg in sched.segments:
            for sl in seg.slices:
                assert np.all(np.diff(sl.order) == 1)
        # Memoized.
        assert compiled.tiled_for("ascending") is sched

    def test_untiled_chain_has_no_schedule(self):
        rt = Runtime("vectorized", block_size=16)
        nodes, edges, e2n, w, s, r, out = ring_problem()
        with rt.chain():
            par_loop(tile_scale, edges,
                     arg_dat(w, IDX_ID, None, READ),
                     arg_dat(s, IDX_ID, None, WRITE), runtime=rt)
        compiled = next(iter(rt._chains.values()))
        assert compiled.tiled is None
        assert compiled.tiled_for("phases") is None

    def test_schedule_stats_surface(self):
        rt = Runtime("vectorized", block_size=16)
        compiled, _ = ring_chain_schedule(rt, tiling=16)
        stats = compiled.tiled.stats()
        for key in ("profile", "tile_size", "n_segments", "n_barriers",
                    "n_sliced_loops", "n_tiles", "max_tile_colors"):
            assert key in stats
        assert stats["n_tiles"] == 4


# ----------------------------------------------------------------------
# Tile-local mesh renumbering
# ----------------------------------------------------------------------
class TestTileLocalRenumber:
    def test_edges_sorted_by_cell_tile(self):
        from repro.mesh import make_airfoil_mesh, tile_local_renumber

        mesh = tile_local_renumber(make_airfoil_mesh(24, 12), 64)
        for map_name in ("edge2cell", "bedge2cell"):
            tiles = mesh.map(map_name).values.max(axis=1) // 64
            assert np.all(np.diff(tiles) >= 0)

    def test_renumbered_simulation_consistent(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh, tile_local_renumber

        base = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=Runtime("vectorized", block_size=32), chained=False,
        )
        renum = AirfoilSim(
            tile_local_renumber(make_airfoil_mesh(12, 6), 48),
            runtime=Runtime("vectorized", block_size=32), chained=False,
        )
        base.run(3)
        renum.run(3)
        # Cell numbering is untouched, so cell state is comparable
        # directly; edge renumbering only reorders FP accumulation.
        np.testing.assert_allclose(renum.q, base.q, rtol=1e-10,
                                   atol=1e-12)
        # And tiled == eager still holds on the renumbered mesh.
        tiled = AirfoilSim(
            tile_local_renumber(make_airfoil_mesh(12, 6), 48),
            runtime=Runtime("vectorized", block_size=32),
            chained=True, tiling=48,
        )
        tiled.run(3)
        assert np.array_equal(tiled.state.p_q.data, renum.state.p_q.data)

    def test_bad_tile_size_raises(self):
        from repro.mesh import make_airfoil_mesh, tile_local_renumber

        with pytest.raises(ValueError, match="tile_size"):
            tile_local_renumber(make_airfoil_mesh(10, 5), 0)
