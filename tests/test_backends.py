"""Backend equivalence: every backend must reproduce the sequential result.

This is the library's central correctness property (paper Section 3: the
abstraction assumes element order does not change results beyond FP
reordering).  We sweep the full backend x scheme matrix on a mix of loop
shapes: direct, indirect-read, indirect-INC, vector arguments, global
reductions, and kernels without vector forms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    INC,
    MAX,
    MIN,
    READ,
    RW,
    WRITE,
    Dat,
    Global,
    Map,
    Runtime,
    Set,
    arg_dat,
    arg_gbl,
    kernel,
    make_backend,
    par_loop,
)
from repro.core.access import IDX_ALL, IDX_ID

from repro.testing import BACKEND_MATRIX, runtime_for


def ring_problem(n=37, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    nodes = Set(n, "nodes")
    edges = Set(n, "edges")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2n = Map(edges, nodes, 2, conn, "e2n")
    w = Dat(edges, 2, rng.standard_normal((n, 2)), dtype, name="w")
    x = Dat(nodes, 3, rng.standard_normal((n, 3)), dtype, name="x")
    return nodes, edges, e2n, w, x


@kernel("saxpy_inc", flops=6)
def saxpy_inc(w, x0, x1, a0, a1):
    a0[0] += w[0] * x1[0]
    a0[1] += w[1] * x1[1]
    a1[0] += w[0] * x0[0]
    a1[2] += w[1] * x0[2]


@saxpy_inc.vectorized
def saxpy_inc_vec(w, x0, x1, a0, a1):
    a0[:, 0] += w[:, 0] * x1[:, 0]
    a0[:, 1] += w[:, 1] * x1[:, 1]
    a1[:, 0] += w[:, 0] * x0[:, 0]
    a1[:, 2] += w[:, 1] * x0[:, 2]


def run_indirect(backend, scheme, options, block_size=8):
    nodes, edges, e2n, w, x = ring_problem()
    acc = Dat(nodes, 3, name="acc")
    rt = runtime_for(backend, scheme, options, block_size)
    par_loop(
        saxpy_inc, edges,
        arg_dat(w, IDX_ID, None, READ),
        arg_dat(x, 0, e2n, READ),
        arg_dat(x, 1, e2n, READ),
        arg_dat(acc, 0, e2n, INC),
        arg_dat(acc, 1, e2n, INC),
        runtime=rt,
    )
    return acc.data.copy()


class TestIndirectIncEquivalence:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_matches_sequential(self, backend, scheme, options):
        ref = run_indirect("sequential", "two_level", {})
        got = run_indirect(backend, scheme, options)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("block_size", [1, 3, 8, 64, 1000])
    def test_block_size_invariance(self, block_size):
        ref = run_indirect("sequential", "two_level", {})
        got = run_indirect("vectorized", "two_level", {}, block_size)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("vec", [1, 2, 4, 8, 16])
    def test_vector_width_invariance(self, vec):
        ref = run_indirect("sequential", "two_level", {})
        nodes, edges, e2n, w, x = ring_problem()
        acc = Dat(nodes, 3, name="acc")
        rt = Runtime(make_backend("vectorized", vec=vec), block_size=8)
        par_loop(
            saxpy_inc, edges,
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(x, 0, e2n, READ),
            arg_dat(x, 1, e2n, READ),
            arg_dat(acc, 0, e2n, INC),
            arg_dat(acc, 1, e2n, INC),
            runtime=rt,
        )
        np.testing.assert_allclose(acc.data, ref, rtol=1e-12, atol=1e-12)


@kernel("direct_update", flops=3)
def direct_update(a, b):
    b[0] = 2.0 * a[0] + a[1]
    b[1] = a[0] - 0.5 * a[1]


@direct_update.vectorized
def direct_update_vec(a, b):
    b[:, 0] = 2.0 * a[:, 0] + a[:, 1]
    b[:, 1] = a[:, 0] - 0.5 * a[:, 1]


class TestDirectEquivalence:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_direct_loop(self, backend, scheme, options):
        rng = np.random.default_rng(3)
        s = Set(29, "s")
        src_vals = rng.standard_normal((29, 2))

        def run(rt):
            a = Dat(s, 2, src_vals, name="a")
            b = Dat(s, 2, name="b")
            par_loop(
                direct_update, s,
                arg_dat(a, IDX_ID, None, READ),
                arg_dat(b, IDX_ID, None, WRITE),
                runtime=rt,
            )
            return b.data.copy()

        ref = run(runtime_for("sequential", "two_level", {}))
        got = run(runtime_for(backend, scheme, options, block_size=7))
        np.testing.assert_allclose(got, ref, rtol=1e-14)


@kernel("rw_zero", flops=2)
def rw_zero(r, out):
    out[0] += r[0]
    r[0] = 0.0


@rw_zero.vectorized
def rw_zero_vec(r, out):
    out[:, 0] += r[:, 0]
    r[:, 0] = 0.0


class TestDirectRW:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_rw_direct(self, backend, scheme, options):
        s = Set(23, "s")

        def run(rt):
            r = Dat(s, 1, np.arange(23.0), name="r")
            out = Dat(s, 1, name="out")
            par_loop(
                rw_zero, s,
                arg_dat(r, IDX_ID, None, RW),
                arg_dat(out, IDX_ID, None, INC),
                runtime=rt,
            )
            return r.data.copy(), out.data.copy()

        ref_r, ref_o = run(runtime_for("sequential", "two_level", {}))
        got_r, got_o = run(runtime_for(backend, scheme, options, 5))
        np.testing.assert_allclose(got_r, ref_r)
        np.testing.assert_allclose(got_o, ref_o)


@kernel("reduce_all", flops=4)
def reduce_all(x, s, mn, mx):
    s[0] += x[0] + x[1]
    mn[0] = min(mn[0], x[0])
    mx[0] = max(mx[0], x[1])


@reduce_all.vectorized
def reduce_all_vec(x, s, mn, mx):
    s[:, 0] += x[:, 0] + x[:, 1]
    mn[:, 0] = np.minimum(mn[:, 0], x[:, 0])
    mx[:, 0] = np.maximum(mx[:, 0], x[:, 1])


class TestGlobalReductions:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_inc_min_max(self, backend, scheme, options):
        rng = np.random.default_rng(11)
        s = Set(41, "s")
        vals = rng.standard_normal((41, 2))

        def run(rt):
            x = Dat(s, 2, vals, name="x")
            gs = Global(1, 0.0, name="sum")
            gmin = Global(1, name="min")
            gmin.data[:] = gmin.identity_for(MIN)
            gmax = Global(1, name="max")
            gmax.data[:] = gmax.identity_for(MAX)
            par_loop(
                reduce_all, s,
                arg_dat(x, IDX_ID, None, READ),
                arg_gbl(gs, INC),
                arg_gbl(gmin, MIN),
                arg_gbl(gmax, MAX),
                runtime=rt,
            )
            return float(gs.value), float(gmin.value), float(gmax.value)

        got = run(runtime_for(backend, scheme, options, 6))
        assert got[0] == pytest.approx(vals.sum(), rel=1e-12)
        assert got[1] == vals[:, 0].min()
        assert got[2] == vals[:, 1].max()


@kernel("gather_all", flops=2)
def gather_all(xs, out):
    out[0] = xs[0][0] + xs[1][0] + xs[2][0]


@gather_all.vectorized
def gather_all_vec(xs, out):
    out[:, 0] = xs[:, 0, 0] + xs[:, 1, 0] + xs[:, 2, 0]


class TestVectorArguments:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_idx_all_gather(self, backend, scheme, options):
        rng = np.random.default_rng(5)
        nodes = Set(12, "nodes")
        cells = Set(9, "cells")
        conn = rng.integers(0, 12, size=(9, 3))
        c2n = Map(cells, nodes, 3, conn, "c2n")
        xvals = rng.standard_normal((12, 1))

        def run(rt):
            x = Dat(nodes, 1, xvals, name="x")
            out = Dat(cells, 1, name="out")
            par_loop(
                gather_all, cells,
                arg_dat(x, IDX_ALL, c2n, READ),
                arg_dat(out, IDX_ID, None, WRITE),
                runtime=rt,
            )
            return out.data.copy()

        ref = run(runtime_for("sequential", "two_level", {}))
        got = run(runtime_for(backend, scheme, options, 4))
        np.testing.assert_allclose(got, ref, rtol=1e-14)


@kernel("scatter_all", flops=1)
def scatter_all(w, outs):
    for k in range(3):
        outs[k][0] += w[0]


@scatter_all.vectorized
def scatter_all_vec(w, outs):
    outs[:, :, 0] += w[:, 0][:, None]


class TestVectorIncArguments:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_idx_all_inc(self, backend, scheme, options):
        rng = np.random.default_rng(9)
        nodes = Set(10, "nodes")
        cells = Set(14, "cells")
        conn = rng.integers(0, 10, size=(14, 3))
        c2n = Map(cells, nodes, 3, conn, "c2n")
        wvals = rng.standard_normal((14, 1))

        def run(rt):
            w = Dat(cells, 1, wvals, name="w")
            out = Dat(nodes, 1, name="out")
            par_loop(
                scatter_all, cells,
                arg_dat(w, IDX_ID, None, READ),
                arg_dat(out, IDX_ALL, c2n, INC),
                runtime=rt,
            )
            return out.data.copy()

        ref = run(runtime_for("sequential", "two_level", {}))
        got = run(runtime_for(backend, scheme, options, 4))
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-12)


@kernel("no_vector_form")
def no_vector_form(x, y):
    y[0] = x[0] * 2.0


class TestScalarFallbacks:
    @pytest.mark.parametrize(
        "backend,options",
        [("vectorized", {}), ("simt", {"device": "cpu"}),
         ("simt", {"device": "phi"})],
    )
    def test_kernel_without_vector_form(self, backend, options):
        s = Set(17, "s")
        x = Dat(s, 1, np.arange(17.0), name="x")
        y = Dat(s, 1, name="y")
        rt = runtime_for(backend, "two_level", options, 4)
        par_loop(
            no_vector_form, s,
            arg_dat(x, IDX_ID, None, READ),
            arg_dat(y, IDX_ID, None, WRITE),
            runtime=rt,
        )
        np.testing.assert_allclose(y.data[:, 0], np.arange(17.0) * 2)

    def test_simt_cpu_refuses_unflagged_kernel(self):
        # vectorizable_simt=False must take the scalar work-item path on
        # CPU but the vector path on Phi; results identical either way.
        @kernel("refused", vectorizable_simt=False)
        def refused(x, y):
            y[0] = x[0] + 1.0

        @refused.vectorized
        def refused_vec(x, y):
            y[:, 0] = x[:, 0] + 1.0

        for device in ("cpu", "phi"):
            s = Set(9, "s")
            x = Dat(s, 1, np.arange(9.0), name="x")
            y = Dat(s, 1, name="y")
            rt = runtime_for("simt", "two_level", {"device": device}, 4)
            par_loop(
                refused, s,
                arg_dat(x, IDX_ID, None, READ),
                arg_dat(y, IDX_ID, None, WRITE),
                runtime=rt,
            )
            np.testing.assert_allclose(y.data[:, 0], np.arange(9.0) + 1)


class TestValidationAndErrors:
    def test_autovec_rejects_two_level_indirect(self):
        nodes, edges, e2n, w, x = ring_problem()
        acc = Dat(nodes, 3)
        rt = runtime_for("autovec", "two_level", {})
        with pytest.raises(ValueError, match="full_permute or block_permute"):
            par_loop(
                saxpy_inc, edges,
                arg_dat(w, IDX_ID, None, READ),
                arg_dat(x, 0, e2n, READ),
                arg_dat(x, 1, e2n, READ),
                arg_dat(acc, 0, e2n, INC),
                arg_dat(acc, 1, e2n, INC),
                runtime=rt,
            )

    def test_direct_arg_wrong_set(self):
        s1, s2 = Set(4, "a"), Set(4, "b")
        d = Dat(s2, 1)
        with pytest.raises(ValueError, match="lives on set"):
            par_loop(no_vector_form, s1,
                     arg_dat(d, IDX_ID, None, READ),
                     arg_dat(d, IDX_ID, None, WRITE))

    def test_indirect_arg_wrong_from_set(self):
        nodes, edges, e2n, w, x = ring_problem()
        other = Set(5, "other")
        with pytest.raises(ValueError, match="maps from"):
            par_loop(no_vector_form, other,
                     arg_dat(x, 0, e2n, READ),
                     arg_dat(x, 1, e2n, READ))

    def test_non_kernel_rejected(self):
        with pytest.raises(TypeError):
            par_loop(lambda: None, Set(1))

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            make_backend("hexagonal")

    def test_stats_recorded(self):
        rt = runtime_for("vectorized", "two_level", {})
        s = Set(8, "s")
        x = Dat(s, 1, np.ones(8), name="x")
        y = Dat(s, 1, name="y")
        par_loop(no_vector_form, s,
                 arg_dat(x, IDX_ID, None, READ),
                 arg_dat(y, IDX_ID, None, WRITE), runtime=rt)
        st_ = rt.backend.stats["no_vector_form"]
        assert st_.calls == 1 and st_.elements == 8 and st_.elapsed > 0
        rt.reset_stats()
        assert not rt.backend.stats


# ----------------------------------------------------------------------
# Property-based: random indirect-INC loops agree across backends.
# ----------------------------------------------------------------------
@given(
    n_nodes=st.integers(2, 20),
    n_elems=st.integers(1, 40),
    block_size=st.integers(1, 16),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=30, deadline=None)
def test_property_random_loops_equivalent(n_nodes, n_elems, block_size, seed):
    rng = np.random.default_rng(seed)
    nodes = Set(n_nodes, "nodes")
    elems = Set(n_elems, "elems")
    conn = rng.integers(0, n_nodes, size=(n_elems, 2))
    m = Map(elems, nodes, 2, conn, "m")
    wv = rng.standard_normal((n_elems, 1))

    def run(bk, scheme):
        w = Dat(elems, 1, wv, name="w")
        acc = Dat(nodes, 1, name="acc")
        rt = runtime_for(bk, scheme, {}, block_size)
        par_loop(
            saxpy_like, elems,
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(acc, 0, m, INC),
            arg_dat(acc, 1, m, INC),
            runtime=rt,
        )
        return acc.data.copy()

    ref = run("sequential", "two_level")
    for bk, scheme in [
        ("vectorized", "two_level"),
        ("vectorized", "full_permute"),
        ("simt", "two_level"),
        ("autovec", "block_permute"),
    ]:
        np.testing.assert_allclose(
            run(bk, scheme), ref, rtol=1e-10, atol=1e-10
        )


@kernel("saxpy_like", flops=2)
def saxpy_like(w, a0, a1):
    a0[0] += w[0]
    a1[0] += 2.0 * w[0]


@saxpy_like.vectorized
def saxpy_like_vec(w, a0, a1):
    a0[:, 0] += w[:, 0]
    a1[:, 0] += 2.0 * w[:, 0]
