"""Tests for the simulated-MPI substrate: halos, exchanges, equivalence.

Central property: any sequence of parallel loops over a distributed
problem yields exactly the serial result on owned data, with halo
exchanges happening lazily and being accounted.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    INC,
    MIN,
    READ,
    WRITE,
    Dat,
    Global,
    Map,
    Runtime,
    Set,
    arg_dat,
    arg_gbl,
    kernel,
    par_loop,
)
from repro.core.access import IDX_ID
from repro.mpi import DistContext, SimComm
from repro.partition import partition_iteration_set, rcb_partition


# ----------------------------------------------------------------------
# Kernels used throughout.
# ----------------------------------------------------------------------
@kernel("edge_inc", flops=3)
def edge_inc(w, x0, x1, a0, a1):
    a0[0] += w[0] * x1[0]
    a1[0] += w[0] * x0[0]


@edge_inc.vectorized
def edge_inc_vec(w, x0, x1, a0, a1):
    a0[:, 0] += w[:, 0] * x1[:, 0]
    a1[:, 0] += w[:, 0] * x0[:, 0]


@kernel("node_scale", flops=1)
def node_scale(x):
    x[0] = x[0] * 2.0


@node_scale.vectorized
def node_scale_vec(x):
    x[:, 0] = x[:, 0] * 2.0


@kernel("edge_read_nodes", flops=1)
def edge_read_nodes(x0, x1, out):
    out[0] = x0[0] + x1[0]


@edge_read_nodes.vectorized
def edge_read_nodes_vec(x0, x1, out):
    out[:, 0] = x0[:, 0] + x1[:, 0]


def chain_problem(n_nodes=23, seed=0):
    """1-D chain: edges between consecutive nodes."""
    rng = np.random.default_rng(seed)
    nodes = Set(n_nodes, "nodes")
    edges = Set(n_nodes - 1, "edges")
    conn = np.stack([np.arange(n_nodes - 1), np.arange(1, n_nodes)], axis=1)
    e2n = Map(edges, nodes, 2, conn, "e2n")
    w = rng.standard_normal((n_nodes - 1, 1))
    x = rng.standard_normal((n_nodes, 1))
    return nodes, edges, e2n, conn, w, x


def build_ctx(nodes, edges, e2n, conn, nranks, dats, backend="vectorized"):
    node_parts = rcb_partition(
        np.stack([np.arange(nodes.size, dtype=float),
                  np.zeros(nodes.size)], axis=1), nranks
    )
    edge_parts = partition_iteration_set(conn, node_parts)
    ctx = DistContext(nranks, backend=backend, block_size=4)
    ctx.add_set(nodes, node_parts)
    ctx.add_set(edges, edge_parts)
    ctx.add_map(e2n)
    for d in dats:
        ctx.add_dat(d)
    ctx.finalize()
    return ctx


class TestSimComm:
    def test_message_accounting(self):
        c = SimComm(3)
        c.record_message(0, 1, 100)
        c.record_message(1, 0, 50)
        c.record_message(2, 2, 999)  # self-copy: not a message
        assert c.stats.messages == 2
        assert c.stats.bytes == 150
        assert c.neighbour_counts() == {0: 1, 1: 1}

    def test_allreduce_accounting(self):
        c = SimComm(4)
        c.record_allreduce(8)
        assert c.stats.reductions == 1
        assert c.stats.messages == 6

    def test_rank_bounds(self):
        c = SimComm(2)
        with pytest.raises(ValueError):
            c.record_message(0, 5, 1)
        with pytest.raises(ValueError):
            SimComm(0)

    def test_reset(self):
        c = SimComm(2)
        c.record_message(0, 1, 10)
        c.stats.reset()
        assert c.stats.messages == 0 and not c.stats.by_pair


class TestDecomposition:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 5])
    def test_regions_partition_owned(self, nranks):
        nodes, edges, e2n, conn, w, x = chain_problem()
        wd = Dat(edges, 1, w, name="w")
        ctx = build_ctx(nodes, edges, e2n, conn, nranks, [wd])
        total = sum(
            ctx.halo_plans[nodes].regions[r].n_owned for r in range(nranks)
        )
        assert total == nodes.size
        # Owned sets are disjoint.
        seen = set()
        for r in range(nranks):
            owned = set(ctx.halo_plans[nodes].regions[r].owned.tolist())
            assert not (seen & owned)
            seen |= owned

    def test_core_elements_touch_no_halo(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        wd = Dat(edges, 1, w, name="w")
        ctx = build_ctx(nodes, edges, e2n, conn, 3, [wd])
        for r in range(3):
            lm = ctx.local_maps[e2n][r]
            ls = ctx.local_sets[edges][r]
            if ls.core_size:
                core_targets = lm.values[: ls.core_size]
                assert core_targets.max() < ctx.local_sets[nodes][r].size

    def test_exec_halo_covers_remote_writers(self):
        # Every edge that touches a rank's owned node must be executed by
        # that rank (owned or exec halo).
        nodes, edges, e2n, conn, w, x = chain_problem()
        wd = Dat(edges, 1, w, name="w")
        ctx = build_ctx(nodes, edges, e2n, conn, 3, [wd])
        for r in range(3):
            reg_e = ctx.halo_plans[edges].regions[r]
            reg_n = ctx.halo_plans[nodes].regions[r]
            executed = set(reg_e.owned.tolist()) | set(
                reg_e.exec_halo.tolist()
            )
            owned_nodes = set(reg_n.owned.tolist())
            for e in range(edges.size):
                if set(conn[e].tolist()) & owned_nodes:
                    assert e in executed

    def test_unregistered_set_rejected(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        ctx = DistContext(2)
        ctx.add_set(nodes, np.zeros(nodes.size, dtype=np.int32))
        ctx.add_map(e2n)
        with pytest.raises(ValueError, match="unregistered set"):
            ctx.finalize()

    def test_partition_validation(self):
        nodes = Set(5, "n")
        ctx = DistContext(2)
        with pytest.raises(ValueError):
            ctx.add_set(nodes, np.zeros(3, dtype=np.int32))
        with pytest.raises(ValueError):
            ctx.add_set(nodes, np.full(5, 7, dtype=np.int32))

    def test_double_finalize_rejected(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        wd = Dat(edges, 1, w, name="w")
        ctx = build_ctx(nodes, edges, e2n, conn, 2, [wd])
        with pytest.raises(RuntimeError):
            ctx.finalize()
        with pytest.raises(RuntimeError):
            ctx.add_set(Set(3), np.zeros(3, np.int32))


class TestDistributedEquivalence:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4])
    @pytest.mark.parametrize("backend", ["sequential", "vectorized", "simt"])
    def test_inc_loop_matches_serial(self, nranks, backend):
        nodes, edges, e2n, conn, w, x = chain_problem()
        wd = Dat(edges, 1, w, name="w")
        xd = Dat(nodes, 1, x, name="x")
        acc = Dat(nodes, 1, name="acc")

        ref = Dat(nodes, 1, name="ref")
        par_loop(
            edge_inc, edges,
            arg_dat(wd, IDX_ID, None, READ),
            arg_dat(xd, 0, e2n, READ),
            arg_dat(xd, 1, e2n, READ),
            arg_dat(ref, 0, e2n, INC),
            arg_dat(ref, 1, e2n, INC),
            runtime=Runtime("sequential"),
        )

        ctx = build_ctx(nodes, edges, e2n, conn, nranks,
                        [wd, xd, acc], backend)
        ctx.par_loop(
            edge_inc, edges,
            arg_dat(wd, IDX_ID, None, READ),
            arg_dat(xd, 0, e2n, READ),
            arg_dat(xd, 1, e2n, READ),
            arg_dat(acc, 0, e2n, INC),
            arg_dat(acc, 1, e2n, INC),
        )
        np.testing.assert_allclose(
            ctx.fetch(acc), ref.data, rtol=1e-12, atol=1e-12
        )

    def test_write_then_read_triggers_exchange(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        xd = Dat(nodes, 1, x, name="x")
        out = Dat(edges, 1, name="out")
        ctx = build_ctx(nodes, edges, e2n, conn, 3, [xd, out])
        base_msgs = ctx.comm.stats.messages

        # Direct write to x invalidates halos...
        ctx.par_loop(node_scale, nodes, arg_dat(xd, IDX_ID, None, WRITE))
        # ...so the indirect read must exchange.
        ctx.par_loop(
            edge_read_nodes, edges,
            arg_dat(xd, 0, e2n, READ),
            arg_dat(xd, 1, e2n, READ),
            arg_dat(out, IDX_ID, None, WRITE),
        )
        assert ctx.comm.stats.messages > base_msgs
        np.testing.assert_allclose(
            ctx.fetch(out)[:, 0], (x[conn[:, 0]] + x[conn[:, 1]])[:, 0] * 2
        )

    def test_no_exchange_when_fresh(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        xd = Dat(nodes, 1, x, name="x")
        out = Dat(edges, 1, name="out")
        ctx = build_ctx(nodes, edges, e2n, conn, 3, [xd, out])
        ctx.par_loop(
            edge_read_nodes, edges,
            arg_dat(xd, 0, e2n, READ),
            arg_dat(xd, 1, e2n, READ),
            arg_dat(out, IDX_ID, None, WRITE),
        )
        first = ctx.comm.stats.messages
        ctx.par_loop(
            edge_read_nodes, edges,
            arg_dat(xd, 0, e2n, READ),
            arg_dat(xd, 1, e2n, READ),
            arg_dat(out, IDX_ID, None, WRITE),
        )
        assert ctx.comm.stats.messages == first  # still fresh: no traffic

    def test_global_reduction_across_ranks(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        xd = Dat(nodes, 1, x, name="x")
        g = Global(1, name="mn")
        g.data[:] = g.identity_for(MIN)

        @kernel("gmin")
        def gmin(xx, m):
            m[0] = min(m[0], xx[0])

        @gmin.vectorized
        def gmin_vec(xx, m):
            m[:, 0] = np.minimum(m[:, 0], xx[:, 0])

        ctx = build_ctx(nodes, edges, e2n, conn, 4, [xd])
        ctx.par_loop(gmin, nodes,
                     arg_dat(xd, IDX_ID, None, READ), arg_gbl(g, MIN))
        assert float(g.value) == x.min()
        assert ctx.comm.stats.reductions == 1

    def test_reduction_plus_indirect_write_rejected(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        wd = Dat(edges, 1, w, name="w")
        acc = Dat(nodes, 1, name="acc")
        g = Global(1)

        @kernel("bad")
        def bad(ww, a, s):
            a[0] += ww[0]
            s[0] += ww[0]

        ctx = build_ctx(nodes, edges, e2n, conn, 2, [wd, acc])
        with pytest.raises(NotImplementedError):
            ctx.par_loop(bad, edges,
                         arg_dat(wd, IDX_ID, None, READ),
                         arg_dat(acc, 0, e2n, INC),
                         arg_gbl(g, INC))

    def test_update_scatters_and_refreshes(self):
        nodes, edges, e2n, conn, w, x = chain_problem()
        xd = Dat(nodes, 1, x, name="x")
        ctx = build_ctx(nodes, edges, e2n, conn, 3, [xd])
        new = np.arange(nodes.size, dtype=float).reshape(-1, 1)
        ctx.update(xd, new)
        np.testing.assert_allclose(ctx.fetch(xd), new)

    def test_load_imbalance_metric(self):
        nodes, edges, e2n, conn, w, x = chain_problem(24)
        wd = Dat(edges, 1, w, name="w")
        ctx = build_ctx(nodes, edges, e2n, conn, 3, [wd])
        assert 0.0 <= ctx.load_imbalance(nodes) < 0.5


class TestDistributedAirfoil:
    @pytest.mark.parametrize("nranks", [2, 3])
    def test_airfoil_matches_serial(self, nranks):
        from repro.apps.airfoil import AirfoilSim, DistributedAirfoilSim
        from repro.mesh import make_airfoil_mesh

        mesh = make_airfoil_mesh(12, 6)
        serial = AirfoilSim(mesh, runtime=Runtime("vectorized",
                                                  block_size=32))
        serial.run(3)

        mesh2 = make_airfoil_mesh(12, 6)
        cell_parts = rcb_partition(mesh2.cell_centroids(), nranks)
        dist = DistributedAirfoilSim(mesh2, cell_parts, nranks,
                                     block_size=32)
        dist.run(3)
        np.testing.assert_allclose(
            dist.fetch_q(), serial.q, rtol=1e-10, atol=1e-12
        )
        np.testing.assert_allclose(
            dist.rms_history, serial.rms_history, rtol=1e-10
        )
        assert dist.ctx.comm.stats.messages > 0


@given(
    n_nodes=st.integers(4, 30),
    nranks=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_property_distributed_equals_serial(n_nodes, nranks, seed):
    nodes, edges, e2n, conn, w, x = chain_problem(n_nodes, seed)
    wd = Dat(edges, 1, w, name="w")
    xd = Dat(nodes, 1, x, name="x")
    acc = Dat(nodes, 1, name="acc")

    ref = Dat(nodes, 1, name="ref")
    par_loop(
        edge_inc, edges,
        arg_dat(wd, IDX_ID, None, READ),
        arg_dat(xd, 0, e2n, READ),
        arg_dat(xd, 1, e2n, READ),
        arg_dat(ref, 0, e2n, INC),
        arg_dat(ref, 1, e2n, INC),
        runtime=Runtime("sequential"),
    )
    ctx = build_ctx(nodes, edges, e2n, conn, nranks, [wd, xd, acc])
    ctx.par_loop(
        edge_inc, edges,
        arg_dat(wd, IDX_ID, None, READ),
        arg_dat(xd, 0, e2n, READ),
        arg_dat(xd, 1, e2n, READ),
        arg_dat(acc, 0, e2n, INC),
        arg_dat(acc, 1, e2n, INC),
    )
    np.testing.assert_allclose(ctx.fetch(acc), ref.data,
                               rtol=1e-10, atol=1e-10)


class TestOverlapExecution:
    """Core/boundary split (Fig 2b's op_mpi_wait_all overlap)."""

    @pytest.mark.parametrize("nranks", [2, 3])
    def test_overlap_matches_plain(self, nranks):
        nodes, edges, e2n, conn, w, x = chain_problem(29, seed=4)
        wd = Dat(edges, 1, w, name="w")
        xd = Dat(nodes, 1, x, name="x")
        acc_a = Dat(nodes, 1, name="acc_a")

        ctx_a = build_ctx(nodes, edges, e2n, conn, nranks, [wd, xd, acc_a])
        ctx_a.par_loop(
            edge_inc, edges,
            arg_dat(wd, IDX_ID, None, READ),
            arg_dat(xd, 0, e2n, READ),
            arg_dat(xd, 1, e2n, READ),
            arg_dat(acc_a, 0, e2n, INC),
            arg_dat(acc_a, 1, e2n, INC),
        )

        nodes2, edges2, e2n2, conn2, w2, x2 = chain_problem(29, seed=4)
        wd2 = Dat(edges2, 1, w2, name="w2")
        xd2 = Dat(nodes2, 1, x2, name="x2")
        acc2 = Dat(nodes2, 1, name="acc2")
        ctx_b = build_ctx(nodes2, edges2, e2n2, conn2, nranks,
                          [wd2, xd2, acc2])
        ctx_b.par_loop(
            edge_inc, edges2,
            arg_dat(wd2, IDX_ID, None, READ),
            arg_dat(xd2, 0, e2n2, READ),
            arg_dat(xd2, 1, e2n2, READ),
            arg_dat(acc2, 0, e2n2, INC),
            arg_dat(acc2, 1, e2n2, INC),
            overlap=True,
        )
        np.testing.assert_allclose(
            ctx_b.fetch(acc2), ctx_a.fetch(acc_a), rtol=1e-12, atol=1e-12
        )

    def test_core_fraction_is_substantial(self):
        # Most elements of a well-partitioned mesh are core — the
        # overlap window that hides communication latency.
        from repro.apps.airfoil import DistributedAirfoilSim
        from repro.mesh import make_airfoil_mesh

        mesh = make_airfoil_mesh(24, 12)
        parts = rcb_partition(mesh.cell_centroids(), 3)
        dist = DistributedAirfoilSim(mesh, parts, 3)
        total_core = total_owned = 0
        for reg_plans in dist.ctx.halo_plans.values():
            for reg in reg_plans.regions:
                total_core += reg.core_size
                total_owned += reg.n_owned
        assert total_core / total_owned > 0.5

    def test_airfoil_overlap_full_run(self):
        from repro.apps.airfoil import AirfoilSim, DistributedAirfoilSim
        from repro.mesh import make_airfoil_mesh

        mesh = make_airfoil_mesh(12, 6)
        serial = AirfoilSim(mesh, runtime=Runtime("vectorized",
                                                  block_size=32))
        serial.run(2)

        mesh2 = make_airfoil_mesh(12, 6)
        parts = rcb_partition(mesh2.cell_centroids(), 2)
        dist = DistributedAirfoilSim(mesh2, parts, 2, block_size=32)
        # Route every loop through the overlap path.
        orig = dist.ctx.par_loop
        dist.ctx.par_loop = (
            lambda k, s, *a: orig(k, s, *a, overlap=True)
        )
        dist.run(2)
        np.testing.assert_allclose(
            dist.fetch_q(), serial.q, rtol=1e-10, atol=1e-12
        )

    def test_start_element_direct(self):
        # The primitive under the overlap: execute only a suffix.
        s = Set(10, "s")
        d = Dat(s, 1)

        @kernel("mark")
        def mark(x):
            x[0] = 1.0

        @mark.vectorized
        def mark_vec(x):
            x[:, 0] = 1.0

        for bk in ("sequential", "openmp", "vectorized", "simt"):
            d.zero()
            par_loop(mark, s, arg_dat(d, IDX_ID, None, WRITE),
                     runtime=Runtime(bk, block_size=4), start_element=6)
            np.testing.assert_array_equal(
                d.data.ravel(), [0] * 6 + [1] * 4
            )

    def test_start_element_validation(self):
        s = Set(4, "s")
        d = Dat(s, 1)

        @kernel("nothing")
        def nothing(x):
            x[0] = 1.0

        with pytest.raises(ValueError, match="start_element"):
            par_loop(nothing, s, arg_dat(d, IDX_ID, None, WRITE),
                     runtime=Runtime("sequential"), start_element=9)
