"""Deferred-execution loop chains: equivalence, analysis, fusion, caches.

The central contract: chained execution is **bitwise identical** to
eager execution — swept over the full backend × scheme matrix and both
data layouts for the Airfoil 5-loop time step, plus Volna.  Around it,
unit tests pin the dependency analysis (RAW/WAR/WAW, commuting
reductions), fusion legality (including the rejections), the read/write
barriers on Dat and Global, the third-level chain cache, and the LRU
bounds on all cache levels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    INC,
    MAX,
    MIN,
    READ,
    RW,
    WRITE,
    Dat,
    Global,
    IDX_ID,
    LoopSpec,
    Map,
    PlanCache,
    Runtime,
    Set,
    analyze_dependencies,
    arg_dat,
    arg_gbl,
    kernel,
    pair_fusable,
    par_loop,
)
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX, runtime_for


# ----------------------------------------------------------------------
# Shared toy problem
# ----------------------------------------------------------------------
@kernel("chain_scale", flops=1)
def chain_scale(w, s):
    s[0] = 2.0 * w[0]


@chain_scale.vectorized
def chain_scale_vec(w, s):
    s[:, 0] = 2.0 * w[:, 0]


@kernel("chain_spmv", flops=2)
def chain_spmv(s, r0, r1):
    r0[0] += s[0]
    r1[0] += s[0]


@chain_spmv.vectorized
def chain_spmv_vec(s, r0, r1):
    r0[:, 0] += s[:, 0]
    r1[:, 0] += s[:, 0]


def ring_problem(n=40, seed=3):
    nodes = Set(n, "nodes")
    edges = Set(n, "edges")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2n = Map(edges, nodes, 2, conn, "e2n")
    w = Dat(edges, 1, np.random.default_rng(seed).random(n), name="w")
    s = Dat(edges, 1, name="s")
    r = Dat(nodes, 1, name="r")
    return nodes, edges, e2n, w, s, r


def dummy_spec(set_, *args, name="dummy"):
    """A LoopSpec for pure-analysis tests (kernel never executes)."""
    k = kernel(name)(lambda *a: None)
    return LoopSpec(kernel=k, set=set_, args=tuple(args),
                    n=set_.total_size, start=0)


# ----------------------------------------------------------------------
# Chained == eager, bitwise, across the whole matrix
# ----------------------------------------------------------------------
class TestChainEagerEquivalence:
    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    @pytest.mark.parametrize("name,scheme,options", BACKEND_MATRIX)
    def test_airfoil_three_steps_bitwise(self, name, scheme, options, layout):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        eager = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=runtime_for(name, scheme, options, layout=layout),
            chained=False,
        )
        chained = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=runtime_for(name, scheme, options, layout=layout),
            chained=True,
        )
        eager.run(3)
        chained.run(3)
        for field in ("p_q", "p_qold", "p_adt", "p_res"):
            a = getattr(eager.state, field).data
            b = getattr(chained.state, field).data
            assert np.array_equal(a, b), f"{field} diverged on {name}/{scheme}/{layout}"
        assert eager.rms_history == chained.rms_history

    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    def test_volna_three_steps_bitwise(self, layout):
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_tri_mesh

        eager = VolnaSim(
            make_tri_mesh(10, 8), dtype=np.float64,
            runtime=runtime_for("vectorized", "two_level", {}, layout=layout),
            chained=False,
        )
        chained = VolnaSim(
            make_tri_mesh(10, 8), dtype=np.float64,
            runtime=runtime_for("vectorized", "two_level", {}, layout=layout),
            chained=True,
        )
        eager.run(3)
        chained.run(3)
        assert np.array_equal(eager.state.q.data, chained.state.q.data)
        assert np.array_equal(eager.state.rhs.data, chained.state.rhs.data)
        assert eager.dt_history == chained.dt_history

    def test_chunked_vectorized_falls_back_identically(self):
        """vec=8 (chunked mode) cannot batch; replay must still match."""
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh
        from repro.core import make_backend

        eager = AirfoilSim(
            make_airfoil_mesh(10, 5),
            runtime=Runtime(make_backend("vectorized", vec=8), block_size=32),
            chained=False,
        )
        chained = AirfoilSim(
            make_airfoil_mesh(10, 5),
            runtime=Runtime(make_backend("vectorized", vec=8), block_size=32),
            chained=True,
        )
        eager.run(2)
        chained.run(2)
        assert np.array_equal(eager.state.p_q.data, chained.state.p_q.data)


# ----------------------------------------------------------------------
# Dependency analysis
# ----------------------------------------------------------------------
class TestDependencyAnalysis:
    def setup_method(self):
        self.nodes, self.edges, self.e2n, self.w, self.s, self.r = (
            ring_problem()
        )

    def test_raw_edge(self):
        a = dummy_spec(self.edges, arg_dat(self.s, IDX_ID, None, WRITE))
        b = dummy_spec(self.edges, arg_dat(self.s, IDX_ID, None, READ))
        an = analyze_dependencies([a, b])
        assert (0, 1) in an.edges
        assert an.levels == (0, 1)

    def test_war_edge(self):
        a = dummy_spec(self.edges, arg_dat(self.s, IDX_ID, None, READ))
        b = dummy_spec(self.edges, arg_dat(self.s, IDX_ID, None, WRITE))
        an = analyze_dependencies([a, b])
        assert (0, 1) in an.edges

    def test_waw_edge(self):
        a = dummy_spec(self.edges, arg_dat(self.s, IDX_ID, None, WRITE))
        b = dummy_spec(self.edges, arg_dat(self.s, IDX_ID, None, WRITE))
        an = analyze_dependencies([a, b])
        assert (0, 1) in an.edges

    def test_inc_inc_commutes(self):
        a = dummy_spec(self.edges, arg_dat(self.r, 0, self.e2n, INC))
        b = dummy_spec(self.edges, arg_dat(self.r, 1, self.e2n, INC))
        an = analyze_dependencies([a, b])
        assert an.edges == frozenset()
        assert an.levels == (0, 0)
        assert an.frontiers == ((0, 1),)

    def test_min_min_commutes_but_mixed_modes_order(self):
        g = Global(1, name="g")
        a = dummy_spec(self.edges, arg_gbl(g, MIN))
        b = dummy_spec(self.edges, arg_gbl(g, MIN))
        assert analyze_dependencies([a, b]).edges == frozenset()
        c = dummy_spec(self.edges, arg_gbl(g, INC))
        assert (0, 1) in analyze_dependencies([a, c]).edges

    def test_read_after_inc_orders(self):
        a = dummy_spec(self.edges, arg_dat(self.r, 0, self.e2n, INC))
        b = dummy_spec(self.nodes, arg_dat(self.r, IDX_ID, None, READ))
        an = analyze_dependencies([a, b])
        assert (0, 1) in an.edges

    def test_inc_after_read_orders(self):
        a = dummy_spec(self.nodes, arg_dat(self.r, IDX_ID, None, READ))
        b = dummy_spec(self.edges, arg_dat(self.r, 0, self.e2n, INC))
        an = analyze_dependencies([a, b])
        assert (0, 1) in an.edges

    def test_independent_loops_share_frontier(self):
        a = dummy_spec(self.edges, arg_dat(self.s, IDX_ID, None, WRITE))
        b = dummy_spec(self.nodes, arg_dat(self.r, IDX_ID, None, WRITE))
        an = analyze_dependencies([a, b])
        assert an.edges == frozenset()
        assert an.frontiers == ((0, 1),)

    def test_chain_of_three_levels(self):
        a = dummy_spec(self.edges,
                       arg_dat(self.w, IDX_ID, None, READ),
                       arg_dat(self.s, IDX_ID, None, WRITE))
        b = dummy_spec(self.edges,
                       arg_dat(self.s, IDX_ID, None, READ),
                       arg_dat(self.r, 0, self.e2n, INC))
        c = dummy_spec(self.nodes, arg_dat(self.r, IDX_ID, None, READ))
        an = analyze_dependencies([a, b, c])
        assert an.levels == (0, 1, 2)
        assert an.frontiers == ((0,), (1,), (2,))


# ----------------------------------------------------------------------
# Fusion legality
# ----------------------------------------------------------------------
class TestFusionLegality:
    def setup_method(self):
        self.nodes, self.edges, self.e2n, self.w, self.s, self.r = (
            ring_problem()
        )

    def test_direct_direct_dependency_is_fusable(self):
        a = dummy_spec(self.edges,
                       arg_dat(self.w, IDX_ID, None, READ),
                       arg_dat(self.s, IDX_ID, None, WRITE))
        b = dummy_spec(self.edges,
                       arg_dat(self.s, IDX_ID, None, RW))
        assert pair_fusable(a, b)

    def test_indirect_shared_write_rejected(self):
        a = dummy_spec(self.edges, arg_dat(self.r, 0, self.e2n, INC))
        b = dummy_spec(self.edges, arg_dat(self.r, 1, self.e2n, INC))
        assert not pair_fusable(a, b)

    def test_direct_write_vs_indirect_read_rejected(self):
        rn = Dat(self.nodes, 1, name="rn")
        a = dummy_spec(self.nodes, arg_dat(rn, IDX_ID, None, WRITE))
        b = dummy_spec(self.edges, arg_dat(rn, 0, self.e2n, READ))
        assert not pair_fusable(a, b)

    def test_shared_reads_are_fusable(self):
        a = dummy_spec(self.edges, arg_dat(self.w, IDX_ID, None, READ))
        b = dummy_spec(self.edges, arg_dat(self.w, IDX_ID, None, READ))
        assert pair_fusable(a, b)

    def test_global_read_vs_reduction_rejected(self):
        g = Global(1, name="g")
        a = dummy_spec(self.edges, arg_gbl(g, INC))
        b = dummy_spec(self.edges, arg_gbl(g, READ))
        assert not pair_fusable(a, b)
        # Same-mode reductions fold in loop order — fusable.
        c = dummy_spec(self.edges, arg_gbl(g, INC))
        assert pair_fusable(a, c)

    def test_groups_split_on_set_change_and_illegal_pairs(self):
        rt = Runtime("vectorized", block_size=16)
        with rt.chain() as ch:
            par_loop(chain_scale, self.edges,
                     arg_dat(self.w, IDX_ID, None, READ),
                     arg_dat(self.s, IDX_ID, None, WRITE), runtime=rt)
            par_loop(chain_spmv, self.edges,
                     arg_dat(self.s, IDX_ID, None, READ),
                     arg_dat(self.r, 0, self.e2n, INC),
                     arg_dat(self.r, 1, self.e2n, INC), runtime=rt)
        compiled = next(iter(rt._chains.values()))
        # scale (direct plan) and spmv (colored plan) cannot share a
        # plan: two singleton groups.
        assert [len(g.loops) for g in compiled.groups] == [1, 1]

    def test_airfoil_step_fuses_direct_cell_loops(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("vectorized", block_size=32)
        sim = AirfoilSim(make_airfoil_mesh(10, 5), runtime=rt, chained=True)
        sim.step()
        compiled = next(iter(rt._chains.values()))
        names = [
            [bl.kernel.name for bl in g.loops] for g in compiled.groups
        ]
        assert ["save_soln", "adt_calc"] in names
        assert ["update", "adt_calc"] in names


# ----------------------------------------------------------------------
# Barriers and flush semantics
# ----------------------------------------------------------------------
class TestBarriersAndFlush:
    def setup_method(self):
        self.nodes, self.edges, self.e2n, self.w, self.s, self.r = (
            ring_problem()
        )

    def _spmv_args(self):
        return (
            arg_dat(self.w, IDX_ID, None, READ),
            arg_dat(self.r, 0, self.e2n, INC),
            arg_dat(self.r, 1, self.e2n, INC),
        )

    def test_dat_read_flushes_mid_chain(self):
        rt = Runtime("vectorized", block_size=16)
        with rt.chain() as ch:
            par_loop(chain_spmv, self.edges, *self._spmv_args(), runtime=rt)
            assert len(ch) == 1
            observed = self.r.data.copy()   # read barrier -> flush
            assert len(ch) == 0
        ref = Dat(self.nodes, 1, name="ref")
        par_loop(chain_spmv, self.edges,
                 arg_dat(self.w, IDX_ID, None, READ),
                 arg_dat(ref, 0, self.e2n, INC),
                 arg_dat(ref, 1, self.e2n, INC),
                 runtime=Runtime("vectorized", block_size=16))
        assert np.array_equal(observed, ref.data)

    def test_global_value_read_flushes(self):
        g = Global(1, name="acc")

        @kernel("gsum")
        def gsum(w, a):
            a[0] += w[0]

        @gsum.vectorized
        def gsum_vec(w, a):
            a[:, 0] += w[:, 0]

        rt = Runtime("vectorized", block_size=16)
        with rt.chain() as ch:
            par_loop(gsum, self.edges,
                     arg_dat(self.w, IDX_ID, None, READ),
                     arg_gbl(g, INC), runtime=rt)
            val = float(g.value)            # barrier flush
            assert len(ch) == 0
        assert val == pytest.approx(float(self.w.data.sum()))

    def test_exception_discards_trace(self):
        rt = Runtime("vectorized", block_size=16)
        before = self.r.data.copy()
        with pytest.raises(RuntimeError, match="boom"):
            with rt.chain():
                par_loop(chain_spmv, self.edges, *self._spmv_args(),
                         runtime=rt)
                raise RuntimeError("boom")
        assert np.array_equal(self.r.data, before)  # loop never executed
        assert self.r._barrier is None              # barrier disarmed

    def test_second_chain_on_shared_dat_flushes_first(self):
        """Two runtimes tracing over a shared Dat: recording into the
        second chain flushes the first, so the barrier always guards
        the latest pending writer and no read can be stale."""
        rt1 = Runtime("vectorized", block_size=16)
        rt2 = Runtime("sequential", block_size=16)
        with rt1.chain() as ch1:
            par_loop(chain_scale, self.edges,
                     arg_dat(self.w, IDX_ID, None, READ),
                     arg_dat(self.s, IDX_ID, None, WRITE), runtime=rt1)
            assert len(ch1) == 1
            with rt2.chain() as ch2:
                par_loop(chain_spmv, self.edges,
                         arg_dat(self.s, IDX_ID, None, READ),
                         arg_dat(self.r, 0, self.e2n, INC),
                         arg_dat(self.r, 1, self.e2n, INC), runtime=rt2)
                # Arming rt2's trace on `s` flushed rt1's pending write.
                assert len(ch1) == 0
                assert self.s._barrier is ch2
        expected = 2.0 * self.w.data
        assert np.array_equal(self.s.data, expected)
        ref = Dat(self.nodes, 1, name="ref2")
        par_loop(chain_spmv, self.edges,
                 arg_dat(self.s, IDX_ID, None, READ),
                 arg_dat(ref, 0, self.e2n, INC),
                 arg_dat(ref, 1, self.e2n, INC),
                 runtime=Runtime("vectorized", block_size=16))
        assert np.array_equal(self.r.data, ref.data)

    def test_chains_do_not_nest(self):
        rt = Runtime("vectorized")
        with rt.chain():
            with pytest.raises(RuntimeError, match="nest"):
                with rt.chain():
                    pass

    def test_validation_surfaces_at_flush(self):
        rt = Runtime("vectorized", block_size=16)
        other = Set(7, "other")
        bad = Dat(other, 1, name="bad")
        with pytest.raises(ValueError, match="lives on set"):
            with rt.chain():
                par_loop(chain_scale, self.edges,
                         arg_dat(bad, IDX_ID, None, READ),
                         arg_dat(self.s, IDX_ID, None, WRITE), runtime=rt)

    def test_bad_range_raises_like_eager(self):
        rt = Runtime("vectorized", block_size=16)
        with pytest.raises(ValueError, match="start_element 6 outside"):
            with rt.chain():
                par_loop(chain_scale, self.edges,
                         arg_dat(self.w, IDX_ID, None, READ),
                         arg_dat(self.s, IDX_ID, None, WRITE),
                         runtime=rt, n_elements=4, start_element=6)


# ----------------------------------------------------------------------
# Barrier edge cases: Global.value flush points, WAR with commuting args
# ----------------------------------------------------------------------
@kernel("gscale")
def gscale(w, g, s):
    s[0] = g[0] * w[0]


@gscale.vectorized
def gscale_vec(w, g, s):
    s[:, 0] = g[0] * w[:, 0]


@kernel("gmin")
def gmin(w, g):
    if w[0] < g[0]:
        g[0] = w[0]


@gmin.vectorized
def gmin_vec(w, g):
    np.minimum(g[:, 0], w[:, 0], out=g[:, 0])


class TestGlobalBarrierEdgeCases:
    def setup_method(self):
        self.nodes, self.edges, self.e2n, self.w, self.s, self.r = (
            ring_problem()
        )

    def test_host_write_to_read_global_flushes_pending_reader(self):
        """Writing Global.value mid-chain must flush a pending loop that
        READS the global, so the loop observes the pre-write value —
        exactly what eager execution would have seen (the Volna
        ``dt_used`` pattern)."""
        g = Global(1, 3.0, name="gain")
        rt = Runtime("vectorized", block_size=16)
        with rt.chain() as ch:
            par_loop(gscale, self.edges,
                     arg_dat(self.w, IDX_ID, None, READ),
                     arg_gbl(g, READ),
                     arg_dat(self.s, IDX_ID, None, WRITE), runtime=rt)
            assert len(ch) == 1
            g.value = 100.0            # write barrier -> flush first
            assert len(ch) == 0
        assert np.array_equal(self.s.data[:, 0], 3.0 * self.w.data[:, 0])
        assert float(g.value) == 100.0

    def test_min_reduction_value_read_flushes(self):
        """Reading a MIN-reduced Global mid-chain flushes and observes
        the reduced value (the Volna ``dt`` CFL pattern)."""
        g = Global(1, np.inf, name="dt")
        rt = Runtime("vectorized", block_size=16)
        with rt.chain() as ch:
            par_loop(gmin, self.edges,
                     arg_dat(self.w, IDX_ID, None, READ),
                     arg_gbl(g, MIN), runtime=rt)
            val = float(g.value)
            assert len(ch) == 0
        assert val == pytest.approx(float(self.w.data.min()))

    def test_global_data_read_flushes_like_value(self):
        g = Global(1, np.inf, name="dt2")
        rt = Runtime("vectorized", block_size=16)
        with rt.chain() as ch:
            par_loop(gmin, self.edges,
                     arg_dat(self.w, IDX_ID, None, READ),
                     arg_gbl(g, MIN), runtime=rt)
            arr = g.data                # ndarray accessor, same barrier
            assert len(ch) == 0
        assert float(arr[0]) == pytest.approx(float(self.w.data.min()))

    def test_chained_global_read_then_host_write_matches_eager(self):
        """Record a reader, host-write the global, record another
        reader: the first must see the old value, the second the new —
        bitwise as eager."""
        def run(chained):
            g = Global(1, 2.0, name="k")
            out1 = Dat(self.edges, 1, name="o1")
            out2 = Dat(self.edges, 1, name="o2")
            rt = Runtime("vectorized", block_size=16)

            def body():
                par_loop(gscale, self.edges,
                         arg_dat(self.w, IDX_ID, None, READ),
                         arg_gbl(g, READ),
                         arg_dat(out1, IDX_ID, None, WRITE), runtime=rt)
                g.value = 5.0
                par_loop(gscale, self.edges,
                         arg_dat(self.w, IDX_ID, None, READ),
                         arg_gbl(g, READ),
                         arg_dat(out2, IDX_ID, None, WRITE), runtime=rt)

            if chained:
                with rt.chain():
                    body()
            else:
                body()
            return out1.data.copy(), out2.data.copy()

        e1, e2 = run(chained=False)
        c1, c2 = run(chained=True)
        assert np.array_equal(e1, c1)
        assert np.array_equal(e2, c2)


class TestCommutingWARAnalysis:
    """WAR ordering around commuting INC/MIN/MAX reductions."""

    def setup_method(self):
        self.nodes, self.edges, self.e2n, self.w, self.s, self.r = (
            ring_problem()
        )

    def test_read_then_min_orders(self):
        g = Global(1, name="g")
        a = dummy_spec(self.edges, arg_gbl(g, READ))
        b = dummy_spec(self.edges, arg_gbl(g, MIN))
        an = analyze_dependencies([a, b])
        assert (0, 1) in an.edges          # WAR: reduce after read
        assert an.levels == (0, 1)

    def test_inc_read_inc_sandwich(self):
        """INC; READ; INC — the read must order against both reducers
        (read-after-reduce RAW, then reduce-after-read WAR), even
        though the two INCs commute with each other."""
        a = dummy_spec(self.edges, arg_dat(self.r, 0, self.e2n, INC))
        b = dummy_spec(self.nodes, arg_dat(self.r, IDX_ID, None, READ))
        c = dummy_spec(self.edges, arg_dat(self.r, 1, self.e2n, INC))
        an = analyze_dependencies([a, b, c])
        assert (0, 1) in an.edges
        assert (1, 2) in an.edges
        assert an.levels == (0, 1, 2)
        assert an.frontiers == ((0,), (1,), (2,))

    def test_mixed_reduction_modes_order_both_ways(self):
        g = Global(1, name="g")
        inc = dummy_spec(self.edges, arg_gbl(g, INC))
        mn = dummy_spec(self.edges, arg_gbl(g, MIN))
        mx = dummy_spec(self.edges, arg_gbl(g, MAX))
        an = analyze_dependencies([inc, mn, mx])
        assert (0, 1) in an.edges and (1, 2) in an.edges
        assert an.levels == (0, 1, 2)

    def test_write_after_commuting_reducers(self):
        """A plain WRITE after two commuting INCs must order against
        both (WAW through the reduction), and a subsequent INC starts a
        fresh commuting group."""
        a = dummy_spec(self.edges, arg_dat(self.r, 0, self.e2n, INC))
        b = dummy_spec(self.edges, arg_dat(self.r, 1, self.e2n, INC))
        c = dummy_spec(self.nodes, arg_dat(self.r, IDX_ID, None, WRITE))
        d = dummy_spec(self.edges, arg_dat(self.r, 0, self.e2n, INC))
        an = analyze_dependencies([a, b, c, d])
        assert (0, 2) in an.edges and (1, 2) in an.edges
        assert (2, 3) in an.edges          # RAW-ish: inc after write
        assert (0, 1) not in an.edges      # the INCs still commute
        assert an.levels == (0, 0, 1, 2)

    def test_war_execution_matches_eager(self):
        """Execution-level WAR regression: a loop reading a Dat followed
        by commuting increments of the same Dat must observe pre-
        increment values when chained — bitwise as eager."""
        def run(chained):
            r = Dat(self.nodes, 1,
                    np.arange(self.nodes.size, dtype=np.float64),
                    name="racc")
            snap = Dat(self.nodes, 1, name="snap")
            rt = Runtime("vectorized", block_size=16)

            def body():
                par_loop(chain_scale, self.nodes,
                         arg_dat(r, IDX_ID, None, READ),
                         arg_dat(snap, IDX_ID, None, WRITE), runtime=rt)
                par_loop(chain_spmv, self.edges,
                         arg_dat(self.w, IDX_ID, None, READ),
                         arg_dat(r, 0, self.e2n, INC),
                         arg_dat(r, 1, self.e2n, INC), runtime=rt)

            if chained:
                with rt.chain():
                    body()
            else:
                body()
            return snap.data.copy(), r.data.copy()

        es, er = run(chained=False)
        cs, cr = run(chained=True)
        assert np.array_equal(es, cs)
        assert np.array_equal(er, cr)


# ----------------------------------------------------------------------
# The chain cache (third level) and LRU bounds
# ----------------------------------------------------------------------
class TestCaches:
    def test_chain_cache_hits_on_steady_state(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("vectorized", block_size=32)
        sim = AirfoilSim(make_airfoil_mesh(10, 5), runtime=rt, chained=True)
        sim.step()
        st = rt.stats()["chain_cache"]
        assert st["misses"] == 1 and st["hits"] == 0
        sim.run(3)
        st = rt.stats()["chain_cache"]
        assert st["misses"] == 1 and st["hits"] == 3

    def test_plan_cache_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        sets = [Set(16, f"s{i}") for i in range(3)]
        for s in sets:
            cache.get(s, ())
        assert len(cache) == 2
        assert cache.evictions == 1
        # s0 was evicted: re-requesting it is a miss.
        misses = cache.misses
        cache.get(sets[0], ())
        assert cache.misses == misses + 1

    def test_plan_cache_lru_recency(self):
        cache = PlanCache(max_entries=2)
        s0, s1, s2 = (Set(16, f"t{i}") for i in range(3))
        cache.get(s0, ())
        cache.get(s1, ())
        cache.get(s0, ())   # refresh s0
        cache.get(s2, ())   # evicts s1, not s0
        hits = cache.hits
        cache.get(s0, ())
        assert cache.hits == hits + 1

    def test_loop_cache_lru_bound(self):
        rt = Runtime("vectorized", block_size=16, loop_cache_entries=2)
        sets = [Set(8, f"u{i}") for i in range(4)]
        dats = [Dat(s, 1, name=f"d{i}") for i, s in enumerate(sets)]
        for s, d in zip(sets, dats):
            par_loop(chain_scale, s,
                     arg_dat(d, IDX_ID, None, READ),
                     arg_dat(Dat(s, 1), IDX_ID, None, WRITE), runtime=rt)
        st = rt.stats()["loop_cache"]
        assert st["entries"] == 2
        assert st["evictions"] == 2

    def test_chain_cache_lru_bound(self):
        nodes, edges, e2n, w, s, r = ring_problem()
        rt = Runtime("vectorized", block_size=16, chain_cache_entries=1)
        out1 = Dat(edges, 1, name="out1")
        out2 = Dat(edges, 1, name="out2")
        for out in (out1, out2):  # two distinct trace signatures
            with rt.chain():
                par_loop(chain_scale, edges,
                         arg_dat(w, IDX_ID, None, READ),
                         arg_dat(out, IDX_ID, None, WRITE), runtime=rt)
        st = rt.stats()["chain_cache"]
        assert st["entries"] == 1
        assert st["evictions"] == 1

    def test_stats_exposes_all_levels(self):
        rt = Runtime("vectorized")
        st = rt.stats()
        for level in ("loop_cache", "plan_cache", "chain_cache"):
            assert {"hits", "misses", "evictions", "entries",
                    "max_entries"} <= set(st[level])
        assert "kernels" in st

    def test_clear_caches_clears_chains(self):
        nodes, edges, e2n, w, s, r = ring_problem()
        rt = Runtime("vectorized", block_size=16)
        with rt.chain():
            par_loop(chain_scale, edges,
                     arg_dat(w, IDX_ID, None, READ),
                     arg_dat(s, IDX_ID, None, WRITE), runtime=rt)
        assert rt.stats()["chain_cache"]["entries"] == 1
        rt.clear_caches()
        assert rt.stats()["chain_cache"]["entries"] == 0


# ----------------------------------------------------------------------
# Distributed chains: frontier-batched halo exchanges
# ----------------------------------------------------------------------
class TestDistributedChain:
    def test_chained_dist_airfoil_matches_serial_with_fewer_messages(self):
        from repro.apps.airfoil import AirfoilSim, DistributedAirfoilSim
        from repro.mesh import make_airfoil_mesh
        from repro.partition import rcb_partition

        serial = AirfoilSim(
            make_airfoil_mesh(12, 6),
            runtime=Runtime("vectorized", block_size=32), chained=False,
        )
        serial.run(3)

        results = {}
        for chained in (False, True):
            mesh = make_airfoil_mesh(12, 6)
            parts = rcb_partition(mesh.cell_centroids(), 3)
            dist = DistributedAirfoilSim(
                mesh, parts, 3, block_size=32, chained=chained
            )
            dist.run(3)
            results[chained] = (
                dist.fetch_q(),
                dist.ctx.comm.stats.messages,
                dist.rms_history,
            )
        np.testing.assert_allclose(
            results[True][0], serial.q, rtol=1e-10, atol=1e-12
        )
        np.testing.assert_allclose(
            results[True][0], results[False][0], rtol=0, atol=0
        )
        assert results[True][2] == results[False][2]
        # Frontier batching must strictly reduce the message count.
        assert 0 < results[True][1] < results[False][1]

    def test_dist_chain_barrier_flushes_on_fetch(self):
        from repro.apps.airfoil import DistributedAirfoilSim
        from repro.mesh import make_airfoil_mesh
        from repro.partition import rcb_partition

        mesh = make_airfoil_mesh(10, 5)
        parts = rcb_partition(mesh.cell_centroids(), 2)
        dist = DistributedAirfoilSim(mesh, parts, 2, block_size=32,
                                     chained=True)
        s = dist.serial.state
        loops = dist.serial._loop_args()
        with dist.ctx.chain() as ch:
            set_, *args = loops["save_soln"]
            dist.ctx.par_loop(dist.serial.kernels["save_soln"], set_, *args)
            assert len(ch) == 1
            q_old = dist.ctx.fetch(s.p_qold)  # local-dat barrier -> flush
            assert len(ch) == 0
        np.testing.assert_allclose(q_old, dist.ctx.fetch(s.p_q))
