"""Unit tests for backend internals: gather/scatter machinery, stats."""

import numpy as np
import pytest

from repro.backends.base import (
    LoopStats,
    gather_batch,
    run_scalar_element,
    scatter_batch,
)
from repro.core import (
    INC,
    MAX,
    MIN,
    READ,
    RW,
    WRITE,
    Dat,
    Global,
    Map,
    Set,
    arg_dat,
    arg_gbl,
)
from repro.core.access import IDX_ALL, IDX_ID


@pytest.fixture
def problem():
    nodes = Set(6, "nodes")
    elems = Set(4, "elems")
    conn = np.array([[0, 1], [2, 3], [4, 5], [0, 5]])
    m = Map(elems, nodes, 2, conn, "m")
    return nodes, elems, m


class TestGatherBatch:
    def test_direct_contiguous_is_view(self, problem):
        nodes, elems, m = problem
        d = Dat(elems, 2, np.arange(8.0))
        batch = gather_batch(
            [arg_dat(d, IDX_ID, None, RW)], np.arange(1, 3)
        )
        # Mutating the batch array must hit the Dat directly (view).
        batch.arrays[0][0, 0] = 99.0
        assert d.data[1, 0] == 99.0
        assert not batch.writebacks  # views need no writeback

    def test_direct_noncontiguous_copies_with_writeback(self, problem):
        nodes, elems, m = problem
        d = Dat(elems, 1, np.arange(4.0))
        elems_sel = np.array([3, 0])
        batch = gather_batch([arg_dat(d, IDX_ID, None, WRITE)], elems_sel)
        batch.arrays[0][...] = -1.0
        assert d.data[3, 0] == 3.0  # untouched until scatter
        scatter_batch([arg_dat(d, IDX_ID, None, WRITE)], batch, {})
        assert d.data[3, 0] == -1.0 and d.data[0, 0] == -1.0
        assert d.data[1, 0] == 1.0

    def test_indirect_inc_starts_zeroed(self, problem):
        nodes, elems, m = problem
        d = Dat(nodes, 2, np.ones((6, 2)))
        batch = gather_batch([arg_dat(d, 0, m, INC)], np.arange(4))
        assert (batch.arrays[0] == 0).all()
        assert len(batch.writebacks) == 1

    def test_indirect_read_gathers_values(self, problem):
        nodes, elems, m = problem
        d = Dat(nodes, 1, np.arange(6.0))
        batch = gather_batch([arg_dat(d, 1, m, READ)], np.arange(4))
        np.testing.assert_array_equal(
            batch.arrays[0].ravel(), [1, 3, 5, 5]
        )
        assert not batch.writebacks

    def test_vector_arg_shapes(self, problem):
        nodes, elems, m = problem
        d = Dat(nodes, 3)
        batch = gather_batch([arg_dat(d, IDX_ALL, m, READ)], np.arange(2))
        assert batch.arrays[0].shape == (2, 2, 3)

    def test_global_read_passes_raw(self, problem):
        nodes, elems, m = problem
        gbl = Global(2, 7.0)
        batch = gather_batch([arg_gbl(gbl, READ)], np.arange(3))
        assert batch.arrays[0] is gbl.data

    def test_reduction_accumulators(self, problem):
        nodes, elems, m = problem
        gmin = Global(1)
        gmin.data[:] = gmin.identity_for(MIN)
        batch = gather_batch([arg_gbl(gmin, MIN)], np.arange(3))
        assert batch.arrays[0].shape == (3, 1)
        assert (batch.arrays[0] == np.finfo(np.float64).max).all()
        assert batch.reduction_slots == [0]


class TestScatterBatch:
    def test_inc_serialized_handles_duplicates(self, problem):
        nodes, elems, m = problem
        d = Dat(nodes, 1)
        arg = arg_dat(d, 0, m, INC)
        batch = gather_batch([arg], np.array([0, 3]))  # both hit node 0
        batch.arrays[0][:, 0] = 1.0
        scatter_batch([arg], batch, {}, serialize_inc=True)
        assert d.data[0, 0] == 2.0  # both increments accumulated

    def test_reduction_folding(self, problem):
        nodes, elems, m = problem
        gsum = Global(1, 0.0)
        gmax = Global(1)
        gmax.data[:] = gmax.identity_for(MAX)
        args = [arg_gbl(gsum, INC), arg_gbl(gmax, MAX)]
        batch = gather_batch(args, np.arange(3))
        batch.arrays[0][:, 0] = [1.0, 2.0, 3.0]
        batch.arrays[1][:, 0] = [5.0, -1.0, 2.0]
        reductions = {0: gsum.identity_for(INC), 1: gmax.identity_for(MAX)}
        scatter_batch(args, batch, reductions)
        assert reductions[0][0] == 6.0
        assert reductions[1][0] == 5.0


class TestRunScalarElement:
    def test_vector_inc_writeback(self, problem):
        nodes, elems, m = problem
        d = Dat(nodes, 1, np.ones((6, 1)))
        arg = arg_dat(d, IDX_ALL, m, INC)

        def k(outs):
            outs[0][0] += 10.0
            outs[1][0] += 20.0

        run_scalar_element(k, [arg], 0, {})
        assert d.data[0, 0] == 11.0
        assert d.data[1, 0] == 21.0

    def test_vector_inc_duplicate_slots_accumulate(self):
        nodes = Set(2, "n")
        elems = Set(1, "e")
        m = Map(elems, nodes, 2, np.array([[1, 1]]), "deg")
        d = Dat(nodes, 1)
        arg = arg_dat(d, IDX_ALL, m, INC)

        def k(outs):
            outs[0][0] += 1.0
            outs[1][0] += 2.0

        run_scalar_element(k, [arg], 0, {})
        assert d.data[1, 0] == 3.0  # both slots accumulate

    def test_vector_write_writeback(self, problem):
        nodes, elems, m = problem
        d = Dat(nodes, 1)
        arg = arg_dat(d, IDX_ALL, m, RW)

        def k(vals):
            vals[:, 0] = 7.0

        run_scalar_element(k, [arg], 1, {})
        assert d.data[2, 0] == 7.0 and d.data[3, 0] == 7.0
        assert d.data[0, 0] == 0.0


class TestLoopStats:
    def test_record_accumulates(self):
        s = LoopStats()
        s.record(0.5, 100)
        s.record(0.25, 50)
        assert s.calls == 2
        assert s.elapsed == 0.75
        assert s.elements == 150

    def test_stats_partial_range(self):
        # start_element execution records only the executed tail.
        from repro.core import Runtime, kernel, par_loop

        @kernel("partial")
        def partial(x):
            x[0] = 1.0

        s = Set(10, "s")
        d = Dat(s, 1)
        rt = Runtime("sequential")
        par_loop(partial, s, arg_dat(d, IDX_ID, None, WRITE),
                 runtime=rt, start_element=7)
        assert rt.backend.stats["partial"].elements == 3
