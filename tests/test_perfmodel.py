"""Unit tests for the performance model: specs, transfers, predictions."""

import numpy as np
import pytest

from repro.core import INC, READ, RW, Dat, Global, Map, Set, arg_dat, arg_gbl
from repro.core.access import IDX_ALL, IDX_ID
from repro.perfmodel import (
    AUTOVEC_OPENMP,
    CALIBRATION,
    CUDA,
    MACHINES,
    OPENCL,
    SCALAR_MPI,
    SCALAR_OPENMP,
    VEC_MPI,
    VEC_OPENMP,
    airfoil_workload,
    analyze_loop,
    classify_loop,
    indirect_inc_values,
    predict_app,
    predict_kernel,
    table1_rows,
    volna_workload,
)


class TestMachines:
    def test_four_platforms(self):
        assert set(MACHINES) == {"CPU 1", "CPU 2", "Xeon Phi", "K40"}

    def test_table1_values(self):
        cpu1 = MACHINES["CPU 1"]
        assert cpu1.peak_gflops(np.float64) == 240.0
        assert cpu1.peak_gflops(np.float32) == 480.0
        assert cpu1.lanes(np.float64) == 4
        assert cpu1.lanes(np.float32) == 8
        phi = MACHINES["Xeon Phi"]
        assert phi.lanes(np.float32) == 16
        assert phi.stream_gbs == 171.0

    def test_flop_per_byte_matches_paper(self):
        # Table I: CPU1 3.42(6.48), CPU2 5.43(9.34), Phi 4.87(10.1),
        # K40 6.35(16.3) — computed as GEMM / STREAM.
        expect = {
            "CPU 1": (3.42, 6.48), "CPU 2": (5.43, 9.34),
            "Xeon Phi": (4.87, 10.1), "K40": (6.35, 16.3),
        }
        for name, (dp, sp) in expect.items():
            m = MACHINES[name]
            # The paper's ratios differ from GEMM/STREAM by up to ~9%
            # (likely computed from slightly different measurements).
            assert m.flop_per_byte_dp == pytest.approx(dp, rel=0.1)
            assert m.flop_per_byte_sp == pytest.approx(sp, rel=0.1)

    def test_table1_rows_render(self):
        rows = table1_rows()
        assert len(rows) == 4
        assert rows[0]["System"] == "CPU 1"


class TestTransferAnalysis:
    def setup_method(self):
        self.nodes = Set(10, "nodes")
        self.edges = Set(20, "edges")
        conn = np.random.default_rng(0).integers(0, 10, (20, 2))
        self.e2n = Map(self.edges, self.nodes, 2, conn, "e2n")
        self.names = {self.nodes: "nodes", self.edges: "edges"}

    def test_per_element_counts(self):
        w = Dat(self.edges, 3)
        x = Dat(self.nodes, 2)
        acc = Dat(self.nodes, 4)
        args = [
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(x, 0, self.e2n, READ),
            arg_dat(x, 1, self.e2n, READ),
            arg_dat(acc, 0, self.e2n, INC),
        ]
        lt = analyze_loop("edges", args, self.names)
        assert lt.direct_read == 3
        assert lt.direct_write == 0
        assert lt.indirect_read == 2 + 2 + 4  # INC reads too
        assert lt.indirect_write == 4
        assert lt.per_element_values == 15
        assert lt.per_element_bytes(8) == 120

    def test_vector_arg_counts_all_slots(self):
        x = Dat(self.nodes, 2)
        args = [arg_dat(x, IDX_ALL, self.e2n, READ)]
        lt = analyze_loop("edges", args, self.names)
        assert lt.indirect_read == 4  # 2 slots x dim 2

    def test_rw_counts_both_directions(self):
        w = Dat(self.edges, 2)
        lt = analyze_loop(
            "edges", [arg_dat(w, IDX_ID, None, RW)], self.names
        )
        assert lt.direct_read == 2 and lt.direct_write == 2

    def test_unique_accounting_dedups_by_dat(self):
        x = Dat(self.nodes, 2)
        args = [
            arg_dat(x, 0, self.e2n, READ),
            arg_dat(x, 1, self.e2n, READ),
        ]
        lt = analyze_loop("edges", args, self.names)
        # x counted once per touched node, not once per slot.
        touched = np.unique(self.e2n.values).size
        expect = touched / self.edges.size * 2  # dim 2, read only
        assert lt.unique_per_elem["nodes"] == pytest.approx(expect)

    def test_useful_bytes_caps_at_set_size(self):
        x = Dat(self.nodes, 2)
        lt = analyze_loop(
            "edges",
            [arg_dat(x, 0, self.e2n, READ), arg_dat(x, 1, self.e2n, READ)],
            self.names,
        )
        huge = lt.useful_bytes(10**9, {"nodes": 100, "edges": 10**9}, 8)
        assert huge == 100 * 2 * 8  # capped at the whole set once

    def test_globals_ignored(self):
        g = Global(1)
        lt = analyze_loop("edges", [arg_gbl(g, INC)], self.names)
        assert lt.per_element_values == 0

    def test_classify(self):
        w = Dat(self.edges, 1)
        x = Dat(self.nodes, 1)
        direct = [arg_dat(w, IDX_ID, None, READ)]
        gather = direct + [arg_dat(x, 0, self.e2n, READ)]
        scatter = direct + [arg_dat(x, 0, self.e2n, INC)]
        assert classify_loop(direct) == "direct"
        assert classify_loop(gather) == "gather"
        assert classify_loop(scatter) == "scatter"

    def test_indirect_inc_values(self):
        x = Dat(self.nodes, 4)
        args = [
            arg_dat(x, 0, self.e2n, INC),
            arg_dat(x, 1, self.e2n, INC),
        ]
        assert indirect_inc_values(args) == 8
        assert indirect_inc_values([arg_dat(x, IDX_ALL, self.e2n, INC)]) == 8

    def test_flop_per_byte(self):
        w = Dat(self.edges, 1)
        lt = analyze_loop("edges", [arg_dat(w, IDX_ID, None, RW)], self.names)
        assert lt.flop_per_byte(16, 8) == 1.0


class TestWorkloads:
    def test_airfoil_workload_sizes(self):
        wl = airfoil_workload("large")
        assert wl.sizes["cells"] == 2_880_000
        assert set(wl.kernel_names()) == {
            "save_soln", "adt_calc", "res_calc", "bres_calc", "update"
        }
        assert wl.profile("res_calc").kind == "scatter"
        assert wl.profile("adt_calc").kind == "gather"
        assert wl.profile("save_soln").kind == "direct"
        assert wl.profile("update").has_reduction

    def test_volna_workload(self):
        wl = volna_workload()
        assert wl.profile("compute_flux").kind == "gather"
        assert wl.profile("space_disc").kind == "scatter"
        assert wl.profile("numerical_flux").has_reduction
        assert wl.profile("compute_flux").calls_per_iter == 2

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            airfoil_workload().profile("nope")

    def test_res_calc_useful_bytes_matches_hand_count(self):
        # DP, 2.8M mesh: cells*(q4 + adt1 + res 4r+4w) + nodes*2 = 345 MB.
        wl = airfoil_workload("large")
        p = wl.profile("res_calc")
        got = p.transfer.useful_bytes(
            wl.sizes["edges"], wl.sizes, 8
        )
        expect = (wl.sizes["cells"] * 13 + wl.sizes["nodes"] * 2) * 8
        assert got == pytest.approx(expect, rel=0.02)


class TestPredictions:
    @pytest.fixture(scope="class")
    def wl(self):
        return airfoil_workload("large")

    def test_scalar_cpu1_anchors(self, wl):
        # Within 25% of Table V's CPU 1 column.
        pred = predict_app(wl, MACHINES["CPU 1"], SCALAR_MPI, np.float64)
        anchors = {"save_soln": 4.0, "adt_calc": 24.6, "res_calc": 25.2,
                   "update": 14.05}
        for name, paper in anchors.items():
            assert pred.kernels[name].time_s == pytest.approx(
                paper, rel=0.25
            ), name

    def test_bottleneck_classification(self, wl):
        pred = predict_app(wl, MACHINES["CPU 1"], SCALAR_MPI, np.float64)
        assert pred.kernels["adt_calc"].bound == "compute"
        assert pred.kernels["save_soln"].bound == "bandwidth"
        # Vectorization turns adt_calc bandwidth-bound on CPU 2.
        pred2 = predict_app(wl, MACHINES["CPU 2"], VEC_MPI, np.float64)
        assert pred2.kernels["adt_calc"].bound == "bandwidth"

    def test_vectorization_speedup_bands(self, wl):
        for m, dtype, lo, hi in [
            (MACHINES["CPU 1"], np.float32, 1.5, 2.4),
            (MACHINES["CPU 1"], np.float64, 1.1, 1.5),
            (MACHINES["CPU 2"], np.float32, 1.4, 2.2),
        ]:
            s = (
                predict_app(wl, m, SCALAR_MPI, dtype).total_s
                / predict_app(wl, m, VEC_MPI, dtype).total_s
            )
            assert lo <= s <= hi, (m.name, dtype, s)
        phi = MACHINES["Xeon Phi"]
        s = (
            predict_app(wl, phi, SCALAR_OPENMP, np.float32).total_s
            / predict_app(wl, phi, VEC_OPENMP, np.float32).total_s
        )
        assert 1.9 <= s <= 2.5

    def test_autovec_worse_than_scalar_on_phi(self, wl):
        phi = MACHINES["Xeon Phi"]
        assert (
            predict_app(wl, phi, AUTOVEC_OPENMP).total_s
            > predict_app(wl, phi, SCALAR_OPENMP).total_s
        )

    def test_opencl_between_scalar_and_intrinsics_on_phi(self, wl):
        phi = MACHINES["Xeon Phi"]
        scalar = predict_app(wl, phi, SCALAR_OPENMP).total_s
        ocl = predict_app(wl, phi, OPENCL).total_s
        intr = predict_app(wl, phi, VEC_OPENMP).total_s
        assert intr < ocl < scalar

    def test_small_problem_hurts_phi_more(self, wl):
        small = airfoil_workload("small")
        phi = MACHINES["Xeon Phi"]
        cpu = MACHINES["CPU 1"]
        phi_ratio = (
            4 * predict_app(small, phi, VEC_OPENMP).total_s
            / predict_app(wl, phi, VEC_OPENMP).total_s
        )
        cpu_ratio = (
            4 * predict_app(small, cpu, VEC_MPI).total_s
            / predict_app(wl, cpu, VEC_MPI).total_s
        )
        assert phi_ratio > cpu_ratio > 0.95

    def test_mpi_wait_accounted(self, wl):
        pred = predict_app(wl, MACHINES["Xeon Phi"], VEC_OPENMP)
        assert pred.mpi_wait_s > 0
        assert pred.total_s > sum(k.time_s for k in pred.kernels.values())
        # CUDA has no MPI layer in these single-device runs.
        assert predict_app(wl, MACHINES["K40"], CUDA).mpi_wait_s == 0

    def test_sp_faster_than_dp_everywhere(self, wl):
        for mname, cfg in [("CPU 1", VEC_MPI), ("Xeon Phi", VEC_OPENMP),
                           ("K40", CUDA)]:
            m = MACHINES[mname]
            sp = predict_app(wl, m, cfg, np.float32).total_s
            dp = predict_app(wl, m, cfg, np.float64).total_s
            assert sp < dp

    def test_vectorized_sp_near_2x_dp(self, wl):
        # Paper: vectorized code shows 1.8-2.1x going DP -> SP.
        m = MACHINES["CPU 1"]
        sp = predict_app(wl, m, VEC_MPI, np.float32).total_s
        dp = predict_app(wl, m, VEC_MPI, np.float64).total_s
        assert 1.6 <= dp / sp <= 2.2

    def test_calibration_tables_complete(self):
        for arch, cal in CALIBRATION.items():
            for table in (cal.mem_eff_scalar, cal.mem_eff_vec,
                          cal.mem_eff_auto):
                assert set(table) == {"direct", "gather", "scatter"}, arch
            assert set(cal.scheme_eff) == {
                "two_level", "full_permute", "block_permute"
            }

    def test_kernel_prediction_fields(self, wl):
        p = predict_kernel(
            wl.profile("res_calc"), MACHINES["CPU 1"], VEC_MPI, wl.sizes
        )
        assert p.time_s > 0 and p.bandwidth_gbs > 0 and p.gflops > 0
        assert p.vectorized
        assert p.time_per_call_s * 2000 == pytest.approx(p.time_s)
