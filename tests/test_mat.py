"""Mat: sparsity, deterministic assembly, Dirichlet, the solver view.

The sparse-matrix argument subsystem (core/mat.py) is the aero
workload's foundation: element-local staging through ``arg_mat`` must be
race-free on every backend, the canonical fold must produce the same
CSR no matter how the loop executed, and the padded-row solver view
must reproduce the exact matrix action.
"""

import numpy as np
import pytest

from repro.core import (
    INC,
    READ,
    Access,
    Dat,
    Map,
    Mat,
    Runtime,
    Set,
    arg_dat,
    arg_mat,
    kernel,
    par_loop,
)
from repro.core.access import IDX_ID
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX, runtime_for


def two_quads():
    """Two quads sharing an edge: 6 nodes, the smallest FEM patch."""
    nodes = Set(6, "nodes")
    cells = Set(2, "cells")
    c2n = Map(cells, nodes, 4, np.array([[0, 1, 4, 3], [1, 2, 5, 4]]), "c2n")
    return nodes, cells, c2n


@kernel("count_pairs")
def count_pairs(K):
    for i in range(4):
        for j in range(4):
            K[4 * i + j] += 1.0


@kernel("weighted_pairs")
def weighted_pairs(w, K):
    for i in range(4):
        for j in range(4):
            K[4 * i + j] += w[0] * (1.0 + 0.25 * (4 * i + j))


class TestSparsity:
    def test_pattern_and_dense_reference(self):
        nodes, cells, c2n = two_quads()
        mat = Mat(c2n, c2n, name="K")
        par_loop(count_pairs, cells, arg_mat(mat, INC),
                 runtime=Runtime("sequential"))
        mat.assemble()
        ref = np.zeros((6, 6))
        for e in range(2):
            for i in c2n.values[e]:
                for j in c2n.values[e]:
                    ref[i, j] += 1.0
        np.testing.assert_array_equal(mat.todense(), ref)
        # The sparsity is exactly the nonzero pattern of the reference.
        assert mat.nnz == int((ref != 0).sum())
        assert mat.indptr.shape == (7,)
        assert mat.indptr[-1] == mat.nnz

    def test_csr_row_sorted(self):
        _, _, c2n = two_quads()
        mat = Mat(c2n, c2n)
        indptr, indices = mat.indptr, mat.indices
        for r in range(mat.nrows):
            row = indices[indptr[r]:indptr[r + 1]]
            assert np.all(np.diff(row) > 0), "CSR columns must be sorted"

    def test_declaration_validation(self):
        nodes, cells, c2n = two_quads()
        other = Set(3, "other")
        o2n = Map(other, nodes, 2, np.zeros((3, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="share their from_set"):
            Mat(c2n, o2n)
        with pytest.raises(TypeError):
            Mat(c2n, None)

    def test_arg_mat_validation(self):
        _, _, c2n = two_quads()
        mat = Mat(c2n, c2n)
        with pytest.raises(ValueError, match="INC"):
            arg_mat(mat, Access.READ)
        with pytest.raises(TypeError):
            arg_mat(object())

    def test_rectangular_solver_view_rejected(self):
        nodes, cells, c2n = two_quads()
        other = Set(4, "cols")
        c2o = Map(cells, other, 2, np.array([[0, 1], [2, 3]]))
        rect = Mat(c2n, c2o)
        assert rect.nrows == 6 and rect.ncols == 4
        with pytest.raises(ValueError, match="square"):
            rect.solver_view()


class TestDeterministicAssembly:
    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    def test_bitwise_identical_across_backends(self, backend, scheme,
                                               options, layout):
        """The assembled CSR is a pure function of mesh + kernel."""
        nodes, cells, c2n = two_quads()
        ref = None
        for name, sch, opt in (("sequential", "two_level", {}),
                               (backend, scheme, options)):
            rt = runtime_for(name, sch, opt, layout=layout)
            w = Dat(cells, 1, np.array([[0.7], [1.3]]), name="w")
            mat = Mat(c2n, c2n, name="K")
            par_loop(weighted_pairs, cells,
                     arg_dat(w, IDX_ID, None, READ),
                     arg_mat(mat, INC), runtime=rt)
            vals = mat.assemble().data.copy()
            if ref is None:
                ref = vals
            else:
                np.testing.assert_array_equal(vals, ref)

    def test_accumulates_across_loops_until_zeroed(self):
        _, cells, c2n = two_quads()
        rt = Runtime("vectorized")
        mat = Mat(c2n, c2n)
        par_loop(count_pairs, cells, arg_mat(mat, INC), runtime=rt)
        par_loop(count_pairs, cells, arg_mat(mat, INC), runtime=rt)
        twice = mat.assemble().data.copy()
        mat.zero()
        par_loop(count_pairs, cells, arg_mat(mat, INC), runtime=rt)
        once = mat.assemble().data.copy()
        np.testing.assert_array_equal(twice, 2.0 * once)

    def test_assemble_flushes_pending_chain(self):
        _, cells, c2n = two_quads()
        rt = Runtime("vectorized")
        mat = Mat(c2n, c2n)
        with rt.chain():
            par_loop(count_pairs, cells, arg_mat(mat, INC), runtime=rt)
            mat.assemble()  # staging read barrier flushes the trace
            assert mat.data.sum() == 32.0  # 2 cells x 16 entries


class TestDirichletAndAction:
    def build(self, dirichlet=None):
        _, cells, c2n = two_quads()
        mat = Mat(c2n, c2n)
        par_loop(count_pairs, cells, arg_mat(mat, INC),
                 runtime=Runtime("sequential"))
        mat.assemble()
        if dirichlet is not None:
            mat.set_dirichlet(dirichlet)
        return mat

    def test_set_dirichlet_rows_cols(self):
        mask = np.array([1, 0, 0, 0, 0, 1], dtype=bool)
        mat = self.build(mask)
        dense = mat.todense()
        eye = np.eye(6)
        np.testing.assert_array_equal(dense[0], eye[0])
        np.testing.assert_array_equal(dense[5], eye[5])
        assert np.all(dense[1:5, 0] == 0.0)
        assert np.all(dense[1:5, 5] == 0.0)
        # Symmetry survives the symmetric elimination.
        np.testing.assert_array_equal(dense, dense.T)

    def test_set_dirichlet_shape_check(self):
        mat = self.build()
        with pytest.raises(ValueError, match="row_mask"):
            mat.set_dirichlet(np.zeros(4, dtype=bool))

    def test_matmul_matches_dense(self):
        mat = self.build()
        x = np.linspace(-1.0, 1.0, 6)
        np.testing.assert_allclose(mat @ x, mat.todense() @ x, atol=1e-12)
        with pytest.raises(ValueError, match="columns"):
            mat @ np.zeros(5)

    def test_solver_view_padding_is_inert(self):
        mat = self.build()
        row_slots, row_cols = mat.solver_view()
        assert row_slots.arity == mat.max_row_nnz == row_cols.arity
        # Pad slots point at the always-zero trailing value.
        vals = mat.values.data[:, 0]
        assert vals[mat.nnz] == 0.0
        x = np.linspace(0.5, 3.0, 6)
        y = np.zeros(6)
        for r in range(6):
            for k in range(row_slots.arity):
                y[r] += vals[row_slots.values[r, k]] * x[row_cols.values[r, k]]
        np.testing.assert_allclose(y, mat @ x)
        # The view is cached (connectivity only — one build).
        assert mat.solver_view()[0] is row_slots


class TestDirectIncBatchedPath:
    """The backend fix the Mat argument rides on: non-contiguous direct
    INC must scatter only the kernel's delta (a gathered copy would be
    double-counted by the scatter_add writeback)."""

    @pytest.mark.parametrize("backend,scheme,options", [
        ("vectorized", "two_level", {}),
        ("vectorized", "full_permute", {}),
        ("simt", "two_level", {"device": "phi"}),
        ("autovec", "full_permute", {}),
    ])
    def test_direct_inc_with_racing_arg(self, backend, scheme, options):
        """A loop with an indirect INC (racing -> colored non-contiguous
        phases) plus a *direct* INC argument: the direct increments must
        land exactly once."""

        @kernel("inc_both")
        def inc_both(d, a):
            d[0] += 1.5
            a[0] += 1.0

        n = 37
        elems = Set(n, "elems")
        targets = Set(5, "targets")
        m = Map(elems, targets, 1,
                (np.arange(n) % 5).reshape(-1, 1), "m")
        ref_d = np.full((n, 1), 1.5) + 2.0
        for name, sch, opt in (("sequential", "two_level", {}),
                               (backend, scheme, options)):
            rt = runtime_for(name, sch, opt, block_size=8)
            d = Dat(elems, 1, 2.0, name="d")
            acc = Dat(targets, 1, name="acc")
            par_loop(inc_both, elems,
                     arg_dat(d, IDX_ID, None, INC),
                     arg_dat(acc, 0, m, INC), runtime=rt)
            np.testing.assert_array_equal(d.data, ref_d)
            np.testing.assert_allclose(
                acc.data[:, 0], np.bincount(np.arange(n) % 5).astype(float)
            )
