"""Golden-source snapshots for both kernelc emitters.

Every generated artifact — the specialized scalar loop stubs and the
batched vector kernels for the Airfoil and Volna loop shapes — is
snapshotted as text under ``tests/golden/`` and diffed in CI, so any
codegen change shows up as a reviewable source diff rather than as an
opaque behavioural shift.

Regenerate intentionally changed snapshots with::

    REGEN_GOLDEN=1 python -m pytest tests/test_golden_codegen.py
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import INC, MIN, READ, RW, WRITE, Dat, Global, Map, Set
from repro.core.access import IDX_ALL, IDX_ID, arg_dat, arg_gbl
from repro.kernelc import emit_vector_source, generate_loop_source, kernel_ir

GOLDEN_DIR = Path(__file__).parent / "golden"


def _assert_golden(name: str, source: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(source)
        return
    assert path.exists(), (
        f"golden snapshot {name} missing; regenerate with "
        f"REGEN_GOLDEN=1 python -m pytest tests/test_golden_codegen.py"
    )
    assert source == path.read_text(), (
        f"generated source for {name} drifted from tests/golden/{name}; "
        f"if intentional, regenerate with REGEN_GOLDEN=1"
    )


# ----------------------------------------------------------------------
# Vector emitter snapshots: one per app kernel, at the driver's shapes.
# ----------------------------------------------------------------------
AIRFOIL_SHAPES = {
    "save_soln": [(True, 4), (True, 4)],
    "adt_calc": [(True, None), (True, 4), (True, 1)],
    "res_calc": [(True, 2), (True, 2), (True, 4), (True, 4), (True, 1),
                 (True, 1), (True, 4), (True, 4)],
    "bres_calc": [(True, 2), (True, 2), (True, 4), (True, 1), (True, 4),
                  (True, 1)],
    "update": [(True, 4), (True, 4), (True, 4), (True, 1), (True, 1)],
}

VOLNA_SHAPES = {
    "compute_flux": [(True, 4), (True, 4), (True, 4), (True, 4), (True, 2)],
    "numerical_flux": [(True, 1), (True, None), (True, 4), (True, 1)],
    "space_disc": [(True, 4), (True, 4), (True, 4), (True, 4), (True, 1),
                   (True, 1), (True, 4), (True, 4)],
    "RK_1": [(True, 4), (True, 4), (True, 4), (True, 4), (False, None)],
    "RK_2": [(True, 4), (True, 4), (True, 4), (True, 4), (False, None)],
    "sim_1": [(True, 4), (True, 4)],
}


AERO_SHAPES = {
    "rho_calc": [(True, None), (True, None), (True, 1)],
    "res_calc": [(True, None), (True, 1), (True, 16)],
    "rhs_calc": [(True, 1), (True, 1), (True, 1), (True, 1)],
    "apply_bc": [(True, 1), (True, 1), (True, 1)],
}


class TestVectorGolden:
    @pytest.mark.parametrize("name", sorted(AIRFOIL_SHAPES))
    def test_airfoil(self, name):
        from repro.apps.airfoil.kernels import make_kernels

        source = emit_vector_source(
            kernel_ir(make_kernels()[name]), AIRFOIL_SHAPES[name]
        )
        _assert_golden(f"vec_airfoil_{name}.py.txt", source)

    @pytest.mark.parametrize("name", sorted(VOLNA_SHAPES))
    def test_volna(self, name):
        from repro.apps.volna.kernels import make_kernels

        source = emit_vector_source(
            kernel_ir(make_kernels()[name]), VOLNA_SHAPES[name]
        )
        _assert_golden(f"vec_volna_{name}.py.txt", source)

    @pytest.mark.parametrize("name", sorted(AERO_SHAPES))
    def test_aero(self, name):
        """Aero pins the local-matrix lowering: ``K[4*i + j] += ...``
        stores become lane-sliced index arithmetic in the vector form."""
        from repro.apps.aero.kernels import make_kernels

        source = emit_vector_source(
            kernel_ir(make_kernels()[name]), AERO_SHAPES[name]
        )
        _assert_golden(f"vec_aero_{name}.py.txt", source)

    def test_spmv(self):
        """The solver's padded-row SpMV (width-specialized)."""
        from repro.solve import make_spmv_kernel

        source = emit_vector_source(
            kernel_ir(make_spmv_kernel(9)),
            [(True, None), (True, None), (True, 1)],
        )
        _assert_golden("vec_solve_spmv_w9.py.txt", source)

    # Matfree kernels at the aero driver's shapes (W=9 row width,
    # C=4 fold contributions): gathered IDX_ALL operands are (True,
    # None); the per-row coefficient rows are fixed width-9 dats.
    MATFREE_SHAPES = {
        "coeffs": [(True, None), (True, None), (True, None),
                   (True, None), (True, 9), (True, 9), (True, 9)],
        "apply": [(True, 9), (True, None), (True, 1)],
        "action": [(True, None), (True, None), (True, None),
                   (True, None), (True, 1)],
    }

    @pytest.mark.parametrize("name", sorted(MATFREE_SHAPES))
    def test_matfree(self, name):
        """The matrix-free A·p kernels: the coefficient build (the
        fold-table sum the assembled oracle replicates), the fixed-width
        row MAC, and the fused single-pass action."""
        from repro.solve import make_matfree_kernels

        kernels = make_matfree_kernels(9, 4, 4)
        source = emit_vector_source(
            kernel_ir(kernels[name]), self.MATFREE_SHAPES[name]
        )
        _assert_golden(f"vec_matfree_{name}_w9c4.py.txt", source)


# ----------------------------------------------------------------------
# Scalar stub snapshots: the Fig 2b argument forms.
# ----------------------------------------------------------------------
class TestStubGolden:
    @pytest.fixture
    def problem(self):
        nodes = Set(8, "nodes")
        edges = Set(10, "edges")
        conn = np.zeros((10, 2), dtype=np.int64)
        m = Map(edges, nodes, 2, conn, "m")
        w = Dat(edges, 1, name="w")
        x = Dat(nodes, 2, name="x")
        return nodes, edges, m, w, x

    def test_indirect_inc_stub(self, problem):
        nodes, edges, m, w, x = problem
        acc = Dat(nodes, 4, name="acc")
        args = [
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(x, 0, m, READ),
            arg_dat(x, 1, m, READ),
            arg_dat(acc, 0, m, INC),
            arg_dat(acc, 1, m, INC),
        ]
        _assert_golden(
            "stub_indirect_inc.py.txt", generate_loop_source("res_calc", args)
        )

    def test_vector_inc_stub(self, problem):
        nodes, edges, m, w, x = problem
        acc = Dat(nodes, 2, name="acc")
        args = [
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(acc, IDX_ALL, m, INC),
        ]
        _assert_golden(
            "stub_vector_inc.py.txt", generate_loop_source("scatter_all", args)
        )

    def test_vector_read_and_reduction_stub(self, problem):
        nodes, edges, m, w, x = problem
        g = Global(1, name="dt")
        out = Dat(edges, 4, name="out")
        args = [
            arg_dat(x, IDX_ALL, m, READ),
            arg_dat(out, IDX_ID, None, WRITE),
            arg_dat(out, IDX_ID, None, RW),
            arg_gbl(g, MIN),
        ]
        _assert_golden(
            "stub_vector_read_reduction.py.txt",
            generate_loop_source("numerical_flux", args),
        )


# ----------------------------------------------------------------------
# Native emitter snapshots: one C translation unit per traced app chain.
# ----------------------------------------------------------------------
class TestNativeGolden:
    """Whole-chain C programs for every chain the three apps trace.

    Emission is pure (no compiler needed), so these run everywhere and
    pin the full native surface: pointer-table layout, per-loop bodies,
    reduction plumbing and the fused/tiled entry points.  A chain's
    on-disk cache key is the sha256 of exactly this text, so any diff
    here is also a cache-key change.
    """

    @staticmethod
    def _traced_chains(app):
        from repro.core import Runtime
        from repro.mesh import make_airfoil_mesh, make_tri_mesh

        rt = Runtime("sequential")
        if app == "airfoil":
            from repro.apps.airfoil import AirfoilSim

            sim = AirfoilSim(make_airfoil_mesh(12, 6), runtime=rt,
                             chained=True)
        elif app == "volna":
            from repro.apps.volna import VolnaSim

            sim = VolnaSim(make_tri_mesh(8, 6), runtime=rt, chained=True)
        elif app == "aero":
            from repro.apps.aero import AeroSim

            sim = AeroSim(make_airfoil_mesh(10, 5), runtime=rt,
                          chained=True)
        else:  # aeromf: the matrix-free operator pipeline
            from repro.apps.aero import AeroSim

            sim = AeroSim(make_airfoil_mesh(10, 5), runtime=rt,
                          chained=True, operator="matfree")
        sim.run(1)
        return list(rt._chains.values())

    @pytest.mark.parametrize("app", ["airfoil", "volna", "aero", "aeromf"])
    def test_app_chains(self, app):
        from repro.kernelc import emit_chain_source

        chains = self._traced_chains(app)
        assert chains, f"{app} traced no chains"
        for i, compiled in enumerate(chains):
            name = f"{app}{i:02d}"
            source = emit_chain_source(compiled.loops, name=name)
            first = compiled.loops[0].kernel.name
            _assert_golden(f"native_{app}_{i:02d}_{first}.c.txt", source)

    def test_cache_key_tracks_source(self):
        """The on-disk .so key is the source hash: same text, same key;
        any textual drift (even one literal) is a new compilation."""
        from repro.kernelc import emit_chain_source, source_key

        chains = self._traced_chains("airfoil")
        source = emit_chain_source(chains[0].loops, name="airfoil00")
        again = emit_chain_source(chains[0].loops, name="airfoil00")
        assert source == again
        assert source_key(source) == source_key(again)
        assert len(source_key(source)) == 64  # sha256 hexdigest
        assert source_key(source) != source_key(source + "\n/* edit */")
