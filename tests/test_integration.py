"""Integration tests: whole-application workflows across subsystems."""

import numpy as np
import pytest

from repro.core import (
    INC,
    READ,
    WRITE,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    kernel,
    make_backend,
    par_loop,
)
from repro.core.access import IDX_ID
from repro.mpi import DistContext
from repro.partition import partition_iteration_set, rcb_partition


class TestEmptyAndTinySets:
    @pytest.mark.parametrize(
        "backend", ["sequential", "openmp", "vectorized", "simt", "autovec"]
    )
    def test_empty_set_loop(self, backend):
        s = Set(0, "empty")
        d = Dat(s, 2)

        @kernel("noop")
        def noop(x):
            x[0] = 1.0

        @noop.vectorized
        def noop_vec(x):
            x[:, 0] = 1.0

        scheme = "full_permute" if backend == "autovec" else "two_level"
        rt = Runtime(backend=backend, scheme=scheme)
        par_loop(noop, s, arg_dat(d, IDX_ID, None, WRITE), runtime=rt)
        assert d.data.size == 0

    @pytest.mark.parametrize(
        "backend", ["sequential", "vectorized", "simt"]
    )
    def test_single_element_set(self, backend):
        s = Set(1, "one")
        t = Set(1, "t")
        m = Map(s, t, 1, np.array([0]), "m")
        d = Dat(t, 1)
        w = Dat(s, 1, [3.0])

        @kernel("one")
        def one(ww, out):
            out[0] += ww[0]

        @one.vectorized
        def one_vec(ww, out):
            out[:, 0] += ww[:, 0]

        rt = Runtime(backend=backend, block_size=16)
        par_loop(one, s, arg_dat(w, IDX_ID, None, READ),
                 arg_dat(d, 0, m, INC), runtime=rt)
        assert d.data[0, 0] == 3.0

    def test_empty_distributed_rank(self):
        # More ranks than work: some ranks own nothing, must still work.
        nodes = Set(3, "nodes")
        elems = Set(2, "elems")
        m = Map(elems, nodes, 2, np.array([[0, 1], [1, 2]]), "m")
        d = Dat(nodes, 1)
        w = Dat(elems, 1, [1.0])

        @kernel("acc")
        def acc(ww, a0, a1):
            a0[0] += ww[0]
            a1[0] += ww[0]

        @acc.vectorized
        def acc_vec(ww, a0, a1):
            a0[:, 0] += ww[:, 0]
            a1[:, 0] += ww[:, 0]

        ctx = DistContext(4)
        ctx.add_set(nodes, np.array([0, 1, 2], dtype=np.int32))
        ctx.add_set(elems, np.array([0, 1], dtype=np.int32))
        ctx.add_map(m)
        ctx.add_dat(d)
        ctx.add_dat(w)
        ctx.finalize()
        ctx.par_loop(acc, elems, arg_dat(w, IDX_ID, None, READ),
                     arg_dat(d, 0, m, INC), arg_dat(d, 1, m, INC))
        np.testing.assert_allclose(ctx.fetch(d).ravel(), [1, 2, 1])


class TestErrorPropagation:
    def test_kernel_exception_propagates(self):
        s = Set(4, "s")
        d = Dat(s, 1)

        @kernel("boom")
        def boom(x):
            raise RuntimeError("kernel exploded")

        with pytest.raises(RuntimeError, match="kernel exploded"):
            par_loop(boom, s, arg_dat(d, IDX_ID, None, WRITE),
                     runtime=Runtime("sequential"))

    def test_vector_kernel_exception_propagates(self):
        s = Set(4, "s")
        d = Dat(s, 1)

        @kernel("boomv")
        def boomv(x):
            x[0] = 1.0

        @boomv.vectorized
        def boomv_vec(x):
            raise ValueError("vector form exploded")

        with pytest.raises(ValueError, match="vector form exploded"):
            par_loop(boomv, s, arg_dat(d, IDX_ID, None, WRITE),
                     runtime=Runtime("vectorized"))

    def test_mixed_dtype_dats(self):
        # float32 state + int64 flags in one loop (bres_calc pattern).
        s = Set(5, "s")
        x = Dat(s, 1, np.arange(5), dtype=np.float32)
        flag = Dat(s, 1, np.array([0, 1, 0, 1, 0]).reshape(-1, 1),
                   dtype=np.int64)
        out = Dat(s, 1, dtype=np.float32)

        @kernel("flagged")
        def flagged(xx, ff, oo):
            oo[0] = xx[0] if ff[0] == 1 else -xx[0]

        @flagged.vectorized
        def flagged_vec(xx, ff, oo):
            oo[:, 0] = np.where(ff[:, 0] == 1, xx[:, 0], -xx[:, 0])

        for bk in ("sequential", "vectorized"):
            out.zero()
            par_loop(flagged, s,
                     arg_dat(x, IDX_ID, None, READ),
                     arg_dat(flag, IDX_ID, None, READ),
                     arg_dat(out, IDX_ID, None, WRITE),
                     runtime=Runtime(bk))
            np.testing.assert_allclose(
                out.data.ravel(), [0, 1, -2, 3, -4]
            )
            assert out.dtype == np.float32


class TestLongRunConsistency:
    def test_airfoil_backends_agree_over_many_steps(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        mesh = make_airfoil_mesh(12, 6)
        a = AirfoilSim(mesh, runtime=Runtime("vectorized", block_size=64))
        b = AirfoilSim(mesh, runtime=Runtime("simt", block_size=64))
        a.run(15)
        b.run(15)
        np.testing.assert_allclose(a.q, b.q, rtol=1e-8, atol=1e-10)

    def test_volna_backends_agree_over_many_steps(self):
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_tri_mesh

        mesh = make_tri_mesh(8, 6, 100_000.0, 75_000.0)
        a = VolnaSim(mesh, dtype=np.float64,
                     runtime=Runtime("vectorized", block_size=64))
        b = VolnaSim(mesh, dtype=np.float64,
                     runtime=Runtime("openmp", block_size=64))
        a.run(10)
        b.run(10)
        np.testing.assert_allclose(a.q, b.q, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(a.dt_history, b.dt_history, rtol=1e-10)


class TestDistributedVolna:
    """Volna over the MPI substrate: cells partitioned, edges derived,
    with a MIN-reduced global time step across ranks."""

    @pytest.mark.parametrize("nranks", [2, 3])
    def test_distributed_volna_matches_serial(self, nranks):
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_tri_mesh

        def build(mesh):
            return VolnaSim(mesh, dtype=np.float64,
                            runtime=Runtime("vectorized", block_size=64))

        mesh_a = make_tri_mesh(10, 8, 100_000.0, 75_000.0)
        serial = build(mesh_a)
        serial.run(3)

        mesh_b = make_tri_mesh(10, 8, 100_000.0, 75_000.0)
        dist_sim = build(mesh_b)
        s = dist_sim.state
        cell_parts = rcb_partition(mesh_b.cell_centroids(), nranks)
        edge_parts = partition_iteration_set(
            mesh_b.map("edge2cell").values, cell_parts
        )
        ctx = DistContext(nranks, backend="vectorized", block_size=64)
        ctx.add_set(mesh_b.cells, cell_parts)
        ctx.add_set(mesh_b.edges, edge_parts)
        ctx.add_map(mesh_b.map("edge2cell"))
        ctx.add_map(mesh_b.map("cell2edge"))
        for d in (s.q, s.q_old, s.q_mid, s.q_out, s.rhs, s.flux, s.speed,
                  s.geom, s.vol):
            ctx.add_dat(d)
        ctx.finalize()

        loops = dist_sim._loop_args(s.q)
        loops_mid = dist_sim._loop_args(s.q_mid)

        def run_dist_step():
            s.dt.value = np.finfo(np.float64).max
            for name, largs in (("compute_flux", loops),
                                ("numerical_flux", loops),
                                ("space_disc", loops)):
                set_, *args = largs[name]
                ctx.par_loop(dist_sim.kernels[name], set_, *args)
            s.dt_used.value = s.dt.value
            set_, *args = loops["RK_1"]
            ctx.par_loop(dist_sim.kernels["RK_1"], set_, *args)
            for name in ("compute_flux", "numerical_flux", "space_disc",
                         "RK_2"):
                set_, *args = loops_mid[name]
                ctx.par_loop(dist_sim.kernels[name], set_, *args)

        dts = []
        for _ in range(3):
            run_dist_step()
            dts.append(float(s.dt_used.value))

        np.testing.assert_allclose(
            ctx.fetch(s.q), serial.q, rtol=1e-9, atol=1e-11
        )
        np.testing.assert_allclose(dts, serial.dt_history, rtol=1e-12)
        assert ctx.comm.stats.messages > 0
        assert ctx.comm.stats.reductions == 6  # one MIN per flux pass


class TestPlanCacheAcrossApps:
    def test_shared_runtime_many_loop_shapes(self):
        """One runtime serving both apps caches plans independently."""
        from repro.apps.airfoil import AirfoilSim
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_airfoil_mesh, make_tri_mesh

        rt = Runtime("vectorized", block_size=64)
        a = AirfoilSim(make_airfoil_mesh(10, 5), runtime=rt)
        v = VolnaSim(make_tri_mesh(6, 4, 100_000.0, 75_000.0),
                     dtype=np.float64, runtime=rt)
        a.run(2)
        v.run(2)
        misses_after_first = rt.plans.misses
        a.run(2)
        v.run(2)
        assert rt.plans.misses == misses_after_first  # all cached
        assert rt.plans.hits > 0


class TestVectorWidthMatrix:
    """Fixed register widths across apps (pre/main/post sweeps)."""

    @pytest.mark.parametrize("vec", [2, 4, 8])
    def test_volna_fixed_width(self, vec):
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_tri_mesh

        mesh = make_tri_mesh(6, 5, 100_000.0, 75_000.0)
        ref = VolnaSim(mesh, dtype=np.float64,
                       runtime=Runtime("sequential"))
        ref.run(2)
        got = VolnaSim(mesh, dtype=np.float64,
                       runtime=Runtime(make_backend("vectorized", vec=vec),
                                       block_size=32))
        got.run(2)
        np.testing.assert_allclose(got.q, ref.q, rtol=1e-10, atol=1e-12)
