"""Physics property tests for Volna's HLL Riemann solver and sources.

These pin down the numerical-scheme invariants that make the solver
trustworthy: flux consistency, rotation invariance, upwinding limits,
positivity of the wave-speed estimates, and the well-balancing of the
hydrostatic reconstruction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.volna.kernels import (
    DRY_EPS,
    GRAVITY,
    _hll_flux,
    _velocities,
)

g = GRAVITY

depths = st.floats(0.01, 5000.0)
velocities = st.floats(-50.0, 50.0)


def physical_flux(h, un, ut):
    """Exact shallow-water flux in the rotated frame."""
    return (h * un, h * un * un + 0.5 * g * h * h, h * un * ut)


class TestHLLConsistency:
    @given(depths, velocities, velocities)
    @settings(max_examples=100, deadline=None)
    def test_consistency_equal_states(self, h, un, ut):
        """F(U, U) must equal the physical flux of U."""
        f_h, f_un, f_ut, smax = _hll_flux(h, un, ut, h, un, ut, g)
        eh, eun, eut = physical_flux(h, un, ut)
        assert f_h == pytest.approx(eh, rel=1e-10, abs=1e-10)
        assert f_un == pytest.approx(eun, rel=1e-10, abs=1e-10)
        assert f_ut == pytest.approx(eut, rel=1e-10, abs=1e-10)
        assert smax >= abs(un)

    @given(depths, depths, velocities, velocities)
    @settings(max_examples=100, deadline=None)
    def test_mirror_symmetry(self, hL, hR, un, ut):
        """Mirroring left/right and the normal negates the mass flux."""
        f1 = _hll_flux(hL, un, ut, hR, -un, ut, g)
        f2 = _hll_flux(hR, un, ut, hL, -un, ut, g)
        assert f1[0] == pytest.approx(-f2[0], rel=1e-8, abs=1e-8)

    @given(depths, depths, velocities)
    @settings(max_examples=100, deadline=None)
    def test_wave_speed_bounds(self, hL, hR, un):
        """smax must bound the physical characteristic speeds."""
        _, _, _, smax = _hll_flux(hL, un, 0.0, hR, un, 0.0, g)
        assert smax >= abs(un)
        assert smax <= abs(un) + np.sqrt(g * max(hL, hR)) + 1e-9

    def test_supersonic_right_takes_left_flux(self):
        # Flow much faster than the wave speed: pure upwinding.
        h, un = 10.0, 100.0  # Froude >> 1
        f = _hll_flux(h, un, 1.0, h * 0.5, un, 2.0, g)
        e = physical_flux(h, un, 1.0)
        assert f[0] == pytest.approx(e[0])
        assert f[1] == pytest.approx(e[1])
        assert f[2] == pytest.approx(e[2])

    def test_supersonic_left_takes_right_flux(self):
        h, un = 10.0, -100.0
        f = _hll_flux(h * 0.5, un, 2.0, h, un, 1.0, g)
        e = physical_flux(h, un, 1.0)
        assert f[0] == pytest.approx(e[0])

    def test_dry_dry_gives_zero_flux(self):
        f = _hll_flux(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, g)
        assert f[0] == 0.0 and f[1] == 0.0 and f[2] == 0.0

    def test_dam_break_flux_positive(self):
        # Classic dam break: deep left, shallow right, at rest — water
        # must flow rightward (positive mass flux).
        f = _hll_flux(10.0, 0.0, 0.0, 1.0, 0.0, 0.0, g)
        assert f[0] > 0.0

    @given(depths, depths, velocities, velocities, velocities, velocities)
    @settings(max_examples=100, deadline=None)
    def test_vectorized_matches_scalar(self, hL, hR, unL, unR, utL, utR):
        scalar = _hll_flux(hL, unL, utL, hR, unR, utR, g)
        arrays = _hll_flux(
            np.array([hL]), np.array([unL]), np.array([utL]),
            np.array([hR]), np.array([unR]), np.array([utR]), g,
        )
        for s, a in zip(scalar, arrays):
            assert float(a[0]) == pytest.approx(float(s), rel=1e-12,
                                                abs=1e-12)


class TestVelocities:
    @given(st.floats(0.0, 1e-7), velocities, velocities)
    @settings(max_examples=50, deadline=None)
    def test_dry_states_zeroed(self, h, hu, hv):
        u, v = _velocities(h, hu, hv)
        if h <= DRY_EPS:
            assert u == 0.0 and v == 0.0

    @given(st.floats(0.01, 1000.0), velocities, velocities)
    @settings(max_examples=50, deadline=None)
    def test_wet_states_exact(self, h, u_true, v_true):
        u, v = _velocities(h, h * u_true, h * v_true)
        assert u == pytest.approx(u_true, rel=1e-9, abs=1e-9)
        assert v == pytest.approx(v_true, rel=1e-9, abs=1e-9)


class TestWellBalancing:
    """The discrete lake-at-rest property, per edge and globally."""

    @given(st.floats(-100.0, -1.0), st.floats(-100.0, -1.0),
           st.floats(0.0, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_reconstructed_faces_equal_at_rest(self, zb0, zb1, eta):
        # Lake at rest: h + zb = eta everywhere, u = 0.
        h0 = eta - zb0
        h1 = eta - zb1
        zf = max(zb0, zb1)
        h0s = max(h0 + zb0 - zf, 0.0)
        h1s = max(h1 + zb1 - zf, 0.0)
        # Audusse reconstruction gives identical face states...
        assert h0s == pytest.approx(h1s, rel=1e-12)
        # ...so the HLL flux reduces to pure (equal) pressure.
        f = _hll_flux(h0s, 0.0, 0.0, h1s, 0.0, 0.0, GRAVITY)
        assert f[0] == pytest.approx(0.0, abs=1e-9)

    def test_full_solver_lake_at_rest_random_bathymetry(self):
        """Global well-balancing on rough random bathymetry."""
        from repro.apps.volna import VolnaSim
        from repro.apps.volna.driver import VolnaSim as _V
        from repro.core import Runtime
        from repro.mesh import make_tri_mesh

        rng = np.random.default_rng(8)
        mesh = make_tri_mesh(9, 7, 100_000.0, 75_000.0)
        sim = VolnaSim(mesh, dtype=np.float64,
                       runtime=Runtime("vectorized"))
        # Replace the smooth scenario with rough random bathymetry at
        # rest (eta = 0 everywhere, still fully wet).
        q = sim.state.q.data
        zb = -(50.0 + 200.0 * rng.random(mesh.cells.size))
        q[: mesh.cells.size, 3] = zb
        q[: mesh.cells.size, 0] = -zb
        q[: mesh.cells.size, 1:3] = 0.0
        h0 = sim.q[:, 0].copy()
        sim.run(4)
        np.testing.assert_allclose(sim.q[:, 0], h0, atol=1e-9)
        assert np.abs(sim.q[:, 1:3]).max() < 1e-8
