"""The on-disk tuning DB: round-trips, tolerance, cross-process reuse.

The tuning store is the 7th runtime cache kind and follows the native
compile cache's contract: atomic publishes, corrupt/stale files are
counted and dropped (never raised), a bounded LRU per machine
fingerprint, and decisions persisted by one process replayed by the
next with zero probes.
"""

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tune import SCHEMA_VERSION, TuneStore, reset_tune_cache, tune_cache_stats

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: Filename-safe signature keys (chain signatures are sha256 hex).
keys = st.text(alphabet="0123456789abcdef", min_size=8, max_size=24)
decisions = st.fixed_dictionaries({
    "backend": st.sampled_from(["vectorized", "native", "sequential"]),
    "layout": st.sampled_from(["aos", "soa"]),
    "chained": st.booleans(),
    "tiling": st.sampled_from([None, "auto", 512, 4096]),
    "probed": st.integers(min_value=0, max_value=7),
    "probe_s": st.one_of(st.none(), st.floats(min_value=1e-6, max_value=1.0,
                                              allow_nan=False)),
})


class TestRoundTrip:
    @given(key=keys, decision=decisions)
    @settings(max_examples=25, deadline=None)
    def test_store_then_load_returns_the_decision(self, key, decision):
        with tempfile.TemporaryDirectory() as root:
            store = TuneStore(root=Path(root), fingerprint="fp")
            assert store.load(key) is None
            store.store(key, decision)
            assert store.load(key) == decision
            assert store.entries() == [key]

    @given(
        items=st.lists(st.tuples(keys, decisions), min_size=1, max_size=12,
                       unique_by=lambda t: t[0]),
        max_entries=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_lru_bound_holds_and_survivors_load_back(self, items,
                                                     max_entries):
        with tempfile.TemporaryDirectory() as root:
            store = TuneStore(root=Path(root), fingerprint="fp",
                              max_entries=max_entries)
            for i, (key, decision) in enumerate(items):
                store.store(key, decision)
                # Deterministic mtime order regardless of clock
                # resolution: eviction is LRU by mtime.
                os.utime(store._path(key), (i, i))
            survivors = store.entries()
            assert len(survivors) <= max_entries
            by_key = dict(items)
            for key in survivors:
                assert store.load(key) == by_key[key]
            # The oldest-touched keys are the evicted ones.
            expected = [k for k, _ in items[-max_entries:]]
            assert sorted(survivors) == sorted(expected)

    def test_temp_files_never_show_up_as_entries(self, tmp_path):
        store = TuneStore(root=tmp_path, fingerprint="fp")
        store.store("aaaa", {"backend": "vectorized"})
        # A stranded temp file from a crashed writer must not be
        # counted, evicted as an entry, or loaded.
        (store.dir / ".bbbb-stranded.part").write_text("{")
        assert store.entries() == ["aaaa"]


class TestCorruptTolerance:
    def test_garbage_file_counts_and_unlinks(self, tmp_path):
        reset_tune_cache()
        store = TuneStore(root=tmp_path, fingerprint="fp")
        store.store("cafe", {"backend": "vectorized"})
        store._path("cafe").write_text("{ not json")
        assert store.load("cafe") is None
        stats = tune_cache_stats()
        assert stats["corrupt"] == 1
        assert not store._path("cafe").exists()
        # The slot is reusable immediately.
        store.store("cafe", {"backend": "native"})
        assert store.load("cafe") == {"backend": "native"}

    def test_stale_schema_version_is_dropped(self, tmp_path):
        reset_tune_cache()
        store = TuneStore(root=tmp_path, fingerprint="fp")
        store._path("dead").parent.mkdir(parents=True, exist_ok=True)
        store._path("dead").write_text(json.dumps({
            "version": SCHEMA_VERSION + 1, "key": "dead",
            "decision": {"backend": "vectorized"},
        }))
        assert store.load("dead") is None
        assert tune_cache_stats()["corrupt"] == 1
        assert not store._path("dead").exists()

    def test_mismatched_key_is_dropped(self, tmp_path):
        store = TuneStore(root=tmp_path, fingerprint="fp")
        store.store("feed", {"backend": "vectorized"})
        # A file renamed to the wrong signature must not answer for it.
        os.replace(store._path("feed"), store._path("beef"))
        assert store.load("beef") is None
        assert not store._path("beef").exists()


class TestConcurrentWriters:
    def test_reads_never_see_a_partial_decision(self, tmp_path):
        """N writer threads hammer one key while a reader polls it:
        every successful load is a complete, valid decision (the
        ``os.replace`` publish is atomic), and no call raises."""
        store = TuneStore(root=tmp_path, fingerprint="fp")
        key = "c0ffee"
        store.store(key, {"backend": "vectorized", "writer": -1})
        stop = time.monotonic() + 0.5
        errors = []

        def writer(wid):
            i = 0
            while time.monotonic() < stop:
                try:
                    store.store(key, {"backend": "vectorized",
                                      "writer": wid, "i": i})
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                i += 1

        def reader():
            while time.monotonic() < stop:
                try:
                    doc = store.load(key)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    continue
                if doc is not None and (
                    doc.get("backend") != "vectorized"
                    or "writer" not in doc
                ):
                    errors.append(AssertionError(f"partial read: {doc}"))

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(3)] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = store.load(key)
        assert final is not None and final["backend"] == "vectorized"
        assert store.entries() == [key]


_AUTO_SCRIPT = """
import json
from repro.core import Runtime
from repro.mesh import make_airfoil_mesh
from repro.apps.airfoil import AirfoilSim
from repro.tune import tune_cache_stats

rt = Runtime("auto")
sim = AirfoilSim(make_airfoil_mesh(12, 6), runtime=rt)
sim.run(1)
d = rt.tuned_decision
print(json.dumps({"stats": tune_cache_stats(), "source": d.source,
                  "decision": d.to_dict(), "q": float(sim.q.sum())}))
"""


class TestDecisionsPersistAcrossProcesses:
    def test_second_process_replays_with_zero_probes(self, tmp_path):
        script = tmp_path / "auto.py"
        script.write_text(_AUTO_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR
        env["REPRO_TUNE_CACHE"] = str(tmp_path / "tune")
        env["REPRO_NATIVE_CACHE"] = str(tmp_path / "native")
        env.pop("REPRO_TUNE_DISABLE", None)

        def invoke():
            proc = subprocess.run(
                [sys.executable, str(script)], env=env,
                capture_output=True, text=True, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout.strip().splitlines()[-1])

        cold = invoke()
        assert cold["source"] == "probe"
        assert cold["stats"]["probes"] > 0
        assert cold["stats"]["writes"] == 1
        assert cold["stats"]["corrupt"] == 0
        # The decision file landed on disk...
        fdirs = list((tmp_path / "tune").iterdir())
        assert len(fdirs) == 1 and list(fdirs[0].glob("*.json"))
        # ...so an entirely fresh process replays it: zero probes.
        warm = invoke()
        assert warm["source"] == "db"
        assert warm["stats"]["probes"] == 0
        assert warm["stats"]["hits"] == 1
        assert warm["stats"]["writes"] == 0
        for axis in ("backend", "layout", "chained", "tiling"):
            assert warm["decision"][axis] == cold["decision"][axis]
        # Tuning never changes numerics: both processes agree bitwise.
        assert warm["q"] == cold["q"]
