"""Kernel compiler tests: IR parsing, vector emission, bitwise identity.

Three layers:

1. emitter unit tests — subscript rewriting, mask lowering, dim-loop
   fusion, min/max/IfExp rewrites, and the refusal cases (constructs
   outside the vectorizable subset must raise, never mis-compile);
2. the **generated-vs-scalar cross-validation**: every Airfoil and Volna
   kernel's generated batched form run on a lane block must produce
   *bitwise* the per-lane results of the scalar source (this is the
   post-deletion form of the generated-vs-hand-written check that
   retired the ``*_vec`` duplicates — the hand-written kernels were
   validated bitwise against the generated ones before removal);
3. integration — backends pick up generated kernels through
   ``Kernel.vector_for``, the per-shape compile cache hits and counts,
   unvectorizable kernels fall back to the scalar path, and the finite
   vector widths (the register-width ablation) run generated kernels on
   register-sized blocks.
"""

import numpy as np
import pytest

from repro.core import (
    INC,
    READ,
    WRITE,
    Dat,
    Map,
    Runtime,
    Set,
    arg_dat,
    kernel,
    make_backend,
    par_loop,
)
from repro.core.access import IDX_ID
from repro.kernelc import (
    UnvectorizableKernel,
    clear_cache,
    compile_vector,
    emit_vector_source,
    kernel_ir,
    parse_kernel,
    vectorizable,
)

RNG = np.random.default_rng(1234)
LANES = 48


def _batch(shape, lo=0.5, hi=2.0):
    return RNG.uniform(lo, hi, (LANES,) + shape)


def _generated(k, shapes):
    return compile_vector(kernel_ir(k), shapes)


def _assert_matches_scalar(k, shapes, arrays):
    """Generated batched run == per-lane scalar run, bitwise."""
    batched = [s[0] if isinstance(s, tuple) else s for s in shapes]
    a_vec = [np.copy(a) for a in arrays]
    a_scal = [np.copy(a) for a in arrays]
    _generated(k, shapes)(*a_vec)
    for e in range(LANES):
        views = [a[e] if b else a for a, b in zip(a_scal, batched)]
        k.scalar(*views)
    for got, ref in zip(a_vec, a_scal):
        np.testing.assert_array_equal(got, ref)


# ----------------------------------------------------------------------
# 1. Emitter unit tests.
# ----------------------------------------------------------------------
class TestEmitter:
    def test_subscript_rewrite_and_fusion(self):
        @kernel("kc_copy4")
        def kc_copy4(a, b):
            for n in range(4):
                b[n] = a[n]

        src = emit_vector_source(kernel_ir(kc_copy4), [(True, 4), (True, 4)])
        # The dim loop over matching extents fuses to one whole slice.
        assert "b[:, :] = a[:, :]" in src
        assert "for n" not in src

    def test_loop_kept_when_extent_mismatches(self):
        @kernel("kc_copy4b")
        def kc_copy4b(a, b):
            for n in range(4):
                b[n] = a[n]

        src = emit_vector_source(kernel_ir(kc_copy4b), [(True, 4), (True, 8)])
        assert "for n in range(4):" in src
        assert "b[:, n] = a[:, n]" in src

    def test_loop_kept_for_index_arithmetic(self):
        @kernel("kc_rot")
        def kc_rot(a, b):
            for n in range(4):
                b[n] = a[(n + 1) % 4]

        src = emit_vector_source(kernel_ir(kc_rot), [(True, 4), (True, 4)])
        assert "for n in range(4):" in src
        assert "a[:, (n + 1) % 4]" in src

    def test_minmax_and_ifexp_rewrite(self):
        @kernel("kc_clamp")
        def kc_clamp(a, b):
            b[0] = max(a[0], 0.0)
            b[1] = min(a[0], 1.0)
            b[2] = a[0] if a[1] > 0.5 else a[2]

        src = emit_vector_source(kernel_ir(kc_clamp), [(True, 3), (True, 3)])
        assert "_kc_vmax(a[:, 0], 0.0)" in src
        assert "_kc_vmin(a[:, 0], 1.0)" in src
        assert "_kc_select(a[:, 1] > 0.5, a[:, 0], a[:, 2])" in src

    def test_min_shadowed_by_namespace_not_rewritten(self):
        # A name spelled ``min`` that resolves in the kernel's own
        # namespace keeps its semantics; only the builtin is lowered to
        # the vmin intrinsic.
        min = np.minimum  # noqa: A001 — deliberate shadow via closure

        def f(a, b):
            b[0] = min(a[0], a[1])

        ir = parse_kernel(f)
        src = emit_vector_source(ir, [(True, 2), (True, 1)])
        assert "_kc_vmin" not in src
        assert "min(a[:, 0], a[:, 1])" in src
        a = _batch((2,))
        b = np.zeros((LANES, 1))
        compile_vector(ir, [(True, 2), (True, 1)])(a, b)
        np.testing.assert_array_equal(b[:, 0], np.minimum(a[:, 0], a[:, 1]))

    def test_branch_mask_lowering_bitwise(self):
        @kernel("kc_branch")
        def kc_branch(a, out):
            t = a[0] * 2.0
            if a[1] > 1.0:
                out[0] += t
                t = t + 1.0
            else:
                out[1] = t * 3.0
            out[2] = t

        arrays = [_batch((3,)), np.zeros((LANES, 3))]
        _assert_matches_scalar(kc_branch, [(True, 3), (True, 3)], arrays)
        src = emit_vector_source(kernel_ir(kc_branch), [(True, 3), (True, 3)])
        # Masked read-modify-write keeps untouched lanes bitwise intact.
        assert "_kc_select" in src and "_kc_np.logical_not" in src

    def test_nested_branches(self):
        @kernel("kc_nested")
        def kc_nested(a, out):
            if a[0] > 1.0:
                if a[1] > 1.0:
                    out[0] = 1.0
                else:
                    out[0] = 2.0
            else:
                out[0] = 3.0

        arrays = [_batch((2,)), np.zeros((LANES, 1))]
        _assert_matches_scalar(kc_nested, [(True, 2), (True, 1)], arrays)

    def test_vector_argument_chained_subscripts(self):
        @kernel("kc_gather")
        def kc_gather(xs, out):
            out[0] = xs[0][0] + xs[2][1]

        arrays = [_batch((3, 2)), np.zeros((LANES, 1))]
        _assert_matches_scalar(kc_gather, [(True, None), (True, 1)], arrays)
        src = emit_vector_source(
            kernel_ir(kc_gather), [(True, None), (True, 1)]
        )
        assert "xs[:, 0][:, 0]" in src

    def test_view_alias_rewrite(self):
        @kernel("kc_alias")
        def kc_alias(x, out):
            row = x[1]
            out[0] = row[0] - row[1]

        arrays = [_batch((3, 2)), np.zeros((LANES, 1))]
        _assert_matches_scalar(kc_alias, [(True, None), (True, 1)], arrays)

    def test_computed_array_local_subscript(self):
        # A local computed FROM a view (not a bare alias) is still an
        # array per element in the scalar form; its subscripts must keep
        # the lane axis.  LANES != dim here, so a misclassification
        # cannot hide behind broadcasting.
        @kernel("kc_computed")
        def kc_computed(x, res):
            w = x[0] * 2.0
            v = w + x[1]
            res[0] = w[1] + v[0]

        arrays = [_batch((3, 2)), np.zeros((LANES, 1))]
        _assert_matches_scalar(kc_computed, [(True, None), (True, 1)], arrays)

    def test_branch_scoped_batched_classification(self):
        # A local bound to a lane-carrying array in one branch and a
        # constant in the other must stay lane-classified at the join,
        # regardless of branch emission order.
        @kernel("kc_branch_cls")
        def kc_branch_cls(x, res):
            if x[0][0] > 1.0:
                w = x[1]
            else:
                w = x[0] * 0.5
            res[0] = w[1]

        arrays = [_batch((3, 2)), np.zeros((LANES, 1))]
        _assert_matches_scalar(
            kc_branch_cls, [(True, None), (True, 1)], arrays
        )

    def test_read_global_stays_scalar(self):
        @kernel("kc_gbl")
        def kc_gbl(a, g, out):
            out[0] = a[0] * g[0]

        g = np.array([2.5])
        arrays = [_batch((1,)), g, np.zeros((LANES, 1))]
        _assert_matches_scalar(
            kc_gbl, [(True, 1), (False, None), (True, 1)], arrays
        )
        src = emit_vector_source(
            kernel_ir(kc_gbl), [(True, 1), (False, None), (True, 1)]
        )
        assert "g[0]" in src and "g[:, 0]" not in src


class TestRefusals:
    def _refused(self, fn):
        with pytest.raises(UnvectorizableKernel):
            parse_kernel(fn)

    def test_while_loop(self):
        def f(x):
            while x[0] > 0.0:
                x[0] -= 1.0

        self._refused(f)

    def test_boolop(self):
        def f(x, y):
            y[0] = 1.0 if x[0] > 0 and x[1] > 0 else 0.0

        self._refused(f)

    def test_chained_compare(self):
        def f(x, y):
            y[0] = 1.0 if 0.0 < x[0] < 1.0 else 0.0

        self._refused(f)

    def test_lane_dependent_index(self):
        def f(x, y):
            i = 2
            i = i + 1
            y[0] = x[i]

        self._refused(f)

    def test_unknown_call(self):
        def f(x, y):
            y[0] = len(x)

        self._refused(f)

    def test_data_dependent_range(self):
        def f(x, y):
            for n in range(int(x[0])):
                y[0] += 1.0

        self._refused(f)

    def test_return_value(self):
        def f(x):
            return x[0]

        self._refused(f)

    def test_augmented_assign_through_view_alias(self):
        # ``x1 = x[0]; x1 += 1.0`` mutates the parameter through a view
        # in the scalar form; the vector lowering cannot express that as
        # a local rebind, so the kernel must fall back to scalar.
        def f(x, y):
            x1 = x[0]
            x1 += 1.0
            y[0] = x1[1]

        self._refused(f)

    def test_view_alias_aug_runs_scalar_and_correct(self):
        @kernel("kc_viewaug")
        def kc_viewaug(x, y):
            row = x       # alias of the whole per-element view
            row += 1.0    # in-place mutation through the view
            y[0] = row[1]

        def run(bk):
            from repro.core import RW

            s = Set(6, "s")
            x = Dat(s, 2, np.arange(12.0).reshape(6, 2), name="x")
            y = Dat(s, 1, name="y")
            par_loop(
                kc_viewaug, s,
                arg_dat(x, IDX_ID, None, RW),
                arg_dat(y, IDX_ID, None, WRITE),
                runtime=Runtime(bk),
            )
            return x.data.copy(), y.data.copy()

        ref = run("sequential")
        got = run("vectorized")  # scalar fallback, not mis-vectorized
        np.testing.assert_array_equal(got[0], ref[0])
        np.testing.assert_array_equal(got[1], ref[1])

    def test_vectorizable_probe(self):
        @kernel("kc_ok")
        def kc_ok(x, y):
            y[0] = x[0]

        @kernel("kc_bad")
        def kc_bad(x, y):
            while x[0] > 0.0:
                x[0] -= 1.0

        assert vectorizable(kc_ok)
        assert not vectorizable(kc_bad)
        assert kc_ok.has_vector_form
        assert not kc_bad.has_vector_form


# ----------------------------------------------------------------------
# 2. Generated-vs-scalar bitwise cross-validation for both apps.
#    (The pre-deletion run of this matrix also compared generated
#    against the hand-written *_vec kernels, elementwise bitwise, over
#    the full backend x layout matrix before they were removed.)
# ----------------------------------------------------------------------
class TestAppKernelsBitwise:
    def test_airfoil_kernels(self):
        from repro.apps.airfoil.kernels import make_kernels

        ks = make_kernels()
        q = _batch((4,))
        q[:, 3] += 40.0  # keep the sound speed real for any u, v draw
        _assert_matches_scalar(
            ks["save_soln"], [(True, 4), (True, 4)],
            [q, np.zeros((LANES, 4))],
        )
        _assert_matches_scalar(
            ks["adt_calc"], [(True, None), (True, 4), (True, 1)],
            [_batch((4, 2)), q, np.zeros((LANES, 1))],
        )
        _assert_matches_scalar(
            ks["res_calc"],
            [(True, 2)] * 2 + [(True, 4)] * 2 + [(True, 1)] * 2
            + [(True, 4)] * 2,
            [_batch((2,)), _batch((2,)), q, q + 0.25,
             _batch((1,)), _batch((1,)),
             np.zeros((LANES, 4)), np.zeros((LANES, 4))],
        )
        bound = RNG.integers(1, 3, (LANES, 1)).astype(float)
        _assert_matches_scalar(
            ks["bres_calc"],
            [(True, 2), (True, 2), (True, 4), (True, 1), (True, 4),
             (True, 1)],
            [_batch((2,)), _batch((2,)), q, _batch((1,)),
             np.zeros((LANES, 4)), bound],
        )
        _assert_matches_scalar(
            ks["update"],
            [(True, 4), (True, 4), (True, 4), (True, 1), (True, 1)],
            [q, np.zeros((LANES, 4)), _batch((4,)), _batch((1,)),
             np.zeros((LANES, 1))],
        )

    def test_volna_kernels(self):
        from repro.apps.volna.kernels import make_kernels

        ks = make_kernels()
        geom = _batch((4,))
        geom[:, 3] = RNG.integers(0, 2, LANES).astype(float)
        q0 = _batch((4,))
        q0[: LANES // 4, 0] = 0.0  # dry states exercise the guards
        q1 = _batch((4,))
        _assert_matches_scalar(
            ks["compute_flux"], [(True, 4)] * 3 + [(True, 4), (True, 2)],
            [geom, q0, q1, np.zeros((LANES, 4)), np.zeros((LANES, 2))],
        )
        _assert_matches_scalar(
            ks["numerical_flux"],
            [(True, 1), (True, None), (True, 4), (True, 1)],
            [_batch((1,)), _batch((3, 2)), _batch((4,)),
             np.full((LANES, 1), 1e9)],
        )
        _assert_matches_scalar(
            ks["space_disc"],
            [(True, 4), (True, 4), (True, 4), (True, 4), (True, 1),
             (True, 1), (True, 4), (True, 4)],
            [_batch((4,)), geom, q0, q1, _batch((1,)), _batch((1,)),
             np.zeros((LANES, 4)), np.zeros((LANES, 4))],
        )
        dt = np.array([0.01])
        _assert_matches_scalar(
            ks["RK_1"], [(True, 4)] * 4 + [(False, None)],
            [q0, _batch((4,)), np.zeros((LANES, 4)),
             np.zeros((LANES, 4)), dt],
        )
        _assert_matches_scalar(
            ks["RK_2"], [(True, 4)] * 4 + [(False, None)],
            [q0, q1, _batch((4,)), np.zeros((LANES, 4)), dt],
        )
        _assert_matches_scalar(
            ks["sim_1"], [(True, 4), (True, 4)],
            [q0, np.zeros((LANES, 4))],
        )


# ----------------------------------------------------------------------
# 3. Integration: backends, cache, fallbacks, finite widths.
# ----------------------------------------------------------------------
def _ring(n=31):
    nodes = Set(n, "nodes")
    edges = Set(n, "edges")
    conn = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2n = Map(edges, nodes, 2, conn, "e2n")
    w = Dat(edges, 2, RNG.standard_normal((n, 2)), name="w")
    return nodes, edges, e2n, w


@kernel("kc_scatter", flops=2)
def kc_scatter(w, a0, a1):
    a0[0] += w[0] * 2.0
    a1[1] += w[1]


class TestBackendIntegration:
    def test_vectorized_runs_generated(self):
        nodes, edges, e2n, w = _ring()

        def run(bk, **opts):
            acc = Dat(nodes, 2, name="acc")
            par_loop(
                kc_scatter, edges,
                arg_dat(w, IDX_ID, None, READ),
                arg_dat(acc, 0, e2n, INC),
                arg_dat(acc, 1, e2n, INC),
                runtime=Runtime(make_backend(bk, **opts)),
            )
            return acc.data.copy()

        ref = run("sequential")
        np.testing.assert_array_equal(run("vectorized"), ref)
        np.testing.assert_array_equal(run("simt", device="phi"), ref)

    @pytest.mark.parametrize("vec", [1, 2, 4, 8])
    def test_register_width_blocks(self, vec):
        # Finite widths (the register-width ablation) run generated
        # kernels on (vec, dim) blocks with a scalar remainder sweep.
        nodes, edges, e2n, w = _ring()
        acc = Dat(nodes, 2, name="acc")
        par_loop(
            kc_scatter, edges,
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(acc, 0, e2n, INC),
            arg_dat(acc, 1, e2n, INC),
            runtime=Runtime(make_backend("vectorized", vec=vec)),
        )
        ref = Dat(nodes, 2, name="ref")
        par_loop(
            kc_scatter, edges,
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(ref, 0, e2n, INC),
            arg_dat(ref, 1, e2n, INC),
            runtime=Runtime("sequential"),
        )
        np.testing.assert_array_equal(acc.data, ref.data)

    def test_unvectorizable_kernel_falls_back_scalar(self):
        @kernel("kc_opaque")
        def kc_opaque(x, y):
            total = 0.0
            while total < x[0]:
                total += 1.0
            y[0] = total

        s = Set(9, "s")
        x = Dat(s, 1, np.arange(9.0) + 0.5, name="x")
        y = Dat(s, 1, name="y")
        par_loop(
            kc_opaque, s,
            arg_dat(x, IDX_ID, None, READ),
            arg_dat(y, IDX_ID, None, WRITE),
            runtime=Runtime("vectorized"),
        )
        np.testing.assert_array_equal(y.data[:, 0], np.ceil(np.arange(9.0) + 0.5))

    def test_explicit_vector_overrides_generated(self):
        calls = []

        @kernel("kc_override")
        def kc_override(x, y):
            y[0] = x[0]

        @kc_override.vectorized
        def kc_override_vec(x, y):
            calls.append(len(x))
            y[:, 0] = x[:, 0]

        s = Set(7, "s")
        x = Dat(s, 1, np.arange(7.0), name="x")
        y = Dat(s, 1, name="y")
        par_loop(
            kc_override, s,
            arg_dat(x, IDX_ID, None, READ),
            arg_dat(y, IDX_ID, None, WRITE),
            runtime=Runtime("vectorized"),
        )
        assert calls == [7]  # hand-written override ran, not generated

    def test_compile_cache_counters(self):
        clear_cache()

        @kernel("kc_cached")
        def kc_cached(x, y):
            y[0] = x[0] + 1.0

        s = Set(11, "s")
        x = Dat(s, 1, np.arange(11.0), name="x")
        y = Dat(s, 1, name="y")
        rt = Runtime("vectorized")
        for _ in range(3):
            par_loop(
                kc_cached, s,
                arg_dat(x, IDX_ID, None, READ),
                arg_dat(y, IDX_ID, None, WRITE),
                runtime=rt,
            )
        stats = rt.stats()["kernelc_cache"]
        assert stats["entries"] >= 1
        assert stats["misses"] >= 1
        assert stats["hits"] >= 2  # recompiled nothing after first sight

    def test_negative_cache_for_unvectorizable(self):
        clear_cache()

        @kernel("kc_neg")
        def kc_neg(x, y):
            while x[0] > 1e9:
                x[0] -= 1.0
            y[0] = x[0]

        s = Set(5, "s")
        x = Dat(s, 1, np.arange(5.0), name="x")
        y = Dat(s, 1, name="y")
        rt = Runtime("vectorized")
        for _ in range(3):
            par_loop(
                kc_neg, s,
                arg_dat(x, IDX_ID, None, READ),
                arg_dat(y, IDX_ID, None, WRITE),
                runtime=rt,
            )
        stats = rt.stats()["kernelc_cache"]
        assert stats["failures"] == 1  # parse failed once, then cached
        np.testing.assert_array_equal(y.data[:, 0], np.arange(5.0))

    def test_chained_execution_uses_generated(self):
        # The chain/_PhaseExec replay path resolves vector forms through
        # the same per-shape cache; results match eager bitwise.
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        mesh = make_airfoil_mesh(10, 5)
        eager = AirfoilSim(mesh, runtime=Runtime("vectorized"),
                           chained=False)
        chained = AirfoilSim(mesh, runtime=Runtime("vectorized"),
                             chained=True)
        eager.run(3)
        chained.run(3)
        np.testing.assert_array_equal(chained.q, eager.q)
