"""Tests for runtime configuration, the default runtime, and the CLI."""

import numpy as np
import pytest

from repro.core import (
    READ,
    WRITE,
    Dat,
    Runtime,
    Set,
    arg_dat,
    default_runtime,
    kernel,
    make_backend,
    par_loop,
    set_backend,
)
from repro.core.access import IDX_ID


class TestRuntimeConfig:
    def test_backend_by_name_or_instance(self):
        rt = Runtime(backend="sequential")
        assert rt.backend.name == "sequential"
        rt2 = Runtime(backend=make_backend("simt", device="phi"))
        assert rt2.backend.device == "phi"

    def test_configure_updates_in_place(self):
        rt = Runtime(backend="sequential", block_size=64)
        rt.configure(backend="vectorized", block_size=32,
                     scheme="full_permute")
        assert rt.backend.name == "vectorized"
        assert rt.block_size == 32
        assert rt.scheme == "full_permute"

    def test_configure_coloring_method_clears_plans(self):
        rt = Runtime(backend="vectorized")
        s = Set(8, "s")
        d = Dat(s, 1)

        @kernel("touch")
        def touch(x):
            x[0] = 1.0

        par_loop(touch, s, arg_dat(d, IDX_ID, None, WRITE), runtime=rt)
        assert len(rt.plans) == 1
        rt.configure(coloring_method="greedy")
        assert len(rt.plans) == 0

    def test_default_runtime_and_set_backend(self):
        original = default_runtime().backend
        try:
            rt = set_backend("sequential")
            assert rt is default_runtime()
            assert default_runtime().backend.name == "sequential"
            set_backend("vectorized", vec=4)
            assert default_runtime().backend.vec == 4
        finally:
            default_runtime().configure(backend=original)

    def test_par_loop_uses_default_runtime(self):
        s = Set(5, "s")
        a = Dat(s, 1, np.arange(5.0))
        b = Dat(s, 1)

        @kernel("copy1")
        def copy1(x, y):
            y[0] = x[0]

        @copy1.vectorized
        def copy1_vec(x, y):
            y[:, 0] = x[:, 0]

        par_loop(copy1, s, arg_dat(a, IDX_ID, None, READ),
                 arg_dat(b, IDX_ID, None, WRITE))
        np.testing.assert_array_equal(b.data, a.data)

    def test_invalid_backend_options(self):
        with pytest.raises(ValueError):
            make_backend("vectorized", vec=0)
        with pytest.raises(ValueError):
            make_backend("simt", device="tpu")


class TestBenchCLI:
    def test_single_artifact(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        rc = main(["table1", "--outdir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "table1.json").exists()

    def test_figure_artifact(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        rc = main(["figure9", "--outdir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "figure9.txt").exists()

    def test_unknown_artifact_rejected(self, tmp_path):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["table42", "--outdir", str(tmp_path)])


class TestMeshIOErrors:
    def test_version_mismatch_rejected(self, tmp_path):
        import numpy as np

        from repro.mesh import load_mesh, make_tri_mesh, save_mesh

        p = tmp_path / "m.npz"
        save_mesh(make_tri_mesh(2, 2), p)
        # Corrupt the version field.
        with np.load(p, allow_pickle=True) as blob:
            payload = {k: blob[k] for k in blob.files}
        payload["version"] = np.array(999)
        np.savez_compressed(p, **payload)
        with pytest.raises(ValueError, match="version"):
            load_mesh(p)


class TestKernelAPI:
    def test_kernel_call_invokes_scalar(self):
        from repro.core import Kernel

        seen = []
        k = Kernel("probe", lambda x: seen.append(x))
        k(42)
        assert seen == [42]

    def test_kernel_validation(self):
        from repro.core import Kernel

        with pytest.raises(TypeError):
            Kernel("bad", scalar=123)
        with pytest.raises(TypeError):
            Kernel("bad", scalar=lambda: None, vector=5)

    def test_decorator_metadata(self):
        @kernel("meta", flops=7, transcendentals=2,
                description="demo", vectorizable_simt=False)
        def meta(x):
            pass

        assert meta.info.flops == 7
        assert meta.info.transcendentals == 2
        assert meta.info.description == "demo"
        assert not meta.vectorizable_simt
        # The batched form is *derived* from the scalar source now
        # (repro.kernelc); no hand-written vector form is attached.
        assert meta.vector is None
        assert meta.has_vector_form

        @meta.vectorized
        def meta_vec(x):
            pass

        assert meta.has_vector_form
        assert meta.vector is meta_vec

    def test_has_vector_form_tracks_vectorizability(self):
        # Kernels outside the kernelc IR subset have no derivable
        # batched form and report has_vector_form=False.
        @kernel("opaque")
        def opaque(x):
            while x[0] > 0.0:  # data-dependent loop: not vectorizable
                x[0] -= 1.0

        assert not opaque.has_vector_form


class TestTimingReport:
    def test_report_lists_all_kernels(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        rt = Runtime("vectorized", block_size=64)
        sim = AirfoilSim(make_airfoil_mesh(10, 5), runtime=rt)
        sim.run(2)
        report = rt.timing_report()
        for name in ("save_soln", "adt_calc", "res_calc", "bres_calc",
                     "update"):
            assert name in report
        assert "total" in report
        assert "Melem/s" in report
        # Shares sum to ~100%.
        shares = [float(tok.rstrip("%"))
                  for tok in report.split() if tok.endswith("%")]
        assert abs(sum(shares) - 100.0) < 1.0

    def test_report_empty_runtime(self):
        rt = Runtime("sequential")
        report = rt.timing_report()
        assert "total" in report
