"""The bench-regression smoke guard (repro.bench.regression).

Unit-level: baseline collection, pass/fail decisions, tolerance, and
the failure modes CI must catch (missing artifacts, vanished entries).
"""

import json
from pathlib import Path

from repro.bench.regression import (
    DEFAULT_TOLERANCE,
    check,
    collect_entries,
    main,
    update,
)


def write_artifact(directory: Path, name: str, rows) -> None:
    (directory / f"{name}.json").write_text(
        json.dumps({"title": name, "rows": rows, "notes": [], "meta": {}})
    )


def seed_results(directory: Path, chained_speedup=1.4) -> None:
    write_artifact(directory, "BENCH_quick_batch", [
        {"scheme": "two_level", "speedup vs chunked": 1.2},
    ])
    write_artifact(directory, "ablation_loop_chain", [
        {"app": "airfoil", "Backend": "vectorized two_level",
         "chained speedup": chained_speedup},
        {"app": "airfoil", "Backend": "scalar (sequential)",
         "chained speedup": 1.0},
    ])
    write_artifact(directory, "ablation_aero", [
        {"Backend": "vectorized chained", "speedup vs vec eager": 1.3,
         "speedup vs scalar": 80.0},
        {"Backend": "scalar (sequential)", "speedup vs vec eager": 0.01,
         "speedup vs scalar": 1.0},
    ])


class TestCollect:
    def test_fast_path_rows_only(self, tmp_path):
        seed_results(tmp_path)
        entries = collect_entries(tmp_path)
        labels = {(e["artifact"], tuple(e["key"].values())) for e in entries}
        assert ("ablation_loop_chain",
                ("airfoil", "vectorized two_level")) in labels
        # Scalar rows are denominators, never guarded entries.
        assert not any(
            "scalar" in str(k).lower() for _, keys in labels for k in keys
        )

    def test_missing_artifacts_skipped(self, tmp_path):
        write_artifact(tmp_path, "BENCH_quick_batch", [
            {"scheme": "two_level", "speedup vs chunked": 1.1},
        ])
        entries = collect_entries(tmp_path)
        assert len(entries) == 1
        assert entries[0]["artifact"] == "BENCH_quick_batch"


class TestCheck:
    def _baseline(self, tmp_path) -> Path:
        seed_results(tmp_path)
        baseline = tmp_path / "baseline_quick.json"
        assert update(baseline, tmp_path, DEFAULT_TOLERANCE) == 0
        return baseline

    def test_pass_within_tolerance(self, tmp_path):
        baseline = self._baseline(tmp_path)
        seed_results(tmp_path, chained_speedup=1.4 * 0.8)  # -20%: ok
        assert check(baseline, tmp_path, 0.25) == []

    def test_fail_beyond_tolerance(self, tmp_path):
        baseline = self._baseline(tmp_path)
        seed_results(tmp_path, chained_speedup=1.4 * 0.7)  # -30%: fail
        failures = check(baseline, tmp_path, 0.25)
        assert len(failures) == 1
        assert "vectorized two_level" in failures[0]

    def test_fail_when_artifact_missing(self, tmp_path):
        baseline = self._baseline(tmp_path)
        (tmp_path / "ablation_aero.json").unlink()
        failures = check(baseline, tmp_path, 0.25)
        assert any("ablation_aero" in f for f in failures)

    def test_fail_when_entry_vanishes(self, tmp_path):
        baseline = self._baseline(tmp_path)
        write_artifact(tmp_path, "BENCH_quick_batch", [
            {"scheme": "full_permute", "speedup vs chunked": 9.9},
        ])
        failures = check(baseline, tmp_path, 0.25)
        assert any("vanished" in f for f in failures)

    def test_missing_baseline_is_a_failure(self, tmp_path):
        failures = check(tmp_path / "nope.json", tmp_path, 0.25)
        assert len(failures) == 1
        assert "--update" in failures[0]

    def test_empty_baseline_is_a_failure(self, tmp_path):
        """An entry-less baseline must fail loudly, not wave everything
        through (the silent-pass bug this guard exists to prevent)."""
        seed_results(tmp_path)
        baseline = tmp_path / "baseline_quick.json"
        baseline.write_text(json.dumps({"entries": []}))
        failures = check(baseline, tmp_path, 0.25)
        assert len(failures) == 1
        assert "no entries" in failures[0]
        assert "--update" in failures[0]

    def test_fresh_entry_without_baseline_key_is_a_failure(self, tmp_path):
        """A new fast-path row the baseline has never seen must fail
        (coverage drift), so new benches cannot run unguarded."""
        baseline = self._baseline(tmp_path)
        rows = [
            {"app": "airfoil", "Backend": "native chained",
             "native speedup vs vec": 9.0},
        ]
        write_artifact(tmp_path, "ablation_native", rows)
        failures = check(baseline, tmp_path, 0.25)
        assert any("native chained" in f and "missing from the baseline"
                   in f for f in failures)
        # Regenerating the baseline absorbs the new entry and clears it.
        assert update(baseline, tmp_path, DEFAULT_TOLERANCE) == 0
        assert check(baseline, tmp_path, 0.25) == []


class TestCLI:
    def test_update_then_check_roundtrip(self, tmp_path, capsys):
        seed_results(tmp_path)
        baseline = tmp_path / "baseline_quick.json"
        assert main(["--update", "--baseline", str(baseline),
                     "--results", str(tmp_path)]) == 0
        assert main(["--baseline", str(baseline),
                     "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "passed" in out
        blob = json.loads(baseline.read_text())
        assert blob["entries"] and "regen" in blob

    def test_check_exit_code_on_regression(self, tmp_path):
        seed_results(tmp_path)
        baseline = tmp_path / "baseline_quick.json"
        main(["--update", "--baseline", str(baseline),
              "--results", str(tmp_path)])
        seed_results(tmp_path, chained_speedup=0.5)
        assert main(["--baseline", str(baseline),
                     "--results", str(tmp_path)]) == 1

    def test_update_min_keeps_lowest_ratio(self, tmp_path):
        seed_results(tmp_path, chained_speedup=1.2)
        baseline = tmp_path / "baseline_quick.json"
        main(["--update", "--baseline", str(baseline),
              "--results", str(tmp_path)])
        seed_results(tmp_path, chained_speedup=1.6)  # a lucky run
        main(["--update", "--min", "--baseline", str(baseline),
              "--results", str(tmp_path)])
        blob = json.loads(baseline.read_text())
        chained = [e for e in blob["entries"]
                   if e["key"].get("Backend") == "vectorized two_level"]
        assert chained[0]["value"] == 1.2  # the conservative floor stays

    def test_update_without_results_fails(self, tmp_path):
        assert main(["--update", "--baseline",
                     str(tmp_path / "b.json"),
                     "--results", str(tmp_path / "empty")]) == 1

    def test_committed_baseline_matches_spec_surface(self):
        """The committed baseline stays loadable and non-empty."""
        committed = Path("bench_results/baseline_quick.json")
        blob = json.loads(committed.read_text())
        assert blob["entries"], "committed baseline must not be empty"
        for entry in blob["entries"]:
            assert {"artifact", "key", "metric", "value"} <= set(entry)
