"""Tests for the code-generation backend (OP2's Fig 2b transformation)."""

import numpy as np
import pytest

from repro.core import (
    INC,
    MIN,
    READ,
    WRITE,
    Dat,
    Global,
    Map,
    Runtime,
    Set,
    arg_dat,
    arg_gbl,
    compile_loop,
    generate_loop_source,
    kernel,
    par_loop,
)
from repro.core.access import IDX_ALL, IDX_ID
from repro.core.codegen import loop_shape_key, supports


@pytest.fixture
def problem():
    rng = np.random.default_rng(6)
    nodes = Set(9, "nodes")
    edges = Set(12, "edges")
    conn = rng.integers(0, 9, (12, 2))
    m = Map(edges, nodes, 2, conn, "m")
    w = Dat(edges, 1, rng.random(12), name="w")
    x = Dat(nodes, 2, rng.random((9, 2)), name="x")
    return nodes, edges, m, w, x


@kernel("cg_inc", flops=2)
def cg_inc(w, x0, a0, a1):
    a0[0] += w[0] * x0[0]
    a1[0] += w[0] * x0[1]


class TestGeneratedSource:
    def test_fig2b_structure(self, problem):
        nodes, edges, m, w, x = problem
        acc = Dat(nodes, 2)
        args = [
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(x, 0, m, READ),
            arg_dat(acc, 0, m, INC),
            arg_dat(acc, 1, m, INC),
        ]
        src = generate_loop_source("cg_inc", args)
        # The Fig 2b shape: hoisted map columns, one unrolled call.
        assert "def op_par_loop_cg_inc(" in src
        assert "map1_col = maps[1][:, 0]" in src
        assert "map3_col = maps[3][:, 1]" in src
        assert "user_kernel(dat0[n], dat1[map1_col[n]]" in src
        assert src.count("for n in range") == 1

    def test_compiled_stub_carries_source(self, problem):
        nodes, edges, m, w, x = problem
        args = [arg_dat(w, IDX_ID, None, READ)]
        fn = compile_loop("probe", args)
        assert "op_par_loop_probe" in fn.__source__

    def test_shape_key_distinguishes_structures(self, problem):
        nodes, edges, m, w, x = problem
        a1 = [arg_dat(x, 0, m, READ)]
        a2 = [arg_dat(x, 1, m, READ)]
        a3 = [arg_dat(x, 0, m, INC)]
        keys = {loop_shape_key("k", a) for a in (a1, a2, a3)}
        assert len(keys) == 3

    def test_supports_vector_args(self, problem):
        # Vector READ and INC arguments both get specialized stubs now;
        # every other writing vector access (WRITE/RW/MIN/MAX) still
        # falls back to the generic interpreter, whose gathered-copy
        # writeback machinery the stub does not replicate.
        from repro.core import MAX, MIN, RW, WRITE

        nodes, edges, m, w, x = problem
        assert supports([arg_dat(x, IDX_ALL, m, READ)])
        assert supports([arg_dat(x, IDX_ALL, m, INC)])
        assert not supports([arg_dat(x, IDX_ALL, m, RW)])
        assert not supports([arg_dat(x, IDX_ALL, m, WRITE)])
        assert not supports([arg_dat(x, IDX_ALL, m, MIN)])
        assert not supports([arg_dat(x, IDX_ALL, m, MAX)])

    def test_vector_inc_stub_structure(self, problem):
        nodes, edges, m, w, x = problem
        acc = Dat(nodes, 2)
        args = [
            arg_dat(w, IDX_ID, None, READ),
            arg_dat(acc, IDX_ALL, m, INC),
        ]
        src = generate_loop_source("vinc", args)
        # Hoisted private accumulator, zeroed per element, applied with
        # np.add.at after the call — the generic interpreter's exact
        # operation sequence, specialized.
        assert "buf1 = np.zeros((2, 2), dat1.dtype)" in src
        assert "buf1[...] = 0.0" in src
        assert "user_kernel(dat0[n], buf1)" in src
        assert "np.add.at(dat1, map1[n], buf1)" in src


class TestCodegenExecution:
    def test_matches_sequential_indirect_inc(self, problem):
        nodes, edges, m, w, x = problem

        def run(bk):
            acc = Dat(nodes, 2, name="acc")
            par_loop(
                cg_inc, edges,
                arg_dat(w, IDX_ID, None, READ),
                arg_dat(x, 0, m, READ),
                arg_dat(acc, 0, m, INC),
                arg_dat(acc, 1, m, INC),
                runtime=Runtime(bk),
            )
            return acc.data.copy()

        np.testing.assert_allclose(run("codegen"), run("sequential"))

    def test_global_reduction(self, problem):
        nodes, edges, m, w, x = problem
        g = Global(1)
        g.data[:] = g.identity_for(MIN)

        @kernel("cg_min")
        def cg_min(ww, mn):
            mn[0] = min(mn[0], ww[0])

        par_loop(cg_min, edges, arg_dat(w, IDX_ID, None, READ),
                 arg_gbl(g, MIN), runtime=Runtime("codegen"))
        assert float(g.value) == w.data.min()

    def test_vector_read_arg(self, problem):
        nodes, edges, m, w, x = problem
        out = Dat(edges, 1)

        @kernel("cg_gather")
        def cg_gather(xs, o):
            o[0] = xs[0][0] + xs[1][1]

        par_loop(cg_gather, edges, arg_dat(x, IDX_ALL, m, READ),
                 arg_dat(out, IDX_ID, None, WRITE),
                 runtime=Runtime("codegen"))
        expect = x.data[m.values[:, 0], 0] + x.data[m.values[:, 1], 1]
        np.testing.assert_allclose(out.data.ravel(), expect)

    def test_vector_inc_stub_matches_sequential(self, problem):
        nodes, edges, m, w, x = problem

        @kernel("cg_vinc")
        def cg_vinc(ww, outs):
            outs[0][0] += ww[0]
            outs[1][1] += ww[0]

        def run(bk):
            acc = Dat(nodes, 2, name="acc")
            rt = Runtime(bk)
            par_loop(cg_vinc, edges, arg_dat(w, IDX_ID, None, READ),
                     arg_dat(acc, IDX_ALL, m, INC), runtime=rt)
            return rt, acc.data.copy()

        rt, got = run("codegen")
        assert rt.backend.generated == 1  # specialized stub, no fallback
        _, ref = run("sequential")
        np.testing.assert_array_equal(got, ref)
        assert got.sum() == pytest.approx(2 * w.data.sum())

    def test_fallback_for_vector_rw(self, problem):
        nodes, edges, m, w, x = problem
        from repro.core import RW

        @kernel("cg_vrw")
        def cg_vrw(outs):
            outs[0][0] = outs[0][0] + 1.0
            outs[1][1] = outs[1][1] + 1.0

        def run(bk):
            acc = Dat(nodes, 2, name="acc")
            rt = Runtime(bk)
            par_loop(cg_vrw, edges, arg_dat(acc, IDX_ALL, m, RW), runtime=rt)
            return rt, acc.data.copy()

        rt, got = run("codegen")
        assert rt.backend.generated == 0  # interpreter fallback used
        _, ref = run("sequential")
        np.testing.assert_array_equal(got, ref)

    def test_stub_cache_reused(self, problem):
        nodes, edges, m, w, x = problem
        rt = Runtime("codegen")
        out = Dat(edges, 1)

        @kernel("cg_copy")
        def cg_copy(ww, o):
            o[0] = ww[0]

        for _ in range(3):
            par_loop(cg_copy, edges, arg_dat(w, IDX_ID, None, READ),
                     arg_dat(out, IDX_ID, None, WRITE), runtime=rt)
        assert rt.backend.generated == 1

    def test_start_element_respected(self, problem):
        nodes, edges, m, w, x = problem
        out = Dat(edges, 1)

        @kernel("cg_one")
        def cg_one(o):
            o[0] = 1.0

        par_loop(cg_one, edges, arg_dat(out, IDX_ID, None, WRITE),
                 runtime=Runtime("codegen"), start_element=10)
        assert out.data[:10].sum() == 0 and out.data[10:].sum() == 2

    def test_full_airfoil_matches(self):
        from repro.apps.airfoil import AirfoilSim
        from repro.mesh import make_airfoil_mesh

        mesh = make_airfoil_mesh(12, 6)
        a = AirfoilSim(mesh, runtime=Runtime("sequential"))
        b = AirfoilSim(mesh, runtime=Runtime("codegen"))
        a.run(2)
        b.run(2)
        np.testing.assert_allclose(b.q, a.q, rtol=1e-13)
        assert b.runtime.backend.generated == 5  # one stub per kernel

    def test_full_volna_matches(self):
        from repro.apps.volna import VolnaSim
        from repro.mesh import make_tri_mesh

        mesh = make_tri_mesh(6, 5, 100_000.0, 75_000.0)
        a = VolnaSim(mesh, dtype=np.float64, runtime=Runtime("sequential"))
        b = VolnaSim(mesh, dtype=np.float64, runtime=Runtime("codegen"))
        a.run(2)
        b.run(2)
        np.testing.assert_allclose(b.q, a.q, rtol=1e-12)
