"""Matrix-free operator conformance: bitwise against the assembled oracle.

The matfree acceptance property mirrors (and extends) aero's: with
``operator="matfree"`` the Picard solution and density are **bitwise
identical** to the assembled-CSR sequential-eager reference across every
backend, both layouts and all three execution modes — while
``Mat.assemble()`` is never called.  Below that sit direct A·p
conformance checks (matfree action vs assembled SpMV, raw and
Dirichlet-masked), a hypothesis differential over randomized element
stiffness inputs, and the knob/guard behaviour.
"""

import numpy as np
import pytest

from repro.apps.aero import AeroSim, make_kernels
from repro.apps.aero.driver import OPERATOR_MODES
from repro.apps.aero.kernels import element_quadrature_tables
from repro.core import INC, Dat, Mat, Runtime, arg_mat, par_loop
from repro.core.access import IDX_ALL, IDX_ID, READ, arg_dat
from repro.mesh import make_airfoil_mesh
from repro.solve import MAX_FOLD_CONTRIBUTIONS, MatFreeOperator, MatOperator
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX, runtime_for

MESH_DIMS = (12, 6)
PICARD = 2
CG_KW = dict(cg_tol=1e-10, cg_maxiter=200)


def run_aero(operator, backend="sequential", scheme="two_level",
             options=None, layout=None, chained=False, tiling=None,
             picard=PICARD):
    rt = runtime_for(backend, scheme, options or {}, layout=layout)
    sim = AeroSim(make_airfoil_mesh(*MESH_DIMS), runtime=rt,
                  chained=chained, tiling=tiling, operator=operator,
                  **CG_KW)
    result = sim.solve(picard=picard)
    return sim, result


@pytest.fixture(scope="module")
def reference():
    """Assembled sequential eager — the bitwise oracle."""
    sim, result = run_aero("assembled")
    return sim.phi.copy(), sim.rho.copy(), result


def _operator_pair(mesh, rho_values=None, runtime=None):
    """(assembled Mat + MatOperator, MatFreeOperator) over one mesh."""
    rt = runtime or Runtime("sequential")
    nodes, cells = mesh.nodes, mesh.cells
    c2n = mesh.map("cell2node")
    coords = np.asarray(mesh.coords, dtype=np.float64)
    x = Dat(nodes, 2, coords, name="x")
    rho = Dat(cells, 1, 1.0 if rho_values is None else rho_values,
              name="rho")
    bc_mask = np.zeros(nodes.size, dtype=bool)
    bc_mask[np.unique(mesh.map("bedge2node").values)] = True
    bc = Dat(nodes, 1, bc_mask.astype(float), name="bc")
    mat = Mat(c2n, c2n, name="K")
    par_loop(make_kernels()["res_calc"], cells,
             arg_dat(x, IDX_ALL, c2n, READ),
             arg_dat(rho, IDX_ID, None, READ),
             arg_mat(mat, INC), runtime=rt)
    mat.assemble()
    mf = MatFreeOperator(
        mat, element_quadrature_tables(coords[c2n.values]), rho, bc,
    )
    mf.refresh(rt)
    return mat, MatOperator(mat), mf, bc_mask, rt


class TestOperatorAction:
    """A·p bitwise-equal to the assembled SpMV, shape by shape."""

    def test_raw_coefficients_match_csr(self):
        mesh = make_airfoil_mesh(*MESH_DIMS)
        mat, _, mf, _, _ = _operator_pair(mesh)
        csr_rows = mat.values.data[:, 0][mf.row_slots.values]
        np.testing.assert_array_equal(
            mf.coeffs_raw.data[: mesh.nodes.size], csr_rows
        )

    def test_masked_coefficients_match_dirichlet_csr(self):
        mesh = make_airfoil_mesh(*MESH_DIMS)
        mat, _, mf, bc_mask, _ = _operator_pair(mesh)
        mat.set_dirichlet(bc_mask)
        csr_rows = mat.values.data[:, 0][mf.row_slots.values]
        np.testing.assert_array_equal(
            mf.coeffs_bc.data[: mesh.nodes.size], csr_rows
        )

    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    def test_action_matches_spmv(self, backend, scheme, options):
        """Raw apply, fused action and masked apply vs the SpMV loop."""
        rt = runtime_for(backend, scheme, options)
        mesh = make_airfoil_mesh(10, 5)
        rng = np.random.default_rng(11)
        rho_values = 1.0 + 0.05 * rng.standard_normal((mesh.cells.size, 1))
        mat, spmv, mf, bc_mask, _ = _operator_pair(
            mesh, rho_values=rho_values, runtime=rt
        )
        n = mesh.nodes.size
        x = Dat(mesh.nodes, 1, rng.standard_normal((n, 1)), name="xv")
        y_ref = Dat(mesh.nodes, 1, name="y_ref")
        y_mf = Dat(mesh.nodes, 1, name="y_mf")
        spmv.apply(x, y_ref, runtime=rt)
        mf.apply(x, y_mf, runtime=rt, raw=True)
        np.testing.assert_array_equal(y_mf.data[:n], y_ref.data[:n])
        mf.action(x, y_mf, runtime=rt)
        np.testing.assert_array_equal(y_mf.data[:n], y_ref.data[:n])
        mat.set_dirichlet(bc_mask)
        spmv.apply(x, y_ref, runtime=rt)
        mf.apply(x, y_mf, runtime=rt)
        np.testing.assert_array_equal(y_mf.data[:n], y_ref.data[:n])


class TestPicardMatrix:
    """Matfree Picard: phi + rho bitwise vs the assembled oracle, with
    ``Mat.assemble`` never called — the acceptance matrix."""

    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    @pytest.mark.parametrize("mode", ["eager", "chained", "tiled"])
    def test_bitwise_identical(self, backend, scheme, options, layout,
                               mode, reference):
        ref_phi, ref_rho, _ = reference
        sim, result = run_aero(
            "matfree", backend, scheme, options, layout=layout,
            chained=(mode != "eager"),
            tiling="auto" if mode == "tiled" else None,
        )
        assert result.converged
        np.testing.assert_array_equal(sim.phi, ref_phi)
        np.testing.assert_array_equal(sim.rho, ref_rho)
        assert sim.state.mat.assemble_calls == 0

    def test_assembled_mode_assembles_once_per_step(self):
        sim, _ = run_aero("assembled", picard=PICARD)
        assert sim.state.mat.assemble_calls == PICARD


class TestHypothesisDifferential:
    """Randomized element stiffness inputs: the matfree fold equals the
    assemble() fold bit for bit, whatever the values."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_inputs_differential(self, seed):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        mesh = make_airfoil_mesh(8, 4)
        rt = Runtime("sequential")
        base = np.asarray(mesh.coords, dtype=np.float64)

        @settings(max_examples=8, deadline=None, derandomize=True)
        @given(st.integers(0, 2**31 - 1))
        def check(draw_seed):
            rng = np.random.default_rng((seed << 32) ^ draw_seed)
            # Jitter small enough to keep every element invertible.
            coords = base + 0.02 * rng.standard_normal(base.shape)
            nodes, cells = mesh.nodes, mesh.cells
            c2n = mesh.map("cell2node")
            x = Dat(nodes, 2, coords, name="x")
            rho = Dat(cells, 1,
                      0.5 + rng.random((cells.size, 1)), name="rho")
            bc = Dat(nodes, 1, 0.0, name="bc")
            mat = Mat(c2n, c2n, name="K")
            par_loop(make_kernels()["res_calc"], cells,
                     arg_dat(x, IDX_ALL, c2n, READ),
                     arg_dat(rho, IDX_ID, None, READ),
                     arg_mat(mat, INC), runtime=rt)
            mat.assemble()
            mf = MatFreeOperator(
                mat, element_quadrature_tables(coords[c2n.values]),
                rho, bc,
            )
            mf.refresh(rt)
            csr_rows = mat.values.data[:, 0][mf.row_slots.values]
            np.testing.assert_array_equal(
                mf.coeffs_raw.data[: nodes.size], csr_rows
            )
            xv = Dat(nodes, 1,
                     rng.standard_normal((nodes.size, 1)), name="xv")
            y_mf = Dat(nodes, 1, name="y_mf")
            y_ref = Dat(nodes, 1, name="y_ref")
            MatOperator(mat).apply(xv, y_ref, runtime=rt)
            mf.action(xv, y_mf, runtime=rt)
            np.testing.assert_array_equal(
                y_mf.data[: nodes.size], y_ref.data[: nodes.size]
            )

        check()


class TestKnobAndGuards:
    def test_operator_knob_values(self):
        assert OPERATOR_MODES == ("auto", "assembled", "matfree")
        with pytest.raises(ValueError, match="operator"):
            AeroSim(make_airfoil_mesh(8, 4), operator="bogus",
                    runtime=Runtime("sequential"))

    def test_auto_defaults_to_assembled(self):
        sim = AeroSim(make_airfoil_mesh(8, 4),
                      runtime=Runtime("sequential"))
        assert sim.operator_mode == "assembled"
        assert not sim.operator_explicit
        assert sim.operator_axis  # float64 exposes the tuner axis

    def test_matfree_requires_float64(self):
        with pytest.raises(ValueError, match="float64"):
            AeroSim(make_airfoil_mesh(8, 4), dtype=np.float32,
                    operator="matfree", runtime=Runtime("sequential"))

    def test_float32_has_no_operator_axis(self):
        sim = AeroSim(make_airfoil_mesh(8, 4), dtype=np.float32,
                      runtime=Runtime("sequential"))
        assert not sim.operator_axis
        sim.run(1)  # assembled float32 path still works

    def test_fold_width_guard(self):
        assert MAX_FOLD_CONTRIBUTIONS >= 4  # quad meshes need 4
        mesh = make_airfoil_mesh(8, 4)
        mat = Mat(mesh.map("cell2node"), mesh.map("cell2node"), name="K")
        assert mat.fold_width == 4
        assert mat.fold_table.shape == (mat.nnz + 1, 4)


class TestMatfreeStats:
    def test_matfree_loops_in_runtime_stats(self):
        rt = Runtime("vectorized")
        sim = AeroSim(make_airfoil_mesh(*MESH_DIMS), runtime=rt,
                      operator="matfree", **CG_KW)
        sim.run(1)
        names = set(rt.stats()["kernels"])
        assert any(n.startswith("matfree_coeffs_w") for n in names)
        assert any(n.startswith("matfree_apply_w") for n in names)
        assert "res_calc_aero" not in names  # staging scatter never ran
