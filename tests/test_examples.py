"""Examples must run green as ``python examples/<name>.py`` from the
repo root (no install, no PYTHONPATH — ``examples/_bootstrap.py`` wires
up ``src/`` for source checkouts).

The two headline examples run end to end with tiny workloads; the rest
are import-checked so a rename or API drift fails fast without paying
their full runtimes.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop("PYTHONPATH", None)  # the bootstrap must stand on its own
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=300,
    )


class TestExamplesSmoke:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "All backends agree" in proc.stdout
        assert "chained == eager bitwise: True" in proc.stdout

    def test_airfoil_simulation_tiny_mesh(self):
        proc = run_example("airfoil_simulation.py", "8", "4", "2")
        assert proc.returncode == 0, proc.stderr
        assert "vectorized speedup over scalar" in proc.stdout

    @pytest.mark.parametrize("name", [
        "distributed_mpi.py",
        "performance_study.py",
        "tsunami_volna.py",
        "vector_registers.py",
    ])
    def test_other_examples_importable(self, name):
        """Compile-and-import check without executing __main__ bodies."""
        code = (
            "import runpy, sys; sys.argv = ['x']; "
            f"sys.path.insert(0, r'{EXAMPLES}'); "
            f"runpy.run_path(r'{EXAMPLES / name}', run_name='not_main')"
        )
        env = dict(os.environ)
        env.pop("PYTHONPATH", None)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
