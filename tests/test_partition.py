"""Tests for the partitioning substrate (RCB, graph growing, quality)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import make_airfoil_mesh, make_tri_mesh
from repro.partition import (
    adjacency_from_map,
    evaluate_partition,
    greedy_grow_partition,
    partition_iteration_set,
    rcb_partition,
)


class TestRCB:
    def test_single_part(self):
        parts = rcb_partition(np.random.default_rng(0).random((20, 2)), 1)
        assert (parts == 0).all()

    def test_balance_power_of_two(self):
        rng = np.random.default_rng(1)
        parts = rcb_partition(rng.random((128, 2)), 4)
        sizes = np.bincount(parts, minlength=4)
        assert sizes.max() - sizes.min() <= 2

    def test_balance_odd_parts(self):
        rng = np.random.default_rng(2)
        parts = rcb_partition(rng.random((100, 2)), 3)
        sizes = np.bincount(parts, minlength=3)
        assert sizes.max() - sizes.min() <= 3

    def test_spatial_compactness(self):
        # A 1-D line split in 2 must cut at the median.
        coords = np.stack([np.arange(10.0), np.zeros(10)], axis=1)
        parts = rcb_partition(coords, 2)
        assert (parts[:5] == parts[0]).all()
        assert (parts[5:] == parts[9]).all()
        assert parts[0] != parts[9]

    def test_all_parts_used(self):
        rng = np.random.default_rng(3)
        parts = rcb_partition(rng.random((64, 2)), 7)
        assert set(parts.tolist()) == set(range(7))

    def test_validation(self):
        with pytest.raises(ValueError):
            rcb_partition(np.zeros((4, 2)), 0)
        with pytest.raises(ValueError):
            rcb_partition(np.zeros(4), 2)

    def test_empty(self):
        assert rcb_partition(np.zeros((0, 2)), 3).size == 0


class TestAdjacency:
    def test_shared_node_adjacency(self):
        # Two triangles sharing an edge (two nodes).
        conn = np.array([[0, 1, 2], [1, 2, 3]])
        adj = adjacency_from_map(conn, 2, 4)
        assert adj[0, 1] == 1 and adj[1, 0] == 1
        assert adj[0, 0] == 0  # empty diagonal

    def test_disconnected(self):
        conn = np.array([[0, 1], [2, 3]])
        adj = adjacency_from_map(conn, 2, 4)
        assert adj.nnz == 0

    def test_mesh_adjacency_symmetric(self):
        m = make_tri_mesh(4, 4)
        adj = adjacency_from_map(
            m.map("cell2node").values, m.cells.size, m.nodes.size
        )
        assert (adj != adj.T).nnz == 0


class TestGreedyGrow:
    def test_covers_and_balances(self):
        m = make_airfoil_mesh(12, 6)
        adj = adjacency_from_map(
            m.map("cell2node").values, m.cells.size, m.nodes.size
        )
        parts = greedy_grow_partition(adj, 4)
        q = evaluate_partition(adj, parts, 4)
        assert (parts >= 0).all()
        assert q.sizes.sum() == m.cells.size
        assert q.imbalance < 0.2

    def test_beats_random_on_edge_cut(self):
        m = make_airfoil_mesh(16, 8)
        adj = adjacency_from_map(
            m.map("cell2node").values, m.cells.size, m.nodes.size
        )
        grown = evaluate_partition(adj, greedy_grow_partition(adj, 4), 4)
        rng = np.random.default_rng(0)
        rnd = evaluate_partition(
            adj, rng.integers(0, 4, m.cells.size).astype(np.int32), 4
        )
        assert grown.edge_cut < rnd.edge_cut / 2

    def test_single_part(self):
        adj = adjacency_from_map(np.array([[0, 1]]), 1, 2)
        assert (greedy_grow_partition(adj, 1) == 0).all()

    def test_invalid_nparts(self):
        adj = adjacency_from_map(np.array([[0, 1]]), 1, 2)
        with pytest.raises(ValueError):
            greedy_grow_partition(adj, 0)


class TestDerivedPartitions:
    def test_min_rule(self):
        primary = np.array([2, 0, 1], dtype=np.int32)
        mv = np.array([[0, 1], [1, 2], [2, 2]])
        parts = partition_iteration_set(mv, primary, rule="min")
        np.testing.assert_array_equal(parts, [0, 0, 1])

    def test_first_rule(self):
        primary = np.array([2, 0, 1], dtype=np.int32)
        mv = np.array([[0, 1], [1, 2], [2, 2]])
        parts = partition_iteration_set(mv, primary, rule="first")
        np.testing.assert_array_equal(parts, [2, 0, 1])

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            partition_iteration_set(np.array([[0]]), np.array([0]), "median")


class TestQuality:
    def test_perfect_partition_metrics(self):
        # Two disconnected cliques split along the gap: zero edge cut.
        conn = np.array([[0, 1], [0, 1], [2, 3], [2, 3]])
        adj = adjacency_from_map(conn, 4, 4)
        parts = np.array([0, 0, 1, 1], dtype=np.int32)
        q = evaluate_partition(adj, parts, 2)
        assert q.edge_cut == 0
        assert q.imbalance == 0.0
        assert q.boundary_fraction == 0.0

    def test_edge_cut_counted_once(self):
        conn = np.array([[0, 1], [1, 2]])  # two elements sharing node 1
        adj = adjacency_from_map(conn, 2, 3)
        q = evaluate_partition(adj, np.array([0, 1], dtype=np.int32), 2)
        assert q.edge_cut == 1
        assert q.boundary_fraction == 1.0

    def test_str_formats(self):
        conn = np.array([[0, 1], [1, 2]])
        adj = adjacency_from_map(conn, 2, 3)
        s = str(evaluate_partition(adj, np.array([0, 1], np.int32), 2))
        assert "edge_cut=1" in s


@given(st.integers(2, 40), st.integers(1, 6), st.integers(0, 99))
@settings(max_examples=40, deadline=None)
def test_property_rcb_partitions_cover(n, k, seed):
    rng = np.random.default_rng(seed)
    parts = rcb_partition(rng.random((n, 2)), k)
    assert parts.size == n
    assert parts.min() >= 0 and parts.max() < k
    sizes = np.bincount(parts, minlength=k)
    # Balance within one element per recursion level (<= log2(k) levels).
    assert sizes.max() - sizes.min() <= max(1, int(np.ceil(np.log2(k))) + 1)
