"""Aero: FEM correctness, convergence, and the full reproducibility matrix.

The aero acceptance property: the assembled CSR values and the final
potential are **bitwise identical** between the sequential backend and
every other backend, over both data layouts and all three execution
modes ({eager, chained, tiled}).  On top of that, classical FEM checks:
the unit-square bilinear stiffness block, the patch test (linear fields
reproduced exactly), incompressible limits, and Picard convergence.
"""

import numpy as np
import pytest

from repro.apps.aero import AeroConstants, AeroSim, make_kernels
from repro.core import INC, Dat, Map, Mat, Runtime, Set, arg_mat, par_loop
from repro.core.access import IDX_ALL, IDX_ID, READ, arg_dat
from repro.mesh import make_airfoil_mesh
from repro.solve import MatOperator, cg
from repro.testing import BACKEND_MATRIX, LAYOUT_MATRIX

MESH_DIMS = (12, 6)
PICARD = 2
CG_KW = dict(cg_tol=1e-10, cg_maxiter=200)


def run_aero(backend="sequential", scheme="two_level", options=None,
             layout=None, chained=False, tiling=None, picard=PICARD,
             constants=None):
    from repro.testing import runtime_for

    rt = runtime_for(backend, scheme, options or {}, layout=layout)
    kwargs = dict(CG_KW)
    if constants is not None:
        kwargs["constants"] = constants
    sim = AeroSim(make_airfoil_mesh(*MESH_DIMS), runtime=rt,
                  chained=chained, tiling=tiling, **kwargs)
    result = sim.solve(picard=picard)
    return sim, result


@pytest.fixture(scope="module")
def reference():
    sim, result = run_aero()
    return (
        sim.phi.copy(),
        sim.state.mat.data.copy(),
        sim.rho.copy(),
        result,
    )


class TestConvergence:
    def test_cg_converges_below_tolerance(self, reference):
        *_, result = reference
        assert result.converged
        assert result.residual <= CG_KW["cg_tol"]
        for cg_res in result.cg_results:
            assert cg_res.converged

    def test_picard_contracts(self):
        sim, _ = run_aero(picard=3)
        deltas = sim.delta_history
        assert deltas[1] < deltas[0]
        assert deltas[2] < deltas[1]

    def test_physical_sanity(self, reference):
        phi, _, rho, _ = reference
        # Subsonic compressible flow: mild density variation around 1.
        assert 0.9 < rho.min() <= rho.max() < 1.1
        assert np.all(np.isfinite(phi))

    def test_incompressible_limit_rho_is_one(self):
        sim, _ = run_aero(
            picard=1, constants=AeroConstants(mach=0.0), chained=False
        )
        np.testing.assert_array_equal(sim.rho, np.ones_like(sim.rho))


class TestReproducibilityMatrix:
    """The acceptance matrix: CSR + solution bitwise vs sequential."""

    @pytest.mark.parametrize("backend,scheme,options", BACKEND_MATRIX)
    @pytest.mark.parametrize("layout", LAYOUT_MATRIX)
    @pytest.mark.parametrize("mode", ["eager", "chained", "tiled"])
    def test_bitwise_identical(self, backend, scheme, options, layout,
                               mode, reference):
        ref_phi, ref_csr, ref_rho, _ = reference
        sim, result = run_aero(
            backend, scheme, options, layout=layout,
            chained=(mode != "eager"),
            tiling="auto" if mode == "tiled" else None,
        )
        assert result.converged
        np.testing.assert_array_equal(sim.state.mat.data, ref_csr)
        np.testing.assert_array_equal(sim.phi, ref_phi)
        np.testing.assert_array_equal(sim.rho, ref_rho)

    def test_tiling_requires_chained(self):
        with pytest.raises(ValueError, match="chained=True"):
            AeroSim(make_airfoil_mesh(*MESH_DIMS), chained=False,
                    tiling="auto")


class TestFEMCorrectness:
    def test_unit_square_stiffness_block(self):
        """One unit-square element, rho = 1: the textbook bilinear
        Laplace stiffness (1/6) [[4,-1,-2,-1], ...]."""
        nodes = Set(4, "nodes")
        cells = Set(1, "cells")
        c2n = Map(cells, nodes, 4, np.array([[0, 1, 2, 3]]), "c2n")
        x = Dat(nodes, 2,
                np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]]),
                name="x")
        rho = Dat(cells, 1, 1.0, name="rho")
        mat = Mat(c2n, c2n, name="K")
        kernels = make_kernels()
        par_loop(kernels["res_calc"], cells,
                 arg_dat(x, IDX_ALL, c2n, READ),
                 arg_dat(rho, IDX_ID, None, READ),
                 arg_mat(mat, INC), runtime=Runtime("sequential"))
        mat.assemble()
        expected = np.array(
            [[4, -1, -2, -1],
             [-1, 4, -1, -2],
             [-2, -1, 4, -1],
             [-1, -2, -1, 4]], dtype=float) / 6.0
        np.testing.assert_allclose(mat.todense(), expected, atol=1e-14)

    def test_patch_test_linear_field_exact(self):
        """Dirichlet data from a linear field on *all* boundary nodes:
        bilinear FEM must reproduce the field to solver tolerance
        (the classical patch test, via the full Mat + CG pipeline)."""
        mesh = make_airfoil_mesh(10, 5)
        exact = 0.7 * mesh.coords[:, 0] - 0.3 * mesh.coords[:, 1] + 0.1
        boundary = np.zeros(mesh.nodes.size, dtype=bool)
        boundary[np.unique(mesh.map("bedge2node").values)] = True

        rt = Runtime("vectorized")
        nodes, cells = mesh.nodes, mesh.cells
        c2n = mesh.map("cell2node")
        x = Dat(nodes, 2, mesh.coords, name="x")
        rho = Dat(cells, 1, 1.0, name="rho")
        mat = Mat(c2n, c2n, name="K")
        kernels = make_kernels()
        par_loop(kernels["res_calc"], cells,
                 arg_dat(x, IDX_ALL, c2n, READ),
                 arg_dat(rho, IDX_ID, None, READ),
                 arg_mat(mat, INC), runtime=rt)
        mat.assemble()
        lift = np.where(boundary, exact, 0.0)
        kg = mat @ lift
        b = Dat(nodes, 1, np.where(boundary, exact, -kg), name="b")
        mat.set_dirichlet(boundary)
        phi = Dat(nodes, 1, np.where(boundary, exact, 0.0), name="phi")
        res = cg(MatOperator(mat), b, phi, runtime=rt, tol=1e-12,
                 maxiter=1000)
        assert res.converged
        np.testing.assert_allclose(phi.data[:, 0], exact, atol=1e-8)

    def test_far_field_dirichlet_pinned(self, reference):
        """The far-field potential equals the free-stream data exactly."""
        sim, _ = run_aero()
        m = sim.mesh
        dx, dy = sim.constants.direction
        phi_inf = m.coords[:, 0] * dx + m.coords[:, 1] * dy
        np.testing.assert_array_equal(
            sim.phi[sim.bc_mask], phi_inf[sim.bc_mask]
        )
        assert sim.bc_mask.sum() > 0


class TestKernelGeneration:
    """Pins the kernelc extension surface the aero kernels rely on."""

    @pytest.mark.parametrize(
        "name", ["rho_calc", "res_calc", "rhs_calc", "apply_bc"]
    )
    def test_aero_kernels_vectorizable(self, name):
        from repro.kernelc import vectorizable

        assert vectorizable(make_kernels()[name])

    def test_generated_matrix_kernel_bitwise_vs_scalar(self):
        """Local-matrix stores: generated batched kernel == scalar, per
        element, bitwise (the kernelc matrix-lowering pin)."""
        kern = make_kernels()["res_calc"]
        mesh = make_airfoil_mesh(8, 4)
        c2n = mesh.map("cell2node")
        rng = np.random.default_rng(7)
        n = mesh.cells.size
        xs = mesh.coords[c2n.values]                  # (n, 4, 2)
        rho = 1.0 + 0.1 * rng.standard_normal((n, 1))
        # Scalar, element at a time.
        K_scalar = np.zeros((n, 16))
        for e in range(n):
            kern.scalar(xs[e], rho[e], K_scalar[e])
        # Generated batched form over all lanes at once.
        from repro.kernelc import vector_kernel_for
        from repro.core.access import Arg

        x_dat = Dat(mesh.nodes, 2, mesh.coords)
        rho_dat = Dat(mesh.cells, 1, rho)
        mat = Mat(c2n, c2n)
        args = (
            Arg(x_dat, IDX_ALL, c2n, READ),
            Arg(rho_dat, IDX_ID, None, READ),
            arg_mat(mat, INC),
        )
        vfn = vector_kernel_for(kern, args)
        assert vfn is not None
        K_vec = np.zeros((n, 16))
        vfn(xs.copy(), rho.copy(), K_vec)
        np.testing.assert_array_equal(K_vec, K_scalar)

    def test_spmv_shape_in_timing_stats(self):
        sim, _ = run_aero("vectorized")
        stats = sim._runtime().stats() if sim.runtime is None else \
            sim.runtime.stats()
        names = set(stats["kernels"])
        assert {"rho_calc", "res_calc_aero", "rhs_calc_aero",
                "cg_update"} <= names
        assert any(n.startswith("spmv_w") for n in names)
