"""Auto-tuning runtime: profile, negotiate, persist, replay.

The layer between tracing and execution the ROADMAP's auto-tuning item
asks for: lightweight always-on instrumentation
(:mod:`~repro.tune.profile`), a perfmodel-seeded measured negotiator
(:mod:`~repro.tune.tuner` / :mod:`~repro.tune.model`), a persistent
on-disk decision store keyed by machine fingerprint and chain signature
(:mod:`~repro.tune.store` / :mod:`~repro.tune.signature`), and the
``backend="auto"`` wiring into the app drivers (:mod:`~repro.tune.apps`).

Tuning moves time, never results: every negotiated configuration is one
of the repo's bitwise-equivalent execution modes.
"""

from .apps import apply_decision, autotune_sim, sim_signature
from .model import (
    Pins,
    TuneCandidate,
    default_candidates,
    predict_candidate,
    rank_candidates,
)
from .profile import RuntimeProfile
from .signature import chain_signature, machine_fingerprint, mesh_bucket
from .store import (
    SCHEMA_VERSION,
    TuneStore,
    reset_tune_cache,
    tune_cache_dir,
    tune_cache_stats,
    tuning_disabled,
)
from .tuner import TuneDecision, Tuner

__all__ = [
    "Pins",
    "RuntimeProfile",
    "SCHEMA_VERSION",
    "TuneCandidate",
    "TuneDecision",
    "TuneStore",
    "Tuner",
    "apply_decision",
    "autotune_sim",
    "chain_signature",
    "default_candidates",
    "machine_fingerprint",
    "mesh_bucket",
    "predict_candidate",
    "rank_candidates",
    "reset_tune_cache",
    "sim_signature",
    "tune_cache_dir",
    "tune_cache_stats",
    "tuning_disabled",
]
