"""CLI for the auto-tuning runtime.

Usage::

    python -m repro.tune report            # profile one app run, print it
    python -m repro.tune report --app volna --steps 5 --out profile.json
    python -m repro.tune db                # inspect the tuning DB
    python -m repro.tune db --clear        # drop this machine's decisions
"""

from __future__ import annotations

import argparse
import json
import sys


def _build_sim(app: str, backend: str):
    from ..core import Runtime
    from ..mesh import make_airfoil_mesh, make_tri_mesh

    rt = Runtime(backend)
    if app == "airfoil":
        from ..apps.airfoil import AirfoilSim

        return AirfoilSim(make_airfoil_mesh(48, 24), runtime=rt), rt
    if app == "volna":
        from ..apps.volna import VolnaSim

        return VolnaSim(make_tri_mesh(40, 30, 100_000.0, 75_000.0),
                        runtime=rt), rt
    if app == "aero":
        from ..apps.aero import AeroSim

        return AeroSim(make_airfoil_mesh(24, 12), runtime=rt), rt
    raise SystemExit(f"unknown app {app!r} (airfoil, volna, aero)")


def cmd_report(args) -> int:
    sim, rt = _build_sim(args.app, args.backend)
    sim.run(args.steps)
    stats = rt.stats()
    report = {
        "app": args.app,
        "backend": args.backend,
        "steps": args.steps,
        "decision": (rt.tuned_decision.to_dict()
                     if rt.tuned_decision is not None else None),
        "profile": stats["profile"],
        "tune_cache": stats["tune_cache"],
    }
    text = json.dumps(report, indent=2, default=str)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
        print(f"[saved {args.out}]")
    else:
        print(text)
    return 0


def cmd_db(args) -> int:
    from .store import TuneStore, tune_cache_dir

    store = TuneStore()
    if args.clear:
        n = len(store.entries())
        store.clear()
        print(f"cleared {n} entries under {store.dir}")
        return 0
    print(f"tuning DB: {tune_cache_dir()} (fingerprint {store.fingerprint})")
    entries = store.entries()
    if not entries:
        print("  (empty)")
        return 0
    for key in entries:
        doc = store.load(key)
        print(f"  {key}: {json.dumps(doc, default=str)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tune",
        description="Auto-tuning runtime: profile reports and the "
                    "persistent tuning DB.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    rep = sub.add_parser("report", help="run one app and dump its "
                         "per-loop/per-chain profile")
    rep.add_argument("--app", default="airfoil",
                     choices=("airfoil", "volna", "aero"))
    rep.add_argument("--backend", default="auto",
                     help='runtime backend (default "auto")')
    rep.add_argument("--steps", type=int, default=3)
    rep.add_argument("--out", default=None, help="write JSON here")
    db = sub.add_parser("db", help="inspect or clear the tuning DB")
    db.add_argument("--clear", action="store_true",
                    help="drop this machine's persisted decisions")
    args = parser.parse_args(argv)
    if args.cmd == "report":
        return cmd_report(args)
    return cmd_db(args)


if __name__ == "__main__":
    sys.exit(main())
