"""Probe → decide → persist: the measured configuration negotiator.

Given a traced chain signature, :class:`Tuner` answers "which
``(backend, layout, tile size, chained-vs-eager)`` should this workload
run under on this machine?":

1. **replay** — if the tuning DB already holds a decision for the
   (machine, signature) pair, use it: zero probes, cross-process;
2. **seed** — otherwise rank the candidate set with the perfmodel
   roofline prediction (:func:`repro.tune.model.rank_candidates`);
3. **probe** — wall-clock the top-k predicted candidates through the
   caller's probe callable (a short real run of the workload);
4. **persist** — store the measured winner for every later process.

Tuning never changes numerics: every candidate is one of the repo's
bitwise-equivalent execution configurations, so the choice only moves
time, never results.  ``REPRO_TUNE_DISABLE=1`` short-circuits the whole
pipeline to a fixed default.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .model import Pins, TuneCandidate, default_candidates, rank_candidates
from .store import (
    TuneStore,
    count_probe,
    count_probe_fallback,
    tuning_disabled,
)

#: How many of the model's top predictions get wall-clock probes.
DEFAULT_TOP_K = 3


@dataclass
class TuneDecision:
    """The negotiated configuration plus its provenance."""

    backend: str
    layout: str
    chained: bool
    tiling: object
    #: Operator realization for apps with the axis ("assembled" |
    #: "matfree"); ``None`` for workloads without one (and for
    #: decisions persisted before the axis existed).
    operator: Optional[str] = None
    #: "db" (persisted replay), "probe" (measured now), "model"
    #: (prediction only, probing unavailable), "fallback" (every probe
    #: failed) or "disabled" (REPRO_TUNE_DISABLE).
    source: str = "probe"
    probed: int = 0
    probe_s: Optional[float] = None

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict, source: str = "db") -> "TuneDecision":
        return cls(
            backend=str(doc.get("backend", "vectorized")),
            layout=str(doc.get("layout", "aos")),
            chained=bool(doc.get("chained", True)),
            tiling=doc.get("tiling"),
            operator=doc.get("operator"),
            source=source,
            probed=int(doc.get("probed", 0)),
            probe_s=doc.get("probe_s"),
        )

    def candidate(self) -> TuneCandidate:
        return TuneCandidate(self.backend, self.layout, self.chained,
                             self.tiling, self.operator)


def _default_decision(pins: Optional[Pins], source: str) -> TuneDecision:
    """The untuned configuration (current driver defaults), pin-aware."""
    pins = pins or Pins()
    chained = True if pins.chained is None else pins.chained
    tiling = pins.tiling if pins.tiling_pinned else None
    return TuneDecision(
        backend="vectorized",
        layout=pins.layout or "aos",
        chained=chained,
        tiling=tiling if chained else None,
        operator=pins.operator,
        source=source,
    )


class Tuner:
    """Negotiates and remembers execution configurations."""

    def __init__(
        self,
        store: Optional[TuneStore] = None,
        top_k: int = DEFAULT_TOP_K,
    ) -> None:
        self.store = store if store is not None else TuneStore()
        self.top_k = int(top_k)

    # ------------------------------------------------------------------
    def negotiate(
        self,
        signature: str,
        probe: Optional[Callable[[TuneCandidate], float]] = None,
        candidates: Optional[Sequence[TuneCandidate]] = None,
        pins: Optional[Pins] = None,
        loop_infos: Optional[Sequence[Dict]] = None,
        calibration=None,
    ) -> TuneDecision:
        """Resolve one chain signature to a :class:`TuneDecision`.

        ``probe(candidate) -> seconds`` runs a short measured trial; a
        probe that raises counts as a probe fallback and drops its
        candidate.  ``loop_infos`` feeds the model ranking (empty means
        overhead terms alone order the candidates).
        """
        if tuning_disabled():
            return _default_decision(pins, "disabled")
        doc = self.store.load(signature)
        if doc is not None:
            decision = TuneDecision.from_dict(doc, source="db")
            if _respects_pins(decision, pins):
                return decision
            # The caller pinned an axis the persisted decision moves
            # (e.g. chained=False on a workload stored as chained):
            # override only the pinned axes and keep the measured rest.
            # Never renegotiate here — pinned variants of one workload
            # must share the stored backend/layout, or an eager-pinned
            # and a chained-pinned run of the same sim could land on
            # different backends and stop being bitwise comparable.
            return _apply_pins(decision, pins)
        cands = list(
            candidates
            if candidates is not None
            else default_candidates(pins)
        )
        if not cands:
            return _default_decision(pins, "fallback")
        ranked = rank_candidates(loop_infos or [], cands, calibration)
        if probe is None:
            best = ranked[0]
            return TuneDecision(
                best.backend, best.layout, best.chained, best.tiling,
                best.operator, source="model",
            )
        measured: List[tuple] = []
        for cand in ranked[: max(1, self.top_k)]:
            count_probe()
            try:
                measured.append((float(probe(cand)), cand))
            except Exception:
                count_probe_fallback()
        if not measured:
            return _default_decision(pins, "fallback")
        best_s, best = min(measured, key=lambda t: t[0])
        decision = TuneDecision(
            best.backend, best.layout, best.chained, best.tiling,
            best.operator, source="probe", probed=len(measured),
            probe_s=best_s,
        )
        if doc is None:
            # First negotiation for this workload wins the slot; later
            # runs (pinned or not) derive from it via _apply_pins, so
            # all variants of one workload stay on one backend.
            self.store.store(signature, decision.to_dict())
        return decision


def _respects_pins(decision: TuneDecision, pins: Optional[Pins]) -> bool:
    if pins is None:
        return True
    if pins.layout is not None and decision.layout != pins.layout:
        return False
    if pins.chained is not None and decision.chained != pins.chained:
        return False
    if pins.tiling_pinned and decision.tiling != pins.tiling:
        return False
    if pins.operator is not None and decision.operator != pins.operator:
        return False
    return True


def _apply_pins(decision: TuneDecision, pins: Optional[Pins]) -> TuneDecision:
    """The stored decision with only the pinned axes overridden."""
    pins = pins or Pins()
    chained = decision.chained if pins.chained is None else pins.chained
    tiling = pins.tiling if pins.tiling_pinned else decision.tiling
    return TuneDecision(
        backend=decision.backend,
        layout=decision.layout if pins.layout is None else pins.layout,
        chained=chained,
        tiling=tiling if chained else None,
        operator=(decision.operator if pins.operator is None
                  else pins.operator),
        source="db",
        probed=decision.probed,
        probe_s=decision.probe_s,
    )
