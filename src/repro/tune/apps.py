"""``backend="auto"`` wiring for the application drivers.

When a driver is constructed over a runtime created as
``Runtime("auto")``, it calls :func:`autotune_sim` at the end of its
``__init__`` (before any time step has run).  This module then:

1. builds the chain signature from the sim's own loop argument table
   (the same ``_loop_args`` the drivers execute from), folding in the
   app name and dtype — but *not* any pinned axes, so every variant of
   one workload resolves to one stored decision;
2. negotiates a decision through :class:`~repro.tune.tuner.Tuner` —
   DB replay when possible, model-seeded wall-clock probes otherwise.
   Probes construct throwaway sims of the same class on the *same
   mesh* with explicit (non-auto) runtimes, so probing can never
   recurse and never touches the caller's state;
3. applies the decision: backend and layout onto the runtime,
   chained/tiling onto the sim — reallocating the sim's freshly
   initialized state if the chosen layout differs.

Explicitly passed knobs are pins, never suggestions: a sim constructed
with ``chained=False`` or a runtime with ``layout="soa"`` keeps them,
and the tuner only negotiates the remaining axes.
"""

from __future__ import annotations

import time
from typing import Optional

from .model import Pins, TuneCandidate, default_candidates
from .profile import RuntimeProfile
from .signature import chain_signature
from .tuner import TuneDecision, Tuner

#: Timed steps per probe (aero steps are whole Picard iterations).
PROBE_STEPS = {"aero": 1}
DEFAULT_PROBE_STEPS = 2


def _app_name(sim) -> str:
    return type(sim).__name__.replace("Sim", "").lower()


def _sim_loops(sim):
    """``(name, set, args)`` triples from the sim's loop table."""
    try:
        table = sim._loop_args()
    except TypeError:  # volna: stage tables keyed by the input Dat
        table = sim._loop_args(sim.state.q)
    return [(name, entry[0], tuple(entry[1:]))
            for name, entry in table.items()]


def _sim_pins(sim, runtime) -> Pins:
    return Pins(
        layout=runtime.layout if runtime.layout_explicit else None,
        chained=(sim.chained if getattr(sim, "chained_explicit", False)
                 else None),
        tiling=sim.tiling,
        tiling_pinned=sim.tiling is not None,
        operator=(sim.operator_mode
                  if getattr(sim, "operator_explicit", False) else None),
    )


def _sim_operators(sim):
    """The sim's operator axis (``None`` when the app has none)."""
    if getattr(sim, "operator_axis", False):
        return ("assembled", "matfree")
    return None


def sim_signature(sim, runtime) -> str:
    """One signature per *workload*, regardless of pinned axes.

    Pins deliberately do not fork the signature: an eager-pinned and a
    chained-pinned construction of the same sim are the same workload,
    and deriving both from one stored decision keeps them on one
    backend — which is what makes their results comparable bit-for-bit
    (within a backend every execution mode is bitwise identical;
    across backends Global reductions are only 1-ulp close).
    """
    return chain_signature(
        _sim_loops(sim),
        extra=(_app_name(sim), str(sim.dtype)),
    )


def _probe_runner(sim, app: str, block_size: int):
    """A ``probe(candidate) -> seconds`` closure over throwaway sims."""
    from ..core.runtime import Runtime, make_backend

    steps = PROBE_STEPS.get(app, DEFAULT_PROBE_STEPS)
    kwargs = {}
    if app == "aero":
        kwargs = {"cg_tol": sim.cg_tol, "cg_maxiter": sim.cg_maxiter}

    def probe(candidate: TuneCandidate) -> float:
        rt = Runtime(
            backend=make_backend(candidate.backend),
            block_size=block_size,
            layout=candidate.layout,
        )
        kw = dict(kwargs)
        if candidate.operator is not None:
            kw["operator"] = candidate.operator
        trial = type(sim)(
            sim.mesh, dtype=sim.dtype, runtime=rt,
            chained=candidate.chained, tiling=candidate.tiling, **kw,
        )
        trial.step()  # warm-up: plans, chains, compiled kernels
        t0 = time.perf_counter()
        trial.run(steps)
        return (time.perf_counter() - t0) / steps

    return probe


def _state_layout(sim) -> Optional[str]:
    """Layout of the sim's allocated state (first Dat field)."""
    import dataclasses

    from ..core.dat import Dat

    for f in dataclasses.fields(sim.state):
        value = getattr(sim.state, f.name)
        if isinstance(value, Dat):
            return value.layout
    return None


def apply_decision(sim, runtime, decision: TuneDecision) -> None:
    """Install a decision on the runtime and sim (state realloc included)."""
    runtime.apply_decision(decision)
    sim.chained = bool(decision.chained)
    sim.tiling = decision.tiling if decision.chained else None
    if decision.operator is not None and hasattr(sim, "operator_mode"):
        sim.operator_mode = decision.operator
    if (
        decision.layout is not None
        and _state_layout(sim) not in (None, decision.layout)
    ):
        sim._realloc_state()


def autotune_sim(sim, runtime=None, tuner: Optional[Tuner] = None):
    """Negotiate and apply the execution configuration for one sim.

    Called by the drivers when their runtime was built as
    ``Runtime("auto")``; also reachable directly via
    ``runtime.autotune(sim)``.  Returns the :class:`TuneDecision`.
    """
    rt = runtime if runtime is not None else sim._runtime()
    app = _app_name(sim)
    if rt.tuned_decision is not None:
        # A second sim on an already-tuned runtime reuses the runtime's
        # decision (backend/layout are runtime-wide) without re-probing.
        apply_decision(sim, rt, rt.tuned_decision)
        return rt.tuned_decision
    profile = RuntimeProfile()
    tags = getattr(sim, "_loop_operator_tags", lambda: {})()
    kernel_tags = {}
    for name, set_, args in _sim_loops(sim):
        profile.register_loop(sim.kernels[name], set_, args)
        kernel_tags[getattr(sim.kernels[name], "name", name)] = \
            tags.get(name)
    loop_infos = profile.loop_infos()
    for info in loop_infos:
        info["operator"] = kernel_tags.get(info["name"])
    pins = _sim_pins(sim, rt)
    operators = _sim_operators(sim)
    candidates = (
        default_candidates(pins, operators=operators)
        if operators else None
    )
    decision = (tuner or Tuner()).negotiate(
        sim_signature(sim, rt),
        probe=_probe_runner(sim, app, rt.block_size),
        candidates=candidates,
        pins=pins,
        loop_infos=loop_infos,
    )
    apply_decision(sim, rt, decision)
    return decision
