"""On-disk tuning DB: the 7th runtime cache kind.

Built on the unified artifact store's file machinery
(:mod:`repro.store.base`): decisions live under
``$REPRO_TUNE_CACHE`` when set (historical layout) and inside the
unified root (``$REPRO_CACHE_DIR/tune/``) otherwise, written atomically
(:func:`~repro.store.base.atomic_write_bytes`), tolerant of corrupt or
stale entries (they count, get unlinked, and the caller re-probes),
with a versioned schema so a format change invalidates old entries
instead of misreading them.  Decisions stay human-readable JSON — the
one kind a user may want to inspect or hand-edit — rather than the
document store's pickles.

Layout: one JSON file per decision, ``<root>/<machine fingerprint>/
<signature>.json`` — the fingerprint directory scopes decisions to the
hardware class that probed them.  Module-level counters surface as
``Runtime.stats()["tune_cache"]``, and every disk event is mirrored
into the shared per-kind counters (:func:`repro.store.store_stats`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from ..store import base as store_base
from .signature import machine_fingerprint

#: Bump when the persisted decision format changes; older entries are
#: treated as stale (tolerated, dropped, re-probed).
SCHEMA_VERSION = 1

#: Default LRU bound on persisted decisions per machine fingerprint.
DEFAULT_MAX_ENTRIES = 256

_stats = {
    "hits": 0,
    "misses": 0,
    "evictions": 0,
    "writes": 0,
    "corrupt": 0,
    "probes": 0,
    "probe_fallbacks": 0,
}


def tune_cache_dir() -> Path:
    override = os.environ.get("REPRO_TUNE_CACHE")
    if override:
        return Path(override)
    return store_base.cache_root() / "tune"


def tuning_disabled() -> bool:
    """``REPRO_TUNE_DISABLE=1`` turns ``backend="auto"`` into a plain
    default configuration: no probes, no disk traffic."""
    return bool(os.environ.get("REPRO_TUNE_DISABLE"))


def tune_cache_stats() -> Dict[str, Optional[int]]:
    """Counters for the tuning DB (7th runtime cache kind).

    Same canonical surface as the LRU caches (``hits`` / ``misses`` /
    ``evictions`` / ``entries`` / ``max_entries``) plus the DB-specific
    counters: ``writes``, ``corrupt`` (entries dropped as unreadable or
    stale), ``probes`` (measured candidate runs) and
    ``probe_fallbacks`` (candidates that errored mid-probe).
    """
    out: Dict[str, Optional[int]] = dict(_stats)
    try:
        d = tune_cache_dir() / machine_fingerprint()
        out["entries"] = sum(1 for _ in d.glob("*.json")) if d.is_dir() else 0
    except OSError:
        out["entries"] = 0
    out["max_entries"] = DEFAULT_MAX_ENTRIES
    return out


def reset_tune_cache() -> None:
    """Zero the counters (tests).  The on-disk DB is left alone —
    remove ``tune_cache_dir()`` to clear it."""
    for k in _stats:
        _stats[k] = 0
    c = store_base.counters("tune")
    for k in c:
        c[k] = 0


def count_probe() -> None:
    _stats["probes"] += 1
    # A probe is this kind's "expensive construction": the warm-start
    # acceptance pins builds == 0 for a replaying process.
    store_base.count_build("tune")


def count_probe_fallback() -> None:
    _stats["probe_fallbacks"] += 1


class TuneStore:
    """Persisted tuning decisions for one machine fingerprint.

    ``load``/``store`` exchange plain decision dicts; callers wrap them
    in :class:`~repro.tune.tuner.TuneDecision`.  All disk failures are
    soft: a broken cache degrades to re-probing, never to an exception
    on the execution path.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else tune_cache_dir()
        self.fingerprint = fingerprint or machine_fingerprint()
        self.dir = self.root / self.fingerprint
        self.max_entries = int(max_entries)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The persisted decision for ``key``, or ``None``.

        Corrupt, stale-schema or mismatched-key files count as
        ``corrupt`` and are unlinked so they stop costing a parse on
        every lookup.  A hit refreshes the file's mtime (the eviction
        order below is LRU by mtime).
        """
        path = self._path(key)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            _stats["misses"] += 1
            store_base.bump("tune", "disk_misses")
            return None
        except (OSError, ValueError):
            _stats["corrupt"] += 1
            _stats["misses"] += 1
            store_base.bump("tune", "corrupt")
            store_base.bump("tune", "disk_misses")
            store_base.unlink_quiet(path)
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("version") != SCHEMA_VERSION
            or doc.get("key") != key
            or not isinstance(doc.get("decision"), dict)
        ):
            _stats["corrupt"] += 1
            _stats["misses"] += 1
            store_base.bump("tune", "corrupt")
            store_base.bump("tune", "disk_misses")
            store_base.unlink_quiet(path)
            return None
        _stats["hits"] += 1
        store_base.bump("tune", "disk_hits")
        try:
            os.utime(path)
        except OSError:
            pass
        return doc["decision"]

    def store(self, key: str, decision: dict) -> None:
        """Atomically persist one decision and enforce the LRU bound.

        The temp file uses a non-``.json`` suffix so a concurrent
        ``entries()`` scan (or the eviction sweep) never sees a
        half-written entry; ``os.replace`` makes the publish atomic
        even against a concurrent writer of the same key (last writer
        wins — both wrote a valid decision for the same signature).
        """
        doc = {
            "version": SCHEMA_VERSION,
            "key": key,
            "decision": dict(decision),
        }
        data = json.dumps(doc, indent=1).encode()
        if not store_base.atomic_write_bytes(self._path(key), data):
            return  # read-only cache dir: skip persistence, keep running
        _stats["writes"] += 1
        store_base.bump("tune", "writes")
        self._evict()

    def entries(self) -> List[str]:
        if not self.dir.is_dir():
            return []
        return sorted(p.stem for p in self.dir.glob("*.json"))

    def clear(self) -> None:
        for p in list(self.dir.glob("*.json")) if self.dir.is_dir() else []:
            store_base.unlink_quiet(p)

    # ------------------------------------------------------------------
    def _evict(self) -> None:
        """Drop oldest-touched entries beyond ``max_entries``."""
        before = store_base.counters("tune")["evictions"]
        store_base.lru_sweep(self.dir, self.max_entries, "tune", ["*.json"])
        _stats["evictions"] += (
            store_base.counters("tune")["evictions"] - before
        )
