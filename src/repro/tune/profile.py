"""Always-on lightweight instrumentation: per-loop and per-chain profiles.

The backends already time every executed loop (``Backend.stats``); this
module adds what the tuner and the calibration fit need on top:

* a **transfer profile** per loop shape — kernel class (direct / gather
  / scatter, :func:`repro.perfmodel.classify_loop`) and estimated useful
  bytes per element (:func:`repro.perfmodel.analyze_loop`'s
  infinite-cache convention), derived once per loop-cache miss from the
  plan metadata the runtime resolves anyway;
* a **compute profile** per loop — flops per element counted from the
  kernel's parsed IR (:func:`repro.kernelc.estimate_flops`), the axis
  that lets the tuner tell a compute-bound loop (matrix-free quadrature
  re-evaluation) from a bandwidth-bound one (SpMV) when bytes alone
  cannot;
* **per-chain wall time** recorded at every flush.

Registration is defensive end to end: a loop shape the transfer model
cannot analyze (e.g. matrix staging arguments) degrades to an
``unknown`` class with zero byte estimate — profiling must never break
or slow execution.  :meth:`RuntimeProfile.snapshot` joins the estimates
with the backend's measured timings into the ``Runtime.stats()
["profile"]`` surface (also dumpable via ``python -m repro.tune
report``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


class RuntimeProfile:
    """Per-runtime accumulator for loop/chain instrumentation."""

    def __init__(self) -> None:
        #: kernel name -> {"kind", "bytes_per_element", "n"}
        self.loops: Dict[str, Dict[str, object]] = {}
        #: joined kernel names -> {"flushes", "seconds", "loops", "tiled"}
        self.chains: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def register_loop(self, kernel, set_, args: Sequence) -> None:
        """Record the transfer profile of one loop shape (idempotent).

        Called from the runtime's loop-cache miss path, so the (mildly
        expensive) unique-touch analysis runs once per distinct call
        site, not once per step.
        """
        name = getattr(kernel, "name", str(kernel))
        if name in self.loops:
            return
        n = int(getattr(set_, "size", 0)) or 1
        kind = "unknown"
        bytes_per_element = 0.0
        try:
            from ..perfmodel import analyze_loop, classify_loop

            kind = classify_loop(args)
            lt = analyze_loop(set_.name, args, {}, n_elements=n)
            sizes = {set_.name: set_.size}
            itemsize = 8
            for a in args:
                if not a.is_global:
                    sizes.setdefault(a.dat.set.name, a.dat.set.size)
                    itemsize = int(a.dat.data.dtype.itemsize)
            bytes_per_element = lt.useful_bytes(n, sizes, itemsize) / n
        except Exception:
            pass  # unanalyzable shape: keep the coarse record
        flops_per_element = 0.0
        try:
            from ..kernelc import estimate_flops

            flops_per_element = float(estimate_flops(kernel))
        except Exception:
            pass  # profiling must never break execution
        self.loops[name] = {
            "kind": kind,
            "bytes_per_element": float(bytes_per_element),
            "flops_per_element": flops_per_element,
            "n": n,
        }

    def record_chain(
        self, kernel_names: Tuple[str, ...], seconds: float, tiled: bool
    ) -> None:
        """Accumulate one chain flush (called from ``LoopChain.flush``)."""
        key = "+".join(kernel_names)
        entry = self.chains.setdefault(
            key, {"flushes": 0, "seconds": 0.0, "loops": len(kernel_names),
                  "tiled": bool(tiled)}
        )
        entry["flushes"] = int(entry["flushes"]) + 1
        entry["seconds"] = float(entry["seconds"]) + float(seconds)
        entry["tiled"] = bool(tiled)

    # ------------------------------------------------------------------
    def loop_infos(self) -> list:
        """Per-loop records in the shape the candidate model consumes."""
        return [
            {"name": name, "n": info["n"], "kind": info["kind"],
             "bytes": float(info["bytes_per_element"]) * int(info["n"]),
             "flops": float(info.get("flops_per_element", 0.0))
             * int(info["n"])}
            for name, info in self.loops.items()
        ]

    def snapshot(self, backend_stats: Optional[Dict] = None) -> Dict:
        """The ``Runtime.stats()["profile"]`` payload.

        Joins the static per-loop estimates with the backend's measured
        ``LoopStats`` (calls / seconds / elements); ``est_gbs`` is the
        achieved useful bandwidth under the infinite-cache convention —
        the number the calibration fit consumes.  ``est_flops`` /
        ``est_gflops`` are the IR-derived compute totals, and ``bound``
        classifies the loop as ``"compute"`` or ``"bandwidth"`` by its
        arithmetic intensity against the model's machine balance
        (:data:`repro.tune.model.MACHINE_BALANCE_FLOPS_PER_BYTE`).
        """
        from .model import MACHINE_BALANCE_FLOPS_PER_BYTE

        loops: Dict[str, Dict[str, object]] = {}
        for name, info in self.loops.items():
            fpe = float(info.get("flops_per_element", 0.0))
            bpe = float(info["bytes_per_element"])
            entry: Dict[str, object] = {
                "kind": info["kind"],
                "bytes_per_element": bpe,
                "flops_per_element": fpe,
                "bound": (
                    "compute"
                    if fpe > bpe * MACHINE_BALANCE_FLOPS_PER_BYTE
                    else "bandwidth"
                ),
                "calls": 0,
                "seconds": 0.0,
                "elements": 0,
                "est_bytes": 0,
                "est_flops": 0,
                "est_gbs": 0.0,
                "est_gflops": 0.0,
            }
            st = (backend_stats or {}).get(name)
            if st is not None:
                entry["calls"] = int(st.calls)
                entry["seconds"] = float(st.elapsed)
                entry["elements"] = int(st.elements)
                entry["est_bytes"] = int(bpe * st.elements)
                entry["est_flops"] = int(fpe * st.elements)
                if st.elapsed > 0:
                    entry["est_gbs"] = float(entry["est_bytes"]) / (
                        st.elapsed * 1e9
                    )
                    entry["est_gflops"] = float(entry["est_flops"]) / (
                        st.elapsed * 1e9
                    )
            loops[name] = entry
        return {
            "loops": loops,
            "chains": {k: dict(v) for k, v in self.chains.items()},
        }
