"""Stable identities for tuning decisions.

A persisted decision must outlive the process that probed for it, so the
store keys on three coordinates that together determine what the probe
actually measured:

* the **machine fingerprint** — CPU architecture, core count and the
  numerics stack (a decision probed on one machine class must not be
  replayed on another);
* the **chain/loop signature** — a content hash of the traced loop
  structure (kernel names, access modes, arities, slot indices), which
  is what determines gather/scatter behaviour and fusibility;
* the **mesh-size bucket** — a log2 bucket of the iteration-set sizes,
  folded into the signature: the best configuration for a cache-resident
  toy mesh and a paper-scale mesh legitimately differ, but two meshes in
  the same power-of-two band share a decision (so test suites full of
  slightly different tiny meshes do not probe per mesh).
"""

from __future__ import annotations

import hashlib
import os
import platform
import sys
from typing import Iterable, Sequence, Tuple


def machine_fingerprint() -> str:
    """Short stable id of (hardware class, numerics stack).

    Deliberately coarse: same-generation CI runners share decisions,
    while an arm64 laptop and an x86 server do not.
    """
    import numpy as np

    payload = repr((
        platform.machine(),
        platform.system(),
        os.cpu_count(),
        np.__version__,
        sys.version_info[:2],
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def mesh_bucket(n: int) -> int:
    """log2 size bucket: meshes within a factor of two share decisions."""
    return max(0, int(n).bit_length())


def _arg_sig(arg) -> Tuple:
    """Structural identity of one loop argument.

    Robust by construction — an argument kind this module has never
    seen (e.g. a future Mat flavour) degrades to a coarse tag rather
    than raising: tuning identity may get coarser, execution never
    breaks.
    """
    try:
        access = arg.access.name
        if arg.is_global:
            return ("gbl", access, int(arg.dat.dim))
        if arg.is_direct:
            return ("dir", access, int(arg.dat.dim))
        return (
            "ind", access, int(arg.dat.dim), int(arg.map.arity),
            int(arg.index),
        )
    except Exception:
        return ("other", getattr(getattr(arg, "access", None), "name", "?"))


def loop_entry(name: str, set_, args: Sequence) -> Tuple:
    """Hashable identity of one traced loop for the chain signature."""
    return (
        str(name),
        mesh_bucket(getattr(set_, "size", 0)),
        tuple(_arg_sig(a) for a in args),
    )


def chain_signature(
    loops: Iterable[Tuple[str, object, Sequence]],
    extra: Tuple = (),
) -> str:
    """Content hash of a traced loop sequence (+ app-level ``extra``).

    ``loops`` yields ``(kernel name, iteration set, args)`` triples in
    program order; ``extra`` carries identity the loop structure cannot
    see (app name, dtype).  Mesh sizes enter through the per-loop log2
    bucket, so the same app on same-band meshes maps to one decision.
    """
    payload = repr((
        tuple(loop_entry(name, set_, args) for name, set_, args in loops),
        tuple(extra),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:24]
