"""Candidate configurations and their roofline-seeded ranking.

The tuner does not probe blindly: the candidate set is ordered by a
prediction built from :mod:`repro.perfmodel`'s calibrated memory
efficiencies (per kernel class — direct / gather / scatter) before any
wall-clock probe runs, so the short measured phase only has to
discriminate among the model's top picks.  This is the link the ISSUE
calls out: the perfmodel tables stop being display-only and gate real
execution decisions (pinned by ``tests/test_autotune.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class TuneCandidate:
    """One point in the negotiated configuration space."""

    backend: str = "vectorized"
    layout: str = "aos"
    chained: bool = True
    tiling: object = None  # None | "auto" | int
    #: Operator realization for apps that offer one ("assembled" |
    #: "matfree"); ``None`` for workloads without the axis.
    operator: Optional[str] = None

    def label(self) -> str:
        mode = "eager"
        if self.chained:
            mode = "chained" if self.tiling is None else f"tiled({self.tiling})"
        base = f"{self.backend}/{self.layout}/{mode}"
        return base if self.operator is None else f"{base}/{self.operator}"


@dataclass(frozen=True)
class Pins:
    """Axes the caller fixed explicitly (never overridden by tuning)."""

    layout: Optional[str] = None
    chained: Optional[bool] = None
    tiling: object = None
    tiling_pinned: bool = False
    operator: Optional[str] = None


#: How each backend consumes the calibration's efficiency tables.
_BACKEND_STYLE = {
    "sequential": "scalar",
    "codegen": "scalar",
    "openmp": "scalar",
    "simt": "vec",
    "vectorized": "vec",
    "native": "vec",
    "autovec": "auto",
}

#: Python-side interpretation cost per iteration element (seconds); the
#: dominant term for the scalar backends, negligible for batched ones.
_PER_ELEMENT_S = {"scalar": 1.0e-6, "vec": 3e-9, "auto": 4e-9,
                  "native": 1e-9}

#: Per-loop dispatch overhead (plan lookup, view binding, one Python
#: call per color) — what chaining amortizes.
_PER_LOOP_S = {"scalar": 3e-5, "vec": 1.2e-4, "auto": 1.5e-4,
               "native": 3e-5}

#: Assumed streaming bandwidth for the seed ranking (GB/s).  Only the
#: *relative* ordering matters — probes measure the truth — so a
#: generic DDR figure is fine; the calibration fit refines the
#: efficiency fractions, not this peak.
DEFAULT_PEAK_GBS = 25.0

#: Assumed batched-arithmetic peak for the compute roofline term
#: (GFLOP/s); like the bandwidth peak, only the ratio matters.
DEFAULT_PEAK_GFLOPS = 50.0

#: The roofline ridge point: loops above this arithmetic intensity
#: (flops per useful byte) are compute-bound, below it bandwidth-bound.
MACHINE_BALANCE_FLOPS_PER_BYTE = DEFAULT_PEAK_GFLOPS / DEFAULT_PEAK_GBS


def default_candidates(
    pins: Optional[Pins] = None,
    compiler_ok: Optional[bool] = None,
    operators: Optional[Sequence[str]] = None,
) -> List[TuneCandidate]:
    """The negotiated space, filtered by the caller's explicit pins.

    Kept deliberately small (probes are wall-clock): the vectorized
    backend across layout x {chained, tiled, eager}, plus the native
    chain JIT when a C compiler is available.  ``operators`` crosses
    the grid with an app-provided operator axis (e.g. aero's
    ``("assembled", "matfree")``), respecting an operator pin.
    """
    if compiler_ok is None:
        from ..kernelc import compiler_available

        compiler_ok = compiler_available()
    cands = [
        TuneCandidate("vectorized", "aos", True, None),
        TuneCandidate("vectorized", "soa", True, None),
        TuneCandidate("vectorized", "aos", True, "auto"),
        TuneCandidate("vectorized", "aos", False, None),
        TuneCandidate("vectorized", "soa", False, None),
    ]
    if compiler_ok:
        cands += [
            TuneCandidate("native", "aos", True, None),
            TuneCandidate("native", "soa", True, None),
        ]
    if pins is not None:
        if pins.layout is not None:
            cands = [c for c in cands if c.layout == pins.layout]
        if pins.chained is not None:
            cands = [c for c in cands if c.chained == pins.chained]
        if pins.tiling_pinned:
            cands = [c for c in cands if c.tiling == pins.tiling]
            if not cands and pins.tiling is not None:
                # A pinned concrete tile size is not in the default
                # grid: synthesize matching candidates.
                cands = [
                    TuneCandidate("vectorized",
                                  pins.layout or "aos", True, pins.tiling)
                ]
                if compiler_ok and pins.layout is None:
                    cands.append(
                        TuneCandidate("native", "aos", True, pins.tiling)
                    )
    if operators:
        ops = list(operators)
        if pins is not None and pins.operator is not None:
            ops = [op for op in ops if op == pins.operator] \
                or [pins.operator]
        cands = [replace(c, operator=op) for c in cands for op in ops]
    return cands


def predict_candidate(
    candidate: TuneCandidate,
    loop_infos: Sequence[Dict],
    calibration=None,
    peak_gbs: float = DEFAULT_PEAK_GBS,
    peak_gflops: float = DEFAULT_PEAK_GFLOPS,
) -> float:
    """Predicted seconds per step for one candidate.

    Memory time comes from the perfmodel calibration: each loop's
    useful bytes divided by the peak bandwidth scaled by that
    architecture class's efficiency for the loop's kernel class
    (``mem_eff_scalar`` / ``mem_eff_vec`` / ``mem_eff_auto`` — the
    tables fitted against the paper, or refitted from measured
    profiles by :func:`repro.perfmodel.fit_calibration_from_profile`).
    Each loop is priced as a two-term roofline,
    ``max(bytes / bandwidth, flops / peak_gflops)`` — the flops leg
    (from the IR-derived profile estimates) is what makes a
    compute-bound matrix-free action comparable against a
    bandwidth-bound assembled SpMV.  Dispatch and interpretation
    overheads separate the backends where traffic alone cannot.

    When the candidate carries an operator tag, loops tagged with a
    *different* operator are skipped: an ``operator="matfree"``
    candidate is priced over the matfree loops plus the shared
    (untagged) ones, never over the assembled-only loops it replaces.
    """
    if calibration is None:
        from ..perfmodel import CALIBRATION

        calibration = CALIBRATION["cpu"]
    style = _BACKEND_STYLE.get(candidate.backend, "vec")
    eff_table = {
        "scalar": calibration.mem_eff_scalar,
        "vec": calibration.mem_eff_vec,
        "auto": calibration.mem_eff_auto,
    }[style]
    mem_style = style
    # Native keeps the vectorized efficiency table but sheds the
    # per-loop Python dispatch (one cffi entry per chain).
    over_style = "native" if candidate.backend == "native" else style
    per_elem = _PER_ELEMENT_S[over_style]
    if style == "scalar":
        per_elem *= max(calibration.cycles_per_flop_scalar, 0.05)
    per_loop = _PER_LOOP_S[over_style]
    if candidate.chained:
        per_loop *= 0.55  # fused replay: no per-loop lookups/validation
    if candidate.operator is not None:
        loop_infos = [
            info for info in loop_infos
            if info.get("operator") in (None, candidate.operator)
        ]
    t = 0.0
    nloops = max(len(loop_infos), 1)
    for info in loop_infos:
        eff = max(float(eff_table.get(info.get("kind", "direct"), 0.3)),
                  1e-3)
        mem = float(info.get("bytes", 0.0)) / (peak_gbs * 1e9 * eff)
        if candidate.tiling is not None:
            # Cross-loop tile locality pays off on multi-loop chains,
            # costs schedule overhead on short ones.
            mem *= 0.9 if nloops >= 3 else 1.05
        if candidate.layout == "soa" and mem_style != "scalar":
            mem *= 0.98 if info.get("kind") == "direct" else 1.0
        comp = float(info.get("flops", 0.0)) / (peak_gflops * 1e9)
        t += max(mem, comp) + float(info.get("n", 0)) * per_elem
    t += nloops * per_loop
    return t


def rank_candidates(
    loop_infos: Sequence[Dict],
    candidates: Sequence[TuneCandidate],
    calibration=None,
    peak_gbs: float = DEFAULT_PEAK_GBS,
) -> List[TuneCandidate]:
    """Candidates ordered best-predicted first (ties keep input order)."""
    scored = [
        (predict_candidate(c, loop_infos, calibration, peak_gbs), i, c)
        for i, c in enumerate(candidates)
    ]
    scored.sort(key=lambda t: (t[0], t[1]))
    return [c for _, _, c in scored]
