"""Structural (cross-process) keys for persisted artifacts.

In-process caches key by object identity (``_uid`` counters): cheap,
and exactly right while the objects live.  A persistent store needs
keys that two *different processes* agree on, so every key here is a
content digest of the structure an artifact depends on:

* a :class:`~repro.core.map.Map` keys by its **values** (plus arity and
  endpoint extents) — plans and tilings are functions of connectivity,
  not of which ``Map`` object carries it;
* a :class:`~repro.core.kernel.Kernel` keys by its **scalar source**
  (generated kernels are a function of the source text; kernels whose
  source :func:`inspect.getsource` cannot retrieve — lambdas, REPL
  definitions — are unkeyable and simply skip persistence);
* sets key by their size triple, dats/globals by dim/dtype/layout;
* object *aliasing* (two loops touching the same Dat, two args sharing
  one Map) is captured by first-occurrence ordinals, because fusion
  legality and dependency analysis depend on which arguments alias,
  not on which objects realize them.

Data values are deliberately **not** keyed: every persisted artifact is
a pure function of structure (the paper's plan/inspection reuse
argument), which is what makes replay across time steps — and now
across processes — sound.

Keys are hex digests (filename-safe); ``None`` means "do not persist".
"""

from __future__ import annotations

import hashlib
import inspect
from typing import Dict, Optional, Sequence, Tuple

from ..core.access import IDX_ALL


def digest(*parts) -> str:
    """sha256 over a flat token stream (ints/strings/bytes/None)."""
    h = hashlib.sha256()
    for p in parts:
        if isinstance(p, bytes):
            h.update(b"B" + p)
        else:
            h.update(repr(p).encode())
        h.update(b"\x1f")
    return h.hexdigest()


# ----------------------------------------------------------------------
# Per-object content keys (cached on the object)
# ----------------------------------------------------------------------
def map_key(m) -> str:
    """Content digest of one Map: connectivity values + endpoint extents."""
    cached = getattr(m, "_struct_key", None)
    if cached is None:
        cached = digest(
            "map",
            int(m.arity),
            int(m.from_set.total_size),
            int(m.to_set.total_size),
            m.values.tobytes(),
        )
        m._struct_key = cached
    return cached


def kernel_key(k) -> Optional[str]:
    """Content digest of one Kernel's scalar source, or ``None``.

    ``None`` (source unavailable, or a hand-attached vector override
    whose behavior the scalar source does not determine) marks the
    kernel unkeyable for source-derived artifacts (kernelc).
    """
    if getattr(k, "_struct_key_done", False):
        return k._struct_key
    key: Optional[str] = None
    if k.vector is None:
        try:
            key = digest("kernel", k.name, inspect.getsource(k.scalar))
        except (OSError, TypeError):
            key = None
    k._struct_key = key
    k._struct_key_done = True
    return key


def set_token(s) -> Tuple[int, int, int]:
    return (int(s.size), int(s.core_size), int(s.exec_size))


# ----------------------------------------------------------------------
# Artifact keys
# ----------------------------------------------------------------------
def plan_key(
    set_, args: Sequence, block_size: int, scheme: str, coloring_method: str
) -> str:
    """Key of one execution plan: the disk twin of ``plan_signature``.

    Same structural notion — iteration-set extent plus the racing
    ``(map, slot)`` columns — but with maps keyed by connectivity
    content and ``coloring_method`` included (the in-process cache may
    omit it because a runtime fixes one method; the shared store cannot).
    """
    racing = sorted(
        (map_key(arg.map), int(arg.index)) for arg in args if arg.races
    )
    return digest(
        "plan", set_token(set_), racing,
        int(block_size), scheme, coloring_method,
    )


def chain_key(
    specs: Sequence,
    tiling,
    block_size: int,
    scheme: str,
    coloring_method: str,
) -> Optional[str]:
    """Key of one compiled loop chain, or ``None`` when unkeyable.

    Tokens cover, per recorded loop: the kernel (name, plus source
    digest when retrievable — decode rebinds the *live* kernel, so the
    name alone is already sound), the iteration set, every argument's
    kind/dim/dtype/layout/access/slot, map connectivity, the
    ``[start, n)`` range — and the aliasing pattern via first-occurrence
    ordinals, which is what fusion legality and dependency edges are
    functions of.  Runtime knobs that flow into plan resolution
    (block size, scheme, coloring method) and the tiling request
    complete the key.

    A spec carrying an explicit plan override is unkeyable: the
    override's content is not derivable from the trace.
    """
    ordinals: Dict[Tuple[str, int], int] = {}

    def ordinal(kind: str, uid: int) -> int:
        return ordinals.setdefault((kind, uid), len(ordinals))

    tokens: list = ["chain", int(block_size), scheme, coloring_method,
                    "tiling", tiling]
    for spec in specs:
        if spec.plan is not None:
            return None
        tokens += [
            "loop", spec.kernel.name, kernel_key(spec.kernel),
            ordinal("s", spec.set._uid), set_token(spec.set),
            int(spec.n), int(spec.start),
        ]
        for arg in spec.args:
            if arg.is_global:
                tokens += [
                    "g", ordinal("g", arg.dat._uid), int(arg.dat.dim),
                    str(arg.dat.dtype), arg.access.name,
                ]
            else:
                # The dat's home-set ordinal (and the map's endpoint
                # ordinals below) tie the identity relations
                # ``validate_loop`` checks into the key: a key hit
                # therefore replays a trace whose structure already
                # validated, which is what lets decode skip validation.
                tokens += [
                    "d", ordinal("d", arg.dat._uid),
                    ordinal("s", arg.dat.set._uid), int(arg.dat.dim),
                    str(arg.dat.dtype), arg.dat.layout, arg.access.name,
                    int(arg.index),
                ]
                if arg.map is not None:
                    tokens += [
                        ordinal("m", arg.map._uid),
                        ordinal("s", arg.map.from_set._uid),
                        ordinal("s", arg.map.to_set._uid),
                        map_key(arg.map),
                    ]
                else:
                    tokens.append("direct")
    return digest(*tokens)


def tiled_key(chain_store_key: str, tile_size: int, profile: str) -> str:
    """Key of one tiled schedule: the chain it slices + size + profile."""
    return digest("tiled", chain_store_key, int(tile_size), profile)


def kernelc_key(kernel, shapes) -> Optional[str]:
    """Key of one generated vector kernel source, or ``None``.

    The generated source is a pure function of (scalar source, argument
    shape signature); kernels without retrievable source skip the store.
    """
    kkey = kernel_key(kernel)
    if kkey is None:
        return None
    norm = []
    for s in shapes:
        if isinstance(s, tuple):
            norm.append((bool(s[0]), None if s[1] is None else int(s[1])))
        else:
            norm.append((bool(s), None))
    return digest("kernelc", kkey, norm)


__all__ = [
    "IDX_ALL", "digest", "map_key", "kernel_key", "set_token",
    "plan_key", "chain_key", "tiled_key", "kernelc_key",
]
