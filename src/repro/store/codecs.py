"""Artifact (en/de)coders: live objects ↔ plain persistable documents.

Each codec pair turns one artifact into a dict of arrays/ints/strings
(no live ``Set``/``Map``/``Dat``/``Kernel`` references, no memoized
caches) and back.  Decoding **rebinds to live storage** the way native
``.so`` replay does: the document carries only what was expensive to
compute — colorings, permutations, fusion decisions, tile cuts,
generated source — and the decoder grafts it onto the session's live
objects, leaving every lazily-built structure (phase lists, gather
indices, executor programs) to rebuild on demand exactly as a
freshly-constructed artifact would.

The decoders trust the store's schema/key validation: a payload that
reaches them has the right schema version and was stored under the key
the caller just computed.  Malformed payloads (a truncated write that
still unpickles, a hand-edited file) raise inside the decoder; callers
treat any decode exception as a corrupt entry — counted, unlinked,
recomputed — never as a user-facing failure.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..coloring import BlockLayout, BlockPermutation, Permutation
from ..core.plan import Plan
from ..tiling.schedule import (
    BarrierLoop,
    LoopSlices,
    TiledSchedule,
    TiledSegment,
)


def _arr(a) -> np.ndarray:
    """Validate-and-copy an array field out of a decoded payload."""
    if not isinstance(a, np.ndarray):
        raise TypeError(f"expected ndarray, got {type(a).__name__}")
    return a


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
def encode_plan(plan: Plan) -> dict:
    """Strip a plan to its expensive content (colorings, permutations).

    ``blocks_by_color`` is derived from ``block_colors`` on decode, and
    the phase/order/gather caches rebuild lazily — they are cheap
    relative to the graph coloring this skips.
    """
    return {
        "scheme": plan.scheme,
        "is_direct": bool(plan.is_direct),
        "layout": (
            int(plan.layout.n_elements),
            int(plan.layout.block_size),
            plan.layout.offsets,
        ),
        "block_colors": plan.block_colors,
        "n_block_colors": int(plan.n_block_colors),
        "elem_colors": plan.elem_colors,
        "block_ncolors": plan.block_ncolors,
        "permutation": (
            None
            if plan.permutation is None
            else (plan.permutation.order, plan.permutation.color_offsets)
        ),
        "block_permutation": (
            None
            if plan.block_permutation is None
            else (
                plan.block_permutation.order,
                list(plan.block_permutation.color_offsets),
            )
        ),
        "build_stats": dict(plan.build_stats),
    }


def decode_plan(payload: dict, set_) -> Plan:
    """Rebuild a live plan over the session's ``set_``."""
    n_elements, block_size, offsets = payload["layout"]
    layout = BlockLayout(
        n_elements=int(n_elements),
        block_size=int(block_size),
        offsets=_arr(offsets),
    )
    block_colors = _arr(payload["block_colors"])
    n_block_colors = int(payload["n_block_colors"])
    blocks_by_color = [
        np.nonzero(block_colors == c)[0].astype(np.int64)
        for c in range(max(n_block_colors, 0))
    ]
    permutation = None
    if payload["permutation"] is not None:
        order, color_offsets = payload["permutation"]
        permutation = Permutation(
            order=_arr(order), color_offsets=_arr(color_offsets)
        )
    block_permutation = None
    if payload["block_permutation"] is not None:
        order, color_offsets = payload["block_permutation"]
        block_permutation = BlockPermutation(
            layout=layout,
            order=_arr(order),
            color_offsets=[_arr(o) for o in color_offsets],
        )
    return Plan(
        set=set_,
        scheme=str(payload["scheme"]),
        layout=layout,
        is_direct=bool(payload["is_direct"]),
        block_colors=block_colors,
        n_block_colors=n_block_colors,
        blocks_by_color=blocks_by_color,
        elem_colors=(
            None if payload["elem_colors"] is None
            else _arr(payload["elem_colors"])
        ),
        block_ncolors=(
            None if payload["block_ncolors"] is None
            else _arr(payload["block_ncolors"])
        ),
        permutation=permutation,
        block_permutation=block_permutation,
        build_stats=dict(payload["build_stats"]),
    )


# ----------------------------------------------------------------------
# Tiled schedule
# ----------------------------------------------------------------------
def encode_tiled(sched: TiledSchedule) -> dict:
    parts: List[dict] = []
    for part in sched.parts:
        if isinstance(part, TiledSegment):
            parts.append({
                "kind": "segment",
                "loop_indices": list(part.loop_indices),
                "n_tiles": int(part.n_tiles),
                "slices": [(sl.order, sl.cuts) for sl in part.slices],
                "tile_colors": part.tile_colors,
                "n_tile_colors": int(part.n_tile_colors),
            })
        else:
            parts.append({
                "kind": "barrier",
                "loop_index": int(part.loop_index),
                "reason": part.reason,
            })
    return {
        "parts": parts,
        "tile_size": int(sched.tile_size),
        "profile": sched.profile,
    }


def decode_tiled(payload: dict) -> TiledSchedule:
    parts: List = []
    for doc in payload["parts"]:
        if doc["kind"] == "segment":
            parts.append(TiledSegment(
                loop_indices=tuple(int(k) for k in doc["loop_indices"]),
                n_tiles=int(doc["n_tiles"]),
                slices=tuple(
                    LoopSlices(order=_arr(order), cuts=_arr(cuts))
                    for order, cuts in doc["slices"]
                ),
                tile_colors=_arr(doc["tile_colors"]),
                n_tile_colors=int(doc["n_tile_colors"]),
            ))
        elif doc["kind"] == "barrier":
            parts.append(BarrierLoop(
                loop_index=int(doc["loop_index"]), reason=str(doc["reason"])
            ))
        else:
            raise ValueError(f"unknown schedule part kind {doc['kind']!r}")
    return TiledSchedule(
        parts=tuple(parts),
        tile_size=int(payload["tile_size"]),
        profile=str(payload["profile"]),
    )


# ----------------------------------------------------------------------
# Compiled chain
# ----------------------------------------------------------------------
def encode_chain(compiled) -> dict:
    """Persist a compiled chain's *decisions*, not its bound objects.

    The expensive outputs of :func:`repro.core.chain.compile_chain` are
    the validation pass, the dependency analysis, the fusion partition
    and the resolved tile size; the bound loops themselves are rebuilt
    from the live trace on decode (plans come from the plan store).
    The canonical tiled schedule is persisted separately under the
    ``tiled`` kind so the ascending-profile schedule and future
    profiles share one storage path.
    """
    offsets = []
    pos = 0
    for g in compiled.groups:
        offsets.append(list(range(pos, pos + len(g.loops))))
        pos += len(g.loops)
    return {
        "groups": offsets,
        "analysis": {
            "edges": sorted(compiled.analysis.edges),
            "levels": list(compiled.analysis.levels),
            "frontiers": [list(f) for f in compiled.analysis.frontiers],
        },
        "tiling": compiled.tiling,
        "tile_size": int(compiled.tile_size),
        "n_loops": compiled.n_loops,
    }


def decode_chain(payload: dict, specs, plans):
    """Rebuild a compiled chain over live ``specs`` and resolved ``plans``.

    Skips validation, dependency analysis and fusion — the persisted
    decisions are functions of the structural trace the key guarantees
    identical.  The caller attaches the tiled schedule (from the tiled
    store, or by re-inspection on a miss).
    """
    from ..core.chain import BoundLoop, ChainAnalysis, CompiledChain, FusedGroup

    if int(payload["n_loops"]) != len(specs):
        raise ValueError("chain document does not match the live trace")
    bound = [
        BoundLoop(
            kernel=spec.kernel, set=spec.set, args=spec.args,
            plan=plans[i], n=spec.n, start=spec.start,
        )
        for i, spec in enumerate(specs)
    ]
    groups = []
    seen: List[int] = []
    for idx_group in payload["groups"]:
        idx_group = [int(i) for i in idx_group]
        seen += idx_group
        head = specs[idx_group[0]]
        groups.append(FusedGroup(
            loops=tuple(bound[i] for i in idx_group),
            plan=plans[idx_group[0]],
            n=head.n,
            start=head.start,
        ))
    if seen != list(range(len(specs))):
        raise ValueError("chain fusion groups do not partition the trace")
    an = payload["analysis"]
    analysis = ChainAnalysis(
        edges=frozenset((int(i), int(j)) for i, j in an["edges"]),
        levels=tuple(int(v) for v in an["levels"]),
        frontiers=tuple(tuple(int(i) for i in f) for f in an["frontiers"]),
    )
    return CompiledChain(
        groups=tuple(groups),
        analysis=analysis,
        tiling=payload["tiling"],
        tile_size=int(payload["tile_size"]),
        tiled=None,
    )


# ----------------------------------------------------------------------
# Generated kernel source (kernelc)
# ----------------------------------------------------------------------
def encode_kernelc(source: Optional[str]) -> dict:
    """``source=None`` records a negative entry (unvectorizable kernel)."""
    return {"source": source}


def decode_kernelc(payload: dict) -> Optional[str]:
    source = payload["source"]
    if source is not None and not isinstance(source, str):
        raise TypeError("kernelc payload source must be a string or None")
    return source
