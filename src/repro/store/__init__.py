"""The unified persistent artifact store (``$REPRO_CACHE_DIR``).

Seven cache kinds, one disk layer: execution plans, compiled loop
chains, tiled schedules, generated vector-kernel sources, native
``.so`` binaries and the auto-tuner's decisions all persist through
:class:`~repro.store.base.ArtifactStore` — content-addressed keys
(:mod:`repro.store.keys`), versioned pickled documents, atomic
``os.replace`` publishes, corrupt/stale entries counted-and-unlinked
(never raised), mtime-LRU bounded per kind.  A second process running
an identical workload replays everything warm: zero plan construction,
zero tiling inspection, zero kernel emission, zero native compiles —
the cross-process extension of the paper's "inspect once, execute many
times" amortization argument, and the substrate the ROADMAP's
session-server item builds on.

See ``docs/architecture.md`` § "The cache hierarchy" for the full
lookup order of every kind, and the README knob table for
``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_ENTRIES`` /
``REPRO_STORE_DISABLE``.
"""

from .base import (
    ArtifactStore,
    COUNTER_NAMES,
    DEFAULT_MAX_ENTRIES,
    SCHEMA_VERSIONS,
    atomic_write_bytes,
    bump,
    cache_root,
    count_build,
    counters,
    lru_sweep,
    max_entries_for,
    reset_store_stats,
    store_disabled,
    store_for,
    store_stats,
    unlink_quiet,
)
from .codecs import (
    decode_chain,
    decode_kernelc,
    decode_plan,
    decode_tiled,
    encode_chain,
    encode_kernelc,
    encode_plan,
    encode_tiled,
)
from .keys import (
    chain_key,
    digest,
    kernel_key,
    kernelc_key,
    map_key,
    plan_key,
    set_token,
    tiled_key,
)

__all__ = [
    "ArtifactStore", "COUNTER_NAMES", "DEFAULT_MAX_ENTRIES",
    "SCHEMA_VERSIONS", "atomic_write_bytes", "bump", "cache_root",
    "count_build", "counters", "lru_sweep", "max_entries_for",
    "reset_store_stats", "store_disabled", "store_for", "store_stats",
    "unlink_quiet",
    "decode_chain", "decode_kernelc", "decode_plan", "decode_tiled",
    "encode_chain", "encode_kernelc", "encode_plan", "encode_tiled",
    "chain_key", "digest", "kernel_key", "kernelc_key", "map_key",
    "plan_key", "set_token", "tiled_key",
]
