"""The unified persistent artifact store — disk layer under every cache.

One module owns every on-disk caching concern the runtime has: where
artifacts live (``$REPRO_CACHE_DIR``, default ``~/.cache/repro_artifacts``,
one subdirectory per *kind*), how they are written (``mkstemp`` +
``os.replace`` — concurrent writers of one key are last-writer-wins and a
reader can never observe a half-written file), how failures behave
(corrupt, truncated, stale-schema or mismatched-key entries are *counted
and unlinked, never raised* — a broken cache degrades to recomputation,
never to an exception on the execution path), and how growth is bounded
(per-kind mtime-LRU sweeps, amortized so a write does not pay a directory
scan every time).

Two storage flavours share that machinery:

* **document stores** (:class:`ArtifactStore`) hold one pickled,
  schema-versioned document per key — plans, chain programs, tiled
  schedules, generated kernel sources, tuning decisions;
* **raw files** (:meth:`ArtifactStore.publish_file` /
  :meth:`ArtifactStore.raw_path`) hold artifacts that must remain plain
  files on disk — the native compile cache's ``.so``/``.c`` pairs, which
  ``dlopen`` needs as real paths.

Every kind reports the same counter schema through
:func:`store_stats` → :meth:`repro.core.runtime.Runtime.stats`:
``disk_hits`` / ``disk_misses`` / ``writes`` / ``corrupt`` /
``evictions`` / ``builds`` (expensive constructions actually performed)
plus ``disk_entries``.  The grep guard in CI keeps every other module
out of the serialization business: no ``pickle`` and no cache-file
writes anywhere under ``src/repro`` outside this package.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

#: Serialization schema per artifact kind.  Bump a kind's version
#: whenever its document layout (or the semantics of the code that
#: consumes it) changes: old entries are then treated as stale —
#: tolerated, counted as ``corrupt``, unlinked and rebuilt — instead of
#: being misread.
SCHEMA_VERSIONS: Dict[str, int] = {
    "plan": 1,
    "chain": 1,
    "tiled": 1,
    "kernelc": 1,
    "native": 1,
    "tune": 1,
}

#: Default per-kind mtime-LRU bound (entries, not bytes: artifacts are
#: mesh-sized and a count bound keeps the sweep cheap and predictable).
DEFAULT_MAX_ENTRIES = 512

#: Run the (directory-scanning) LRU sweep once per this many writes.
_SWEEP_EVERY = 16

#: Counter names every kind carries (the uniform disk-layer schema).
COUNTER_NAMES = (
    "disk_hits", "disk_misses", "writes", "corrupt", "evictions", "builds",
)

_counters: Dict[str, Dict[str, int]] = {}


def cache_root() -> Path:
    """Root directory of the unified store (``$REPRO_CACHE_DIR``)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro_artifacts"


def max_entries_for(kind: str) -> int:
    """Per-kind LRU bound; ``$REPRO_CACHE_MAX_ENTRIES`` overrides all."""
    override = os.environ.get("REPRO_CACHE_MAX_ENTRIES")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return DEFAULT_MAX_ENTRIES


def store_disabled(kind: str) -> bool:
    """Whether persistence is off for ``kind``.

    ``REPRO_STORE_DISABLE=1`` (or ``all``) disables every kind;
    a comma-separated list (``REPRO_STORE_DISABLE=plan,tiled``)
    disables only the named kinds.  Disabled kinds compute everything
    in-process exactly as before the store existed — no disk traffic.
    """
    raw = os.environ.get("REPRO_STORE_DISABLE", "")
    if not raw:
        return False
    if raw.strip() in ("1", "all", "true"):
        return True
    return kind in {part.strip() for part in raw.split(",")}


def counters(kind: str) -> Dict[str, int]:
    """The (process-wide) counter dict for one kind."""
    c = _counters.get(kind)
    if c is None:
        c = {name: 0 for name in COUNTER_NAMES}
        _counters[kind] = c
    return c


def bump(kind: str, name: str, n: int = 1) -> None:
    counters(kind)[name] = counters(kind).get(name, 0) + n


def count_build(kind: str) -> None:
    """Record one expensive construction actually performed (a plan
    built, a chain compiled, a tiling inspection run, a kernel source
    emitted).  The warm-start acceptance pins these at zero for a
    second process replaying an identical workload."""
    bump(kind, "builds")


def reset_store_stats() -> None:
    """Zero every kind's counters (tests).  On-disk state is left
    alone — point ``REPRO_CACHE_DIR`` somewhere fresh to clear it."""
    for c in _counters.values():
        for k in c:
            c[k] = 0
    for store in _stores.values():
        store._writes_since_sweep = 0


def store_stats(kind: str) -> Dict[str, object]:
    """Uniform disk-layer counters for one kind (+ disk entry count)."""
    out: Dict[str, object] = dict(counters(kind))
    store = store_for(kind)
    out["disk_entries"] = store.entry_count()
    out["max_entries"] = store.max_entries
    return out


# ----------------------------------------------------------------------
# Shared low-level file operations
# ----------------------------------------------------------------------
def atomic_write_bytes(path: Path, data: bytes) -> bool:
    """Atomically publish ``data`` at ``path``; False on any OS failure.

    The temp file uses a leading-dot, non-matching suffix so directory
    scans (entry counts, LRU sweeps, corrupt-smoke file pickers) never
    see a half-written entry; ``os.replace`` makes the publish atomic
    even against a concurrent writer of the same key.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            suffix=".part", prefix=f".{path.name[:16]}-", dir=str(path.parent)
        )
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    except OSError:
        return False  # read-only cache dir: skip persistence, keep running
    return True


def unlink_quiet(path: Path) -> bool:
    try:
        path.unlink()
        return True
    except OSError:
        return False


def lru_sweep(
    directory: Path, max_entries: int, kind: str,
    patterns: Optional[List[str]] = None,
) -> None:
    """Drop oldest-touched files beyond ``max_entries`` (mtime LRU).

    ``patterns`` lists the glob patterns forming one logical entry set
    (default: every visible file); companion files sharing an evicted
    file's stem (e.g. a ``.c`` next to a ``.so``) are dropped with it.
    """
    try:
        files = [
            p
            for pat in (patterns or ["*"])
            for p in directory.glob(pat)
            if not p.name.startswith(".")
        ]
        files.sort(key=lambda p: p.stat().st_mtime)
    except OSError:
        return
    excess = len(files) - max_entries
    for p in files[: max(0, excess)]:
        if unlink_quiet(p):
            bump(kind, "evictions")
        for sibling in directory.glob(p.stem + ".*"):
            unlink_quiet(sibling)


# ----------------------------------------------------------------------
# The store proper
# ----------------------------------------------------------------------
class ArtifactStore:
    """One artifact kind's keyed slice of the unified on-disk store.

    Documents are pickled dicts wrapped in a ``(schema, kind, key)``
    header validated on load; anything that fails to read, unpickle or
    validate counts as ``corrupt``, is unlinked, and reads as a miss.
    Keys are content hashes (see :mod:`repro.store.keys`), so equal keys
    mean interchangeable artifacts and a write is always idempotent.
    """

    def __init__(self, kind: str, suffix: str = ".pkl") -> None:
        self.kind = kind
        self.suffix = suffix
        self.schema = SCHEMA_VERSIONS.get(kind, 1)
        self._writes_since_sweep = 0

    # -- layout --------------------------------------------------------
    @property
    def max_entries(self) -> int:
        return max_entries_for(self.kind)

    def directory(self) -> Path:
        """Resolved per call so tests can repoint ``REPRO_CACHE_DIR``."""
        return cache_root() / self.kind

    def enabled(self) -> bool:
        return not store_disabled(self.kind)

    def path_for(self, key: str) -> Path:
        return self.directory() / f"{key}{self.suffix}"

    def entry_count(self) -> int:
        try:
            d = self.directory()
            if not d.is_dir():
                return 0
            return sum(
                1 for p in d.glob(f"*{self.suffix}")
                if not p.name.startswith(".")
            )
        except OSError:
            return 0

    def entries(self) -> List[str]:
        try:
            d = self.directory()
            if not d.is_dir():
                return []
            return sorted(
                p.name[: -len(self.suffix)]
                for p in d.glob(f"*{self.suffix}")
                if not p.name.startswith(".")
            )
        except OSError:
            return []

    def clear(self) -> None:
        try:
            for p in self.directory().glob("*"):
                unlink_quiet(p)
        except OSError:
            pass

    # -- documents -----------------------------------------------------
    def get(self, key: Optional[str]) -> Optional[dict]:
        """The stored payload for ``key``, or ``None``.

        A hit refreshes the file's mtime (LRU order).  ``None`` keys
        (unkeyable artifacts — e.g. a kernel whose source the inspector
        cannot retrieve) short-circuit without touching the counters.
        """
        if key is None or not self.enabled():
            return None
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            bump(self.kind, "disk_misses")
            return None
        except OSError:
            bump(self.kind, "disk_misses")
            bump(self.kind, "corrupt")
            unlink_quiet(path)
            return None
        try:
            doc = pickle.loads(raw)
        except Exception:
            bump(self.kind, "disk_misses")
            bump(self.kind, "corrupt")
            unlink_quiet(path)
            return None
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != self.schema
            or doc.get("kind") != self.kind
            or doc.get("key") != key
            or "payload" not in doc
        ):
            bump(self.kind, "disk_misses")
            bump(self.kind, "corrupt")
            unlink_quiet(path)
            return None
        bump(self.kind, "disk_hits")
        try:
            os.utime(path)
        except OSError:
            pass
        return doc["payload"]

    def put(self, key: Optional[str], payload: dict) -> bool:
        """Atomically persist one document and amortize the LRU sweep."""
        if key is None or not self.enabled():
            return False
        doc = {
            "schema": self.schema,
            "kind": self.kind,
            "key": key,
            "payload": payload,
        }
        try:
            data = pickle.dumps(doc, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        if not atomic_write_bytes(self.path_for(key), data):
            return False
        bump(self.kind, "writes")
        self._maybe_sweep([f"*{self.suffix}"])
        return True

    # -- raw files (native .so / .c) -----------------------------------
    def raw_path(self, key: str, suffix: str) -> Path:
        """Path of a raw (non-document) artifact file for ``key``."""
        return self.directory() / f"{key}{suffix}"

    def publish_file(self, tmp_path: str, key: str, suffix: str) -> bool:
        """Atomically move a finished temp file into the store."""
        path = self.raw_path(key, suffix)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(tmp_path, path)
        except OSError:
            return False
        bump(self.kind, "writes")
        self._maybe_sweep([f"*{suffix}"])
        return True

    # ------------------------------------------------------------------
    def _maybe_sweep(self, patterns: List[str]) -> None:
        self._writes_since_sweep += 1
        if self._writes_since_sweep < _SWEEP_EVERY:
            return
        self._writes_since_sweep = 0
        try:
            lru_sweep(self.directory(), self.max_entries, self.kind, patterns)
        except OSError:
            pass


_stores: Dict[str, ArtifactStore] = {}


def store_for(kind: str) -> ArtifactStore:
    """The process-wide store instance for one artifact kind."""
    store = _stores.get(kind)
    if store is None:
        store = ArtifactStore(kind)
        _stores[kind] = store
    return store
