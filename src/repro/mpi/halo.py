"""Halo construction: OP2's owner-compute import/export lists.

For every (rank, set) pair the decomposition produces three regions laid
out contiguously in local numbering::

    [ owned (core first, then boundary) | exec halo | non-exec halo ]

* **owned** — elements assigned to this rank by the partitioner; the
  *core* prefix touches no halo data and can execute while halo messages
  are in flight (the ``op_mpi_wait_all`` overlap of paper Fig 2b).
* **exec halo** — other ranks' elements that indirectly *write* to data
  owned here; they are executed redundantly so every contribution to
  owned data is computed locally (OP2's redundant-compute design).
* **non-exec halo** — read-only copies of remote elements referenced by
  any owned/exec element through any map.

:class:`HaloPlan` stores, per dat-carrying set, the exchange lists that a
halo update must copy (owner-local source index → importer-local
destination index, grouped by rank pair).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class SetRegions:
    """Local-numbering layout of one set on one rank."""

    owned: np.ndarray        # global ids, core-first ordering
    core_size: int
    exec_halo: np.ndarray    # global ids executed redundantly
    nonexec_halo: np.ndarray # global ids imported read-only

    @property
    def n_owned(self) -> int:
        return self.owned.size

    @property
    def n_exec(self) -> int:
        return self.exec_halo.size

    @property
    def n_nonexec(self) -> int:
        return self.nonexec_halo.size

    @property
    def extent(self) -> int:
        return self.n_owned + self.n_exec + self.n_nonexec

    def local_of_global(self) -> Dict[int, int]:
        """Global-id → local-id dictionary (owned, exec, nonexec order)."""
        g2l: Dict[int, int] = {}
        pos = 0
        for arr in (self.owned, self.exec_halo, self.nonexec_halo):
            for g in arr.tolist():
                g2l[g] = pos
                pos += 1
        return g2l

    def l2g(self) -> np.ndarray:
        return np.concatenate([self.owned, self.exec_halo, self.nonexec_halo])


@dataclass
class ExchangeList:
    """One direction of a halo update for one set.

    ``src_rank`` owns the elements; ``dst_rank`` imports them into its
    halo region.  Indices are *local* to each side.
    """

    src_rank: int
    dst_rank: int
    src_local: np.ndarray
    dst_local: np.ndarray

    @property
    def count(self) -> int:
        return self.src_local.size


@dataclass
class HaloPlan:
    """All exchange lists of one set, plus region layouts per rank."""

    regions: List[SetRegions]
    exchanges: List[ExchangeList] = field(default_factory=list)

    def total_halo_elements(self) -> int:
        return sum(r.n_exec + r.n_nonexec for r in self.regions)


def coalesce_exchange_bytes(
    batches: Sequence[Tuple[Sequence[ExchangeList], int]],
) -> Dict[Tuple[int, int], int]:
    """Merge several dats' exchange lists into per-rank-pair byte totals.

    ``batches`` pairs each dat's exchange lists with its per-element
    byte size.  The result maps ``(src_rank, dst_rank)`` to the total
    payload a *batched* halo update moves between that pair — the
    loop-chain substrate packs every stale dat a dependency frontier
    needs into **one** message per neighbour pair, instead of one
    message per dat per loop (the communication-batching half of the
    loop-chain design; see ``core/chain.py``).
    """
    pair_bytes: Dict[Tuple[int, int], int] = defaultdict(int)
    for exchanges, itembytes in batches:
        for ex in exchanges:
            pair_bytes[(ex.src_rank, ex.dst_rank)] += ex.count * itembytes
    return dict(pair_bytes)


def build_regions(
    set_parts: np.ndarray,
    rank: int,
    maps_from: List[Tuple[np.ndarray, np.ndarray]],
    exec_candidates: np.ndarray,
) -> SetRegions:
    """Layout one rank's regions for one set.

    Parameters
    ----------
    set_parts:
        Global part assignment of this set.
    rank:
        The rank whose layout is being built.
    maps_from:
        ``(map_values, target_parts)`` for every map *from* this set —
        used to split owned elements into core (touch only local targets)
        and boundary.
    exec_candidates:
        Global ids of this set to import as exec halo (computed by the
        caller from indirect-write reachability).
    """
    owned = np.nonzero(set_parts == rank)[0].astype(np.int64)
    if maps_from:
        touches_remote = np.zeros(owned.size, dtype=bool)
        for mv, tparts in maps_from:
            touches_remote |= (tparts[mv[owned]] != rank).any(axis=1)
        core = owned[~touches_remote]
        boundary = owned[touches_remote]
        owned_sorted = np.concatenate([core, boundary])
        core_size = core.size
    else:
        owned_sorted = owned
        core_size = owned.size
    return SetRegions(
        owned=owned_sorted,
        core_size=int(core_size),
        exec_halo=np.asarray(exec_candidates, dtype=np.int64),
        nonexec_halo=np.zeros(0, dtype=np.int64),
    )


def build_exchanges(
    regions: List[SetRegions], set_parts: np.ndarray
) -> List[ExchangeList]:
    """Derive owner→importer copy lists for every rank's halo entries."""
    # Owner-local index of each global element (position within owner's
    # owned array).
    owner_local = np.full(set_parts.size, -1, dtype=np.int64)
    for r, reg in enumerate(regions):
        owner_local[reg.owned] = np.arange(reg.n_owned, dtype=np.int64)

    exchanges: List[ExchangeList] = []
    for r, reg in enumerate(regions):
        halo_globals = np.concatenate([reg.exec_halo, reg.nonexec_halo])
        if halo_globals.size == 0:
            continue
        dst_local = reg.n_owned + np.arange(halo_globals.size, dtype=np.int64)
        owners = set_parts[halo_globals]
        for src in np.unique(owners):
            sel = owners == src
            exchanges.append(
                ExchangeList(
                    src_rank=int(src),
                    dst_rank=r,
                    src_local=owner_local[halo_globals[sel]],
                    dst_local=dst_local[sel],
                )
            )
    return exchanges
