"""Distributed execution context: OP2's MPI layer over simulated ranks.

:class:`DistContext` takes a *global* problem (sets, maps, dats and a
partition of each set), builds per-rank local problems with OP2-style
halo regions (see :mod:`repro.mpi.halo`), and executes parallel loops
rank by rank with owner-compute semantics:

* loops with **indirect writes** execute owned + exec-halo elements
  redundantly, so every contribution to owned data is produced locally
  and increments need no communication;
* loops that **read** data through indirections (or execute halo
  elements) first refresh the halo copies of the dats they read — the
  halo exchange of paper Fig 2b, with per-message byte accounting;
* dats written by a loop have their halo copies marked stale (exchanged
  lazily before next use), mirroring OP2's dirty-bit protocol;
* **global reductions** combine per-rank partials, accounted as one
  allreduce.

The result of any sequence of loops is identical to serial execution —
the central property test of :mod:`tests.test_mpi`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.access import Arg
from ..core.dat import Dat
from ..core.glob import Global
from ..core.kernel import Kernel
from ..core.loop import par_loop
from ..core.map import Map
from ..core.runtime import Runtime
from ..core.set import Set
from .comm import SimComm
from .halo import (
    ExchangeList,
    HaloPlan,
    SetRegions,
    build_exchanges,
    build_regions,
)


class DistContext:
    """A simulated-MPI execution context.

    Typical use::

        ctx = DistContext(nranks=4, backend="vectorized")
        ctx.add_set(cells, cell_parts)
        ctx.add_set(edges, edge_parts)
        ctx.add_map(edge2cell)
        ctx.add_dat(p_res)
        ctx.finalize()
        ctx.par_loop(res_calc, edges, *args)     # args name GLOBAL objects
        result = ctx.fetch(p_res)                # gather to global order
    """

    def __init__(
        self,
        nranks: int,
        backend: str | object = "vectorized",
        block_size: int = 256,
        scheme: str = "two_level",
    ) -> None:
        self.comm = SimComm(nranks)
        self.nranks = int(nranks)
        self.runtime = Runtime(
            backend=backend, block_size=block_size, scheme=scheme
        )
        self._parts: Dict[Set, np.ndarray] = {}
        self._maps: List[Map] = []
        self._dats: List[Dat] = []
        self._finalized = False

        # Populated by finalize():
        self.halo_plans: Dict[Set, HaloPlan] = {}
        self.local_sets: Dict[Set, List[Set]] = {}
        self.local_maps: Dict[Map, List[Map]] = {}
        self.local_dats: Dict[Dat, List[Dat]] = {}
        self._g2l: Dict[Set, List[Dict[int, int]]] = {}
        self._halo_fresh: Dict[Dat, bool] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_set(self, set_: Set, parts: np.ndarray) -> None:
        if self._finalized:
            raise RuntimeError("Context already finalized")
        parts = np.asarray(parts, dtype=np.int32)
        if parts.size != set_.size:
            raise ValueError(
                f"partition for {set_.name!r} has {parts.size} entries, "
                f"set has {set_.size}"
            )
        if parts.size and (parts.min() < 0 or parts.max() >= self.nranks):
            raise ValueError("partition ranks out of range")
        self._parts[set_] = parts

    def add_map(self, map_: Map) -> None:
        if self._finalized:
            raise RuntimeError("Context already finalized")
        self._maps.append(map_)

    def add_dat(self, dat: Dat) -> None:
        if self._finalized:
            raise RuntimeError("Context already finalized")
        self._dats.append(dat)

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Build per-rank sets/maps/dats and halo exchange lists."""
        if self._finalized:
            raise RuntimeError("Context already finalized")
        for m in self._maps:
            for s in (m.from_set, m.to_set):
                if s not in self._parts:
                    raise ValueError(
                        f"Map {m.name!r} references unregistered set {s.name!r}"
                    )
        for d in self._dats:
            if d.set not in self._parts:
                raise ValueError(
                    f"Dat {d.name!r} lives on unregistered set {d.set.name!r}"
                )

        R = self.nranks
        # 1. Exec-halo candidates: remote elements whose map targets land
        #    on this rank (conservatively over all maps, as OP2 does at
        #    op_decl time).
        exec_cand: Dict[Set, List[np.ndarray]] = {
            s: [np.zeros(0, dtype=np.int64) for _ in range(R)]
            for s in self._parts
        }
        for s in self._parts:
            maps_from = [m for m in self._maps if m.from_set is s]
            if not maps_from:
                continue
            sparts = self._parts[s]
            for r in range(R):
                hit = np.zeros(s.size, dtype=bool)
                for m in maps_from:
                    tparts = self._parts[m.to_set]
                    hit |= (tparts[m.values[: s.size]] == r).any(axis=1)
                cand = np.nonzero(hit & (sparts != r))[0].astype(np.int64)
                exec_cand[s][r] = cand

        # 2. Regions with core/boundary split of owned elements.
        regions: Dict[Set, List[SetRegions]] = {}
        for s, sparts in self._parts.items():
            maps_from = [
                (m.values[: s.size], self._parts[m.to_set])
                for m in self._maps
                if m.from_set is s
            ]
            regions[s] = [
                build_regions(sparts, r, maps_from, exec_cand[s][r])
                for r in range(R)
            ]

        # 3. Non-exec halos: targets referenced by local (owned+exec)
        #    elements that are neither owned nor already imported as exec.
        needed: Dict[Set, List[set]] = {
            s: [set() for _ in range(R)] for s in self._parts
        }
        for m in self._maps:
            s, t = m.from_set, m.to_set
            for r in range(R):
                reg = regions[s][r]
                local_elems = np.concatenate([reg.owned, reg.exec_halo])
                if local_elems.size == 0:
                    continue
                refs = np.unique(m.values[local_elems])
                needed[t][r].update(refs.tolist())
        for t in self._parts:
            for r in range(R):
                reg = regions[t][r]
                present = set(reg.owned.tolist()) | set(reg.exec_halo.tolist())
                nonexec = sorted(needed[t][r] - present)
                reg.nonexec_halo = np.asarray(nonexec, dtype=np.int64)

        # 4. Exchange lists per set (exec + nonexec regions together).
        for s, sparts in self._parts.items():
            self.halo_plans[s] = HaloPlan(
                regions=regions[s],
                exchanges=build_exchanges(regions[s], sparts),
            )

        # 5. Local sets, global→local dictionaries.
        for s in self._parts:
            locals_: List[Set] = []
            g2ls: List[Dict[int, int]] = []
            for r in range(R):
                reg = regions[s][r]
                ls = Set(
                    reg.n_owned,
                    name=f"{s.name}@{r}",
                    core_size=reg.core_size,
                    exec_size=reg.n_exec,
                )
                ls.nonexec_size = reg.n_nonexec  # read-only halo extent
                locals_.append(ls)
                g2ls.append(reg.local_of_global())
            self.local_sets[s] = locals_
            self._g2l[s] = g2ls

        # 6. Local maps (rows: owned + exec elements, values in local ids).
        for m in self._maps:
            s, t = m.from_set, m.to_set
            locals_: List[Map] = []
            for r in range(R):
                reg = regions[s][r]
                rows = np.concatenate([reg.owned, reg.exec_halo])
                g2l_t = self._g2l[t][r]
                gvals = m.values[rows]
                lvals = np.fromiter(
                    (g2l_t[g] for g in gvals.reshape(-1).tolist()),
                    dtype=np.int64,
                    count=gvals.size,
                ).reshape(gvals.shape)
                locals_.append(
                    Map(
                        self.local_sets[s][r],
                        self.local_sets[t][r],
                        m.arity,
                        lvals,
                        name=f"{m.name}@{r}",
                    )
                )
            self.local_maps[m] = locals_

        # 7. Local dats, seeded from the global data (halos start fresh).
        for d in self._dats:
            self.local_dats[d] = self._scatter_dat(d)
            self._halo_fresh[d] = True

        self._finalized = True

    def _scatter_dat(self, d: Dat) -> List[Dat]:
        locals_: List[Dat] = []
        for r in range(self.nranks):
            reg = self.halo_plans[d.set].regions[r]
            l2g = reg.l2g()
            locals_.append(
                Dat(
                    self.local_sets[d.set][r],
                    d.dim,
                    d.data[l2g],
                    d.dtype,
                    name=f"{d.name}@{r}",
                )
            )
        return locals_

    # ------------------------------------------------------------------
    # Halo exchange
    # ------------------------------------------------------------------
    def ensure_fresh(self, d: Dat) -> None:
        """Refresh halo copies of ``d`` from their owners if stale."""
        if self._halo_fresh[d]:
            return
        plan = self.halo_plans[d.set]
        locals_ = self.local_dats[d]
        itembytes = d.dim * d.itemsize
        for ex in plan.exchanges:
            locals_[ex.dst_rank].data[ex.dst_local] = (
                locals_[ex.src_rank].data[ex.src_local]
            )
            self.comm.record_message(
                ex.src_rank, ex.dst_rank, ex.count * itembytes
            )
        self._halo_fresh[d] = True

    # ------------------------------------------------------------------
    # Parallel loop over the distributed problem
    # ------------------------------------------------------------------
    def par_loop(
        self, kernel: Kernel, set_: Set, *args: Arg,
        overlap: bool = False,
    ) -> None:
        """Execute one parallel loop across all ranks.

        ``args`` reference the *global* dats/maps registered with the
        context; they are translated to each rank's local objects.

        ``overlap=True`` models the communication/computation overlap of
        the paper's generated MPI code (Fig 2b): *core* elements — whose
        map targets are all rank-local — execute before the halo
        exchange completes ("while messages are in flight"), and only
        the boundary/halo tail waits (``op_mpi_wait_all``).  Results are
        identical either way; the split is what makes latency hiding
        possible on real networks.
        """
        if not self._finalized:
            raise RuntimeError("finalize() must run before par_loop")
        needs_exec = any(arg.races for arg in args)
        has_reduction = any(
            arg.is_global and arg.access.is_reduction for arg in args
        )
        if needs_exec and has_reduction:
            raise NotImplementedError(
                "Loops combining indirect writes with global reductions "
                "would double-count redundantly executed halo elements "
                "(neither Airfoil nor Volna needs this; OP2 splits such "
                "loops)"
            )

        needs_halo = [
            arg for arg in args
            if not arg.is_global
            and arg.access.reads
            and (arg.is_indirect or needs_exec)
        ]
        uses_indirection = any(arg.is_indirect for arg in args)

        if overlap and uses_indirection:
            # Phase 1: core elements need no halo data (by construction
            # their targets are all owned), so they run "during" the
            # exchange that phase 2 then consumes.
            for r in range(self.nranks):
                local_args = tuple(self._localize(arg, r) for arg in args)
                ls = self.local_sets[set_][r]
                par_loop(
                    kernel, ls, *local_args, runtime=self.runtime,
                    n_elements=ls.core_size,
                )
            for arg in needs_halo:
                self.ensure_fresh(arg.dat)
            for r in range(self.nranks):
                local_args = tuple(self._localize(arg, r) for arg in args)
                ls = self.local_sets[set_][r]
                n = ls.total_size if needs_exec else ls.size
                par_loop(
                    kernel, ls, *local_args, runtime=self.runtime,
                    n_elements=n, start_element=ls.core_size,
                )
        else:
            for arg in needs_halo:
                self.ensure_fresh(arg.dat)
            for r in range(self.nranks):
                local_args = tuple(self._localize(arg, r) for arg in args)
                ls = self.local_sets[set_][r]
                n = ls.total_size if needs_exec else ls.size
                par_loop(
                    kernel, ls, *local_args, runtime=self.runtime,
                    n_elements=n,
                )

        if has_reduction:
            for arg in args:
                if arg.is_global and arg.access.is_reduction:
                    self.comm.record_allreduce(
                        arg.dat.dim * arg.dat.data.dtype.itemsize
                    )

        for arg in args:
            if not arg.is_global and arg.access.writes:
                self._halo_fresh[arg.dat] = False

    def _localize(self, arg: Arg, r: int) -> Arg:
        if arg.is_global:
            return arg
        return Arg(
            dat=self.local_dats[arg.dat][r],
            index=arg.index,
            map=self.local_maps[arg.map][r] if arg.map is not None else None,
            access=arg.access,
        )

    # ------------------------------------------------------------------
    # Data movement between global and distributed views
    # ------------------------------------------------------------------
    def fetch(self, d: Dat) -> np.ndarray:
        """Gather a dat's owned values back into global element order."""
        out = np.empty((d.set.size, d.dim), dtype=d.dtype)
        for r in range(self.nranks):
            reg = self.halo_plans[d.set].regions[r]
            out[reg.owned] = self.local_dats[d][r].data[: reg.n_owned]
        return out

    def update(self, d: Dat, values: np.ndarray) -> None:
        """Overwrite a dat (global order) on every rank, halos fresh."""
        values = np.asarray(values, dtype=d.dtype).reshape(d.set.size, d.dim)
        for r in range(self.nranks):
            reg = self.halo_plans[d.set].regions[r]
            self.local_dats[d][r].data[: reg.n_owned] = values[reg.owned]
        self._halo_fresh[d] = False
        self.ensure_fresh(d)

    # ------------------------------------------------------------------
    def load_imbalance(self, set_: Set) -> float:
        """max/mean owned-element imbalance of one set (Fig 8b's axis)."""
        sizes = np.array(
            [self.halo_plans[set_].regions[r].n_owned for r in range(self.nranks)]
        )
        mean = sizes.mean()
        return float(sizes.max() / mean - 1.0) if mean else 0.0
