"""Distributed execution context: OP2's MPI layer over simulated ranks.

:class:`DistContext` takes a *global* problem (sets, maps, dats and a
partition of each set), builds per-rank local problems with OP2-style
halo regions (see :mod:`repro.mpi.halo`), and executes parallel loops
rank by rank with owner-compute semantics:

* loops with **indirect writes** execute owned + exec-halo elements
  redundantly, so every contribution to owned data is produced locally
  and increments need no communication;
* loops that **read** data through indirections (or execute halo
  elements) first refresh the halo copies of the dats they read — the
  halo exchange of paper Fig 2b, with per-message byte accounting;
* dats written by a loop have their halo copies marked stale (exchanged
  lazily before next use), mirroring OP2's dirty-bit protocol;
* **global reductions** combine per-rank partials, accounted as one
  allreduce.

The result of any sequence of loops is identical to serial execution —
the central property test of :mod:`tests.test_mpi`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.access import Arg
from ..core.chain import LoopSpec, analyze_dependencies
from ..core.dat import Dat
from ..core.kernel import Kernel
from ..core.loop import par_loop
from ..core.map import Map
from ..core.runtime import Runtime
from ..core.set import Set
from .comm import SimComm
from .halo import (
    ExchangeList,
    HaloPlan,
    SetRegions,
    build_exchanges,
    build_regions,
    coalesce_exchange_bytes,
)


class DistContext:
    """A simulated-MPI execution context.

    Typical use::

        ctx = DistContext(nranks=4, backend="vectorized")
        ctx.add_set(cells, cell_parts)
        ctx.add_set(edges, edge_parts)
        ctx.add_map(edge2cell)
        ctx.add_dat(p_res)
        ctx.finalize()
        ctx.par_loop(res_calc, edges, *args)     # args name GLOBAL objects
        result = ctx.fetch(p_res)                # gather to global order
    """

    def __init__(
        self,
        nranks: int,
        backend: str | object = "vectorized",
        block_size: int = 256,
        scheme: str = "two_level",
    ) -> None:
        self.comm = SimComm(nranks)
        self.nranks = int(nranks)
        self.runtime = Runtime(
            backend=backend, block_size=block_size, scheme=scheme
        )
        self._parts: Dict[Set, np.ndarray] = {}
        self._maps: List[Map] = []
        self._dats: List[Dat] = []
        self._finalized = False
        self._active_chain: Optional[DistLoopChain] = None
        self._analyses: Dict[Tuple, object] = {}

        # Populated by finalize():
        self.halo_plans: Dict[Set, HaloPlan] = {}
        self.local_sets: Dict[Set, List[Set]] = {}
        self.local_maps: Dict[Map, List[Map]] = {}
        self.local_dats: Dict[Dat, List[Dat]] = {}
        self._g2l: Dict[Set, List[Dict[int, int]]] = {}
        self._halo_fresh: Dict[Dat, bool] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_set(self, set_: Set, parts: np.ndarray) -> None:
        if self._finalized:
            raise RuntimeError("Context already finalized")
        parts = np.asarray(parts, dtype=np.int32)
        if parts.size != set_.size:
            raise ValueError(
                f"partition for {set_.name!r} has {parts.size} entries, "
                f"set has {set_.size}"
            )
        if parts.size and (parts.min() < 0 or parts.max() >= self.nranks):
            raise ValueError("partition ranks out of range")
        self._parts[set_] = parts

    def add_map(self, map_: Map) -> None:
        if self._finalized:
            raise RuntimeError("Context already finalized")
        self._maps.append(map_)

    def add_dat(self, dat: Dat) -> None:
        if self._finalized:
            raise RuntimeError("Context already finalized")
        self._dats.append(dat)

    # ------------------------------------------------------------------
    # Decomposition
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Build per-rank sets/maps/dats and halo exchange lists."""
        if self._finalized:
            raise RuntimeError("Context already finalized")
        for m in self._maps:
            for s in (m.from_set, m.to_set):
                if s not in self._parts:
                    raise ValueError(
                        f"Map {m.name!r} references unregistered set {s.name!r}"
                    )
        for d in self._dats:
            if d.set not in self._parts:
                raise ValueError(
                    f"Dat {d.name!r} lives on unregistered set {d.set.name!r}"
                )

        R = self.nranks
        # 1. Exec-halo candidates: remote elements whose map targets land
        #    on this rank (conservatively over all maps, as OP2 does at
        #    op_decl time).
        exec_cand: Dict[Set, List[np.ndarray]] = {
            s: [np.zeros(0, dtype=np.int64) for _ in range(R)]
            for s in self._parts
        }
        for s in self._parts:
            maps_from = [m for m in self._maps if m.from_set is s]
            if not maps_from:
                continue
            sparts = self._parts[s]
            for r in range(R):
                hit = np.zeros(s.size, dtype=bool)
                for m in maps_from:
                    tparts = self._parts[m.to_set]
                    hit |= (tparts[m.values[: s.size]] == r).any(axis=1)
                cand = np.nonzero(hit & (sparts != r))[0].astype(np.int64)
                exec_cand[s][r] = cand

        # 2. Regions with core/boundary split of owned elements.
        regions: Dict[Set, List[SetRegions]] = {}
        for s, sparts in self._parts.items():
            maps_from = [
                (m.values[: s.size], self._parts[m.to_set])
                for m in self._maps
                if m.from_set is s
            ]
            regions[s] = [
                build_regions(sparts, r, maps_from, exec_cand[s][r])
                for r in range(R)
            ]

        # 3. Non-exec halos: targets referenced by local (owned+exec)
        #    elements that are neither owned nor already imported as exec.
        needed: Dict[Set, List[set]] = {
            s: [set() for _ in range(R)] for s in self._parts
        }
        for m in self._maps:
            s, t = m.from_set, m.to_set
            for r in range(R):
                reg = regions[s][r]
                local_elems = np.concatenate([reg.owned, reg.exec_halo])
                if local_elems.size == 0:
                    continue
                refs = np.unique(m.values[local_elems])
                needed[t][r].update(refs.tolist())
        for t in self._parts:
            for r in range(R):
                reg = regions[t][r]
                present = set(reg.owned.tolist()) | set(reg.exec_halo.tolist())
                nonexec = sorted(needed[t][r] - present)
                reg.nonexec_halo = np.asarray(nonexec, dtype=np.int64)

        # 4. Exchange lists per set (exec + nonexec regions together).
        for s, sparts in self._parts.items():
            self.halo_plans[s] = HaloPlan(
                regions=regions[s],
                exchanges=build_exchanges(regions[s], sparts),
            )

        # 5. Local sets, global→local dictionaries.
        for s in self._parts:
            locals_: List[Set] = []
            g2ls: List[Dict[int, int]] = []
            for r in range(R):
                reg = regions[s][r]
                ls = Set(
                    reg.n_owned,
                    name=f"{s.name}@{r}",
                    core_size=reg.core_size,
                    exec_size=reg.n_exec,
                )
                ls.nonexec_size = reg.n_nonexec  # read-only halo extent
                locals_.append(ls)
                g2ls.append(reg.local_of_global())
            self.local_sets[s] = locals_
            self._g2l[s] = g2ls

        # 6. Local maps (rows: owned + exec elements, values in local ids).
        for m in self._maps:
            s, t = m.from_set, m.to_set
            locals_: List[Map] = []
            for r in range(R):
                reg = regions[s][r]
                rows = np.concatenate([reg.owned, reg.exec_halo])
                g2l_t = self._g2l[t][r]
                gvals = m.values[rows]
                lvals = np.fromiter(
                    (g2l_t[g] for g in gvals.reshape(-1).tolist()),
                    dtype=np.int64,
                    count=gvals.size,
                ).reshape(gvals.shape)
                locals_.append(
                    Map(
                        self.local_sets[s][r],
                        self.local_sets[t][r],
                        m.arity,
                        lvals,
                        name=f"{m.name}@{r}",
                    )
                )
            self.local_maps[m] = locals_

        # 7. Local dats, seeded from the global data (halos start fresh).
        for d in self._dats:
            self.local_dats[d] = self._scatter_dat(d)
            self._halo_fresh[d] = True

        self._finalized = True

    def _scatter_dat(self, d: Dat) -> List[Dat]:
        locals_: List[Dat] = []
        for r in range(self.nranks):
            reg = self.halo_plans[d.set].regions[r]
            l2g = reg.l2g()
            locals_.append(
                Dat(
                    self.local_sets[d.set][r],
                    d.dim,
                    d.data[l2g],
                    d.dtype,
                    name=f"{d.name}@{r}",
                )
            )
        return locals_

    # ------------------------------------------------------------------
    # Halo exchange
    # ------------------------------------------------------------------
    def ensure_fresh(self, d: Dat) -> None:
        """Refresh halo copies of ``d`` from their owners if stale."""
        self.ensure_fresh_batch((d,))

    def ensure_fresh_batch(self, dats: Iterable[Dat]) -> None:
        """One *batched* halo update covering several dats.

        All stale dats' halo copies refresh together, and the message
        accounting coalesces payloads by rank pair: one message per
        ``(src, dst)`` neighbour pair for the whole batch, however many
        dats it covers.  This is the loop-chain substrate's
        communication batching — a dependency frontier's worth of
        exchanges collapses into a single neighbourhood update (for a
        single dat it degenerates to the classic per-dat exchange, so
        eager loops use this same path).
        """
        batches: List[Tuple[Sequence[ExchangeList], int]] = []
        for d in dats:
            if self._halo_fresh[d]:
                continue
            plan = self.halo_plans[d.set]
            locals_ = self.local_dats[d]
            for ex in plan.exchanges:
                locals_[ex.dst_rank].data[ex.dst_local] = (
                    locals_[ex.src_rank].data[ex.src_local]
                )
            batches.append((plan.exchanges, d.dim * d.itemsize))
            self._halo_fresh[d] = True
        for (src, dst), nbytes in sorted(
            coalesce_exchange_bytes(batches).items()
        ):
            self.comm.record_message(src, dst, nbytes)

    # ------------------------------------------------------------------
    # Parallel loop over the distributed problem
    # ------------------------------------------------------------------
    def par_loop(
        self, kernel: Kernel, set_: Set, *args: Arg,
        overlap: bool = False,
    ) -> None:
        """Execute one parallel loop across all ranks.

        ``args`` reference the *global* dats/maps registered with the
        context; they are translated to each rank's local objects.

        ``overlap=True`` models the communication/computation overlap of
        the paper's generated MPI code (Fig 2b): *core* elements — whose
        map targets are all rank-local — execute before the halo
        exchange completes ("while messages are in flight"), and only
        the boundary/halo tail waits (``op_mpi_wait_all``).  Results are
        identical either way; the split is what makes latency hiding
        possible on real networks.

        Inside a ``with ctx.chain():`` block the call records instead
        of executing — see :meth:`chain`.
        """
        if not self._finalized:
            raise RuntimeError("finalize() must run before par_loop")
        if self._active_chain is not None:
            self._active_chain.record(kernel, set_, args)
            return
        self._check_loop(args)
        needs_exec = any(arg.races for arg in args)
        needs_halo = self._halo_read_dats(args, needs_exec)
        uses_indirection = any(arg.is_indirect for arg in args)

        if overlap and uses_indirection:
            # Phase 1: core elements need no halo data (by construction
            # their targets are all owned), so they run "during" the
            # exchange that phase 2 then consumes.
            for r in range(self.nranks):
                local_args = tuple(self._localize(arg, r) for arg in args)
                ls = self.local_sets[set_][r]
                par_loop(
                    kernel, ls, *local_args, runtime=self.runtime,
                    n_elements=ls.core_size,
                )
            self.ensure_fresh_batch(needs_halo)
            for r in range(self.nranks):
                local_args = tuple(self._localize(arg, r) for arg in args)
                ls = self.local_sets[set_][r]
                n = ls.total_size if needs_exec else ls.size
                par_loop(
                    kernel, ls, *local_args, runtime=self.runtime,
                    n_elements=n, start_element=ls.core_size,
                )
        else:
            self.ensure_fresh_batch(needs_halo)
            self._execute_ranks(kernel, set_, args, needs_exec)

        self._post_loop(args)

    # -- pieces shared by the eager path and the chained flush ---------
    def _check_loop(self, args: Sequence[Arg]) -> None:
        needs_exec = any(arg.races for arg in args)
        has_reduction = any(
            arg.is_global and arg.access.is_reduction for arg in args
        )
        if needs_exec and has_reduction:
            raise NotImplementedError(
                "Loops combining indirect writes with global reductions "
                "would double-count redundantly executed halo elements "
                "(neither Airfoil nor Volna needs this; OP2 splits such "
                "loops)"
            )

    def _halo_read_dats(
        self, args: Sequence[Arg], needs_exec: bool
    ) -> List[Dat]:
        """Dats whose halo copies a loop reads (must be fresh first)."""
        return [
            arg.dat for arg in args
            if not arg.is_global
            and arg.access.reads
            and (arg.is_indirect or needs_exec)
        ]

    def _execute_ranks(
        self, kernel: Kernel, set_: Set, args: Sequence[Arg],
        needs_exec: bool,
    ) -> None:
        for r in range(self.nranks):
            local_args = tuple(self._localize(arg, r) for arg in args)
            ls = self.local_sets[set_][r]
            n = ls.total_size if needs_exec else ls.size
            par_loop(
                kernel, ls, *local_args, runtime=self.runtime,
                n_elements=n,
            )

    def _post_loop(self, args: Sequence[Arg]) -> None:
        """Reduction accounting and halo dirty-marking after one loop."""
        for arg in args:
            if arg.is_global and arg.access.is_reduction:
                self.comm.record_allreduce(
                    arg.dat.dim * arg.dat.data.dtype.itemsize
                )
            elif not arg.is_global and arg.access.writes:
                self._halo_fresh[arg.dat] = False

    # ------------------------------------------------------------------
    # Deferred execution with frontier-batched halo exchanges
    # ------------------------------------------------------------------
    def chain(self) -> "DistLoopChain":
        """A deferred-execution trace over this distributed context.

        ``ctx.par_loop`` calls inside ``with ctx.chain():`` record; at
        flush the trace is analyzed (``core/chain.py``'s hazard
        analysis) and executed frontier by frontier: every stale dat
        any loop of a dependency frontier reads is refreshed in **one
        batched halo update** (one message per neighbour rank pair for
        the whole frontier) instead of one exchange per loop.  Loop
        execution order is exactly the recorded order, so results are
        identical to eager ``ctx.par_loop`` calls.
        """
        return DistLoopChain(self)

    def _localize(self, arg: Arg, r: int) -> Arg:
        if arg.is_global:
            return arg
        return Arg(
            dat=self.local_dats[arg.dat][r],
            index=arg.index,
            map=self.local_maps[arg.map][r] if arg.map is not None else None,
            access=arg.access,
        )

    # ------------------------------------------------------------------
    # Data movement between global and distributed views
    # ------------------------------------------------------------------
    def fetch(self, d: Dat) -> np.ndarray:
        """Gather a dat's owned values back into global element order."""
        out = np.empty((d.set.size, d.dim), dtype=d.dtype)
        for r in range(self.nranks):
            reg = self.halo_plans[d.set].regions[r]
            out[reg.owned] = self.local_dats[d][r].data[: reg.n_owned]
        return out

    def update(self, d: Dat, values: np.ndarray) -> None:
        """Overwrite a dat (global order) on every rank, halos fresh."""
        values = np.asarray(values, dtype=d.dtype).reshape(d.set.size, d.dim)
        for r in range(self.nranks):
            reg = self.halo_plans[d.set].regions[r]
            self.local_dats[d][r].data[: reg.n_owned] = values[reg.owned]
        self._halo_fresh[d] = False
        self.ensure_fresh(d)

    # ------------------------------------------------------------------
    def load_imbalance(self, set_: Set) -> float:
        """max/mean owned-element imbalance of one set (Fig 8b's axis)."""
        sizes = np.array(
            [self.halo_plans[set_].regions[r].n_owned for r in range(self.nranks)]
        )
        mean = sizes.mean()
        return float(sizes.max() / mean - 1.0) if mean else 0.0

    # ------------------------------------------------------------------
    def analysis_for(self, specs: Sequence[LoopSpec]):
        """Dependency analysis for a trace, memoized by signature.

        A steady-state distributed time step re-records the same loop
        sequence; the memo makes its flush re-derive nothing (the
        distributed sibling of the runtime's chain cache).
        """
        key = tuple(spec.key() for spec in specs)
        analysis = self._analyses.get(key)
        if analysis is None:
            analysis = analyze_dependencies(specs)
            if len(self._analyses) >= 64:  # bounded, FIFO is fine here
                self._analyses.pop(next(iter(self._analyses)))
            self._analyses[key] = analysis
        return analysis


class DistLoopChain:
    """Deferred-execution trace over a :class:`DistContext`.

    Records ``ctx.par_loop`` calls, then flushes them frontier by
    frontier with batched halo exchanges (see :meth:`DistContext.chain`).
    Execution preserves the recorded loop order exactly; only the
    *communication* is hoisted and coalesced, which is safe because a
    dependency frontier's loops are mutually independent and every
    writer a frontier reads from sits in an earlier frontier.

    Read barriers are armed on every touched Global and on every
    per-rank local Dat of every touched global Dat, so host access
    (``ctx.fetch``, ``Global.value``) mid-trace flushes the pending
    loops first — the same staleness guarantee the serial
    :class:`~repro.core.chain.LoopChain` gives.

    The ``overlap`` flag of eager ``par_loop`` is moot here: halos are
    already fresh when a frontier executes, so there is nothing to
    overlap with.
    """

    def __init__(self, ctx: DistContext) -> None:
        self.ctx = ctx
        self._specs: List[LoopSpec] = []
        self._touched: List[object] = []
        self._flushing = False
        self.flushes = 0

    # -- recording -----------------------------------------------------
    def record(self, kernel: Kernel, set_: Set, args: Sequence[Arg]) -> None:
        self.ctx._check_loop(args)
        self._specs.append(
            LoopSpec(
                kernel=kernel, set=set_, args=tuple(args),
                n=set_.total_size, start=0,
            )
        )
        for arg in args:
            if arg.is_global:
                self._arm(arg.dat)
            else:
                for local in self.ctx.local_dats[arg.dat]:
                    self._arm(local)

    def _arm(self, obj) -> None:
        barrier = obj._barrier
        if barrier is not None and barrier is not self:
            # Another chain (e.g. a serial LoopChain sharing a Global)
            # holds the slot: flush it — its loops precede ours.
            barrier.flush()
            barrier = obj._barrier
        if barrier is None:
            obj._barrier = self
            self._touched.append(obj)

    def _disarm(self) -> None:
        for obj in self._touched:
            if obj._barrier is self:
                obj._barrier = None
        self._touched = []

    def __len__(self) -> int:
        return len(self._specs)

    # -- execution -----------------------------------------------------
    def flush(self) -> None:
        if self._flushing or not self._specs:
            return
        specs, self._specs = self._specs, []
        self._disarm()
        analysis = self.ctx.analysis_for(specs)
        self._flushing = True
        try:
            for frontier in analysis.frontiers:
                # One batched exchange for everything this frontier
                # reads; loops of a frontier are mutually independent,
                # so none of them can invalidate another's halo.
                stale: List[Dat] = []
                seen = set()
                for i in frontier:
                    spec = specs[i]
                    needs_exec = any(arg.races for arg in spec.args)
                    for d in self.ctx._halo_read_dats(spec.args, needs_exec):
                        if d not in seen:
                            seen.add(d)
                            stale.append(d)
                self.ctx.ensure_fresh_batch(stale)
                for i in frontier:
                    spec = specs[i]
                    needs_exec = any(arg.races for arg in spec.args)
                    self.ctx._execute_ranks(
                        spec.kernel, spec.set, spec.args, needs_exec
                    )
                    self.ctx._post_loop(spec.args)
        finally:
            self._flushing = False
        self.flushes += 1

    def discard(self) -> None:
        self._specs = []
        self._disarm()

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "DistLoopChain":
        if self.ctx._active_chain is not None:
            raise RuntimeError(
                "a chain is already active on this DistContext; "
                "chains do not nest"
            )
        self.ctx._active_chain = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.ctx._active_chain = None
        if exc_type is not None:
            self.discard()
        else:
            self.flush()
