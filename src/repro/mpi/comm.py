"""Simulated communicator: message accounting for the MPI substrate.

Rank "processes" live in one address space (every rank is a slice of the
driving Python process), so communication is memcpy — but the *accounting*
(message counts, byte volumes, neighbour structure) is what the paper's
performance analysis needs (Section 6.5 attributes up to 30% of Phi
runtime to MPI waits), so :class:`SimComm` records every transfer.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class CommStats:
    """Aggregate message statistics."""

    messages: int = 0
    bytes: int = 0
    by_pair: Dict[Tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    reductions: int = 0

    def reset(self) -> None:
        self.messages = 0
        self.bytes = 0
        self.by_pair.clear()
        self.reductions = 0


class SimComm:
    """A simulated communicator over ``nranks`` ranks."""

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self.stats = CommStats()

    def record_message(self, src: int, dst: int, nbytes: int) -> None:
        """Account one point-to-point transfer (the memcpy happens at the
        caller, which holds both buffers)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            return  # local copies are not messages
        self.stats.messages += 1
        self.stats.bytes += int(nbytes)
        self.stats.by_pair[(src, dst)] += int(nbytes)

    def record_allreduce(self, nbytes: int) -> None:
        """Account one global reduction (tree allreduce: 2*(R-1) msgs)."""
        self.stats.reductions += 1
        self.stats.messages += 2 * (self.nranks - 1)
        self.stats.bytes += int(nbytes) * 2 * (self.nranks - 1)

    def neighbour_counts(self) -> Dict[int, int]:
        """Number of distinct communication partners per rank."""
        partners: Dict[int, set] = defaultdict(set)
        for (src, dst), _ in self.stats.by_pair.items():
            partners[src].add(dst)
            partners[dst].add(src)
        return {r: len(p) for r, p in partners.items()}

    def _check_rank(self, r: int) -> None:
        if not (0 <= r < self.nranks):
            raise ValueError(f"rank {r} out of range [0, {self.nranks})")
