"""Simulated distributed-memory substrate (OP2's MPI layer).

Owner-compute decomposition with exec/non-exec halos, lazy halo
exchanges, redundant computation over imported elements and global
reductions — executed rank-by-rank in one process with full message
accounting.
"""

from .comm import CommStats, SimComm
from .decomposition import DistContext, DistLoopChain
from .halo import (
    ExchangeList,
    HaloPlan,
    SetRegions,
    build_exchanges,
    build_regions,
    coalesce_exchange_bytes,
)

__all__ = [
    "CommStats",
    "DistContext",
    "DistLoopChain",
    "ExchangeList",
    "HaloPlan",
    "SetRegions",
    "SimComm",
    "build_exchanges",
    "build_regions",
    "coalesce_exchange_bytes",
]
