"""Triangular coastal mesh generator for the Volna tsunami solver.

The paper runs Volna on a 2.4M-cell triangulation of the north-west
American coast (Vancouver/Seattle strait).  As a parametric substitute we
triangulate a rectangular ocean domain (each structured quad split along
its diagonal), which preserves everything the solver and the performance
study care about: triangle cells, three edges per cell, two cells per
interior edge, boundary edges with reflective treatment, and the set-size
ratios of a triangle mesh (cells ≈ 2·nodes, edges ≈ 1.5·cells — the
paper's 2 392 352 / 1 197 384 / 3 589 735 has exactly these ratios).

The coastal *character* (shelf, shoreline bay) comes from the bathymetry
field generated in :mod:`repro.apps.volna.bathymetry`, not the topology.
"""

from __future__ import annotations

import numpy as np

from ..core.map import Map
from ..core.set import Set
from .structures import UnstructuredMesh


def make_tri_mesh(
    nx: int = 40,
    ny: int = 30,
    extent_x: float = 100.0,
    extent_y: float = 75.0,
) -> UnstructuredMesh:
    """Triangulate an ``nx`` x ``ny`` structured rectangle.

    Each quad ``(i, j)`` splits into a lower triangle (nodes ``sw, se,
    ne``) and an upper triangle (``sw, ne, nw``), sharing the diagonal.

    Sets: ``(nx+1)(ny+1)`` nodes, ``2*nx*ny`` cells,
    ``3*nx*ny + nx + ny`` edges, ``2*(nx+ny)`` boundary edges.
    """
    if nx < 1 or ny < 1:
        raise ValueError(f"need nx, ny >= 1, got nx={nx}, ny={ny}")

    n_nodes = (nx + 1) * (ny + 1)
    n_cells = 2 * nx * ny

    def node(i, j):
        return j * (nx + 1) + i

    def lower(i, j):  # lower-right triangle of quad (i, j)
        return 2 * (j * nx + i)

    def upper(i, j):  # upper-left triangle of quad (i, j)
        return 2 * (j * nx + i) + 1

    xs = np.linspace(0.0, extent_x, nx + 1)
    ys = np.linspace(0.0, extent_y, ny + 1)
    gx, gy = np.meshgrid(xs, ys, indexing="xy")
    coords = np.stack([gx.reshape(-1), gy.reshape(-1)], axis=1)

    ii, jj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    ii = ii.reshape(-1)
    jj = jj.reshape(-1)

    # Cell corner nodes: row 2k = lower(i, j), row 2k+1 = upper(i, j).
    sw, se = node(ii, jj), node(ii + 1, jj)
    ne, nw = node(ii + 1, jj + 1), node(ii, jj + 1)
    c2n = np.empty((n_cells, 3), dtype=np.int64)
    quad = jj * nx + ii
    c2n[2 * quad] = np.stack([sw, se, ne], axis=1)
    c2n[2 * quad + 1] = np.stack([sw, ne, nw], axis=1)

    # ---- edges -----------------------------------------------------------
    # Diagonals: between lower(i,j) and upper(i,j); nodes sw-ne.
    diag_e2n = np.stack([sw, ne], axis=1)
    diag_e2c = np.stack([lower(ii, jj), upper(ii, jj)], axis=1)
    diag_bnd = np.zeros(ii.size, dtype=bool)

    # Horizontal edges (y = const, j in [0, ny]): between upper(i, j-1)
    # (below) and lower(i, j) (above); boundary at j = 0 and j = ny.
    hi, hj = np.meshgrid(np.arange(nx), np.arange(ny + 1), indexing="xy")
    hi = hi.reshape(-1)
    hj = hj.reshape(-1)
    hor_e2n = np.stack([node(hi, hj), node(hi + 1, hj)], axis=1)
    below = np.where(hj > 0, upper(hi, np.maximum(hj - 1, 0)), -1)
    above = np.where(hj < ny, lower(hi, np.minimum(hj, ny - 1)), -1)
    # Boundary edges mirror the single interior cell into both slots
    # (reflective ghost treatment).
    hor_e2c = np.stack(
        [np.where(below >= 0, below, above), np.where(above >= 0, above, below)],
        axis=1,
    )
    hor_bnd = (hj == 0) | (hj == ny)

    # Vertical edges (x = const, i in [0, nx]): between lower(i-1, j)
    # (left, owns its 'se-ne' side) and upper(i, j) (right, owns 'sw-nw').
    vi, vj = np.meshgrid(np.arange(nx + 1), np.arange(ny), indexing="xy")
    vi = vi.reshape(-1)
    vj = vj.reshape(-1)
    ver_e2n = np.stack([node(vi, vj), node(vi, vj + 1)], axis=1)
    left = np.where(vi > 0, lower(np.maximum(vi - 1, 0), vj), -1)
    right = np.where(vi < nx, upper(np.minimum(vi, nx - 1), vj), -1)
    ver_e2c = np.stack(
        [np.where(left >= 0, left, right), np.where(right >= 0, right, left)],
        axis=1,
    )
    ver_bnd = (vi == 0) | (vi == nx)

    e2n = np.concatenate([diag_e2n, hor_e2n, ver_e2n])
    e2c = np.concatenate([diag_e2c, hor_e2c, ver_e2c])
    is_boundary = np.concatenate([diag_bnd, hor_bnd, ver_bnd])
    n_edges = e2n.shape[0]

    nodes = Set(n_nodes, "nodes")
    cells = Set(n_cells, "cells")
    edges = Set(n_edges, "edges")

    # Boundary edges as their own set (reflective walls all around).
    bidx = np.nonzero(is_boundary)[0]
    bedges = Set(bidx.size, "bedges")
    b2n = e2n[bidx]
    b2c = e2c[bidx, :1]

    # cell2edge: invert edge2cell (each triangle touches exactly 3 edges;
    # boundary edges count once for their single real cell).
    c2e = np.full((n_cells, 3), -1, dtype=np.int64)
    fill = np.zeros(n_cells, dtype=np.int64)
    for slot in range(2):
        col = e2c[:, slot]
        dup = is_boundary & (slot == 1)  # mirrored slot repeats the cell
        for e in range(n_edges):
            if dup[e]:
                continue
            c = col[e]
            c2e[c, fill[c]] = e
            fill[c] += 1
    if (fill != 3).any():
        raise AssertionError("cell2edge inversion failed: not 3 edges/cell")

    maps = {
        "edge2node": Map(edges, nodes, 2, e2n, "edge2node"),
        "edge2cell": Map(edges, cells, 2, e2c, "edge2cell"),
        "bedge2node": Map(bedges, nodes, 2, b2n, "bedge2node"),
        "bedge2cell": Map(bedges, cells, 1, b2c, "bedge2cell"),
        "cell2node": Map(cells, nodes, 3, c2n, "cell2node"),
        "cell2edge": Map(cells, edges, 3, c2e, "cell2edge"),
    }
    mesh = UnstructuredMesh(
        nodes=nodes,
        cells=cells,
        edges=edges,
        bedges=bedges,
        maps=maps,
        coords=coords,
        meta={"is_boundary_edge": is_boundary.astype(np.int64)},
    )
    mesh.validate()
    return mesh


def paper_mesh_dims(target_cells: int = 2_392_352) -> tuple[int, int]:
    """(nx, ny) with 4:3 aspect matching the paper's Volna cell count."""
    ny = int(round((target_cells / (2 * 4 / 3)) ** 0.5))
    nx = int(round(4 * ny / 3))
    return nx, ny
