"""Unstructured mesh container shared by the applications.

Bundles the OP2 sets and maps a finite-volume code needs (nodes, cells,
interior edges, boundary edges, plus the standard connectivity), together
with node coordinates.  Generators in :mod:`repro.mesh.airfoil_mesh` and
:mod:`repro.mesh.tri_mesh` produce instances; applications attach their
Dats on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..core.map import Map
from ..core.set import Set


@dataclass
class UnstructuredMesh:
    """Sets, maps and geometry of a 2-D unstructured mesh.

    Attributes
    ----------
    nodes, cells, edges, bedges:
        The four OP2 sets (``bedges`` may be empty for closed meshes).
    maps:
        Named connectivity: at least ``edge2node``, ``edge2cell``,
        ``cell2node``; generators add ``bedge2node``/``bedge2cell`` and,
        for triangle meshes, ``cell2edge``.
    coords:
        ``(n_nodes, 2)`` node coordinates.
    meta:
        Generator-specific extras (boundary flags, cell volumes...).
    """

    nodes: Set
    cells: Set
    edges: Set
    bedges: Set
    maps: Dict[str, Map]
    coords: np.ndarray
    meta: Dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def map(self, name: str) -> Map:
        if name not in self.maps:
            raise KeyError(
                f"Mesh has no map {name!r}; available: {sorted(self.maps)}"
            )
        return self.maps[name]

    def summary(self) -> Dict[str, int]:
        return {
            "nodes": self.nodes.size,
            "cells": self.cells.size,
            "edges": self.edges.size,
            "bedges": self.bedges.size,
        }

    def validate(self) -> None:
        """Structural sanity checks used by tests and after renumbering."""
        for name, m in self.maps.items():
            hi = int(m.values.max(initial=-1))
            lo = int(m.values.min(initial=0))
            if lo < 0 or hi >= m.to_set.total_size:
                raise ValueError(
                    f"map {name!r} indices [{lo}, {hi}] exceed target set "
                    f"{m.to_set.name!r} of size {m.to_set.total_size}"
                )
        if self.coords.shape != (self.nodes.size, 2):
            raise ValueError(
                f"coords shape {self.coords.shape} != ({self.nodes.size}, 2)"
            )

    def memory_footprint(
        self, dat_dims: Dict[str, int], dtype=np.float64, map_itemsize: int = 4
    ) -> Dict[str, int]:
        """Byte footprint accounting for Table IV.

        ``dat_dims`` gives per-set total Dat arity, e.g. Airfoil carries
        2 doubles per node (x) and 13 per cell (q, qold, res, adt).
        """
        itemsize = np.dtype(dtype).itemsize
        sizes = {
            "nodes": self.nodes.size,
            "cells": self.cells.size,
            "edges": self.edges.size,
            "bedges": self.bedges.size,
        }
        data_bytes = sum(
            sizes[set_name] * dim * itemsize for set_name, dim in dat_dims.items()
        )
        map_bytes = sum(
            m.values.shape[0] * m.arity * map_itemsize for m in self.maps.values()
        )
        return {
            "data": int(data_bytes),
            "maps": int(map_bytes),
            "total": int(data_bytes + map_bytes),
        }

    def cell_centroids(self) -> np.ndarray:
        """Cell centroid coordinates (partitioner input)."""
        c2n = self.map("cell2node").values
        return self.coords[c2n].mean(axis=1)
