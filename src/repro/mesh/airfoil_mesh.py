"""Airfoil-style structured-as-unstructured quad O-mesh generator.

The original Airfoil benchmark reads a pre-generated quadrilateral grid
around a NACA airfoil (``new_grid.dat``) and treats it as fully
unstructured.  We generate the closest parametric equivalent: a periodic
O-mesh of ``ni`` angular times ``nj`` radial quad cells between an
airfoil-like inner boundary (a sharp-ish ellipse) and a circular far
field, with geometric radial stretching.

Set sizes for ``ni=1200, nj=600`` come out at 720 000 cells / 721 200
nodes / 1 438 800 edges — within 0.1% of the paper's 720 000 / 721 801 /
1 438 600 (Table IV); the small deltas are the O- vs C-topology seam.

Boundary edges carry a flag: 1 = solid wall (airfoil surface),
2 = far field — the branch ``bres_calc`` has to ``select()`` on.
"""

from __future__ import annotations

import numpy as np

from ..core.map import Map
from ..core.set import Set
from .structures import UnstructuredMesh


def make_airfoil_mesh(
    ni: int = 60,
    nj: int = 30,
    chord: float = 1.0,
    thickness: float = 0.12,
    far_field_radius: float = 20.0,
) -> UnstructuredMesh:
    """Generate the O-mesh.

    Parameters
    ----------
    ni:
        Angular cell count (periodic direction), >= 3.
    nj:
        Radial cell count (wall → far field), >= 1.
    chord, thickness:
        Inner-boundary geometry (ellipse approximating an airfoil).
    far_field_radius:
        Outer circle radius in chords.
    """
    if ni < 3 or nj < 1:
        raise ValueError(f"need ni >= 3 and nj >= 1, got ni={ni}, nj={nj}")

    n_nodes = ni * (nj + 1)
    n_cells = ni * nj
    n_edges = 2 * ni * nj - ni  # ni*nj angular + ni*(nj-1) radial faces
    n_bedges = 2 * ni           # wall + far field

    nodes = Set(n_nodes, "nodes")
    cells = Set(n_cells, "cells")
    edges = Set(n_edges, "edges")
    bedges = Set(n_bedges, "bedges")

    def node(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return j * ni + (i % ni)

    def cell(i: np.ndarray, j: np.ndarray) -> np.ndarray:
        return j * ni + (i % ni)

    # ---- geometry ------------------------------------------------------
    i_idx = np.arange(ni)
    j_idx = np.arange(nj + 1)
    theta = 2.0 * np.pi * i_idx / ni
    # Geometric stretching packs cells near the wall like a real CFD mesh.
    t = (np.geomspace(1.0, far_field_radius, nj + 1) - 1.0) / (
        far_field_radius - 1.0
    )
    inner = np.stack(
        [0.5 * chord * np.cos(theta), 0.5 * thickness * np.sin(theta)], axis=1
    )
    outer = np.stack(
        [far_field_radius * np.cos(theta), far_field_radius * np.sin(theta)],
        axis=1,
    )
    coords = np.empty((n_nodes, 2), dtype=np.float64)
    for j in j_idx:
        blend = (1.0 - t[j]) * inner + t[j] * outer
        coords[j * ni : (j + 1) * ni] = blend

    # ---- interior edges -------------------------------------------------
    # Angular faces: between cells (i, j) and (i+1, j); shared nodes are
    # the radial segment at angular station i+1.
    ii, jj = np.meshgrid(i_idx, np.arange(nj), indexing="ij")
    ii = ii.reshape(-1)
    jj = jj.reshape(-1)
    ang_e2n = np.stack([node(ii + 1, jj), node(ii + 1, jj + 1)], axis=1)
    ang_e2c = np.stack([cell(ii, jj), cell(ii + 1, jj)], axis=1)

    # Radial faces: between cells (i, j) and (i, j+1); shared nodes are
    # the angular segment at radial station j+1.  Node order is chosen so
    # the finite-volume normal (dy, -dx) built from (x1 - x2) points from
    # cell slot 0 to cell slot 1, the convention res_calc assumes.
    if nj > 1:
        ii, jj = np.meshgrid(i_idx, np.arange(nj - 1), indexing="ij")
        ii = ii.reshape(-1)
        jj = jj.reshape(-1)
        rad_e2n = np.stack([node(ii + 1, jj + 1), node(ii, jj + 1)], axis=1)
        rad_e2c = np.stack([cell(ii, jj), cell(ii, jj + 1)], axis=1)
        e2n = np.concatenate([ang_e2n, rad_e2n])
        e2c = np.concatenate([ang_e2c, rad_e2c])
    else:
        e2n, e2c = ang_e2n, ang_e2c

    # ---- boundary edges --------------------------------------------------
    # Boundary node order makes (dy, -dx) point out of the domain: inward
    # at the wall (j=0), outward at the far field (j=nj).
    wall_b2n = np.stack([node(i_idx, np.zeros(ni, int)),
                         node(i_idx + 1, np.zeros(ni, int))], axis=1)
    wall_b2c = cell(i_idx, np.zeros(ni, int)).reshape(-1, 1)
    far_b2n = np.stack([node(i_idx + 1, np.full(ni, nj)),
                        node(i_idx, np.full(ni, nj))], axis=1)
    far_b2c = cell(i_idx, np.full(ni, nj - 1)).reshape(-1, 1)
    b2n = np.concatenate([wall_b2n, far_b2n])
    b2c = np.concatenate([wall_b2c, far_b2c])
    bound = np.concatenate(
        [np.ones(ni, dtype=np.int64), np.full(ni, 2, dtype=np.int64)]
    )

    # ---- cell corner nodes -----------------------------------------------
    ii, jj = np.meshgrid(i_idx, np.arange(nj), indexing="ij")
    ii = ii.reshape(-1)
    jj = jj.reshape(-1)
    c2n_unordered = np.stack(
        [node(ii, jj), node(ii + 1, jj), node(ii + 1, jj + 1), node(ii, jj + 1)],
        axis=1,
    )
    # cell() and the meshgrid above enumerate (i-major); re-sort rows into
    # cell-id order (j-major) so row k describes cell k.
    order = np.argsort(cell(ii, jj), kind="stable")
    c2n = c2n_unordered[order]

    maps = {
        "edge2node": Map(edges, nodes, 2, e2n, "edge2node"),
        "edge2cell": Map(edges, cells, 2, e2c, "edge2cell"),
        "bedge2node": Map(bedges, nodes, 2, b2n, "bedge2node"),
        "bedge2cell": Map(bedges, cells, 1, b2c, "bedge2cell"),
        "cell2node": Map(cells, nodes, 4, c2n, "cell2node"),
    }
    mesh = UnstructuredMesh(
        nodes=nodes,
        cells=cells,
        edges=edges,
        bedges=bedges,
        maps=maps,
        coords=coords,
        meta={"bound": bound},
    )
    mesh.validate()
    return mesh


def paper_mesh_dims(target_cells: int) -> tuple[int, int]:
    """(ni, nj) with ni = 2*nj reproducing the paper's mesh sizes.

    ``target_cells=720_000`` → (1200, 600); the 2.8M mesh is its
    quadrupling (2400, 1200), exactly how the paper scaled it.
    """
    nj = int(round((target_cells / 2) ** 0.5))
    return 2 * nj, nj
