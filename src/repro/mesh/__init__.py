"""Mesh substrate: containers, generators, renumbering and I/O."""

from .airfoil_mesh import make_airfoil_mesh
from .airfoil_mesh import paper_mesh_dims as airfoil_paper_dims
from .io import load_mesh, save_mesh
from .renumber import (
    bandwidth,
    permute_set_numbering,
    rcm_renumber_cells,
    scramble,
    tile_local_renumber,
)
from .structures import UnstructuredMesh
from .tri_mesh import make_tri_mesh
from .tri_mesh import paper_mesh_dims as volna_paper_dims

__all__ = [
    "UnstructuredMesh",
    "airfoil_paper_dims",
    "bandwidth",
    "load_mesh",
    "make_airfoil_mesh",
    "make_tri_mesh",
    "permute_set_numbering",
    "rcm_renumber_cells",
    "save_mesh",
    "scramble",
    "tile_local_renumber",
    "volna_paper_dims",
]
