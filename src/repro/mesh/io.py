"""Mesh serialization: save/load as ``.npz`` archives.

The original benchmark distributes ``new_grid.dat``; we persist generated
meshes so benchmark harness runs can reuse a mesh across configurations
without regenerating it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..core.map import Map
from ..core.set import Set
from .structures import UnstructuredMesh

_FORMAT_VERSION = 1


def save_mesh(mesh: UnstructuredMesh, path: Union[str, Path]) -> None:
    """Serialize a mesh to ``path`` (``.npz``)."""
    payload = {
        "version": np.array(_FORMAT_VERSION),
        "sizes": np.array(
            [mesh.nodes.size, mesh.cells.size, mesh.edges.size, mesh.bedges.size]
        ),
        "coords": mesh.coords,
        "map_names": np.array(sorted(mesh.maps), dtype=object),
    }
    by_identity = {
        id(mesh.nodes): 0,
        id(mesh.cells): 1,
        id(mesh.edges): 2,
        id(mesh.bedges): 3,
    }
    for name in sorted(mesh.maps):
        m = mesh.maps[name]
        payload[f"map_{name}_values"] = m.values
        payload[f"map_{name}_sets"] = np.array(
            [by_identity[id(m.from_set)], by_identity[id(m.to_set)]]
        )
    for key in sorted(mesh.meta):
        payload[f"meta_{key}"] = mesh.meta[key]
    payload["meta_names"] = np.array(sorted(mesh.meta), dtype=object)
    np.savez_compressed(Path(path), **payload, allow_pickle=True)


def load_mesh(path: Union[str, Path]) -> UnstructuredMesh:
    """Deserialize a mesh written by :func:`save_mesh`."""
    with np.load(Path(path), allow_pickle=True) as blob:
        version = int(blob["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"mesh file version {version} unsupported "
                f"(expected {_FORMAT_VERSION})"
            )
        n_nodes, n_cells, n_edges, n_bedges = (int(v) for v in blob["sizes"])
        sets = [
            Set(n_nodes, "nodes"),
            Set(n_cells, "cells"),
            Set(n_edges, "edges"),
            Set(n_bedges, "bedges"),
        ]
        maps = {}
        for name in blob["map_names"].tolist():
            frm, to = (int(v) for v in blob[f"map_{name}_sets"])
            values = blob[f"map_{name}_values"]
            maps[name] = Map(
                sets[frm], sets[to], values.shape[1], values, name
            )
        meta = {
            key: blob[f"meta_{key}"] for key in blob["meta_names"].tolist()
        }
        mesh = UnstructuredMesh(
            nodes=sets[0],
            cells=sets[1],
            edges=sets[2],
            bedges=sets[3],
            maps=maps,
            coords=blob["coords"],
            meta=meta,
        )
    mesh.validate()
    return mesh
