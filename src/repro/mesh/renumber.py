"""Mesh renumbering for cache locality.

OP2 relies on a locality-friendly base numbering so that contiguous
mini-partitions are geometrically compact (Section 3's blocks).  Our
structured-as-unstructured generators already produce good numberings; a
scrambled numbering models a *badly* ordered input mesh, and
reverse-Cuthill-McKee restores locality — the pair is used by tests and
the locality ablation bench.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.sparse.csgraph import reverse_cuthill_mckee

from ..core.map import Map
from ..partition.graph import adjacency_from_map
from .structures import UnstructuredMesh


def permute_set_numbering(
    mesh: UnstructuredMesh, set_name: str, new_of_old: np.ndarray
) -> UnstructuredMesh:
    """Renumber one set: element ``old`` becomes ``new_of_old[old]``.

    Rebuilds every map touching the set (rows permuted for ``from`` sets,
    values relabelled for ``to`` sets), plus coordinates/meta arrays that
    live on it.  Returns a new mesh; the input is untouched.
    """
    sets = {
        "nodes": mesh.nodes,
        "cells": mesh.cells,
        "edges": mesh.edges,
        "bedges": mesh.bedges,
    }
    if set_name not in sets:
        raise KeyError(f"Unknown set {set_name!r}")
    target = sets[set_name]
    new_of_old = np.asarray(new_of_old, dtype=np.int64)
    if new_of_old.size != target.size or set(new_of_old.tolist()) != set(
        range(target.size)
    ):
        raise ValueError("new_of_old must be a permutation of the set")
    old_of_new = np.empty_like(new_of_old)
    old_of_new[new_of_old] = np.arange(target.size, dtype=np.int64)

    new_maps: Dict[str, Map] = {}
    for name, m in mesh.maps.items():
        values = m.values
        if m.from_set is target:
            values = values[old_of_new]
        if m.to_set is target:
            values = new_of_old[values]
        new_maps[name] = Map(m.from_set, m.to_set, m.arity, values, m.name)

    coords = mesh.coords
    if set_name == "nodes":
        coords = coords[old_of_new]
    meta = dict(mesh.meta)
    per_set_meta = {"bedges": ("bound",), "edges": ("is_boundary_edge",)}
    for key in per_set_meta.get(set_name, ()):
        if key in meta:
            meta[key] = meta[key][old_of_new]

    out = UnstructuredMesh(
        nodes=mesh.nodes,
        cells=mesh.cells,
        edges=mesh.edges,
        bedges=mesh.bedges,
        maps=new_maps,
        coords=coords,
        meta=meta,
    )
    out.validate()
    return out


def scramble(mesh: UnstructuredMesh, set_name: str, seed: int = 0
             ) -> UnstructuredMesh:
    """Randomly permute a set's numbering (worst-case locality)."""
    sets = mesh.summary()
    rng = np.random.default_rng(seed)
    perm = rng.permutation(sets[set_name]).astype(np.int64)
    return permute_set_numbering(mesh, set_name, perm)


def rcm_renumber_cells(mesh: UnstructuredMesh) -> UnstructuredMesh:
    """Reverse-Cuthill-McKee renumbering of cells via shared nodes."""
    adj = adjacency_from_map(
        mesh.map("cell2node").values, mesh.cells.size, mesh.nodes.size
    )
    order = np.asarray(reverse_cuthill_mckee(adj, symmetric_mode=True))
    new_of_old = np.empty(mesh.cells.size, dtype=np.int64)
    new_of_old[order] = np.arange(mesh.cells.size, dtype=np.int64)
    return permute_set_numbering(mesh, "cells", new_of_old)


def tile_local_renumber(
    mesh: UnstructuredMesh, tile_size: int
) -> UnstructuredMesh:
    """Renumber edge-like sets so sparse tiles gather contiguously.

    The sparse-tiling inspector (:mod:`repro.tiling`) seeds tiles as
    contiguous cell ranges and places each edge in (at least) the tile
    of its highest-numbered adjacent cell.  With an arbitrary edge
    numbering a tile's edge slice is a contiguous run of *positions*
    but the edges' own data (``flux``, ``speed``, the toy problems'
    per-edge state) is scattered across memory.  This transform stably
    reorders ``edges`` and ``bedges`` by that same
    max-adjacent-cell-tile key, so each tile's edge slice becomes a
    contiguous ascending id range: direct per-edge Dats stream, and the
    tile's whole working set is physically compact.

    Stability preserves the relative order of edges within a tile, and
    the transform is a pure mesh preprocessing — results on the
    renumbered mesh are internally bitwise consistent across execution
    modes (eager / chained / tiled), like any other renumbering.
    """
    if tile_size < 1:
        raise ValueError(f"tile_size must be >= 1, got {tile_size}")
    out = mesh
    for set_name, map_name in (("edges", "edge2cell"),
                               ("bedges", "bedge2cell")):
        # Boundary maps are optional in the mesh contract — skip sets
        # whose cell map is absent or empty.
        m = out.maps.get(map_name)
        if m is None or m.values.size == 0:
            continue
        tiles = m.values.max(axis=1) // int(tile_size)
        order = np.argsort(tiles, kind="stable")  # old ids in new order
        new_of_old = np.empty(order.size, dtype=np.int64)
        new_of_old[order] = np.arange(order.size, dtype=np.int64)
        out = permute_set_numbering(out, set_name, new_of_old)
    return out


def bandwidth(map_values: np.ndarray) -> int:
    """Max spread of a map row — the locality proxy RCM minimizes."""
    mv = np.asarray(map_values)
    if mv.size == 0:
        return 0
    return int((mv.max(axis=1) - mv.min(axis=1)).max())
