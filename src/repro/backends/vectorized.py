"""Explicit-SIMD backend — the paper's vector-intrinsics code path (Fig 3b).

Execution follows the generated intrinsics code exactly:

1. elements are processed in chunks of the vector width ``vec`` (4/8/16
   lanes depending on ISA and precision);
2. indirection indices are loaded, indirect reads *gathered* into packed
   per-lane arrays and direct reads loaded contiguously (aligned loads);
3. the kernel's **vector form** runs once per chunk over all lanes;
4. indirect increments are *scattered serially* (``np.add.at``), the
   paper's sequential scatter out of the vector register that beat masked
   scatters;
5. a scalar *post-sweep* handles the remainder elements that do not fill
   a whole vector (the paper generates scalar pre/main/post loops because
   iteration ranges are rarely divisible by the vector length).

Under the ``full_permute``/``block_permute`` schemes, lanes within a chunk
are guaranteed independent, so the scatter needs no serialization — this
is the configuration measured in Fig 8a.

The whole-color mega-batch fast path
------------------------------------
Chunked execution is faithful to the hardware but pays Python-interpreter
overhead per chunk — the exact cost the paper's generated code avoids by
compiling.  When ``vec=None`` (unbounded lanes) the backend instead asks
the plan for its :meth:`~repro.core.plan.Plan.phases`: each conflict-free
color becomes **one** fused gather → vector-kernel → scatter over the
entire color's element array, with the gather/scatter index arrays cached
on the plan so repeated invocations (time steps) rebuild nothing.  Batch
results are bitwise identical to chunked execution — phases preserve the
chunked element order, serialized INC scatters apply lanes in that same
order, and free scatters touch each target exactly once either way.  The
``bench`` ablation tables quantify the speedup (batched-vs-chunked and
warm-vs-cold cache).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.access import Access
from ..tiling.schedule import BarrierLoop
from .base import (
    Backend,
    LoopStats,
    _fold_reductions,
    _init_reductions,
    gather_batch,
    interleave_inc_group,
    run_scalar_element,
    scatter_batch,
    serialized_inc_group_key,
)

#: Batch strategies: one fused call per conflict-free color vs the
#: faithful per-chunk loop.
BATCH_MODES = ("color", "chunk")


class _PhaseExec:
    """One loop's *prepared* execution of one conflict-free phase.

    Mirrors :func:`~repro.backends.base.gather_batch` /
    :func:`~repro.backends.base.scatter_batch` operation-for-operation,
    but with every per-argument decision resolved at preparation time:

    * direct contiguous arguments are prebound zero-copy views (no
      per-run work at all);
    * READ globals are prebound to their (stable) value arrays;
    * gather-index arrays come from the phase's per-(map, slot) cache,
      bound once;
    * indirect-INC accumulators and global-reduction partials are
      preallocated and refilled in place each run instead of
      reallocated.

    A steady-state replay therefore consists of exactly the numpy calls
    eager execution performs — the gathers, the vector kernel, the
    scatters, the reduction folds — in the same order on the same
    operands, which keeps results bitwise identical while shedding the
    per-argument Python dispatch.
    """

    __slots__ = ("kernel_vec", "proto", "fills", "gathers", "writebacks",
                 "folds")

    def __init__(self, bl, phase) -> None:
        args = bl.args
        elems = phase.elems
        nl = elems.size
        contiguous = phase.contiguous
        serialize = phase.serialize
        # Generated (or explicitly attached) batched form for this
        # loop's argument shapes, from the kernelc compile cache.
        self.kernel_vec = bl.kernel.vector_for(bl.args)
        self.proto = []       # per-arg prebound array, or None (gathered)
        self.fills = []       # (buffer, fill value) refilled each run
        self.gathers = []     # (pos, is_mapped_gather, dat, index array)
        self.writebacks = []  # (kind, dat, index array, pos, serialize)
        self.folds = []       # (reduction slot, pos, access mode)
        for i, arg in enumerate(args):
            dat = arg.dat
            if arg.is_global:
                if arg.access.is_reduction:
                    acc = np.zeros((nl, dat.dim), dtype=dat.dtype)
                    fill = (
                        0 if arg.access is Access.INC
                        else dat.identity_for(arg.access)
                    )
                    self.proto.append(acc)
                    self.fills.append((acc, fill))
                    self.folds.append((i, i, arg.access))
                else:
                    self.proto.append(dat.data)  # stable value array
            elif arg.is_direct:
                if contiguous:
                    lo = int(elems[0])
                    # Zero-copy in-place view, exactly what gather_batch
                    # passes; writes land directly, no writeback.
                    self.proto.append(dat._data[lo:lo + nl])
                elif arg.access is Access.INC:
                    # Non-contiguous direct INC: zeroed accumulator +
                    # delta scatter_add, mirroring gather_batch (a
                    # gathered copy would double-count old values).
                    buf = np.zeros((nl, dat.dim), dtype=dat.dtype)
                    self.proto.append(buf)
                    self.fills.append((buf, 0))
                    self._add_writeback(arg, dat, elems, i, serialize)
                else:
                    self.proto.append(None)
                    self.gathers.append((i, False, dat, elems))
                    if arg.access.writes:
                        self._add_writeback(arg, dat, elems, i, serialize)
            else:
                idx = phase.index_for(arg)
                if arg.access is Access.INC:
                    shape = (
                        (nl, arg.map.arity, dat.dim)
                        if arg.is_vector else (nl, dat.dim)
                    )
                    buf = np.zeros(shape, dtype=dat.dtype)
                    self.proto.append(buf)
                    self.fills.append((buf, 0))
                    self._add_writeback(arg, dat, idx, i, serialize)
                else:
                    self.proto.append(None)
                    self.gathers.append((i, True, dat, idx))
                    if arg.access.writes:
                        self._add_writeback(arg, dat, idx, i, serialize)
        self._merge_serialized_incs()

    def _merge_serialized_incs(self) -> None:
        """Fuse same-Dat serialized single-slot INC writebacks into one
        element-major joint application.

        Same merge rule and interleave as the eager
        :func:`~repro.backends.base.scatter_batch`
        (:func:`~repro.backends.base.serialized_inc_group_key` /
        :func:`~repro.backends.base.interleave_inc_group`): several INC
        arguments targeting one Dat (res_calc's two ``p_res`` slots)
        interleave per element — the scalar kernel body's order — so
        the operation sequence depends only on the element sequence and
        sub-phase slicing (sparse tiling) cannot perturb it.
        """
        groups: dict = {}
        for wb in self.writebacks:
            kind, dat, _idx, _pos, ser = wb
            if kind == "inc" and ser:
                groups.setdefault(dat._uid, []).append(wb)
        groups = {k: v for k, v in groups.items() if len(v) > 1}
        if not groups:
            return
        merged, emitted = [], set()
        for wb in self.writebacks:
            kind, dat, idx, pos, ser = wb
            group = groups.get(dat._uid) if kind == "inc" and ser else None
            if group is None:
                merged.append(wb)
                continue
            if dat._uid in emitted:
                continue
            emitted.add(dat._uid)
            gidx = interleave_inc_group([w[2] for w in group])
            merged.append(
                ("incj", dat, gidx, tuple(w[3] for w in group), True)
            )
        self.writebacks = merged

    def _add_writeback(self, arg, dat, idx, pos, serialize) -> None:
        if arg.access is Access.INC:
            if arg.is_vector:
                # Vector-INC lanes flatten (chunk, arity) targets; one
                # element's own slots may coincide, so always serialize
                # (same rule as scatter_batch).
                self.writebacks.append(("incv", dat, idx.reshape(-1), pos,
                                        True))
            else:
                # "inc" entries are merge candidates; "incd" (direct)
                # never merges — the shared rule of
                # base.serialized_inc_group_key.
                kind = (
                    "inc"
                    if serialized_inc_group_key(arg) is not None
                    else "incd"
                )
                self.writebacks.append((kind, dat, idx, pos, serialize))
        else:
            self.writebacks.append(("scatter", dat, idx, pos, None))

    def run(self, reductions) -> None:
        arrays = self.proto.copy()
        for buf, fill in self.fills:
            buf[...] = fill
        for pos, mapped, dat, idx in self.gathers:
            arrays[pos] = dat.gather(idx) if mapped else dat._data[idx]
        self.kernel_vec(*arrays)
        for kind, dat, idx, pos, ser in self.writebacks:
            if kind == "incj":
                # Same interleave as the prestacked index half.
                local = interleave_inc_group([arrays[p] for p in pos])
                dat.scatter_add(idx, local, serialize=True)
                continue
            local = arrays[pos]
            if kind in ("inc", "incd"):
                dat.scatter_add(idx, local, serialize=ser)
            elif kind == "incv":
                dat.scatter_add(idx, local.reshape(-1, dat.dim),
                                serialize=True)
            else:
                dat.scatter(idx, local)
        for slot, pos, mode in self.folds:
            partial = arrays[pos]
            if mode is Access.INC:
                reductions[slot] += partial.sum(axis=0)
            elif mode is Access.MIN:
                np.minimum(reductions[slot], partial.min(axis=0),
                           out=reductions[slot])
            else:
                np.maximum(reductions[slot], partial.max(axis=0),
                           out=reductions[slot])


class VectorizedBackend(Backend):
    """SIMD-intrinsics analogue with a configurable vector width.

    Parameters
    ----------
    vec:
        Lanes per chunk.  ``None`` means "whole independent range at
        once" — the fastest NumPy realization, used by the benchmark
        harness; a concrete width (4, 8, 16) models the hardware register
        faithfully, including the scalar remainder sweep.
    batch:
        ``"color"`` executes each conflict-free color as one fused call
        using the plan's cached gather indices (requires ``vec=None``);
        ``"chunk"`` keeps the per-chunk loop.  Default: ``"color"`` when
        ``vec is None``, else ``"chunk"``.
    """

    name = "vectorized"

    def __init__(self, vec: int | None = None, batch: str | None = None) -> None:
        super().__init__()
        if vec is not None and vec < 1:
            raise ValueError(f"vector width must be >= 1, got {vec}")
        if batch is None:
            batch = "color" if vec is None else "chunk"
        if batch not in BATCH_MODES:
            raise ValueError(
                f"Unknown batch mode {batch!r}; expected one of {BATCH_MODES}"
            )
        if batch == "color" and vec is not None:
            raise ValueError(
                "batch='color' executes whole colors at once and is "
                "incompatible with a finite vector width; use vec=None"
            )
        self.vec = vec
        self.batch = batch

    # ------------------------------------------------------------------
    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        vfn = kernel.vector_for(args)
        if vfn is None:
            # No vector form derivable: the intrinsics backend degenerates
            # to the scalar sweep (the paper's non-vectorizable case).
            for e in range(start, n):
                run_scalar_element(kernel.scalar, args, e, reductions)
            return

        if plan.is_direct:
            if self.batch == "color":
                self._run_phases(kernel, vfn, args, plan, n, reductions,
                                 start)
            else:
                self._run_range(
                    kernel, vfn, args, np.arange(start, n), reductions,
                    serialize=False,
                )
            return

        scheme = plan.scheme
        if scheme == "two_level" and any(
            arg.races and arg.access is not Access.INC for arg in args
        ):
            # Indirect WRITE/RW lanes may collide inside a chunk under the
            # original ordering; only commutative increments can be
            # serialized safely, so everything else takes the scalar path
            # (OP2 likewise restricts vectorization to INC-style races).
            for e in range(start, n):
                run_scalar_element(kernel.scalar, args, e, reductions)
            return
        if self.batch == "color":
            self._run_phases(kernel, vfn, args, plan, n, reductions, start)
        elif scheme == "two_level":
            self._run_two_level(kernel, vfn, args, plan, n, reductions, start)
        elif scheme == "full_permute":
            self._run_full_permute(kernel, vfn, args, plan, n, reductions,
                                   start)
        elif scheme == "block_permute":
            self._run_block_permute(kernel, vfn, args, plan, n, reductions,
                                    start)
        else:  # pragma: no cover - schemes validated at plan build
            raise ValueError(f"Unknown plan scheme {scheme!r}")

    # ------------------------------------------------------------------
    # Whole-color mega-batch path.
    # ------------------------------------------------------------------
    def _run_phases(self, kernel, vfn, args, plan, n, reductions,
                    start=0) -> None:
        """One fused gather/compute/scatter per conflict-free color.

        ``plan.phases`` memoizes both the phase element arrays and (via
        each phase's index cache) the per-(map, slot) gather indices, so
        this path's steady state is exactly one NumPy gather per argument
        per color and zero index reconstruction.
        """
        for phase in plan.phases(n, start):
            batch = gather_batch(args, phase.elems, phase=phase)
            vfn(*batch.arrays)
            scatter_batch(args, batch, reductions,
                          serialize_inc=phase.serialize)

    # ------------------------------------------------------------------
    # Chained execution: precompiled fused fast path (see core/chain.py).
    # ------------------------------------------------------------------
    def run_chain(self, compiled) -> None:
        """Execute a compiled chain through a prepared replay program.

        On first sight of a :class:`~repro.core.chain.CompiledChain`
        this backend *prepares* it: every batchable loop's per-phase
        gather → vector-kernel → scatter sequence is resolved into
        prebound operations (:class:`_PhaseExec`) — argument
        classification, contiguous direct views, gather-index arrays,
        increment/reduction buffers all bound once.  Steady-state
        replay then runs only the numpy calls themselves, none of the
        per-argument Python dispatch the eager path repeats every time
        step.

        Fused (multi-loop) groups run *phase-interleaved*: one pass
        over the shared plan's conflict-free phases, executing every
        loop per phase, sharing the phase's memoized gather-index
        arrays.  Chain legality
        (:func:`repro.core.chain.pair_fusable`) guarantees the
        interleaving — and the buffer reuse — is bitwise identical to
        eager loop-at-a-time execution.  Groups the fast path cannot
        take (scalar-only kernels, chunked mode, WRITE/RW races under
        ``two_level``) fall back to the eager :meth:`execute` per loop.
        """
        program = compiled.exec_cache.get(self)
        if program is None:
            program = [self._prepare_group(g) for g in compiled.groups]
            compiled.exec_cache[self] = program
        for run_group in program:
            run_group()

    def _group_batchable(self, group) -> bool:
        """Whether every loop of a group can take the phase fast path."""
        if self.batch != "color":
            return False
        plan = group.plan
        for bl in group.loops:
            if bl.kernel.vector_for(bl.args) is None:
                return False
            if (
                not plan.is_direct
                and plan.scheme == "two_level"
                and any(
                    arg.races and arg.access is not Access.INC
                    for arg in bl.args
                )
            ):
                return False
        return True

    def _prepare_group(self, group):
        """Compile one group into a zero-re-analysis replay closure."""
        if not self._group_batchable(group):
            # Conservative fallback: eager execution per loop (which
            # itself falls back to scalar sweeps etc. exactly as an
            # un-chained par_loop would).
            def run_eager() -> None:
                for bl in group.loops:
                    self.execute(
                        bl.kernel, bl.set, bl.args, bl.plan,
                        n_elements=bl.n, start_element=bl.start,
                    )

            return run_eager

        loops = group.loops
        phases = group.plan.phases(group.n, group.start)
        # phase_execs[k][p]: loop k's prepared execution of phase p.
        phase_execs = [
            [_PhaseExec(bl, phase) for phase in phases] for bl in loops
        ]
        n = group.n - group.start
        stats = self.stats

        def run_group() -> None:
            reductions = [_init_reductions(bl.args) for bl in loops]
            elapsed = [0.0] * len(loops)
            for p in range(len(phases)):
                for k in range(len(loops)):
                    t0 = time.perf_counter()
                    phase_execs[k][p].run(reductions[k])
                    elapsed[k] += time.perf_counter() - t0
            for k, bl in enumerate(loops):
                _fold_reductions(bl.args, reductions[k])
                stats.setdefault(bl.kernel.name, LoopStats()).record(
                    elapsed[k], n
                )

        return run_group

    # ------------------------------------------------------------------
    # Sparse-tiled execution: precompiled per-tile replay programs.
    # ------------------------------------------------------------------
    def run_tiled(self, compiled) -> None:
        """Execute a tiled chain through prepared per-tile programs.

        The analogue of :meth:`run_chain`'s prepared replay, transposed
        tile-major: on first sight every segment is compiled into, per
        tile, the list of :class:`_PhaseExec` programs for each loop's
        sub-phases (:meth:`repro.core.plan.Plan.phase_slices`) — direct
        contiguous slices stay zero-copy views, gather indices are
        cached per sub-phase, increment buffers preallocated.  Replay
        then walks tiles in ascending order running only the numpy
        calls; each loop's sub-phases concatenate to its eager phase
        sequence, so results are bitwise identical to eager execution
        while consecutive loops reuse the tile's cache-resident data.

        Falls back to the fused :meth:`run_chain` program whenever any
        sliced loop cannot take the batched fast path (chunked mode,
        scalar-only kernels, WRITE/RW races under ``two_level``) —
        correctness is never traded for tiling.
        """
        if compiled.tiled is None or not self._tiled_batchable(compiled):
            self.run_chain(compiled)
            return
        program = compiled.exec_cache.get((self, "tiled"))
        if program is None:
            program = self._prepare_tiled(compiled)
            compiled.exec_cache[(self, "tiled")] = program
        for run_part in program:
            run_part()

    def _tiled_batchable(self, compiled) -> bool:
        """Whether every sliced loop can take the batched fast path."""
        if self.batch != "color":
            return False
        for part in compiled.tiled.parts:
            if isinstance(part, BarrierLoop):  # barrier loops run eagerly
                continue
            for k in part.loop_indices:
                bl = compiled.loops[k]
                if bl.kernel.vector_for(bl.args) is None:
                    return False
                plan = bl.plan
                if (
                    not plan.is_direct
                    and plan.scheme == "two_level"
                    and any(
                        arg.races and arg.access is not Access.INC
                        for arg in bl.args
                    )
                ):
                    return False
        return True

    def _prepare_tiled(self, compiled):
        """Compile the tiled schedule into zero-re-analysis closures."""
        loops = compiled.loops
        program = []
        for part in compiled.tiled.parts:
            if isinstance(part, BarrierLoop):
                bl = loops[part.loop_index]

                def run_barrier(bl=bl) -> None:
                    self.execute(
                        bl.kernel, bl.set, bl.args, bl.plan,
                        n_elements=bl.n, start_element=bl.start,
                    )

                program.append(run_barrier)
                continue

            seg_loops = [loops[k] for k in part.loop_indices]
            # tiles[t]: [(loop position, prepared sub-phase exec), ...]
            tiles = []
            for t in range(part.n_tiles):
                execs = []
                for j, bl in enumerate(seg_loops):
                    cuts = part.slices[j].cuts
                    lo, hi = int(cuts[t]), int(cuts[t + 1])
                    if lo == hi:
                        continue
                    for sub in bl.plan.phase_slices(bl.n, bl.start, lo, hi):
                        execs.append((j, _PhaseExec(bl, sub)))
                tiles.append(execs)
            stats = self.stats

            def run_segment(seg_loops=seg_loops, tiles=tiles) -> None:
                reductions = [_init_reductions(bl.args) for bl in seg_loops]
                elapsed = [0.0] * len(seg_loops)
                for execs in tiles:
                    for j, pe in execs:
                        t0 = time.perf_counter()
                        pe.run(reductions[j])
                        elapsed[j] += time.perf_counter() - t0
                for j, bl in enumerate(seg_loops):
                    _fold_reductions(bl.args, reductions[j])
                    stats.setdefault(bl.kernel.name, LoopStats()).record(
                        elapsed[j], bl.n - bl.start
                    )

            program.append(run_segment)
        return program

    # ------------------------------------------------------------------
    # Chunked (hardware-faithful) path.
    # ------------------------------------------------------------------
    def _chunks(self, elems: np.ndarray):
        """Split an element list into vector-width chunks plus remainder."""
        if self.vec is None or elems.size <= self.vec:
            if elems.size:
                yield elems, False
            return
        main = (elems.size // self.vec) * self.vec
        for lo in range(0, main, self.vec):
            yield elems[lo : lo + self.vec], False
        if main < elems.size:
            # Remainder: the scalar post-sweep of the generated code.
            yield elems[main:], True

    def _run_range(
        self,
        kernel,
        vfn,
        args,
        elems: np.ndarray,
        reductions,
        serialize: bool,
    ) -> None:
        for chunk, is_remainder in self._chunks(elems):
            if is_remainder:
                for e in chunk:
                    run_scalar_element(kernel.scalar, args, int(e), reductions)
                continue
            batch = gather_batch(args, chunk)
            vfn(*batch.arrays)
            scatter_batch(args, batch, reductions, serialize_inc=serialize)

    # ------------------------------------------------------------------
    def _run_two_level(self, kernel, vfn, args, plan, n, reductions,
                       start=0) -> None:
        # Pure-SIMD over the original ordering: within a chunk, lanes may
        # share an indirect target, so increments scatter serialized.
        layout = plan.layout
        for color_blocks in plan.blocks_by_color:
            for b in color_blocks:
                lo, hi = layout.block_range(int(b))
                lo, hi = max(lo, start), min(hi, n)
                if lo >= hi:
                    continue
                self._run_range(
                    kernel, vfn, args, np.arange(lo, hi), reductions,
                    serialize=True,
                )

    def _run_full_permute(self, kernel, vfn, args, plan, n, reductions,
                          start=0) -> None:
        perm = plan.permutation
        for c in range(perm.ncolors):
            elems = perm.color_slice(c)
            elems = elems[(elems >= start) & (elems < n)]
            if elems.size:
                self._run_range(kernel, vfn, args, elems, reductions,
                                serialize=False)

    def _run_block_permute(self, kernel, vfn, args, plan, n, reductions,
                           start=0) -> None:
        bp = plan.block_permutation
        for color_blocks in plan.blocks_by_color:
            for b in color_blocks:
                for c in range(bp.block_ncolors(int(b))):
                    elems = bp.block_color_slice(int(b), c)
                    elems = elems[(elems >= start) & (elems < n)]
                    if elems.size:
                        self._run_range(
                            kernel, vfn, args, elems, reductions,
                            serialize=False,
                        )
