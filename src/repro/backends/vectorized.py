"""Explicit-SIMD backend — the paper's vector-intrinsics code path (Fig 3b).

Execution follows the generated intrinsics code exactly:

1. elements are processed in chunks of the vector width ``vec`` (4/8/16
   lanes depending on ISA and precision);
2. indirection indices are loaded, indirect reads *gathered* into packed
   per-lane arrays and direct reads loaded contiguously (aligned loads);
3. the kernel's **vector form** runs once per chunk over all lanes;
4. indirect increments are *scattered serially* (``np.add.at``), the
   paper's sequential scatter out of the vector register that beat masked
   scatters;
5. a scalar *post-sweep* handles the remainder elements that do not fill
   a whole vector (the paper generates scalar pre/main/post loops because
   iteration ranges are rarely divisible by the vector length).

Under the ``full_permute``/``block_permute`` schemes, lanes within a chunk
are guaranteed independent, so the scatter needs no serialization — this
is the configuration measured in Fig 8a.

The whole-color mega-batch fast path
------------------------------------
Chunked execution is faithful to the hardware but pays Python-interpreter
overhead per chunk — the exact cost the paper's generated code avoids by
compiling.  When ``vec=None`` (unbounded lanes) the backend instead asks
the plan for its :meth:`~repro.core.plan.Plan.phases`: each conflict-free
color becomes **one** fused gather → vector-kernel → scatter over the
entire color's element array, with the gather/scatter index arrays cached
on the plan so repeated invocations (time steps) rebuild nothing.  Batch
results are bitwise identical to chunked execution — phases preserve the
chunked element order, serialized INC scatters apply lanes in that same
order, and free scatters touch each target exactly once either way.  The
``bench`` ablation tables quantify the speedup (batched-vs-chunked and
warm-vs-cold cache).
"""

from __future__ import annotations

import numpy as np

from ..core.access import Access
from .base import Backend, gather_batch, run_scalar_element, scatter_batch

#: Batch strategies: one fused call per conflict-free color vs the
#: faithful per-chunk loop.
BATCH_MODES = ("color", "chunk")


class VectorizedBackend(Backend):
    """SIMD-intrinsics analogue with a configurable vector width.

    Parameters
    ----------
    vec:
        Lanes per chunk.  ``None`` means "whole independent range at
        once" — the fastest NumPy realization, used by the benchmark
        harness; a concrete width (4, 8, 16) models the hardware register
        faithfully, including the scalar remainder sweep.
    batch:
        ``"color"`` executes each conflict-free color as one fused call
        using the plan's cached gather indices (requires ``vec=None``);
        ``"chunk"`` keeps the per-chunk loop.  Default: ``"color"`` when
        ``vec is None``, else ``"chunk"``.
    """

    name = "vectorized"

    def __init__(self, vec: int | None = None, batch: str | None = None) -> None:
        super().__init__()
        if vec is not None and vec < 1:
            raise ValueError(f"vector width must be >= 1, got {vec}")
        if batch is None:
            batch = "color" if vec is None else "chunk"
        if batch not in BATCH_MODES:
            raise ValueError(
                f"Unknown batch mode {batch!r}; expected one of {BATCH_MODES}"
            )
        if batch == "color" and vec is not None:
            raise ValueError(
                "batch='color' executes whole colors at once and is "
                "incompatible with a finite vector width; use vec=None"
            )
        self.vec = vec
        self.batch = batch

    # ------------------------------------------------------------------
    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        if not kernel.has_vector_form:
            # No vector form: the intrinsics backend degenerates to the
            # scalar sweep (the paper's non-vectorizable-kernel case).
            for e in range(start, n):
                run_scalar_element(kernel.scalar, args, e, reductions)
            return

        if plan.is_direct:
            if self.batch == "color":
                self._run_phases(kernel, args, plan, n, reductions, start)
            else:
                self._run_range(
                    kernel, args, np.arange(start, n), reductions,
                    serialize=False,
                )
            return

        scheme = plan.scheme
        if scheme == "two_level" and any(
            arg.races and arg.access is not Access.INC for arg in args
        ):
            # Indirect WRITE/RW lanes may collide inside a chunk under the
            # original ordering; only commutative increments can be
            # serialized safely, so everything else takes the scalar path
            # (OP2 likewise restricts vectorization to INC-style races).
            for e in range(start, n):
                run_scalar_element(kernel.scalar, args, e, reductions)
            return
        if self.batch == "color":
            self._run_phases(kernel, args, plan, n, reductions, start)
        elif scheme == "two_level":
            self._run_two_level(kernel, args, plan, n, reductions, start)
        elif scheme == "full_permute":
            self._run_full_permute(kernel, args, plan, n, reductions, start)
        elif scheme == "block_permute":
            self._run_block_permute(kernel, args, plan, n, reductions, start)
        else:  # pragma: no cover - schemes validated at plan build
            raise ValueError(f"Unknown plan scheme {scheme!r}")

    # ------------------------------------------------------------------
    # Whole-color mega-batch path.
    # ------------------------------------------------------------------
    def _run_phases(self, kernel, args, plan, n, reductions, start=0) -> None:
        """One fused gather/compute/scatter per conflict-free color.

        ``plan.phases`` memoizes both the phase element arrays and (via
        each phase's index cache) the per-(map, slot) gather indices, so
        this path's steady state is exactly one NumPy gather per argument
        per color and zero index reconstruction.
        """
        for phase in plan.phases(n, start):
            batch = gather_batch(args, phase.elems, phase=phase)
            kernel.vector(*batch.arrays)
            scatter_batch(args, batch, reductions,
                          serialize_inc=phase.serialize)

    # ------------------------------------------------------------------
    # Chunked (hardware-faithful) path.
    # ------------------------------------------------------------------
    def _chunks(self, elems: np.ndarray):
        """Split an element list into vector-width chunks plus remainder."""
        if self.vec is None or elems.size <= self.vec:
            if elems.size:
                yield elems, False
            return
        main = (elems.size // self.vec) * self.vec
        for lo in range(0, main, self.vec):
            yield elems[lo : lo + self.vec], False
        if main < elems.size:
            # Remainder: the scalar post-sweep of the generated code.
            yield elems[main:], True

    def _run_range(
        self,
        kernel,
        args,
        elems: np.ndarray,
        reductions,
        serialize: bool,
    ) -> None:
        for chunk, is_remainder in self._chunks(elems):
            if is_remainder:
                for e in chunk:
                    run_scalar_element(kernel.scalar, args, int(e), reductions)
                continue
            batch = gather_batch(args, chunk)
            kernel.vector(*batch.arrays)
            scatter_batch(args, batch, reductions, serialize_inc=serialize)

    # ------------------------------------------------------------------
    def _run_two_level(self, kernel, args, plan, n, reductions,
                       start=0) -> None:
        # Pure-SIMD over the original ordering: within a chunk, lanes may
        # share an indirect target, so increments scatter serialized.
        layout = plan.layout
        for color_blocks in plan.blocks_by_color:
            for b in color_blocks:
                lo, hi = layout.block_range(int(b))
                lo, hi = max(lo, start), min(hi, n)
                if lo >= hi:
                    continue
                self._run_range(
                    kernel, args, np.arange(lo, hi), reductions, serialize=True
                )

    def _run_full_permute(self, kernel, args, plan, n, reductions,
                          start=0) -> None:
        perm = plan.permutation
        for c in range(perm.ncolors):
            elems = perm.color_slice(c)
            elems = elems[(elems >= start) & (elems < n)]
            if elems.size:
                self._run_range(kernel, args, elems, reductions, serialize=False)

    def _run_block_permute(self, kernel, args, plan, n, reductions,
                           start=0) -> None:
        bp = plan.block_permutation
        layout = plan.layout
        for color_blocks in plan.blocks_by_color:
            for b in color_blocks:
                for c in range(bp.block_ncolors(int(b))):
                    elems = bp.block_color_slice(int(b), c)
                    elems = elems[(elems >= start) & (elems < n)]
                    if elems.size:
                        self._run_range(
                            kernel, args, elems, reductions, serialize=False
                        )
