"""SIMT backend — the OpenCL/CUDA execution model of the paper (Fig 3a).

Work-groups are the plan's mini-partitions; work-items are the elements of
a block executing in lockstep.  The generated OpenCL kernel (Fig 3a)

1. computes indirection indices per work-item,
2. runs the user kernel with indirect increments redirected into private
   (per-work-item) accumulators,
3. applies the accumulators *color by color* using the second-level
   element coloring, which serializes conflicting increments while
   same-colored items proceed together.

On CPU, work-groups run sequentially (one per TBB task) — which is why the
paper can drop work-group barriers; we reproduce the same semantics by
executing blocks color-group by color-group.  The lockstep work-item
bundle is realized as one batched NumPy call over the whole block when the
kernel has a vector form and the (modelled) OpenCL compiler agrees to
vectorize it; otherwise work-items run scalar, mirroring the AVX
compiler's refusals recorded in Table VI.
"""

from __future__ import annotations

import numpy as np

from ..core.access import Access
from .base import Backend, gather_batch, run_scalar_element


class SIMTBackend(Backend):
    """OpenCL-analogue backend.

    Parameters
    ----------
    device:
        ``"cpu"`` or ``"phi"``.  Controls which kernels the modelled
        OpenCL compiler vectorizes: the Phi's IMCI gather/scatter support
        lets it vectorize everything with a vector form, while the AVX
        compiler only accepts kernels flagged ``vectorizable_simt``
        (paper Table VI, right columns).
    """

    name = "simt"

    def __init__(self, device: str = "cpu") -> None:
        super().__init__()
        if device not in ("cpu", "phi"):
            raise ValueError(f"Unknown SIMT device {device!r}")
        self.device = device

    def _vectorizes(self, kernel, args):
        """The batched form the modelled OpenCL compiler emits, or None."""
        if self.device == "cpu" and not kernel.vectorizable_simt:
            return None
        return kernel.vector_for(args)

    # ------------------------------------------------------------------
    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        vfn = self._vectorizes(kernel, args)
        layout = plan.layout
        elem_colors = plan.elem_colors
        for color_blocks in plan.blocks_by_color:
            for b in color_blocks:
                lo, hi = layout.block_range(int(b))
                lo, hi = max(lo, start), min(hi, n)
                if lo >= hi:
                    continue
                if vfn is not None:
                    self._run_block_vector(
                        vfn, args, lo, hi, elem_colors,
                        int(plan.block_ncolors[int(b)]), reductions,
                    )
                else:
                    self._run_block_scalar(
                        kernel, args, lo, hi, elem_colors,
                        int(plan.block_ncolors[int(b)]), reductions,
                    )

    # ------------------------------------------------------------------
    def _run_block_vector(
        self, vfn, args, lo, hi, elem_colors, ncolors, reductions
    ) -> None:
        elems = np.arange(lo, hi)
        batch = gather_batch(args, elems)
        vfn(*batch.arrays)
        self._colored_scatter(args, batch, elems, elem_colors, ncolors, reductions)

    def _run_block_scalar(
        self, kernel, args, lo, hi, elem_colors, ncolors, reductions
    ) -> None:
        # Scalar work-items still use the colored-increment structure: the
        # kernel writes into private accumulators which are applied by
        # color, reproducing Fig 3a's ``if (col2==col)`` loop ordering.
        has_race = any(arg.races for arg in args)
        if not has_race:
            for e in range(lo, hi):
                run_scalar_element(kernel.scalar, args, e, reductions)
            return
        if elem_colors is None:
            colors = np.zeros(hi - lo, dtype=np.int32)
            ncolors = 1
        else:
            colors = elem_colors[lo:hi]
        for col in range(ncolors):
            for off in np.nonzero(colors == col)[0]:
                e = lo + int(off)
                run_scalar_element(kernel.scalar, args, e, reductions)

    # ------------------------------------------------------------------
    def _colored_scatter(
        self, args, batch, elems, elem_colors, ncolors, reductions
    ) -> None:
        """Apply indirect increments color-by-color (block-level barrier-free
        serialization), then fold reductions."""
        inc_writebacks = []
        other_writebacks = []
        for i, idx in batch.writebacks:
            if args[i].access is Access.INC and args[i].is_indirect:
                inc_writebacks.append((i, idx))
            else:
                other_writebacks.append((i, idx))

        if inc_writebacks:
            if elem_colors is None:
                colors = np.zeros(elems.size, dtype=np.int32)
                ncolors = 1
            else:
                colors = elem_colors[elems]
            for col in range(ncolors):
                sel = colors == col
                if not sel.any():
                    continue
                for i, idx in inc_writebacks:
                    arg = args[i]
                    local = batch.arrays[i]
                    if arg.is_vector:
                        # One element's own slots may coincide (degenerate
                        # mesh entities), so accumulate serially per lane.
                        np.add.at(
                            arg.dat.data,
                            idx[sel].reshape(-1),
                            local[sel].reshape(-1, arg.dat.dim),
                        )
                    else:
                        # Within one color the targets are unique, so the
                        # unserialized add is safe — and the lockstep lanes
                        # of one color commit together, as on hardware.
                        arg.dat.data[idx[sel]] += local[sel]

        for i, idx in other_writebacks:
            args[i].dat.data[idx] = batch.arrays[i]

        for i in batch.reduction_slots:
            arg = args[i]
            partial = batch.arrays[i]
            if arg.access is Access.INC:
                reductions[i] += partial.sum(axis=0)
            elif arg.access is Access.MIN:
                np.minimum(reductions[i], partial.min(axis=0), out=reductions[i])
            elif arg.access is Access.MAX:
                np.maximum(reductions[i], partial.max(axis=0), out=reductions[i])
