"""Execution backends for parallel loops.

See :mod:`repro.backends.base` for the mapping between backends and the
paper's parallelization strategies.
"""

from .autovec import AutoVecBackend
from .base import Backend, LoopStats, gather_batch, scatter_batch
from .native import NativeBackend
from .openmp import OpenMPBackend
from .sequential import SequentialBackend
from .simt import SIMTBackend
from .vectorized import VectorizedBackend

__all__ = [
    "AutoVecBackend",
    "Backend",
    "LoopStats",
    "NativeBackend",
    "OpenMPBackend",
    "SIMTBackend",
    "SequentialBackend",
    "VectorizedBackend",
    "gather_batch",
    "scatter_batch",
]
