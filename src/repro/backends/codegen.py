"""Scalar code-generation backend: run the specialized per-shape stubs.

The stub *emitter* lives in :mod:`repro.kernelc.scalar` (the kernel
compilation package); this backend is its executor — it caches the
compiled stub per loop shape and dispatches to it, exactly OP2's
generate-once / run-many build flow with the generated source
inspectable (``stub.__source__``) for tests and the curious.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.access import Arg
from ..kernelc.scalar import compile_loop, loop_shape_key, supports
from .base import Backend, run_scalar_element


class CodegenBackend(Backend):
    """Scalar backend running generated specialized stubs.

    Semantically identical to :class:`SequentialBackend` (element order,
    single process, no races); the specialization removes the generic
    per-element argument dispatch, exactly as OP2's generated pure-MPI
    stub removes its function-pointer dispatcher.
    """

    name = "codegen"

    def __init__(self) -> None:
        super().__init__()
        self._compiled: Dict[Tuple, Callable] = {}
        self.generated = 0

    def stub_for(self, kernel, args: Sequence[Arg]) -> Optional[Callable]:
        if not supports(args):
            return None
        key = loop_shape_key(kernel.name, args)
        fn = self._compiled.get(key)
        if fn is None:
            fn = compile_loop(kernel.name, args)
            self._compiled[key] = fn
            self.generated += 1
        return fn

    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        stub = self.stub_for(kernel, args)
        if stub is None:
            # Unsupported shape: generic interpreter fallback.
            for e in range(start, n):
                run_scalar_element(kernel.scalar, args, e, reductions)
            return
        data = [arg.dat.data for arg in args]
        maps = [
            arg.map.values if arg.map is not None else None for arg in args
        ]
        stub(start, n, kernel.scalar, data, maps, reductions)

    def tiled_profile(self, compiled) -> str:
        # The generated stubs sweep [start, n) in ascending element
        # order with per-element operations identical to the generic
        # interpreter's, so the generic tiled executor replays the
        # same sequence.
        return "ascending"
