"""Scalar plan-ordered backend — OP2's non-vectorized OpenMP execution.

Blocks (mini-partitions) execute grouped by block color; inside a block,
elements run in element order.  On real hardware same-colored blocks run
on different OpenMP threads with no synchronization (paper Section 3);
here the ordering is materialized serially, which preserves the exact
floating-point summation order of the threaded execution (each indirect
target is touched by a deterministic block sequence) and exercises the
plan data structures end-to-end.
"""

from __future__ import annotations

from .base import Backend, run_scalar_element


class OpenMPBackend(Backend):
    name = "openmp"

    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        scalar = kernel.scalar
        layout = plan.layout
        for color_blocks in plan.blocks_by_color:
            for b in color_blocks:
                lo, hi = layout.block_range(int(b))
                lo, hi = max(lo, start), min(hi, n)
                for e in range(lo, hi):
                    run_scalar_element(scalar, args, e, reductions)

    def tiled_profile(self, compiled):
        # Block-color-major scalar sweeps are exactly the plan's
        # two_level phase order, so the canonical ("phases") schedule
        # slices this backend's eager sequence.  Permute-scheme plans
        # would phase in permutation order while _run keeps block
        # order — not sliceable; fall back to the fused program.
        for bl in compiled.loops:
            if not bl.plan.is_direct and bl.plan.scheme != "two_level":
                return None
        return "phases"
