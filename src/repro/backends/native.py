"""Native backend — chains compiled to C, replayed through cffi.

The end of the performance ladder: where :class:`VectorizedBackend`
batches NumPy work per conflict-free color, this backend hands a whole
traced loop chain to :mod:`repro.kernelc.native`, which emits ONE C
translation unit — per-element gathers, kernel body and scatters fused
per loop, AoS/SoA strides and constants baked in — compiles it once,
and replays it with zero per-element Python cost.

Determinism contract
--------------------
Every native path executes elements in **ascending order** and maps
each floating-point step onto the exact machine operation NumPy's
scalar path performs (see the emitter's module docstring), so native
eager, chained and tiled results are all bitwise identical to the
sequential backend — the repo-wide acceptance bar.

Fallback policy (two tiers)
---------------------------
1. *No C toolchain* (``REPRO_NATIVE_DISABLE_CC=1``, or no ``cc``/cffi):
   the backend degrades to its :class:`VectorizedBackend` base
   everywhere — still fast, still internally bitwise-consistent across
   eager/chained/tiled.
2. *Toolchain present but a kernel or chain falls outside the C
   emitter's subset*: that work runs through the generic scalar paths
   (``Backend.run_chain`` / ``run_tiled`` / an ascending
   ``run_scalar_element`` sweep) — **never** the color-phased
   vectorized path — so mixed nativizability cannot break the
   ascending-order bitwise contract within a run.
"""

from __future__ import annotations

import time

from ..kernelc.native import (
    NativeUnsupported,
    build_chain_program,
    build_eager_program,
    compiler_available,
    count_native_fallback,
)
from ..tiling.schedule import BarrierLoop
from .base import Backend, LoopStats, run_scalar_element
from .vectorized import VectorizedBackend

#: exec_cache marker for "this chain is not nativizable" (don't retry).
_UNSUPPORTED = None


class NativeBackend(VectorizedBackend):
    """Compile-and-replay backend over :mod:`repro.kernelc.native`."""

    name = "native"

    def __init__(self) -> None:
        super().__init__()
        #: Eager single-loop programs, keyed by kernel + argument shape
        #: signature (value ``None`` marks a known-unsupported kernel).
        self._eager_programs = {}

    # ------------------------------------------------------------------
    # Eager dispatch
    # ------------------------------------------------------------------
    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        if not compiler_available():
            super()._run(kernel, set_, args, plan, n, reductions, start)
            return
        key = self._eager_key(kernel, args, n, start)
        program = self._eager_programs.get(key, _UNSUPPORTED)
        if key not in self._eager_programs:
            try:
                program = build_eager_program(kernel, args, n, start)
            except NativeUnsupported:
                program = _UNSUPPORTED
                count_native_fallback()
            self._eager_programs[key] = program
        if program is not None:
            program.run_eager(args, reductions)
            return
        # Unsupported kernel: scalar ascending sweep (the sequential
        # backend's loop), keeping the whole backend ascending-ordered.
        scalar = kernel.scalar
        for e in range(start, n):
            run_scalar_element(scalar, args, e, reductions)

    @staticmethod
    def _eager_key(kernel, args, n, start):
        """Everything the emitted source depends on, minus array
        identity — plus the slot-dedupe *pattern*, because the compiled
        pointer table tells aliased arguments apart by slot."""
        slots = {}

        def slot(array):
            return slots.setdefault(id(array), len(slots))

        parts = [kernel._uid, int(n), int(start)]
        for arg in args:
            if arg.is_global:
                parts.append(
                    ("g", arg.access.name, arg.dat.dim, slot(arg.dat._data))
                )
                continue
            dat = arg.dat
            parts.append((
                "d", arg.access.name, int(arg.index), dat.layout, dat.dim,
                dat._storage.shape, str(dat.dtype), slot(dat._storage),
                None if arg.map is None
                else (arg.map.arity, slot(arg.map.values)),
            ))
        return tuple(parts)

    # ------------------------------------------------------------------
    # Chained dispatch
    # ------------------------------------------------------------------
    def _chain_program(self, compiled):
        cache_key = (self, "native")
        if cache_key in compiled.exec_cache:
            return compiled.exec_cache[cache_key]
        try:
            program = build_chain_program(
                compiled.loops, name=f"chain:{len(compiled.loops)}loops"
            )
        except NativeUnsupported:
            program = _UNSUPPORTED
            count_native_fallback()
        compiled.exec_cache[cache_key] = program
        return program

    def _record_split(self, loops, dt: float) -> None:
        share = dt / max(1, len(loops))
        for bl in loops:
            self.stats.setdefault(bl.kernel.name, LoopStats()).record(
                share, bl.n - bl.start
            )

    def run_chain(self, compiled) -> None:
        if not compiler_available():
            super().run_chain(compiled)
            return
        program = self._chain_program(compiled)
        if program is _UNSUPPORTED:
            # Generic per-loop path: each loop re-enters self._run,
            # which is native-or-scalar, always ascending.
            Backend.run_chain(self, compiled)
            return
        for bl in compiled.loops:
            for arg in bl.args:
                arg.dat._sync()
        t0 = time.perf_counter()
        program.run_fused()
        self._record_split(compiled.loops, time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # Tiled dispatch
    # ------------------------------------------------------------------
    def tiled_profile(self, compiled):
        if not compiler_available():
            return super().tiled_profile(compiled)
        # Native loops execute elements in plain ascending order, so
        # cuts must slice that order (same profile as sequential).
        return "ascending"

    @staticmethod
    def _slices_are_ascending(schedule, loops) -> bool:
        """Belt-and-braces check that every sliced order is the plain
        ``arange(start, n)`` the emitted C assumes (contiguous ranges
        let tiles replay as ``[start + cuts[t], start + cuts[t+1])``)."""
        for part in schedule.parts:
            if isinstance(part, BarrierLoop):
                continue
            for k, sl in zip(part.loop_indices, part.slices):
                bl = loops[k]
                span = bl.n - bl.start
                if sl.order.size != span:
                    return False
                if span and (
                    int(sl.order[0]) != bl.start
                    or int(sl.order[-1]) != bl.n - 1
                ):
                    return False
        return True

    def run_tiled(self, compiled) -> None:
        if not compiler_available():
            super().run_tiled(compiled)
            return
        if compiled.tiled is None:
            self.run_chain(compiled)
            return
        schedule = compiled.tiled_for(self.tiled_profile(compiled))
        if schedule is None:
            self.run_chain(compiled)
            return
        program = self._chain_program(compiled)
        if program is _UNSUPPORTED or not self._slices_are_ascending(
            schedule, compiled.loops
        ):
            Backend.run_tiled(self, compiled)
            return
        loops = compiled.loops
        for bl in loops:
            for arg in bl.args:
                arg.dat._sync()
        t0 = time.perf_counter()
        program._refresh()
        for part in schedule.parts:
            if isinstance(part, BarrierLoop):
                j = part.loop_index
                bl = loops[j]
                program.loop_init(j)
                program.run_loop(j, bl.start, bl.n)
                program.loop_fold(j)
                continue
            # Reduction loops are always barriers (inspector invariant),
            # so segment init/fold calls are no-ops kept for symmetry.
            for j in part.loop_indices:
                program.loop_init(j)
            for t in range(part.n_tiles):
                for j, sl in zip(part.loop_indices, part.slices):
                    lo = loops[j].start + int(sl.cuts[t])
                    hi = loops[j].start + int(sl.cuts[t + 1])
                    if hi > lo:
                        program.run_loop(j, lo, hi)
            for j in part.loop_indices:
                program.loop_fold(j)
        self._record_split(loops, time.perf_counter() - t0)
