"""Scalar reference backend — the paper's non-vectorized pure-MPI stub.

Executes the scalar kernel element by element in set order, exactly like
the generated code of Fig 2b running on one process.  It is the semantic
ground truth every other backend is tested against, and the "Scalar MPI"
baseline of the performance study.
"""

from __future__ import annotations

from .base import Backend, run_scalar_element


class SequentialBackend(Backend):
    name = "sequential"

    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        scalar = kernel.scalar
        for e in range(start, n):
            run_scalar_element(scalar, args, e, reductions)

    def tiled_profile(self, compiled) -> str:
        # Plain ascending element sweeps: any monotone contiguous
        # re-slicing of [start, n) replays the identical operation
        # sequence, so the generic tiled executor is bitwise-safe.
        return "ascending"
