"""Auto-vectorization analogue backend (paper Sections 4 and 6.5).

The paper makes compiler auto-vectorization *possible* by switching to the
full-permute / block-permute orderings (independent inner-loop iterations
plus ``#pragma ivdep``).  Whether the compiler then actually vectorizes a
loop is a separate question — on AVX it mostly refused, on the Phi it
vectorized everything yet ran slower than scalar because of the gathers
the permutation introduces.

This backend realizes the auto-vectorized execution: whole color groups
execute as single batched NumPy calls (unbounded "vector length"), with
free (unserialized) scatters since color groups are independent.  Kernels
without a vector form run scalar — the compiler bail-out case.

By default it rides the whole-color mega-batch fast path (``batch=
"color"``): every color phase is one fused gather → kernel → scatter
using the plan's cached index arrays (see
:meth:`repro.core.plan.Plan.phases`), so a steady-state time step does no
per-chunk Python iteration and no index reconstruction.  ``batch=
"chunk"`` falls back to looping color slices through the chunked
machinery — the configuration the batched-vs-chunked ablation compares
against.
"""

from __future__ import annotations

from .vectorized import VectorizedBackend


class AutoVecBackend(VectorizedBackend):
    """Whole-color batched execution over permute orderings.

    A thin specialization of :class:`VectorizedBackend`: the "vector
    width" is unbounded (a compiler vectorizing an independent loop covers
    the whole trip count), so each color group is one fused gather /
    compute / scatter.  Plans must use the ``full_permute`` or
    ``block_permute`` scheme for indirect loops; direct loops work with
    any scheme.
    """

    name = "autovec"

    def __init__(self, batch: str | None = None) -> None:
        super().__init__(vec=None, batch=batch)

    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        if not plan.is_direct and plan.scheme == "two_level":
            raise ValueError(
                "AutoVecBackend requires a full_permute or block_permute "
                "plan for indirect loops (iteration independence is what "
                "enables auto-vectorization); got a two_level plan for "
                f"kernel {kernel.name!r}"
            )
        super()._run(kernel, set_, args, plan, n, reductions, start)

    def _group_batchable(self, group) -> bool:
        # Chained fast path: never fuse an indirect two_level group —
        # fall through to execute(), which raises the same scheme error
        # eager execution would (chained and eager must behave alike).
        if not group.plan.is_direct and group.plan.scheme == "two_level":
            return False
        return super()._group_batchable(group)

    def _tiled_batchable(self, compiled) -> bool:
        # Tiled fast path: an indirect two_level plan anywhere in the
        # chain sends the whole schedule down the fused/eager fallback,
        # which raises the same scheme error eager execution would.
        for bl in compiled.loops:
            if not bl.plan.is_direct and bl.plan.scheme == "two_level":
                return False
        return super()._tiled_batchable(compiled)
