"""Backend interface and shared gather/scatter machinery.

A backend executes one parallel loop over a range of set elements given a
:class:`~repro.core.plan.Plan`.  The concrete backends model the paper's
parallelization strategies:

========================  =====================================================
``sequential``            scalar element-at-a-time loop — the generated pure
                          MPI stub of Fig 2b (one single-threaded process)
``openmp``                scalar execution ordered by the two-level coloring
                          plan — OP2's non-vectorized OpenMP backend
``vectorized``            explicit SIMD: gather → batched vector kernel →
                          serialized/colored scatter, with scalar pre/post
                          sweeps (Fig 3b)
``simt``                  OpenCL/CUDA analogue: work-groups = plan blocks in
                          lockstep, block-level colored increments (Fig 3a)
``autovec``               compiler auto-vectorization analogue: whole-color
                          execution under full/block permute orderings
========================  =====================================================

All backends must produce results identical (to floating-point reordering
tolerance) to ``sequential`` — the central correctness property of the
test suite, swept across both data layouts.

The gather/scatter contract
---------------------------
:func:`gather_batch` packs one chunk/phase of elements into batched
arrays: indirect reads become mapped gathers (fresh copies), direct
reads contiguous views, indirect INC arguments zeroed accumulators.
:func:`scatter_batch` writes results back under the
serialize-vs-colored rule: INC with ``serialize_inc=True`` applies lanes
in element order (``np.add.at`` — correct when lanes collide, the
two_level case); ``serialize_inc=False`` is the permute schemes' free
fused scatter, valid only for conflict-free targets; WRITE/RW scatters
always require distinct targets.  All of it routes through the
layout-aware :class:`~repro.core.dat.Dat` primitives, so AoS and SoA
Dats take the same code path (``docs/architecture.md`` sections 2 and 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.access import Access, Arg
from ..core.kernel import Kernel
from ..core.plan import Plan, is_contiguous_range
from ..core.set import Set
from ..tiling.schedule import BarrierLoop


@dataclass
class LoopStats:
    """Per-kernel execution accounting (OP2's ``op_timing`` analogue)."""

    calls: int = 0
    elapsed: float = 0.0
    elements: int = 0

    def record(self, dt: float, n: int) -> None:
        self.calls += 1
        self.elapsed += dt
        self.elements += n


class Backend:
    """Abstract parallel-loop executor."""

    #: Registry name, overridden by subclasses.
    name = "abstract"

    def __init__(self) -> None:
        self.stats: Dict[str, LoopStats] = {}

    # ------------------------------------------------------------------
    def execute(
        self,
        kernel: Kernel,
        set_: Set,
        args: Sequence[Arg],
        plan: Plan,
        n_elements: Optional[int] = None,
        start_element: int = 0,
    ) -> None:
        """Run ``kernel`` over ``[start_element, n_elements)`` of ``set_``.

        ``n_elements`` defaults to ``set_.total_size`` (owned plus exec
        halo) so distributed execution covers redundant halo elements;
        a non-zero ``start_element`` executes only the tail (the MPI
        substrate's core/boundary split).
        """
        n = set_.total_size if n_elements is None else int(n_elements)
        start = int(start_element)
        if not (0 <= start <= n):
            raise ValueError(f"start_element {start} outside [0, {n}]")
        # Flush any pending loop chain touching an argument (another
        # runtime may be mid-trace over shared data).  Synced once per
        # loop here so the per-element helpers below can read the raw
        # ``_data`` storage without per-access barrier checks.
        for arg in args:
            arg.dat._sync()
        t0 = time.perf_counter()
        reductions = _init_reductions(args)
        self._run(kernel, set_, args, plan, n, reductions, start)
        _fold_reductions(args, reductions)
        dt = time.perf_counter() - t0
        self.stats.setdefault(kernel.name, LoopStats()).record(dt, n - start)

    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def run_chain(self, compiled) -> None:
        """Execute a :class:`~repro.core.chain.CompiledChain`.

        Generic fallback: run every recorded loop in order through
        :meth:`execute` — trivially bitwise identical to eager
        execution.  Backends with a batched fast path (vectorized,
        autovec) override this to execute fused groups
        phase-interleaved with shared coloring and gather indices.
        """
        for group in compiled.groups:
            for bl in group.loops:
                self.execute(
                    bl.kernel, bl.set, bl.args, bl.plan,
                    n_elements=bl.n, start_element=bl.start,
                )

    # ------------------------------------------------------------------
    def tiled_profile(self, compiled) -> Optional[str]:
        """Which eager element order this backend's per-loop execution
        follows — the order the sparse-tiling inspector may slice.

        ``"ascending"`` (plain ``start..n`` sweeps), ``"phases"`` (the
        plan's color-phase order) or ``None`` when this backend's
        execution is not sliceable bitwise-safely (batch-boundary-
        sensitive machinery like SIMT per-block gathers or finite
        vector widths with scalar remainder sweeps).  The base class
        answers ``None``: correctness first — an unknown backend falls
        back to the fused program.
        """
        return None

    def run_tiled(self, compiled) -> None:
        """Execute a tiled :class:`~repro.core.chain.CompiledChain`.

        Generic executor: walk the schedule's parts in program order —
        barrier loops through :meth:`execute`, tiled segments
        tile-by-tile with every slice run element-at-a-time through the
        scalar kernel in the slice's stored eager order.  Because the
        schedule slices this backend's own eager element order
        monotonically and contiguously (see
        :mod:`repro.tiling.inspector`), the per-loop operation sequence
        is exactly the eager one and results are bitwise identical.

        Backends whose :meth:`tiled_profile` answers ``None`` fall back
        to :meth:`run_chain` (untiled, trivially identical).  The
        batched backends override this with prepared per-tile replay
        programs.
        """
        profile = (
            self.tiled_profile(compiled) if compiled.tiled is not None
            else None
        )
        schedule = (
            compiled.tiled_for(profile) if profile is not None else None
        )
        if schedule is None:
            self.run_chain(compiled)
            return
        loops = compiled.loops
        for part in schedule.parts:
            if isinstance(part, BarrierLoop):
                bl = loops[part.loop_index]
                self.execute(
                    bl.kernel, bl.set, bl.args, bl.plan,
                    n_elements=bl.n, start_element=bl.start,
                )
                continue
            seg_loops = [loops[k] for k in part.loop_indices]
            for bl in seg_loops:
                for arg in bl.args:
                    arg.dat._sync()
            reductions = [_init_reductions(bl.args) for bl in seg_loops]
            elapsed = [0.0] * len(seg_loops)
            for t in range(part.n_tiles):
                for j, bl in enumerate(seg_loops):
                    elems = part.slices[j].tile_elems(t)
                    if not elems.size:
                        continue
                    scalar = bl.kernel.scalar
                    t0 = time.perf_counter()
                    for e in elems:
                        run_scalar_element(
                            scalar, bl.args, int(e), reductions[j]
                        )
                    elapsed[j] += time.perf_counter() - t0
            for j, bl in enumerate(seg_loops):
                _fold_reductions(bl.args, reductions[j])
                self.stats.setdefault(
                    bl.kernel.name, LoopStats()
                ).record(elapsed[j], bl.n - bl.start)

    def reset_stats(self) -> None:
        self.stats.clear()


# ----------------------------------------------------------------------
# The element-major serialized-increment merge rule.
# ----------------------------------------------------------------------
def serialized_inc_group_key(arg: Arg) -> Optional[int]:
    """Grouping key for the element-major joint INC application.

    THE single definition of which arguments merge: single-slot
    *indirect* INC arguments, grouped per target Dat, and only under a
    serialized scatter.  Both the eager :func:`scatter_batch` and the
    prepared-replay :class:`~repro.backends.vectorized._PhaseExec` must
    use this rule — the sparse-tiling bitwise-identity guarantee rests
    on the two paths performing operation-for-operation identical
    scatters.  Returns the Dat uid, or ``None`` when the argument never
    participates.
    """
    if arg.access is Access.INC and arg.is_indirect and not arg.is_vector:
        return arg.dat._uid
    return None


def interleave_inc_group(parts) -> np.ndarray:
    """Stack a merge group's per-argument arrays element-major.

    ``parts`` holds one array per grouped argument — either ``(n,)``
    index arrays or ``(n, dim)`` value arrays — and the result
    interleaves them ``e0.arg_a, e0.arg_b, e1.arg_a, ...``: the order
    the scalar kernel body applies the increments.  THE single
    definition of the interleave, used by every merge site (eager
    :func:`scatter_batch` and the prepared-replay ``_PhaseExec``) so
    the two paths can never disagree on operation order.
    """
    stacked = np.stack(parts, axis=1)
    if stacked.ndim == 2:
        return stacked.reshape(-1)
    return stacked.reshape(-1, stacked.shape[-1])


# ----------------------------------------------------------------------
# Global-reduction scaffolding shared by every backend.
# ----------------------------------------------------------------------
def _init_reductions(args: Sequence[Arg]) -> Dict[int, np.ndarray]:
    """Scalar per-loop accumulators for global reduction arguments."""
    acc: Dict[int, np.ndarray] = {}
    for i, arg in enumerate(args):
        if arg.is_global and arg.access.is_reduction:
            acc[i] = arg.dat.identity_for(arg.access)
    return acc


def _fold_reductions(args: Sequence[Arg], reductions: Dict[int, np.ndarray]) -> None:
    for i, partial in reductions.items():
        args[i].dat.combine(args[i].access, partial)


# ----------------------------------------------------------------------
# Scalar per-element argument views.
# ----------------------------------------------------------------------
def scalar_views(args: Sequence[Arg], e: int, reductions: Dict[int, np.ndarray]):
    """Build the per-element argument tuple for a scalar kernel call.

    Direct and single-slot indirect Dat arguments become in-place views;
    vector (``IDX_ALL``) arguments fancy-index, which copies — so writing
    vector arguments get a private buffer plus a writeback record (second
    return value).  READ globals pass the raw value, reduction globals
    the loop accumulator.
    """
    views = []
    writebacks = []
    for i, arg in enumerate(args):
        # Per-element hot path: read the raw ``_data`` storage — the
        # caller (Backend.execute) synced every argument's barrier once
        # up front, so the logical view is current and the per-access
        # property dispatch is avoided.
        if arg.is_global:
            views.append(reductions[i] if i in reductions else arg.dat._data)
        elif arg.is_direct:
            views.append(arg.dat._data[e])
        elif arg.is_vector:
            idx = arg.map.values[e]
            if arg.access is Access.INC:
                # Private zeroed accumulator (as OP2's generated code
                # passes arg*_l locals), applied serially afterwards.
                buf = np.zeros((arg.map.arity, arg.dat.dim), arg.dat.dtype)
                writebacks.append((i, idx, buf, True))
            else:
                buf = arg.dat._data[idx]  # gathered copy
                if arg.access.writes:
                    writebacks.append((i, idx, buf, False))
            views.append(buf)
        else:
            views.append(arg.dat._data[arg.map.values[e, arg.index]])
    return tuple(views), writebacks


def run_scalar_element(
    scalar,
    args: Sequence[Arg],
    e: int,
    reductions: Dict[int, np.ndarray],
) -> None:
    """Execute the scalar kernel on one element, applying writebacks."""
    views, writebacks = scalar_views(args, e, reductions)
    scalar(*views)
    for i, idx, buf, is_inc in writebacks:
        if is_inc:
            np.add.at(args[i].dat._data, idx, buf)
        else:
            args[i].dat._data[idx] = buf


# ----------------------------------------------------------------------
# Batched gather / scatter used by vectorized-style backends.
# ----------------------------------------------------------------------
@dataclass
class BatchArgs:
    """Materialized batched arguments for one chunk of elements."""

    arrays: List[np.ndarray] = field(default_factory=list)
    #: (arg position, gathered index array) pairs that must scatter back.
    writebacks: List[tuple] = field(default_factory=list)
    #: (arg position,) of vector reduction accumulators, shape (chunk, dim).
    reduction_slots: List[int] = field(default_factory=list)


def gather_batch(
    args: Sequence[Arg],
    elems: np.ndarray,
    phase=None,
) -> BatchArgs:
    """Gather a chunk of elements into batched ``(chunk, ...)`` arrays.

    This is the Python analogue of the paper's explicit packing into
    vector registers (Fig 3b): indirect reads become mapped gathers,
    direct reads become contiguous loads (views when the chunk is a
    slice-like contiguous range), and indirect increments start as zeroed
    accumulators that the caller scatters afterwards.

    Gathers go through :meth:`~repro.core.dat.Dat.gather`, which indexes
    the physical storage along its contiguous axis, so the same code
    serves AoS and SoA Dats.  When ``phase`` (a
    :class:`~repro.core.plan.Phase` covering exactly ``elems``) is given,
    indirection index arrays come from the phase's per-(map, slot) cache
    instead of being fancy-indexed out of the maps anew — the whole-color
    fast path's steady-state invariant is that *no* index array is
    rebuilt after the first time step.
    """
    batch = BatchArgs()
    nl = elems.size
    contiguous = (
        phase.contiguous if phase is not None else is_contiguous_range(elems)
    )
    for i, arg in enumerate(args):
        if arg.is_global:
            if arg.access.is_reduction:
                acc = np.zeros((nl, arg.dat.dim), dtype=arg.dat.dtype)
                if arg.access is Access.MIN:
                    acc[...] = arg.dat.identity_for(arg.access)
                elif arg.access is Access.MAX:
                    acc[...] = arg.dat.identity_for(arg.access)
                batch.arrays.append(acc)
                batch.reduction_slots.append(i)
            else:
                batch.arrays.append(arg.dat.data)
            continue

        if arg.is_direct:
            if contiguous:
                view = arg.dat.data[elems[0] : elems[0] + nl]
            elif arg.access is Access.INC:
                # Non-contiguous direct INC: a gathered *copy* would be
                # double-counted by the scatter_add writeback (old + old
                # + delta), so hand the kernel a zeroed accumulator and
                # scatter only the delta — the same contract indirect
                # INC arguments get.  Matrix staging (core/mat.py) is
                # the canonical direct-INC client of this path.
                view = np.zeros((nl, arg.dat.dim), dtype=arg.dat.dtype)
                batch.writebacks.append((i, elems))
                batch.arrays.append(view)
                continue
            else:
                view = arg.dat.data[elems]
            if arg.access.writes and not contiguous:
                batch.writebacks.append((i, elems))
            batch.arrays.append(view)
            continue

        # Indirect argument: mapped gather (indices cached on the phase
        # when one is supplied).
        if phase is not None:
            idx = phase.index_for(arg)
        elif arg.is_vector:
            idx = arg.map.values[elems]          # (chunk, arity)
        else:
            idx = arg.map.values[elems, arg.index]  # (chunk,)
        if arg.access is Access.INC:
            shape = (
                (nl, arg.map.arity, arg.dat.dim) if arg.is_vector else (nl, arg.dat.dim)
            )
            local = np.zeros(shape, dtype=arg.dat.dtype)
            batch.arrays.append(local)
            batch.writebacks.append((i, idx))
        else:
            local = arg.dat.gather(idx)
            batch.arrays.append(local)
            if arg.access.writes:
                batch.writebacks.append((i, idx))
    return batch


def scatter_batch(
    args: Sequence[Arg],
    batch: BatchArgs,
    reductions: Dict[int, np.ndarray],
    serialize_inc: bool = True,
    elems: Optional[np.ndarray] = None,
) -> None:
    """Scatter batched results back to their Dats and fold reductions.

    ``serialize_inc=True`` uses ``np.add.at`` — the colored/serialized
    increment of the paper, correct even when lanes share a target.
    ``serialize_inc=False`` models the permute schemes' free scatter
    (one fused ``+=``), valid only when all lane targets are unique.
    Scatters route through :meth:`~repro.core.dat.Dat.scatter` /
    :meth:`~repro.core.dat.Dat.scatter_add` so both layouts write their
    physical storage along the contiguous axis.

    The element-major invariant
    ---------------------------
    Serialized increments are applied **element-major**: when several
    single-slot INC arguments target the same Dat (Airfoil's
    ``res_calc`` incrementing ``p_res`` through both edge slots), their
    lanes are interleaved per element — ``e0.arg_a, e0.arg_b, e1.arg_a,
    ...`` — in one joint ``np.add.at``, exactly the order the scalar
    kernel body applies them.  (Vector INC arguments already flatten
    element-major on their own.)  This makes the order of every
    order-sensitive floating-point operation a pure function of the
    *element sequence*, independent of batch boundaries — the property
    that lets the sparse-tiling executor (:mod:`repro.tiling`) re-slice
    a loop's element sequence into tiles with bitwise-identical
    results.
    """
    joint: Dict[int, list] = {}
    if serialize_inc:
        for i, idx in batch.writebacks:
            key = serialized_inc_group_key(args[i])
            if key is not None:
                joint.setdefault(key, []).append((i, idx))
        joint = {k: v for k, v in joint.items() if len(v) > 1}
    applied = set()
    for i, idx in batch.writebacks:
        arg = args[i]
        local = batch.arrays[i]
        if arg.access is Access.INC:
            if arg.is_vector:
                # Vector args flatten (chunk, arity) targets; one element's
                # own slots may coincide on degenerate meshes, so always
                # accumulate serially for them.
                arg.dat.scatter_add(
                    idx.reshape(-1), local.reshape(-1, arg.dat.dim),
                    serialize=True,
                )
                continue
            group = (
                joint.get(serialized_inc_group_key(arg))
                if serialize_inc else None
            )
            if group is not None:
                if i in applied:
                    continue
                # Joint element-major application (see docstring).
                gidx = interleave_inc_group([g[1] for g in group])
                gloc = interleave_inc_group(
                    [batch.arrays[g[0]] for g in group]
                )
                arg.dat.scatter_add(gidx, gloc, serialize=True)
                applied.update(g[0] for g in group)
            else:
                arg.dat.scatter_add(idx, local, serialize=serialize_inc)
        else:
            # WRITE / RW scatter: lane targets must be distinct (guaranteed
            # by coloring for indirect args; direct non-contiguous gathers
            # are bijective by construction).
            arg.dat.scatter(idx, local)

    for i in batch.reduction_slots:
        arg = args[i]
        partial = batch.arrays[i]
        if arg.access is Access.INC:
            reductions[i] += partial.sum(axis=0)
        elif arg.access is Access.MIN:
            np.minimum(reductions[i], partial.min(axis=0), out=reductions[i])
        elif arg.access is Access.MAX:
            np.maximum(reductions[i], partial.max(axis=0), out=reductions[i])
