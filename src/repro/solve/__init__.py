"""Sparse linear solvers built *on top of* the par_loop abstraction.

The aero workload closes with a conjugate-gradient solve; instead of a
host-side solver this package expresses SpMV and the CG vector updates
as ordinary parallel loops, so the solver inherits every runtime
capability for free: backend choice, data layouts, deferred-execution
tracing (``runtime.chain``) and sparse tiling.  Scalar reductions (dot
products) are the deliberate exception — they read flushed ``Dat`` data
on the host in a fixed order, which keeps every CG scalar (and with it
the iterate sequence) bitwise identical across backends.
"""

from .cg import CGResult, MatOperator, cg
from .kernels import make_cg_kernels, make_spmv_kernel
from .matfree import (
    MAX_FOLD_CONTRIBUTIONS,
    MatFreeOperator,
    make_matfree_kernels,
)

__all__ = [
    "CGResult",
    "MatOperator",
    "MatFreeOperator",
    "MAX_FOLD_CONTRIBUTIONS",
    "cg",
    "make_cg_kernels",
    "make_matfree_kernels",
    "make_spmv_kernel",
]
