"""Solver kernels — scalar sources only, like every application kernel.

The batched forms are derived by :mod:`repro.kernelc`; nothing here is
hand-vectorized.  ``make_spmv_kernel`` closes over the padded row width
of one operator (:meth:`repro.core.mat.Mat.solver_view`), so the
generated vector kernel unrolls a fixed-length multiply-accumulate per
row — the ELLPACK SpMV shape SIMD hardware favours.
"""

from __future__ import annotations

from typing import Dict

from ..core.kernel import Kernel, KernelInfo

#: Kernel objects are memoized (per width / singleton) so repeated
#: solves share one identity: the chain cache and the kernelc compile
#: cache both key on the Kernel object, and a fresh kernel per solve
#: would force a re-trace and re-compile every time.
_SPMV_KERNELS: Dict[int, Kernel] = {}
_CG_KERNELS: Dict[str, Kernel] = {}


def make_spmv_kernel(width: int) -> Kernel:
    """Padded fixed-width row SpMV kernel: ``y[row] = Σ_k a_k · x_k``.

    ``a`` is the row's padded CSR value gather, ``x`` the matching
    column gather (both ``(width, 1)`` vector arguments); padding slots
    carry a 0.0 value, so they contribute exactly nothing.  The
    accumulation order is the fixed ``k = 0..width-1`` sweep — per-row
    arithmetic is identical on every backend, which is what makes the
    CG iterate sequence bitwise reproducible.
    """
    if width < 1:
        raise ValueError(f"spmv row width must be >= 1, got {width}")
    cached = _SPMV_KERNELS.get(width)
    if cached is not None:
        return cached

    def spmv_row(a, x, y):
        acc = a[0][0] * x[0][0]
        for k in range(1, width):
            acc += a[k][0] * x[k][0]
        y[0] = acc

    kern = Kernel(
        f"spmv_w{width}",
        spmv_row,
        info=KernelInfo(
            flops=2 * width, description="Padded-row sparse matrix-vector"
        ),
    )
    _SPMV_KERNELS[width] = kern
    return kern


def make_cg_kernels() -> Dict[str, Kernel]:
    """The conjugate-gradient vector-update kernels (all direct loops).

    ``alpha``/``beta`` arrive as READ globals — broadcast constants the
    host recomputes between loops from flushed dot products.
    """
    if _CG_KERNELS:
        return _CG_KERNELS

    def cg_init(b, ap, r, p):
        r[0] = b[0] - ap[0]
        p[0] = r[0]

    def cg_update(alpha, p, ap, x, r):
        x[0] += alpha[0] * p[0]
        r[0] -= alpha[0] * ap[0]

    def cg_direction(beta, r, p):
        p[0] = r[0] + beta[0] * p[0]

    _CG_KERNELS.update({
        "cg_init": Kernel(
            "cg_init", cg_init,
            info=KernelInfo(flops=1, description="r = b - Ax; p = r"),
        ),
        "cg_update": Kernel(
            "cg_update", cg_update,
            info=KernelInfo(flops=4, description="x += a p; r -= a Ap"),
        ),
        "cg_direction": Kernel(
            "cg_direction", cg_direction,
            info=KernelInfo(flops=2, description="p = r + b p"),
        ),
    })
    return _CG_KERNELS
