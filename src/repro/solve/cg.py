"""Conjugate gradients over par_loops (the aero pipeline's solve stage).

The solver is *matrix-free friendly*: :func:`cg` takes any operator
object exposing ``apply(x, y, runtime=...)`` (compute ``y = A x`` with
parallel loops) plus the right-hand side and initial guess as ``Dat``\\ s.
:class:`MatOperator` adapts an assembled :class:`~repro.core.mat.Mat`
through its padded fixed-arity row view, making SpMV one gather-heavy
``par_loop`` over rows; a custom operator can instead apply the action
element-wise without ever materializing the matrix.

Determinism contract
--------------------
Every mesh-sized operation is a par_loop over race-free (direct or
gather-only) loops, so per-element arithmetic is bitwise identical on
every backend, layout, and execution mode.  The only reductions — the
dot products — run on the host over the flushed arrays in one fixed
NumPy call, so ``alpha``/``beta`` (and therefore the entire iterate
sequence) are bitwise reproducible too.  Reading the dot operands is
also the deferred-execution flush point: under ``chained=True`` each CG
iteration traces its loops into the runtime's chain cache and replays
the memoized schedule, flushing exactly where the scalars are needed.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.access import IDX_ALL, IDX_ID, Access, arg_dat, arg_gbl
from ..core.dat import Dat, dat_layout
from ..core.glob import Global
from ..core.loop import par_loop
from ..core.mat import Mat
from ..core.runtime import Runtime, default_runtime
from .kernels import make_cg_kernels, make_spmv_kernel


class MatOperator:
    """Apply an assembled :class:`~repro.core.mat.Mat` as a par_loop.

    Wraps the matrix's padded row view (``row_slots``/``row_cols``) and
    a width-specialized SpMV kernel; ``apply`` reads whatever the CSR
    value Dat currently holds, so re-assembly and Dirichlet edits need
    no new operator.
    """

    def __init__(self, mat: Mat) -> None:
        self.mat = mat
        self.row_slots, self.row_cols = mat.solver_view()
        self.kernel = make_spmv_kernel(self.row_slots.arity)
        self.set = mat.row_set

    def apply(self, x: Dat, y: Dat, runtime: Optional[Runtime] = None) -> None:
        """``y = A x`` — one gather-gather-dot ``par_loop`` over rows."""
        par_loop(
            self.kernel, self.set,
            arg_dat(self.mat.values, IDX_ALL, self.row_slots, Access.READ),
            arg_dat(x, IDX_ALL, self.row_cols, Access.READ),
            arg_dat(y, IDX_ID, None, Access.WRITE),
            runtime=runtime,
        )


@dataclass
class CGResult:
    """Outcome of one :func:`cg` solve."""

    iterations: int
    residual: float
    converged: bool
    #: ||r||_2 after every iteration (entry 0 is the initial residual).
    history: List[float] = field(default_factory=list)


def _dot(a: Dat, b: Dat, n: int) -> float:
    """Host-side dot product over the owned range (fixed order).

    Reading ``.data`` flushes any pending loop chain first, so this is
    both the deterministic reduction and the natural flush point.
    """
    return float(np.dot(a.data[:n, 0], b.data[:n, 0]))


#: Memoized per-(set, dtype, layout) solver scratch (r/p/ap Dats and the
#: alpha/beta Globals).  The runtime's chain cache keys on *Dat
#: identity*, so allocating fresh scratch per ``cg()`` call would force
#: every solve to re-trace and re-compile its CG chains (and grow the
#: chain cache without bound across Picard steps) — the same reason the
#: kernels above are singletons.  Bounded LRU; cg() is not reentrant
#: over the same (set, dtype, layout), which nothing in this
#: single-threaded library does.
_WORKSPACES: "OrderedDict[tuple, tuple]" = OrderedDict()
_MAX_WORKSPACES = 8


def _workspace(set_, dtype, layout):
    from ..core.dat import get_default_layout

    effective = layout if layout is not None else get_default_layout()
    key = (set_._uid, np.dtype(dtype).str, effective)
    ws = _WORKSPACES.get(key)
    if ws is None:
        with dat_layout(layout):
            ws = (
                Dat(set_, 1, dtype=dtype, name="cg_r"),
                Dat(set_, 1, dtype=dtype, name="cg_p"),
                Dat(set_, 1, dtype=dtype, name="cg_ap"),
                Global(1, 0.0, dtype, name="cg_alpha"),
                Global(1, 0.0, dtype, name="cg_beta"),
            )
        _WORKSPACES[key] = ws
        while len(_WORKSPACES) > _MAX_WORKSPACES:
            _WORKSPACES.popitem(last=False)
    else:
        _WORKSPACES.move_to_end(key)
    return ws


def cg(
    operator,
    b: Dat,
    x: Dat,
    runtime: Optional[Runtime] = None,
    tol: float = 1e-10,
    maxiter: int = 500,
    chained: bool = False,
    tiling=None,
) -> CGResult:
    """Solve ``A x = b`` by conjugate gradients, ``x`` as initial guess.

    Parameters
    ----------
    operator:
        Anything with ``apply(x, y, runtime=...)`` computing ``y = A x``
        via par_loops (e.g. :class:`MatOperator`, or a matrix-free
        element operator).  ``A`` must be symmetric positive definite on
        the solved subspace.
    b, x:
        Right-hand side and initial guess / solution (dim-1 Dats on the
        row set).  ``x`` is updated in place.
    tol:
        Absolute convergence threshold on ``||r||_2``.
    chained:
        Trace each CG iteration as a deferred loop chain (memoized in
        the runtime's chain cache); ``tiling`` additionally lowers the
        chain through the sparse-tiling inspector.  Results are bitwise
        identical in every mode.
    """
    rt = runtime if runtime is not None else default_runtime()
    if tiling is not None and not chained:
        raise ValueError("tiling requires chained=True (there is no chain "
                         "to tile under eager dispatch)")
    set_ = b.set
    n = set_.size
    kernels = make_cg_kernels()
    r, p, ap, alpha, beta = _workspace(
        set_, b.dtype, getattr(rt, "layout", None)
    )

    def traced(body):
        if chained:
            with rt.chain(tiling=tiling):
                return body()
        return body()

    def init():
        operator.apply(x, ap, runtime=rt)
        par_loop(
            kernels["cg_init"], set_,
            arg_dat(b, IDX_ID, None, Access.READ),
            arg_dat(ap, IDX_ID, None, Access.READ),
            arg_dat(r, IDX_ID, None, Access.WRITE),
            arg_dat(p, IDX_ID, None, Access.WRITE),
            runtime=rt,
        )
        return _dot(r, r, n)

    rs = traced(init)
    history = [math.sqrt(rs)]
    if history[-1] <= tol:
        return CGResult(0, history[-1], True, history)

    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        def iteration():
            operator.apply(p, ap, runtime=rt)
            pap = _dot(p, ap, n)  # flush point
            if pap <= 0.0:
                raise ValueError(
                    "cg: operator is not positive definite on this "
                    f"subspace (p.Ap = {pap})"
                )
            alpha.value = rs / pap
            par_loop(
                kernels["cg_update"], set_,
                arg_gbl(alpha, Access.READ),
                arg_dat(p, IDX_ID, None, Access.READ),
                arg_dat(ap, IDX_ID, None, Access.READ),
                arg_dat(x, IDX_ID, None, Access.RW),
                arg_dat(r, IDX_ID, None, Access.RW),
                runtime=rt,
            )
            rs_new = _dot(r, r, n)  # flush point
            if math.sqrt(rs_new) > tol:
                beta.value = rs_new / rs
                par_loop(
                    kernels["cg_direction"], set_,
                    arg_gbl(beta, Access.READ),
                    arg_dat(r, IDX_ID, None, Access.READ),
                    arg_dat(p, IDX_ID, None, Access.RW),
                    runtime=rt,
                )
            return rs_new

        rs = traced(iteration)
        history.append(math.sqrt(rs))
        if history[-1] <= tol:
            converged = True
            break
    return CGResult(it, history[-1], converged, history)
