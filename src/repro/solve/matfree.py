"""Matrix-free operator action — A·p without assembling a global matrix.

The assembled pipeline pays, every Picard step, for element staging, the
canonical CSR fold (``Mat.assemble``) and a host-side Dirichlet pass —
memory traffic and host/chain round trips the solver itself never needs.
:class:`MatFreeOperator` eliminates all of it: the element bilinear form
is re-evaluated *on the fly* by generated par_loop kernels, so the whole
pre-solve phase (density update included) traces into one unbroken loop
chain with zero host folds, and ``Mat.assemble()`` is never called.

Three generated kernels (scalar sources below, batched/native forms
derived by :mod:`repro.kernelc` like every other kernel):

``matfree_coeffs_w{W}c{C}``
    The per-step operator *setup*: for each row, re-evaluate the 2x2
    Gauss bilinear form of every incident element contribution from the
    gathered density and the static per-element quadrature tables, and
    fold the contributions **in the CSR-slot-major, element-minor order
    of ``Mat.assemble``** into the row's ``W`` padded action
    coefficients.  Emitted twice per slot: the raw operator (for the
    Dirichlet-lift right-hand side) and the boundary-masked operator
    (what CG applies), with the mask applied branch-free — bitwise the
    values ``assemble() + set_dirichlet()`` would have produced.
``matfree_apply_w{W}``
    The per-iteration action ``y = A x``: a fixed-width multiply-
    accumulate over the refreshed coefficients and the gathered ``x`` —
    the same fold order as the assembled SpMV kernel, minus its CSR
    value-slot indirection (one stream less per row).
``matfree_action_w{W}c{C}``
    The fused single-kernel action: quadrature re-evaluation *and* the
    ``x`` contraction in one pass — A·p straight from mesh geometry and
    density, no coefficient state at all.  Used for one-shot products
    (the ``K·lift`` right-hand side term) and as the conformance
    reference for the staged pair.

Why the fold orders can match bit for bit
-----------------------------------------
``Mat.assemble`` folds each CSR slot's contributions left to right from
``0.0`` over the explicit :attr:`Mat.fold_table` (CSR slot major,
element minor, padded entries contributing an exact ``+0.0``).  The
kernels below gather their per-row contribution tables from that same
fold table and accumulate in exactly that order — term for term the
same IEEE additions — so every slot value, and therefore every A·p,
every CG scalar, and the final solution, is bitwise identical to the
assembled oracle (up to the sign of exact zeros, which the ``==``-based
reproducibility contract treats as equal).  The constructor bounds the
per-slot contribution count at :data:`MAX_FOLD_CONTRIBUTIONS` to keep
the fully-unrolled generated kernels compact.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.access import IDX_ALL, IDX_ID, Access, arg_dat
from ..core.dat import Dat
from ..core.kernel import Kernel, KernelInfo
from ..core.loop import par_loop
from ..core.map import Map
from ..core.mat import Mat
from ..core.runtime import Runtime
from ..core.set import Set

#: Upper bound on contributions per CSR slot: the generated kernels
#: unroll ``width * maxc * ngauss`` gather/multiply terms per row, so an
#: unusually connected sparsity would explode the emitted code.  A
#: bilinear quad mesh needs 4.
MAX_FOLD_CONTRIBUTIONS = 7

#: Kernel singletons per (width, contributions, gauss points) — the
#: chain cache and the kernelc compile cache key on Kernel identity,
#: so operators over the same mesh family must share one kernel object.
_MF_KERNELS: Dict[tuple, Dict[str, Kernel]] = {}


def make_matfree_kernels(width: int, maxc: int, ngauss: int = 4
                         ) -> Dict[str, Kernel]:
    """The three matrix-free kernels for one ``(W, C, G)`` operator shape.

    ``width`` is the padded row arity of the solver view, ``maxc`` the
    padded per-slot contribution count, ``ngauss`` the quadrature points
    per contribution.  All three are closure constants: the emitters
    unroll every loop, so the generated forms are straight-line code
    specialized to the mesh family — the cross-element analogue of the
    paper's per-kernel specialization.
    """
    if width < 1 or maxc < 1 or ngauss < 1:
        raise ValueError(
            f"matfree kernel shape must be positive, got "
            f"({width}, {maxc}, {ngauss})"
        )
    key = (width, maxc, ngauss)
    cached = _MF_KERNELS.get(key)
    if cached is not None:
        return cached
    W, C, G = width, maxc, ngauss

    # NOTE on arithmetic order (the bitwise contract): each contribution
    # re-derives res_calc's staged value as (rho * ad) * q — the same
    # two multiplies res_calc performs (w = rho * |det|; w * q).  The
    # g-fold from 0.0 matches the staged accumulation into the zeroed
    # staging Dat; the c-fold from 0.0 matches Mat.assemble's explicit
    # left-to-right fold-table sum, padding included (a padded term is
    # (rho * geom) * 0.0 = +0.0, exactly assemble's padded +0.0).  The
    # Dirichlet mask is branch-free over exact {0.0, 1.0} flags,
    # reproducing set_dirichlet's assignments value for value.

    def matfree_coeffs(rho, ad, q, bc, dsel, araw, abc):
        bcr = 0.0
        for k in range(W):
            bcr += dsel[k] * bc[k][0]
        for k in range(W):
            a = 0.0
            for c in range(C):
                kv = 0.0
                for g in range(G):
                    kv += (rho[C * k + c][0] * ad[C * k + c][g]) \
                        * q[C * k + c][g]
                a += kv
            araw[k] = a
            abc[k] = (a * (1.0 - bcr)) * (1.0 - bc[k][0]) + dsel[k] * bcr

    def matfree_apply(a, x, y):
        acc = a[0] * x[0][0]
        for k in range(1, W):
            acc += a[k] * x[k][0]
        y[0] = acc

    def matfree_action(rho, ad, q, x, y):
        acc = 0.0
        for k in range(W):
            a = 0.0
            for c in range(C):
                kv = 0.0
                for g in range(G):
                    kv += (rho[C * k + c][0] * ad[C * k + c][g]) \
                        * q[C * k + c][g]
                a += kv
            acc += a * x[k][0]
        y[0] = acc

    kernels = {
        "coeffs": Kernel(
            f"matfree_coeffs_w{W}c{C}",
            matfree_coeffs,
            info=KernelInfo(
                flops=2 * W + W * (C * (3 * G + 1) + 6),
                description="On-the-fly bilinear form -> action "
                            "coefficients (raw + Dirichlet-masked)",
            ),
        ),
        "apply": Kernel(
            f"matfree_apply_w{W}",
            matfree_apply,
            info=KernelInfo(
                flops=2 * W,
                description="Fixed-width action multiply-accumulate",
            ),
        ),
        "action": Kernel(
            f"matfree_action_w{W}c{C}",
            matfree_action,
            info=KernelInfo(
                flops=W * (C * (3 * G + 1) + 2),
                description="Fused on-the-fly operator action y = A x",
            ),
        ),
    }
    _MF_KERNELS[key] = kernels
    return kernels


class MatFreeOperator:
    """Apply a density-weighted stiffness operator without assembling it.

    Borrows only *connectivity* from a :class:`~repro.core.mat.Mat` (the
    padded solver-view maps and the canonical fold order — guaranteeing
    the identical CSR-slot-major accumulation), never its values: the
    staging Dat stays untouched, ``assemble()`` is never called, and no
    global matrix is ever materialized.

    Parameters
    ----------
    mat:
        The (possibly never-assembled) operator declaration whose
        sparsity fixes row widths and fold order.  Square operators
        only, like the solver view itself.
    quad_tables:
        ``(quad, geom)`` static per-element quadrature factor tables —
        for aero, :func:`repro.apps.aero.kernels.
        element_quadrature_tables` over the gathered corner
        coordinates.  ``quad`` is ``(n_elements, G, a1*a2)``, ``geom``
        ``(n_elements, G)``.
    rho:
        The element coefficient Dat (dim 1) the bilinear form is
        weighted by — re-read on every :meth:`refresh`, so Picard
        updates flow through with no rebuild.
    bc:
        Row-set Dat of exact ``{0.0, 1.0}`` Dirichlet flags.
    diag:
        Diagonal value imposed on Dirichlet rows (``set_dirichlet``'s
        ``diag``).
    """

    def __init__(
        self,
        mat: Mat,
        quad_tables,
        rho: Dat,
        bc: Dat,
        diag: float = 1.0,
    ) -> None:
        mat._ensure_sparsity()
        self.mat = mat
        self.set = mat.row_set
        self.rho = rho
        self.bc = bc
        self.row_slots, self.row_cols = mat.solver_view()
        self.width = W = self.row_slots.arity
        a1, a2 = mat.local_shape
        nrows = mat.nrows
        n_elem = mat.elem_set.size
        n_staged = mat.n_staged
        nnz = mat.nnz
        maxc = mat.fold_width
        if maxc > MAX_FOLD_CONTRIBUTIONS:
            raise ValueError(
                f"matrix-free fold supports at most "
                f"{MAX_FOLD_CONTRIBUTIONS} contributions per matrix "
                f"entry (the generated kernels unroll every "
                f"contribution); this sparsity has {maxc}"
            )
        self.maxc = C = maxc
        # Per-row contribution tables gathered straight from the Mat's
        # canonical fold table (row = CSR slot, padded with the
        # synthetic zero contribution n_staged) — identical order by
        # construction.
        contribs = mat.fold_table[self.row_slots.values]  # (nrows, W, C)
        elems = np.where(contribs == n_staged, 0, contribs // (a1 * a2))
        contrib_set = Set(n_staged + 1, f"{mat.name}_mf_contrib")
        self.row2contrib = Map(
            self.set, contrib_set, W * C, contribs.reshape(nrows, W * C),
            f"{mat.name}_mf_row2contrib",
        )
        self.row2elem = Map(
            self.set, mat.elem_set, W * C, elems.reshape(nrows, W * C),
            f"{mat.name}_mf_row2elem",
        )
        # Static factor Dats: per-contribution gradient products (dim G,
        # zero padding row => padded terms contribute an exact 0.0) and
        # per-element |det J| at each Gauss point.
        quad, geom = quad_tables
        quad = np.asarray(quad, dtype=np.float64)
        geom = np.asarray(geom, dtype=np.float64)
        G = quad.shape[1]
        if quad.shape != (n_elem, G, a1 * a2) or geom.shape != (n_elem, G):
            raise ValueError(
                f"quadrature tables do not match the operator: quad "
                f"{quad.shape}, geom {geom.shape}, expected "
                f"({n_elem}, G, {a1 * a2}) and ({n_elem}, G)"
            )
        self.ngauss = G
        dtype = mat.dtype
        qflat = quad.transpose(0, 2, 1).reshape(n_staged, G)
        self.quad = Dat(
            contrib_set, G,
            np.concatenate([qflat, np.zeros((1, G))]), dtype,
            name=f"{mat.name}_mf_quad",
        )
        self.geom = Dat(
            mat.elem_set, G, geom, dtype, name=f"{mat.name}_mf_geom",
        )
        # Dirichlet diagonal selector: `diag` at the row's diagonal slot
        # position, 0.0 elsewhere (pad slots carry the nnz sentinel, so
        # a padded position can never select).
        degrees = np.diff(mat.indptr)
        rows_of_slot = np.repeat(
            np.arange(nrows, dtype=np.int64), degrees
        )
        diag_mask = rows_of_slot == mat.indices
        diag_slot = np.full(nrows, nnz, dtype=np.int64)
        diag_slot[rows_of_slot[diag_mask]] = np.flatnonzero(diag_mask)
        dsel = np.where(
            self.row_slots.values == diag_slot[:, None], float(diag), 0.0
        )
        self.dsel = Dat(self.set, W, dsel, dtype, name=f"{mat.name}_mf_dsel")
        #: Refreshed per-row action coefficients: the raw operator and
        #: the Dirichlet-masked one CG applies.
        self.coeffs_raw = Dat(
            self.set, W, dtype=dtype, name=f"{mat.name}_mf_raw"
        )
        self.coeffs_bc = Dat(
            self.set, W, dtype=dtype, name=f"{mat.name}_mf_bc"
        )
        self.kernels = make_matfree_kernels(W, C, G)
        self.kernel = self.kernels["apply"]

    # ------------------------------------------------------------------
    # Loop-signature tables (what the driver registers and the tuner
    # profiles — mirrors AeroSim._loop_args entries).
    # ------------------------------------------------------------------
    def coeffs_args(self) -> tuple:
        return (
            self.set,
            arg_dat(self.rho, IDX_ALL, self.row2elem, Access.READ),
            arg_dat(self.geom, IDX_ALL, self.row2elem, Access.READ),
            arg_dat(self.quad, IDX_ALL, self.row2contrib, Access.READ),
            arg_dat(self.bc, IDX_ALL, self.row_cols, Access.READ),
            arg_dat(self.dsel, IDX_ID, None, Access.READ),
            arg_dat(self.coeffs_raw, IDX_ID, None, Access.WRITE),
            arg_dat(self.coeffs_bc, IDX_ID, None, Access.WRITE),
        )

    def apply_args(self, x: Dat, y: Dat, raw: bool = False) -> tuple:
        coeffs = self.coeffs_raw if raw else self.coeffs_bc
        return (
            self.set,
            arg_dat(coeffs, IDX_ID, None, Access.READ),
            arg_dat(x, IDX_ALL, self.row_cols, Access.READ),
            arg_dat(y, IDX_ID, None, Access.WRITE),
        )

    def action_args(self, x: Dat, y: Dat) -> tuple:
        return (
            self.set,
            arg_dat(self.rho, IDX_ALL, self.row2elem, Access.READ),
            arg_dat(self.geom, IDX_ALL, self.row2elem, Access.READ),
            arg_dat(self.quad, IDX_ALL, self.row2contrib, Access.READ),
            arg_dat(x, IDX_ALL, self.row_cols, Access.READ),
            arg_dat(y, IDX_ID, None, Access.WRITE),
        )

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def refresh(self, runtime: Optional[Runtime] = None) -> None:
        """Re-derive the action coefficients from the current density.

        One race-free par_loop over rows (each row owns its
        coefficients); everything else about the operator is static
        connectivity, so this is the *entire* per-step operator update —
        the matrix-free replacement for staging + assemble +
        set_dirichlet.
        """
        set_, *args = self.coeffs_args()
        par_loop(self.kernels["coeffs"], set_, *args, runtime=runtime)

    def apply(self, x: Dat, y: Dat, runtime: Optional[Runtime] = None,
              raw: bool = False) -> None:
        """``y = A x`` from the refreshed coefficients (CG's hot loop).

        ``raw=True`` applies the unmasked operator (the ``K·lift``
        right-hand side product); the default applies the
        Dirichlet-masked operator CG iterates with.
        """
        set_, *args = self.apply_args(x, y, raw=raw)
        par_loop(self.kernels["apply"], set_, *args, runtime=runtime)

    def action(self, x: Dat, y: Dat,
               runtime: Optional[Runtime] = None) -> None:
        """``y = A x`` fused and fully on the fly (raw operator).

        No coefficient state: density gather, quadrature re-evaluation
        and the ``x`` contraction run in one generated kernel — the
        single-kernel embodiment of the matrix-free idea, and the
        conformance reference the staged pair is tested against.
        """
        set_, *args = self.action_args(x, y)
        par_loop(self.kernels["action"], set_, *args, runtime=runtime)
