"""Fixed-width vector-register emulation (the paper's ``F64vec4/F64vec8``).

The paper hides AVX/IMCI intrinsics behind C++ wrapper classes with
overloaded operators and gather/scatter constructors (Fig 4), so generated
user kernels keep their arithmetic expressions while operating on packed
vectors.  :class:`VecReg` is the Python equivalent: a fixed-width lane
container over a NumPy buffer with

* broadcast / aligned-load / strided-load / mapped-gather constructors,
* overloaded arithmetic and comparisons (comparisons yield lane masks),
* aligned-store / strided-store / mapped-scatter / masked variants,
* :func:`repro.simd.intrinsics.select` for branchless conditionals.

Backends use whole-array NumPy in their hot paths for speed; ``VecReg``
exists to model the programming technique faithfully, to validate that
model against NumPy semantics (property tests), and to demonstrate the
explicit pack/compute/scatter pipeline in examples.
"""

from __future__ import annotations

from typing import Union

import numpy as np

Number = Union[int, float]


class Mask:
    """A per-lane boolean mask (result of VecReg comparisons)."""

    __slots__ = ("lanes",)

    def __init__(self, lanes: np.ndarray) -> None:
        self.lanes = np.asarray(lanes, dtype=bool)

    @property
    def width(self) -> int:
        return self.lanes.size

    def __and__(self, other: "Mask") -> "Mask":
        return Mask(self.lanes & other.lanes)

    def __or__(self, other: "Mask") -> "Mask":
        return Mask(self.lanes | other.lanes)

    def __xor__(self, other: "Mask") -> "Mask":
        return Mask(self.lanes ^ other.lanes)

    def __invert__(self) -> "Mask":
        return Mask(~self.lanes)

    def any(self) -> bool:
        return bool(self.lanes.any())

    def all(self) -> bool:
        return bool(self.lanes.all())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Mask({self.lanes.tolist()})"


class VecReg:
    """A packed vector of ``width`` lanes of one dtype.

    Construction mirrors the paper's wrapper-class constructors:

    ``VecReg.broadcast(x, width)``
        splat a scalar into every lane;
    ``VecReg.load(buf, offset, width)``
        contiguous (aligned) load — ``_mm256_load_pd``;
    ``VecReg.load_strided(buf, start, stride, width)``
        strided gather of AoS components — the ``doublev(&data[n*4+d], 4)``
        pattern of Fig 3b;
    ``VecReg.gather(buf, idx)``
        mapping-based gather — ``_mm512_i32logather_pd``.
    """

    __slots__ = ("lanes",)

    def __init__(self, lanes: np.ndarray) -> None:
        lanes = np.asarray(lanes)
        if lanes.ndim != 1:
            raise ValueError("VecReg lanes must be one-dimensional")
        self.lanes = lanes.copy()

    # -- constructors ---------------------------------------------------
    @classmethod
    def broadcast(cls, value: Number, width: int, dtype=np.float64) -> "VecReg":
        return cls(np.full(width, value, dtype=dtype))

    @classmethod
    def load(cls, buf: np.ndarray, offset: int, width: int) -> "VecReg":
        buf = np.ravel(buf)
        if offset < 0 or offset + width > buf.size:
            raise IndexError(
                f"aligned load [{offset}, {offset + width}) out of bounds "
                f"for buffer of size {buf.size}"
            )
        return cls(buf[offset : offset + width])

    @classmethod
    def load_strided(
        cls, buf: np.ndarray, start: int, stride: int, width: int
    ) -> "VecReg":
        buf = np.ravel(buf)
        idx = start + stride * np.arange(width)
        return cls(buf[idx])

    @classmethod
    def gather(cls, buf: np.ndarray, idx: Union[np.ndarray, "IntVec"]) -> "VecReg":
        buf = np.ravel(buf)
        if isinstance(idx, IntVec):
            idx = idx.lanes
        return cls(buf[np.asarray(idx, dtype=np.int64)])

    # -- stores ----------------------------------------------------------
    def store(self, buf: np.ndarray, offset: int) -> None:
        """Contiguous (aligned) store."""
        buf = np.ravel(buf)
        buf[offset : offset + self.width] = self.lanes

    def store_strided(self, buf: np.ndarray, start: int, stride: int) -> None:
        buf = np.ravel(buf)
        idx = start + stride * np.arange(self.width)
        buf[idx] = self.lanes

    def scatter(self, buf: np.ndarray, idx: Union[np.ndarray, "IntVec"]) -> None:
        """Mapping-based scatter (IMCI scatter / sequential AVX fallback).

        Lanes are written in ascending lane order, so when two lanes target
        the same address the *last* lane wins — the hardware semantics of
        ``_mm512_i32loscatter_pd``.  Race-free callers must guarantee lane
        independence (that is exactly what the permute schemes provide).
        """
        buf = np.ravel(buf)
        if isinstance(idx, IntVec):
            idx = idx.lanes
        idx = np.asarray(idx, dtype=np.int64)
        # Explicit lane loop: replicates in-order write semantics even on
        # duplicate indices (NumPy fancy-assignment also takes the last
        # write, but we keep the loop explicit and testable for clarity).
        for lane in range(self.width):
            buf[idx[lane]] = self.lanes[lane]

    def scatter_add(self, buf: np.ndarray, idx: Union[np.ndarray, "IntVec"]) -> None:
        """Accumulating scatter — serialized per lane like the paper's
        colored increment (duplicate targets accumulate correctly)."""
        buf = np.ravel(buf)
        if isinstance(idx, IntVec):
            idx = idx.lanes
        np.add.at(buf, np.asarray(idx, dtype=np.int64), self.lanes)

    def store_masked(self, buf: np.ndarray, offset: int, mask: Mask) -> None:
        buf = np.ravel(buf)
        sel = mask.lanes
        buf[offset : offset + self.width][sel] = self.lanes[sel]

    # -- properties -------------------------------------------------------
    @property
    def width(self) -> int:
        return self.lanes.size

    @property
    def dtype(self) -> np.dtype:
        return self.lanes.dtype

    def __getitem__(self, lane: int) -> Number:
        return self.lanes[lane]

    def copy(self) -> "VecReg":
        return VecReg(self.lanes)

    # -- arithmetic -------------------------------------------------------
    def _coerce(self, other) -> np.ndarray:
        if isinstance(other, VecReg):
            if other.width != self.width:
                raise ValueError(
                    f"width mismatch: {self.width} vs {other.width}"
                )
            return other.lanes
        return np.asarray(other, dtype=self.dtype)

    def __add__(self, other) -> "VecReg":
        return VecReg(self.lanes + self._coerce(other))

    def __radd__(self, other) -> "VecReg":
        return VecReg(self._coerce(other) + self.lanes)

    def __sub__(self, other) -> "VecReg":
        return VecReg(self.lanes - self._coerce(other))

    def __rsub__(self, other) -> "VecReg":
        return VecReg(self._coerce(other) - self.lanes)

    def __mul__(self, other) -> "VecReg":
        return VecReg(self.lanes * self._coerce(other))

    def __rmul__(self, other) -> "VecReg":
        return VecReg(self._coerce(other) * self.lanes)

    def __truediv__(self, other) -> "VecReg":
        return VecReg(self.lanes / self._coerce(other))

    def __rtruediv__(self, other) -> "VecReg":
        return VecReg(self._coerce(other) / self.lanes)

    def __neg__(self) -> "VecReg":
        return VecReg(-self.lanes)

    def __abs__(self) -> "VecReg":
        return VecReg(np.abs(self.lanes))

    # -- fused ops (FMA exists in both AVX2 and IMCI) ----------------------
    def fma(self, mul: "VecReg", add: "VecReg") -> "VecReg":
        """``self * mul + add`` as one op (``_mm256_fmadd_pd``)."""
        return VecReg(self.lanes * self._coerce(mul) + self._coerce(add))

    # -- comparisons (produce masks) ---------------------------------------
    def __lt__(self, other) -> Mask:
        return Mask(self.lanes < self._coerce(other))

    def __le__(self, other) -> Mask:
        return Mask(self.lanes <= self._coerce(other))

    def __gt__(self, other) -> Mask:
        return Mask(self.lanes > self._coerce(other))

    def __ge__(self, other) -> Mask:
        return Mask(self.lanes >= self._coerce(other))

    def eq(self, other) -> Mask:
        """Lane equality (named method: ``==`` stays Python identity)."""
        return Mask(self.lanes == self._coerce(other))

    # -- horizontal ops ----------------------------------------------------
    def hsum(self) -> Number:
        """Horizontal sum — folds a reduction accumulator (Section 4.1)."""
        return self.lanes.sum()

    def hmin(self) -> Number:
        return self.lanes.min()

    def hmax(self) -> Number:
        return self.lanes.max()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VecReg({self.lanes.tolist()})"


class IntVec:
    """Packed integer indices (``I32vec4/I32vec8``) for gather/scatter."""

    __slots__ = ("lanes",)

    def __init__(self, lanes: np.ndarray) -> None:
        self.lanes = np.asarray(lanes, dtype=np.int64).copy()
        if self.lanes.ndim != 1:
            raise ValueError("IntVec lanes must be one-dimensional")

    @classmethod
    def load(cls, buf: np.ndarray, offset: int, width: int) -> "IntVec":
        buf = np.ravel(buf)
        return cls(buf[offset : offset + width])

    @property
    def width(self) -> int:
        return self.lanes.size

    def __add__(self, other) -> "IntVec":
        o = other.lanes if isinstance(other, IntVec) else other
        return IntVec(self.lanes + o)

    def __mul__(self, other) -> "IntVec":
        o = other.lanes if isinstance(other, IntVec) else other
        return IntVec(self.lanes * o)

    __rmul__ = __mul__

    def __getitem__(self, lane: int) -> int:
        return int(self.lanes[lane])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IntVec({self.lanes.tolist()})"
