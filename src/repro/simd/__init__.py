"""SIMD substrate: vector-register emulation and branchless intrinsics.

``VecReg``/``IntVec``/``Mask`` model the paper's C++ wrapper classes over
AVX/IMCI registers (Fig 4); the intrinsics helpers (``select``, ``vsqrt``,
...) are the vocabulary vector kernels use instead of branches.

Vector widths, following the paper: AVX holds 4 doubles / 8 floats
(256-bit), IMCI holds 8 doubles / 16 floats (512-bit).
"""

import numpy as np

from .intrinsics import select, vabs, vfma, vmax, vmin, vrecip, vsqrt
from .vecreg import IntVec, Mask, VecReg

#: Hardware vector widths in *lanes* per dtype (paper Section 2).
VECTOR_WIDTH = {
    ("avx", np.dtype(np.float64)): 4,
    ("avx", np.dtype(np.float32)): 8,
    ("imci", np.dtype(np.float64)): 8,
    ("imci", np.dtype(np.float32)): 16,
}


def vector_width(isa: str, dtype) -> int:
    """Lanes per register for an ISA/dtype pair."""
    key = (isa, np.dtype(dtype))
    if key not in VECTOR_WIDTH:
        raise KeyError(f"No vector width known for ISA {isa!r} dtype {dtype!r}")
    return VECTOR_WIDTH[key]


__all__ = [
    "IntVec",
    "Mask",
    "VECTOR_WIDTH",
    "VecReg",
    "select",
    "vabs",
    "vfma",
    "vmax",
    "vmin",
    "vrecip",
    "vsqrt",
    "vector_width",
]
