"""Branchless vector intrinsics shared by vector kernels.

The paper (Section 4.2) notes that conditionals cannot be expressed inside
vectorized user kernels, so code must be rewritten with ``select()``
instructions; these helpers provide exactly that vocabulary.  Every
function is polymorphic over plain NumPy arrays (the backends' batched
representation), scalars (so the *same* kernel body can serve as the
scalar form in tests), and :class:`~repro.simd.vecreg.VecReg` lanes.
"""

from __future__ import annotations

import numpy as np

from .vecreg import Mask, VecReg


def _unwrap(x):
    return x.lanes if isinstance(x, (VecReg, Mask)) else x


def _rewrap(template, value):
    if isinstance(template, VecReg) or isinstance(template, Mask):
        return VecReg(np.asarray(value))
    return value


def select(cond, if_true, if_false):
    """Lane-wise ``cond ? if_true : if_false`` (masked blend).

    The vector replacement for ``if`` statements; corresponds to
    ``_mm256_blendv_pd`` / IMCI masked moves.
    """
    c = _unwrap(cond)
    a = _unwrap(if_true)
    b = _unwrap(if_false)
    out = np.where(c, a, b)
    if isinstance(if_true, VecReg) or isinstance(if_false, VecReg):
        return VecReg(out)
    if np.isscalar(c) or np.ndim(c) == 0:
        # Scalar path: keep native Python scalars so the same kernel body
        # runs unchanged per-element.
        return a if c else b
    return out


def vsqrt(x):
    """Vector square root (``_mm256_sqrt_pd``)."""
    v = np.sqrt(_unwrap(x))
    return VecReg(v) if isinstance(x, VecReg) else v


def vmin(a, b):
    v = np.minimum(_unwrap(a), _unwrap(b))
    if isinstance(a, VecReg) or isinstance(b, VecReg):
        return VecReg(v)
    return v


def vmax(a, b):
    v = np.maximum(_unwrap(a), _unwrap(b))
    if isinstance(a, VecReg) or isinstance(b, VecReg):
        return VecReg(v)
    return v


def vabs(x):
    v = np.abs(_unwrap(x))
    return VecReg(v) if isinstance(x, VecReg) else v


def vfma(a, b, c):
    """Fused multiply-add ``a*b + c``."""
    v = _unwrap(a) * _unwrap(b) + _unwrap(c)
    if any(isinstance(t, VecReg) for t in (a, b, c)):
        return VecReg(v)
    return v


def vrecip(x):
    """Reciprocal ``1/x`` (``_mm256_div_pd`` with unit numerator)."""
    v = 1.0 / _unwrap(x)
    return VecReg(v) if isinstance(x, VecReg) else v
