"""Recursive coordinate bisection (RCB) partitioner.

A geometric stand-in for PT-Scotch (paper Section 3): the element cloud is
recursively split along its longest coordinate axis at the weighted
median, producing compact, well-balanced parts.  Works on any set with
representative coordinates (cell centroids for meshes).
"""

from __future__ import annotations

import numpy as np


def rcb_partition(coords: np.ndarray, nparts: int) -> np.ndarray:
    """Partition points into ``nparts`` by recursive coordinate bisection.

    Parameters
    ----------
    coords:
        ``(n, d)`` point coordinates.
    nparts:
        Number of parts (need not be a power of two — splits are weighted
        by the target part counts on each side).

    Returns
    -------
    ``(n,)`` int32 part assignment with sizes balanced to within one
    element per recursion level.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2:
        raise ValueError("coords must be (n, d)")
    n = coords.shape[0]
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    parts = np.zeros(n, dtype=np.int32)
    if nparts == 1 or n == 0:
        return parts

    def recurse(idx: np.ndarray, base: int, k: int) -> None:
        if k == 1 or idx.size == 0:
            parts[idx] = base
            return
        pts = coords[idx]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        k_left = k // 2
        # Split position proportional to the child part counts so odd
        # part counts stay balanced.
        frac = k_left / k
        order = np.argsort(pts[:, axis], kind="stable")
        cut = int(round(frac * idx.size))
        left = idx[order[:cut]]
        right = idx[order[cut:]]
        recurse(left, base, k_left)
        recurse(right, base + k_left, k - k_left)

    recurse(np.arange(n, dtype=np.int64), 0, nparts)
    return parts
