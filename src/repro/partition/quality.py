"""Partition quality metrics: balance and communication volume.

The paper attributes the Phi's sensitivity to small problems to MPI load
imbalance (Section 6.5); these metrics quantify exactly that for our
partitioners and feed the halo-cost terms of the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse


@dataclass(frozen=True)
class PartitionQuality:
    """Summary statistics of one partition assignment."""

    nparts: int
    sizes: np.ndarray
    imbalance: float       # max(size) / mean(size) - 1
    edge_cut: int          # adjacency edges crossing parts (undirected)
    boundary_fraction: float  # fraction of vertices with a cross-part edge

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"parts={self.nparts} sizes=[{self.sizes.min()}..{self.sizes.max()}] "
            f"imbalance={self.imbalance:.3%} edge_cut={self.edge_cut} "
            f"boundary={self.boundary_fraction:.3%}"
        )


def evaluate_partition(
    adj: sparse.csr_matrix, parts: np.ndarray, nparts: int | None = None
) -> PartitionQuality:
    """Compute balance / edge-cut / boundary statistics."""
    parts = np.asarray(parts)
    n = parts.size
    k = int(nparts) if nparts is not None else int(parts.max(initial=-1)) + 1
    sizes = np.bincount(parts, minlength=k)
    mean = n / k if k else 0.0
    imbalance = float(sizes.max(initial=0) / mean - 1.0) if mean else 0.0

    coo = adj.tocoo()
    cross = parts[coo.row] != parts[coo.col]
    edge_cut = int(cross.sum()) // 2  # symmetric adjacency counts twice
    boundary = np.zeros(n, dtype=bool)
    boundary[coo.row[cross]] = True
    boundary_fraction = float(boundary.sum() / n) if n else 0.0
    return PartitionQuality(k, sizes, imbalance, edge_cut, boundary_fraction)
