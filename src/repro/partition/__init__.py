"""Mesh partitioning (PT-Scotch substitute) and quality metrics."""

from .geometric import rcb_partition
from .graph import (
    adjacency_from_map,
    greedy_grow_partition,
    partition_iteration_set,
)
from .quality import PartitionQuality, evaluate_partition

__all__ = [
    "PartitionQuality",
    "adjacency_from_map",
    "evaluate_partition",
    "greedy_grow_partition",
    "partition_iteration_set",
    "rcb_partition",
]
