"""Graph-based partitioning: greedy graph growing (PT-Scotch substitute).

Grows parts one at a time by BFS from a peripheral seed over the element
adjacency graph, capping each part at ``ceil(n / nparts)`` elements —
the classic greedy graph-growing heuristic underlying multilevel
partitioners.  Produces connected, low-edge-cut parts on mesh graphs.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np
from scipy import sparse


def adjacency_from_map(map_values: np.ndarray, n_from: int, n_to: int
                       ) -> sparse.csr_matrix:
    """Element adjacency through shared map targets.

    Two ``from``-set elements are adjacent when they share a target (e.g.
    two cells sharing a node).  Returns a boolean CSR adjacency matrix
    with an empty diagonal.
    """
    mv = np.asarray(map_values, dtype=np.int64)
    if mv.ndim != 2:
        raise ValueError("map_values must be (n_from, arity)")
    arity = mv.shape[1]
    rows = np.repeat(np.arange(n_from, dtype=np.int64), arity)
    cols = mv.reshape(-1)
    incidence = sparse.csr_matrix(
        (np.ones(rows.size, dtype=np.int8), (rows, cols)),
        shape=(n_from, n_to),
    )
    adj = (incidence @ incidence.T).tocsr()
    adj.setdiag(0)
    adj.eliminate_zeros()
    adj.data = np.ones_like(adj.data)
    return adj


def greedy_grow_partition(
    adj: sparse.csr_matrix,
    nparts: int,
    seed_order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Greedy graph-growing partition of an adjacency graph.

    Each part BFS-grows from the lowest-numbered unassigned vertex until
    it reaches its size cap; disconnected leftovers start new BFS waves.
    """
    n = adj.shape[0]
    if nparts < 1:
        raise ValueError(f"nparts must be >= 1, got {nparts}")
    parts = np.full(n, -1, dtype=np.int32)
    if nparts == 1:
        parts[:] = 0
        return parts
    cap = -(-n // nparts)  # ceil
    indptr, indices = adj.indptr, adj.indices
    order = (
        np.asarray(seed_order, dtype=np.int64)
        if seed_order is not None
        else np.arange(n, dtype=np.int64)
    )
    cursor = 0

    def next_seed() -> int:
        nonlocal cursor
        while cursor < n and parts[order[cursor]] >= 0:
            cursor += 1
        return int(order[cursor]) if cursor < n else -1

    for p in range(nparts):
        count = 0
        queue: deque = deque()
        while count < cap:
            if not queue:
                s = next_seed()
                if s < 0:
                    break
                queue.append(s)
                parts[s] = p
                count += 1
                if count >= cap:
                    break
            v = queue.popleft()
            for u in indices[indptr[v] : indptr[v + 1]]:
                if parts[u] < 0:
                    parts[u] = p
                    count += 1
                    queue.append(int(u))
                    if count >= cap:
                        break
    # Any stragglers (possible when caps fill early) join part nparts-1.
    parts[parts < 0] = nparts - 1
    return parts


def partition_iteration_set(
    map_values: np.ndarray,
    primary_parts: np.ndarray,
    rule: str = "min",
) -> np.ndarray:
    """Derive a partition for a secondary set from its map into a
    partitioned primary set.

    E.g. having partitioned cells, assign each edge to a rank derived from
    the ranks of the cells it touches.  ``rule='min'`` (OP2's convention)
    assigns to the lowest touching rank; ``rule='first'`` to the rank of
    the first map slot.
    """
    mv = np.asarray(map_values, dtype=np.int64)
    pp = np.asarray(primary_parts)
    touched = pp[mv]  # (n, arity)
    if rule == "min":
        return touched.min(axis=1).astype(np.int32)
    if rule == "first":
        return touched[:, 0].astype(np.int32)
    raise ValueError(f"Unknown rule {rule!r}")
