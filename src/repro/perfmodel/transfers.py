"""Data-movement analysis of parallel loops.

Two accounting conventions, both used by the paper:

* **per-element counts** (Tables II/III): floating-point values touched
  per iteration-set element, with INC counted as read+write and no
  caching credit — gives the naive FLOP/byte ratios;
* **useful bytes** (Tables V-VIII bandwidth columns): every distinct
  element of every accessed dat counted once per loop ("infinite cache
  for the duration of a single loop", Section 6.1) — the minimal traffic
  a perfect cache would generate, from which achieved bandwidth is
  computed as ``useful_bytes / time``.

Counts are derived *from the loop's argument list*, exactly the
information the OP2 API exposes — so Tables II/III regenerate from the
application source rather than being transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from ..core.access import Access, Arg


@dataclass
class LoopTransfer:
    """Transfer profile of one parallel loop.

    Per-element counts are in values (not bytes); ``unique_per_elem``
    maps a set name to values-touched per *iteration* element under the
    infinite-cache convention (scale-invariant for a mesh family, so
    profiles built on a small mesh extrapolate to paper-size meshes).
    """

    iter_set: str
    direct_read: int = 0
    direct_write: int = 0
    indirect_read: int = 0
    indirect_write: int = 0
    unique_per_elem: Dict[str, float] = field(default_factory=dict)

    @property
    def per_element_values(self) -> int:
        return (
            self.direct_read
            + self.direct_write
            + self.indirect_read
            + self.indirect_write
        )

    def per_element_bytes(self, itemsize: int) -> int:
        return self.per_element_values * itemsize

    def flop_per_byte(self, flops: int, itemsize: int) -> float:
        b = self.per_element_bytes(itemsize)
        return flops / b if b else 0.0

    #: Per set name, total accessed dat values per target element (sum
    #: over distinct dats of dim * directions); caps the unique-touch
    #: extrapolation at the set's full extent.  Filled by analyze_loop.
    _set_caps: Dict[str, float] = field(default_factory=dict)

    def useful_bytes(
        self, n_elements: int, sizes: Dict[str, int], itemsize: int
    ) -> int:
        """Infinite-cache traffic for one loop execution.

        Each set's contribution is ``unique-values-per-iteration-element
        * n_elements``, capped at the set's full extent: a loop cannot
        usefully touch more distinct elements than the set has.
        """
        total = 0.0
        for set_name, per_elem in self.unique_per_elem.items():
            touched = per_elem * n_elements
            cap = self._set_caps.get(set_name, float("inf")) * sizes.get(
                set_name, float("inf")
            )
            total += min(touched, cap)
        return int(total * itemsize)


def analyze_loop(
    iter_set_name: str,
    args: Sequence[Arg],
    set_names: Dict[object, str],
    n_elements: int | None = None,
) -> LoopTransfer:
    """Build a :class:`LoopTransfer` from a loop's argument list.

    ``set_names`` maps :class:`~repro.core.set.Set` objects to canonical
    names ("cells", "nodes", ...).  ``n_elements`` defaults to the
    iteration set's size and is used to compute the unique-touch ratios
    from the actual map contents.
    """
    lt = LoopTransfer(iter_set=iter_set_name)

    # --- per-element counts (Tables II/III convention) -----------------
    for arg in args:
        if arg.is_global:
            continue  # globals are negligible traffic
        dim = arg.dat.dim
        slots = arg.map.arity if arg.is_vector else 1
        values = dim * slots
        reads = values if arg.access.reads else 0
        writes = values if arg.access.writes else 0
        if arg.is_direct:
            lt.direct_read += reads
            lt.direct_write += writes
        else:
            lt.indirect_read += reads
            lt.indirect_write += writes

    # --- unique-touch accounting (bandwidth convention) -----------------
    # Group by dat so one dat read through two slots counts once.
    by_dat: Dict[object, Dict[str, object]] = {}
    for arg in args:
        if arg.is_global:
            continue
        info = by_dat.setdefault(
            arg.dat, {"reads": False, "writes": False, "args": []}
        )
        info["reads"] = info["reads"] or arg.access.reads
        info["writes"] = info["writes"] or arg.access.writes
        info["args"].append(arg)

    iter_n = None
    for arg in args:
        if not arg.is_global and arg.is_direct:
            iter_n = arg.dat.set.size
            break
        if arg.is_indirect:
            iter_n = arg.map.from_set.size
            break
    if n_elements is None:
        n_elements = iter_n if iter_n is not None else 0

    caps: Dict[str, float] = {}
    for dat, info in by_dat.items():
        set_name = set_names.get(dat.set, dat.set.name)
        directions = (1 if info["reads"] else 0) + (1 if info["writes"] else 0)
        values_per_target = dat.dim * directions
        caps[set_name] = caps.get(set_name, 0.0) + values_per_target

        # Count distinct touched targets from the actual maps.
        maps_used = {
            (a.map) for a in info["args"] if a.is_indirect
        }
        if not maps_used:
            touched = n_elements  # direct: the iteration elements
        else:
            cols = []
            for m in maps_used:
                cols.append(m.values[:n_elements].reshape(-1))
            touched = np.unique(np.concatenate(cols)).size if n_elements else 0
        ratio = (touched / n_elements) if n_elements else 0.0
        lt.unique_per_elem[set_name] = (
            lt.unique_per_elem.get(set_name, 0.0)
            + ratio * values_per_target
        )
    lt._set_caps = caps
    return lt


def classify_loop(args: Sequence[Arg]) -> str:
    """Kernel class for the performance model.

    ``direct``  — no indirection at all;
    ``gather``  — indirect reads only (no races);
    ``scatter`` — indirect increments/writes (needs coloring).
    """
    has_indirect = any(a.is_indirect for a in args)
    has_race = any(a.races for a in args)
    if has_race:
        return "scatter"
    if has_indirect:
        return "gather"
    return "direct"


def indirect_inc_values(args: Sequence[Arg]) -> int:
    """Values scattered per element with serialization (INC args)."""
    total = 0
    for a in args:
        if a.is_indirect and a.access is Access.INC:
            slots = a.map.arity if a.is_vector else 1
            total += a.dat.dim * slots
    return total
