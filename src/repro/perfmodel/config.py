"""Execution configurations the paper benchmarks (Sections 5-6).

An :class:`ExecConfig` names one column of the paper's comparison space:
which parallel layer (MPI / MPI+OpenMP / OpenCL / CUDA), which
vectorization strategy (none / compiler auto / explicit intrinsics /
OpenCL implicit), and which race-handling scheme (two-level coloring or
the permute variants of Fig 8a).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExecConfig:
    """One benchmarked execution strategy."""

    key: str
    label: str
    parallel: str       # "mpi" | "mpi+openmp" | "opencl" | "cuda"
    vectorized: str     # "none" | "auto" | "intrinsics" | "implicit"
    scheme: str = "two_level"

    @property
    def uses_openmp(self) -> bool:
        return self.parallel == "mpi+openmp"

    @property
    def uses_mpi(self) -> bool:
        return self.parallel in ("mpi", "mpi+openmp")


# The named configurations of Figures 5-7.
SCALAR_MPI = ExecConfig("scalar_mpi", "Scalar MPI", "mpi", "none")
SCALAR_OPENMP = ExecConfig(
    "scalar_openmp", "Scalar MPI+OpenMP", "mpi+openmp", "none"
)
AUTOVEC_OPENMP = ExecConfig(
    "autovec_openmp", "Auto-vectorized MPI+OpenMP", "mpi+openmp", "auto",
    scheme="block_permute",
)
VEC_MPI = ExecConfig("vec_mpi", "Vectorized MPI", "mpi", "intrinsics")
VEC_OPENMP = ExecConfig(
    "vec_openmp", "Vectorized MPI+OpenMP", "mpi+openmp", "intrinsics"
)
OPENCL = ExecConfig("opencl", "OpenCL", "opencl", "implicit")
CUDA = ExecConfig("cuda", "CUDA", "cuda", "intrinsics")

# Fig 8a coloring-scheme ablation (vectorized execution).
VEC_FULL_PERMUTE = ExecConfig(
    "vec_full_permute", "Vectorized (full permute)", "mpi+openmp",
    "intrinsics", scheme="full_permute",
)
VEC_BLOCK_PERMUTE = ExecConfig(
    "vec_block_permute", "Vectorized (block permute)", "mpi+openmp",
    "intrinsics", scheme="block_permute",
)
CUDA_FULL_PERMUTE = ExecConfig(
    "cuda_full_permute", "CUDA (full permute)", "cuda", "intrinsics",
    scheme="full_permute",
)
CUDA_BLOCK_PERMUTE = ExecConfig(
    "cuda_block_permute", "CUDA (block permute)", "cuda", "intrinsics",
    scheme="block_permute",
)

ALL_CONFIGS = {
    c.key: c
    for c in (
        SCALAR_MPI, SCALAR_OPENMP, AUTOVEC_OPENMP, VEC_MPI, VEC_OPENMP,
        OPENCL, CUDA, VEC_FULL_PERMUTE, VEC_BLOCK_PERMUTE,
        CUDA_FULL_PERMUTE, CUDA_BLOCK_PERMUTE,
    )
}
