"""Calibrated analytical performance model (substitute for 2013 silicon).

Reconstructs the paper's evaluation hardware behaviour: machine specs
(Table I), loop transfer analysis (Tables II/III), and a roofline-style
predictor with gather/scatter, serialization, vectorization and
scheduling terms, calibrated against the paper's own per-kernel
breakdowns.  See DESIGN.md section 3 for the substitution rationale.
"""

from .calibration import (
    CALIBRATION,
    ArchCalibration,
    fit_calibration_from_profile,
)
from .config import (
    ALL_CONFIGS,
    AUTOVEC_OPENMP,
    CUDA,
    CUDA_BLOCK_PERMUTE,
    CUDA_FULL_PERMUTE,
    OPENCL,
    SCALAR_MPI,
    SCALAR_OPENMP,
    VEC_BLOCK_PERMUTE,
    VEC_FULL_PERMUTE,
    VEC_MPI,
    VEC_OPENMP,
    ExecConfig,
)
from .machine import MACHINES, MachineSpec, table1_rows
from .roofline import AppPrediction, KernelPrediction, predict_app, predict_kernel
from .transfers import LoopTransfer, analyze_loop, classify_loop, indirect_inc_values
from .workloads import (
    AIRFOIL_SIZES_LARGE,
    AIRFOIL_SIZES_SMALL,
    VOLNA_SIZES,
    AppWorkload,
    KernelProfile,
    airfoil_workload,
    volna_workload,
)

__all__ = [
    "AIRFOIL_SIZES_LARGE",
    "AIRFOIL_SIZES_SMALL",
    "ALL_CONFIGS",
    "AUTOVEC_OPENMP",
    "AppPrediction",
    "AppWorkload",
    "ArchCalibration",
    "CALIBRATION",
    "CUDA",
    "CUDA_BLOCK_PERMUTE",
    "CUDA_FULL_PERMUTE",
    "ExecConfig",
    "KernelPrediction",
    "KernelProfile",
    "LoopTransfer",
    "MACHINES",
    "MachineSpec",
    "OPENCL",
    "SCALAR_MPI",
    "SCALAR_OPENMP",
    "VEC_BLOCK_PERMUTE",
    "VEC_FULL_PERMUTE",
    "VEC_MPI",
    "VEC_OPENMP",
    "VOLNA_SIZES",
    "airfoil_workload",
    "analyze_loop",
    "classify_loop",
    "fit_calibration_from_profile",
    "indirect_inc_values",
    "predict_app",
    "predict_kernel",
    "table1_rows",
    "volna_workload",
]
