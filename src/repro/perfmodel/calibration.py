"""Per-architecture calibration of the analytical performance model.

Every constant here is a *fraction of a measured hardware ceiling* (the
STREAM bandwidth or GEMM throughput of Table I) or a cycle cost, fitted
once against the paper's own per-kernel breakdowns (Tables V, VII, VIII
— see EXPERIMENTS.md for the fit quality).  The fractions encode the
paper's qualitative findings:

* direct streams run near STREAM speed everywhere (CPUs 70-90%, Phi
  60-75% scalar, GPU 80-95% — Section 6.6);
* indirect (gather) traffic halves CPU efficiency, and collapses on the
  in-order Phi cores unless vectorized gathers are used;
* colored scatters (indirect INC) are the slowest class, hurt further by
  the loss of inter-block reuse;
* scalar transcendental throughput is poor (the paper quotes 1 sqrt per
  44 cycles) and improves with vector width;
* the auto-vectorized permute schemes trade serialization for extra
  gathers and lost temporal locality — a net loss on scatter kernels
  (Fig 8a / Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class ArchCalibration:
    """Model constants for one architecture class."""

    # Fraction of STREAM bandwidth achieved per kernel class, scalar
    # execution and explicitly vectorized execution.
    mem_eff_scalar: Dict[str, float] = field(default_factory=dict)
    mem_eff_vec: Dict[str, float] = field(default_factory=dict)
    # Auto-vectorized (permute-ordered) execution: the compiler
    # vectorizes, but direct data must now be gathered and reuse is lost.
    mem_eff_auto: Dict[str, float] = field(default_factory=dict)

    # Cycles per useful FLOP for scalar code (non-FMA, address arith...).
    cycles_per_flop_scalar: float = 1.0
    # Vectorized compute: fraction of the machine's GEMM throughput an
    # irregular kernel sustains.
    vec_compute_eff: float = 0.55
    # Scalar transcendental cost (cycles per op, DP; SP is ~25% cheaper).
    transc_cycles_scalar: float = 12.0
    # Vectorized transcendental speedup factor (per element).
    transc_vec_speedup: float = 4.0

    # Serialized-scatter cost: cycles per scattered value under the
    # two-level scheme (the sequential store out of a vector register).
    scatter_cycles: float = 3.0

    # Per-parallel-loop scheduling overhead, seconds (OpenMP fork/join +
    # plan bookkeeping; OpenCL enqueue is modelled separately).
    openmp_loop_overhead_s: float = 20e-6
    # Extra loss of inter-block reuse under colored OpenMP execution.
    openmp_reuse_penalty: float = 0.90

    # OpenCL: per-work-group scheduling cost (TBB task each, Section 4.1)
    # and the quality of implicit vectorization relative to intrinsics
    # (0 = scalar speed, 1 = intrinsics speed).
    opencl_block_overhead_s: float = 0.4e-6
    opencl_vec_quality: float = 0.5

    # MPI wait fraction of total runtime (imbalance + synchronization,
    # Section 6.5), for the large and small problem variants.
    mpi_wait_large: float = 0.04
    mpi_wait_small: float = 0.07
    # Extra messaging penalty for pure MPI at very high rank counts
    # (Phi: >120 processes, Section 6.5).
    pure_mpi_penalty: float = 0.0

    # Fig 8a scheme multipliers on scatter-kernel memory efficiency.
    scheme_eff: Dict[str, float] = field(
        default_factory=lambda: {"two_level": 1.0, "full_permute": 1.0,
                                 "block_permute": 1.0}
    )


CALIBRATION: Dict[str, ArchCalibration] = {
    # ------------------------------------------------------------------
    # Sandy Bridge / Ivy Bridge Xeons.  Fit: Tables V & VII, CPU 1+2.
    # ------------------------------------------------------------------
    "cpu": ArchCalibration(
        mem_eff_scalar={"direct": 0.78, "gather": 0.45, "scatter": 0.40},
        mem_eff_vec={"direct": 0.78, "gather": 0.47, "scatter": 0.52},
        mem_eff_auto={"direct": 0.70, "gather": 0.35, "scatter": 0.25},
        cycles_per_flop_scalar=0.8,
        vec_compute_eff=0.55,
        transc_cycles_scalar=12.0,
        transc_vec_speedup=4.0,
        scatter_cycles=3.0,
        openmp_loop_overhead_s=25e-6,
        openmp_reuse_penalty=0.90,
        opencl_block_overhead_s=0.5e-6,
        opencl_vec_quality=0.35,
        mpi_wait_large=0.04,
        mpi_wait_small=0.07,
        scheme_eff={"two_level": 1.0, "full_permute": 0.72,
                    "block_permute": 0.80},
    ),
    # ------------------------------------------------------------------
    # Xeon Phi 5110P (in-order cores, IMCI).  Fit: Table VIII.
    # ------------------------------------------------------------------
    "phi": ArchCalibration(
        mem_eff_scalar={"direct": 0.48, "gather": 0.075, "scatter": 0.085},
        mem_eff_vec={"direct": 0.58, "gather": 0.21, "scatter": 0.16},
        mem_eff_auto={"direct": 0.50, "gather": 0.14, "scatter": 0.045},
        cycles_per_flop_scalar=2.0,
        vec_compute_eff=0.35,
        transc_cycles_scalar=20.0,
        transc_vec_speedup=8.0,
        scatter_cycles=4.0,
        openmp_loop_overhead_s=60e-6,
        openmp_reuse_penalty=0.95,
        opencl_block_overhead_s=1.0e-6,
        opencl_vec_quality=0.55,
        mpi_wait_large=0.13,
        mpi_wait_small=0.30,
        pure_mpi_penalty=0.10,
        scheme_eff={"two_level": 1.0, "full_permute": 0.60,
                    "block_permute": 0.78},
    ),
    # ------------------------------------------------------------------
    # Tesla K40 (CUDA, SoA, two-level coloring).  Fit: Table V CUDA col.
    # ------------------------------------------------------------------
    "gpu": ArchCalibration(
        mem_eff_scalar={"direct": 0.93, "gather": 0.46, "scatter": 0.26},
        mem_eff_vec={"direct": 0.93, "gather": 0.46, "scatter": 0.26},
        mem_eff_auto={"direct": 0.90, "gather": 0.40, "scatter": 0.20},
        cycles_per_flop_scalar=1.0,
        vec_compute_eff=0.45,
        transc_cycles_scalar=2.0,     # SFUs make transcendentals cheap
        transc_vec_speedup=1.0,
        scatter_cycles=0.0,           # serialization folded into mem_eff
        openmp_loop_overhead_s=8e-6,  # kernel launch latency
        openmp_reuse_penalty=1.0,
        opencl_block_overhead_s=0.0,
        opencl_vec_quality=0.8,
        mpi_wait_large=0.02,
        mpi_wait_small=0.03,
        # Fig 8a: on the K40's tiny cache, full permute (simple, no
        # reuse anyway) beats block permute; both lose to the original.
        scheme_eff={"two_level": 1.0, "full_permute": 0.80,
                    "block_permute": 0.62},
    ),
}


def fit_calibration_from_profile(
    profile: Dict,
    peak_gbs: Optional[float] = None,
    base: str = "cpu",
) -> ArchCalibration:
    """Calibration fitted from *measured* per-loop profiles.

    The tables above are fitted against the paper's 2013 hardware; this
    closes the loop against the machine actually running: ``profile``
    is a ``Runtime.stats()["profile"]`` snapshot (``repro/tune``),
    whose per-loop entries carry measured seconds and estimated useful
    bytes per kernel class.  Achieved useful bandwidth per class,
    divided by the machine's streaming peak, replaces the synthetic
    ``mem_eff_vec`` fractions; the scalar fractions are rescaled by the
    same per-class ratio so the class structure (direct > gather >
    scatter) survives the refit.

    ``peak_gbs`` defaults to back-solving the peak from the best
    observed class under the base table's efficiency for it (no STREAM
    run required).  Classes the profile never exercised keep the base
    table's fractions; an empty profile returns the base calibration
    unchanged.
    """
    base_cal = CALIBRATION[base]
    sums: Dict[str, list] = {}
    for info in (profile.get("loops") or {}).values():
        kind = info.get("kind")
        secs = float(info.get("seconds") or 0.0)
        bts = float(info.get("est_bytes") or 0.0)
        if kind in ("direct", "gather", "scatter") and secs > 0 and bts > 0:
            acc = sums.setdefault(kind, [0.0, 0.0])
            acc[0] += bts
            acc[1] += secs
    achieved = {k: (b / s) / 1e9 for k, (b, s) in sums.items()}
    if not achieved:
        return base_cal
    if peak_gbs is None:
        peak_gbs = max(
            gbs / base_cal.mem_eff_vec.get(kind, 0.5)
            for kind, gbs in achieved.items()
        )
    mem_eff_vec = dict(base_cal.mem_eff_vec)
    mem_eff_scalar = dict(base_cal.mem_eff_scalar)
    for kind, gbs in achieved.items():
        eff = min(0.99, max(0.01, gbs / peak_gbs))
        scale = eff / max(base_cal.mem_eff_vec.get(kind, eff), 1e-6)
        mem_eff_vec[kind] = eff
        mem_eff_scalar[kind] = min(
            0.99, max(0.01, base_cal.mem_eff_scalar.get(kind, eff) * scale)
        )
    return replace(
        base_cal, mem_eff_scalar=mem_eff_scalar, mem_eff_vec=mem_eff_vec
    )
