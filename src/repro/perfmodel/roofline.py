"""Roofline-style per-kernel time prediction.

For one (kernel, machine, configuration) triple the model computes three
candidate times and takes the binding one, plus scheduling overheads:

``T_mem``
    useful bytes (infinite-cache convention) over the achieved fraction
    of STREAM bandwidth for the kernel's access class;
``T_comp``
    arithmetic cycles — scalar code pays ``cycles_per_flop`` per FLOP on
    one lane, vectorized code sustains a fraction of GEMM throughput;
    transcendentals carry their own (large) scalar cycle cost;
``T_scatter``
    the serialized colored scatter of indirect increments (two-level
    scheme only — the permute schemes trade it for worse memory
    behaviour via the Fig 8a efficiency multipliers).

Predictions are deliberately *explanatory*: each carries its binding
bottleneck ("bandwidth" / "compute" / "scatter"), which is how the
paper's Section 6.6 classifies kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .calibration import CALIBRATION, ArchCalibration
from .config import ExecConfig
from .machine import MachineSpec
from .workloads import AppWorkload, KernelProfile

#: Kernels the Intel compiler auto-vectorized in the paper's *CPU* runs
#: (Section 5: "the single exception being adt_calc for OpenMP").
CPU_AUTOVEC_WHITELIST = frozenset({"adt_calc"})


@dataclass(frozen=True)
class KernelPrediction:
    """Modelled execution of one kernel over a whole application run."""

    name: str
    time_s: float              # total over all calls
    time_per_call_s: float
    bandwidth_gbs: float       # useful bytes / time
    gflops: float
    bound: str                 # "bandwidth" | "compute" | "scatter"
    vectorized: bool


@dataclass(frozen=True)
class AppPrediction:
    """Modelled execution of a full application run."""

    machine: str
    config: str
    kernels: Dict[str, KernelPrediction]
    mpi_wait_s: float
    total_s: float

    def kernel_time(self, name: str) -> float:
        return self.kernels[name].time_s


def _is_vectorized(profile: KernelProfile, cfg: ExecConfig,
                   machine: MachineSpec) -> bool:
    """Does this kernel execute vectorized under this configuration?"""
    if not profile.has_vector_form:
        return False
    if cfg.vectorized == "none":
        return False
    if cfg.vectorized == "intrinsics":
        return True
    if cfg.vectorized == "auto":
        # Phi's IMCI gathers let the compiler vectorize everything once a
        # permute scheme provides independence; AVX mostly refuses.
        if machine.arch == "phi":
            return True
        return profile.name in CPU_AUTOVEC_WHITELIST
    if cfg.vectorized == "implicit":  # OpenCL
        if machine.arch in ("phi", "gpu"):
            return True
        return profile.vectorizable_simt_cpu
    raise ValueError(f"Unknown vectorization mode {cfg.vectorized!r}")


def _mem_eff(cal: ArchCalibration, cfg: ExecConfig, kind: str,
             vectorized: bool, machine: MachineSpec) -> float:
    if cfg.vectorized == "auto" and machine.arch == "phi":
        table = cal.mem_eff_auto
    elif vectorized and cfg.vectorized != "none":
        table = cal.mem_eff_vec
    else:
        table = cal.mem_eff_scalar
    eff = table[kind]
    if kind == "scatter":
        eff *= cal.scheme_eff.get(cfg.scheme, 1.0)
    if cfg.uses_openmp and kind != "direct":
        eff *= cal.openmp_reuse_penalty
    if machine.arch == "cpu" and kind != "direct":
        # Section 6.6: CPU 2's doubled last-level cache makes it "much
        # more efficient on indirect kernels than one would expect from
        # the difference in available bandwidth".
        eff *= 1.0 + 0.35 * (machine.llc_mb / 30.0 - 1.0)
    return eff


def _component_times(
    profile: KernelProfile,
    machine: MachineSpec,
    cal,
    cfg: ExecConfig,
    sizes: Dict[str, int],
    dtype,
    vectorized: bool,
):
    """(t_mem, t_comp, t_scatter) per call for one execution mode."""
    itemsize = np.dtype(dtype).itemsize
    n = profile.n_elements(sizes)
    sp = np.dtype(dtype) == np.float32
    core_hz = machine.clock_ghz * 1e9

    # ---- memory --------------------------------------------------------
    useful = profile.transfer.useful_bytes(n, sizes, itemsize)
    eff = _mem_eff(cal, cfg, profile.kind, vectorized, machine)
    t_mem = useful / (machine.stream_gbs * 1e9 * eff)

    # ---- compute --------------------------------------------------------
    if vectorized:
        flop_rate = machine.gemm_gflops(dtype) * 1e9 * cal.vec_compute_eff
        transc_cycles = (
            cal.transc_cycles_scalar * (0.75 if sp else 1.0)
            / cal.transc_vec_speedup
        )
    elif machine.arch == "gpu":
        # CUDA is always warp-wide; there is no scalar GPU mode.
        flop_rate = machine.gemm_gflops(dtype) * 1e9 * cal.vec_compute_eff
        transc_cycles = cal.transc_cycles_scalar
    else:
        # Scalar: one op per cycles_per_flop per core, no FMA/SIMD credit.
        flop_rate = core_hz * machine.cores / cal.cycles_per_flop_scalar
        transc_cycles = cal.transc_cycles_scalar * (0.75 if sp else 1.0)
    t_flops = n * profile.flops / flop_rate
    if machine.arch == "gpu":
        transc_rate = machine.peak_gflops(dtype) * 1e9 / 8.0
        t_transc = (
            n * profile.transcendentals * cal.transc_cycles_scalar / transc_rate
        )
    else:
        t_transc = (
            n * profile.transcendentals * transc_cycles
            / (core_hz * machine.cores)
        )
    t_comp = t_flops + t_transc

    # ---- serialized scatter (two-level only) ----------------------------
    t_scatter = 0.0
    if (
        vectorized
        and profile.kind == "scatter"
        and cfg.scheme == "two_level"
        and machine.arch != "gpu"
        and profile.inc_values
    ):
        # The sequential store out of the vector register; scalar code
        # already serializes everything, so only vector execution pays.
        t_scatter = (
            n * profile.inc_values * cal.scatter_cycles
            / (core_hz * machine.cores)
        )
    return t_mem, t_comp, t_scatter, useful


def predict_kernel(
    profile: KernelProfile,
    machine: MachineSpec,
    cfg: ExecConfig,
    sizes: Dict[str, int],
    dtype=np.float64,
    n_iters: int = 1000,
    block_size: int = 256,
) -> KernelPrediction:
    """Predict one kernel's aggregate time over a full run."""
    cal = CALIBRATION[machine.arch]
    n = profile.n_elements(sizes)
    calls = profile.calls_per_iter * n_iters
    vectorized = _is_vectorized(profile, cfg, machine)

    t_mem, t_comp, t_scatter, useful = _component_times(
        profile, machine, cal, cfg, sizes, dtype, vectorized
    )
    if cfg.vectorized == "implicit" and vectorized and machine.arch != "gpu":
        # OpenCL's implicit vectorization reaches only a fraction of
        # intrinsics quality (Section 6.3): blend scalar and vector
        # component times.  Scatter kernels get no credit — their
        # colored increments serialize in the OpenCL code path too.
        q = 0.0 if profile.kind == "scatter" else cal.opencl_vec_quality
        s_mem, s_comp, s_scatter, _ = _component_times(
            profile, machine, cal, cfg, sizes, dtype, False
        )
        t_mem = s_mem + q * (t_mem - s_mem)
        t_comp = s_comp + q * (t_comp - s_comp)
        t_scatter = s_scatter + q * (t_scatter - s_scatter)

    t_kernel = max(t_mem, t_comp, t_scatter)
    bound = (
        "bandwidth"
        if t_kernel == t_mem
        else ("compute" if t_kernel == t_comp else "scatter")
    )

    # ---- per-call scheduling overheads ----------------------------------
    overhead = 0.0
    if cfg.parallel == "opencl":
        # Work-groups are scheduled as TBB tasks spread over the cores.
        nblocks = max(1, n // block_size)
        overhead = nblocks * cal.opencl_block_overhead_s / machine.cores
        overhead += cal.openmp_loop_overhead_s
    elif cfg.uses_openmp:
        overhead = cal.openmp_loop_overhead_s
    elif cfg.parallel == "cuda":
        overhead = cal.openmp_loop_overhead_s  # launch latency

    t_call = t_kernel + overhead
    total = t_call * calls
    return KernelPrediction(
        name=profile.name,
        time_s=total,
        time_per_call_s=t_call,
        bandwidth_gbs=useful / t_call / 1e9,
        gflops=n * profile.flops / t_call / 1e9,
        bound=bound,
        vectorized=vectorized,
    )


def predict_app(
    workload: AppWorkload,
    machine: MachineSpec,
    cfg: ExecConfig,
    dtype=np.float64,
    block_size: int = 256,
    small_problem: Optional[bool] = None,
) -> AppPrediction:
    """Predict a full application run (all kernels + MPI waits)."""
    cal = CALIBRATION[machine.arch]
    kernels = {}
    for profile in workload.profiles:
        kernels[profile.name] = predict_kernel(
            profile, machine, cfg, workload.sizes, dtype,
            workload.n_iters, block_size,
        )
    compute_total = sum(k.time_s for k in kernels.values())

    mpi_wait = 0.0
    if cfg.uses_mpi:
        if small_problem is None:
            small_problem = workload.sizes.get("cells", 0) < 1_000_000
        frac = cal.mpi_wait_small if small_problem else cal.mpi_wait_large
        if cfg.parallel == "mpi" and machine.arch == "phi":
            frac += cal.pure_mpi_penalty
        mpi_wait = compute_total * frac / (1.0 - frac)

    return AppPrediction(
        machine=machine.name,
        config=cfg.key,
        kernels=kernels,
        mpi_wait_s=mpi_wait,
        total_s=compute_total + mpi_wait,
    )
