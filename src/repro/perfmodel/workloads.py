"""Paper-scale workload descriptors for Airfoil and Volna.

A workload bundles everything the performance model needs per kernel:
arithmetic intensity (from kernel metadata), transfer profile (analyzed
from the real loop argument lists on a small generated mesh — the ratios
are scale-invariant for a mesh family), iteration counts, and the
paper-scale set sizes from Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..apps.airfoil import AirfoilSim
from ..apps.volna import VolnaSim
from ..mesh import make_airfoil_mesh, make_tri_mesh
from .transfers import LoopTransfer, analyze_loop, classify_loop, indirect_inc_values


@dataclass
class KernelProfile:
    """Everything the model needs about one kernel of one application."""

    name: str
    iter_set: str
    kind: str                    # direct | gather | scatter
    flops: int
    transcendentals: int
    inc_values: int              # serialized scatter volume per element
    calls_per_iter: int
    transfer: LoopTransfer
    has_vector_form: bool
    vectorizable_simt_cpu: bool
    has_reduction: bool

    def n_elements(self, sizes: Dict[str, int]) -> int:
        return sizes[self.iter_set]


@dataclass
class AppWorkload:
    """One application at paper scale."""

    name: str
    sizes: Dict[str, int]        # paper Table IV set sizes
    n_iters: int
    profiles: List[KernelProfile]

    def profile(self, kernel_name: str) -> KernelProfile:
        for p in self.profiles:
            if p.name == kernel_name:
                return p
        raise KeyError(f"No kernel {kernel_name!r} in workload {self.name}")

    def kernel_names(self) -> List[str]:
        return [p.name for p in self.profiles]


# ----------------------------------------------------------------------
# Airfoil
# ----------------------------------------------------------------------
#: Paper Table IV set sizes for the two Airfoil meshes.
AIRFOIL_SIZES_SMALL = {
    "cells": 720_000, "nodes": 721_801, "edges": 1_438_600, "bedges": 2_400,
}
AIRFOIL_SIZES_LARGE = {
    "cells": 2_880_000, "nodes": 2_883_601, "edges": 5_757_200,
    "bedges": 4_800,
}
#: Volna's single mesh (boundary edge count estimated from the perimeter).
VOLNA_SIZES = {
    "cells": 2_392_352, "nodes": 1_197_384, "edges": 3_589_735,
    "bedges": 4_420,
}

#: Kernel invocations per outer iteration (save once, two RK sweeps).
AIRFOIL_CALLS = {
    "save_soln": 1, "adt_calc": 2, "res_calc": 2, "bres_calc": 2,
    "update": 2,
}
#: Volna: flux pipeline twice per SSP-RK2 step, RK/sim kernels once.
VOLNA_CALLS = {
    "compute_flux": 2, "numerical_flux": 2, "space_disc": 2,
    "RK_1": 1, "RK_2": 1, "sim_1": 1,
}


def _profiles_from_sim(sim, set_names, calls, loop_args) -> List[KernelProfile]:
    profiles = []
    for name, calls_per_iter in calls.items():
        set_, *args = loop_args[name]
        kern = sim.kernels[name]
        lt = analyze_loop(set_names[set_], args, set_names)
        profiles.append(
            KernelProfile(
                name=name,
                iter_set=set_names[set_],
                kind=classify_loop(args),
                flops=kern.info.flops,
                transcendentals=kern.info.transcendentals,
                inc_values=indirect_inc_values(args),
                calls_per_iter=calls_per_iter,
                transfer=lt,
                has_vector_form=kern.has_vector_form,
                vectorizable_simt_cpu=kern.vectorizable_simt,
                has_reduction=any(
                    a.is_global and a.access.is_reduction for a in args
                ),
            )
        )
    return profiles


def airfoil_workload(
    mesh_size: str = "large", n_iters: int = 1000
) -> AppWorkload:
    """Airfoil at paper scale (Table IV sizes, 1000 iterations)."""
    mesh = make_airfoil_mesh(32, 16)  # analysis mesh; ratios scale
    sim = AirfoilSim(mesh)
    set_names = {
        mesh.nodes: "nodes", mesh.cells: "cells",
        mesh.edges: "edges", mesh.bedges: "bedges",
    }
    profiles = _profiles_from_sim(
        sim, set_names, AIRFOIL_CALLS, sim._loop_args()
    )
    sizes = (
        AIRFOIL_SIZES_LARGE if mesh_size == "large" else AIRFOIL_SIZES_SMALL
    )
    return AppWorkload(
        name=f"airfoil-{mesh_size}", sizes=dict(sizes),
        n_iters=n_iters, profiles=profiles,
    )


def volna_workload(n_iters: int = 1000) -> AppWorkload:
    """Volna at paper scale (2.4M-cell coastal mesh)."""
    mesh = make_tri_mesh(24, 18, 100_000.0, 75_000.0)
    sim = VolnaSim(mesh, dtype=np.float32)
    set_names = {
        mesh.nodes: "nodes", mesh.cells: "cells",
        mesh.edges: "edges", mesh.bedges: "bedges",
    }
    profiles = _profiles_from_sim(
        sim, set_names, VOLNA_CALLS, sim._loop_args(sim.state.q)
    )
    return AppWorkload(
        name="volna", sizes=dict(VOLNA_SIZES), n_iters=n_iters,
        profiles=profiles,
    )
