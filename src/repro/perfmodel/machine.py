"""Benchmark machine specifications (paper Table I).

These numbers are transcribed from the paper: two dual-socket Xeons, the
Xeon Phi 5110P, and the Tesla K40, with both vendor peaks and measured
STREAM/GEMM results that the paper uses as practical ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass(frozen=True)
class MachineSpec:
    """One evaluation platform.

    Bandwidths are GB/s, compute GFLOP/s; ``stream_gbs``/``gemm_*`` are
    the measured practical peaks of Table I.
    """

    name: str
    arch: str                 # "cpu", "phi", "gpu"
    description: str
    clock_ghz: float
    cores: int
    llc_mb: float
    peak_bw_gbs: float
    stream_gbs: float
    peak_gflops_dp: float
    peak_gflops_sp: float
    gemm_gflops_dp: float
    gemm_gflops_sp: float
    #: SIMD lanes per core: DP/SP (warp width for the GPU).
    lanes_dp: int
    lanes_sp: int

    def lanes(self, dtype) -> int:
        return self.lanes_sp if np.dtype(dtype) == np.float32 else self.lanes_dp

    def peak_gflops(self, dtype) -> float:
        return (
            self.peak_gflops_sp
            if np.dtype(dtype) == np.float32
            else self.peak_gflops_dp
        )

    def gemm_gflops(self, dtype) -> float:
        return (
            self.gemm_gflops_sp
            if np.dtype(dtype) == np.float32
            else self.gemm_gflops_dp
        )

    @property
    def flop_per_byte_dp(self) -> float:
        """Machine balance (Table I row "FLOP/byte"): GEMM / STREAM."""
        return self.gemm_gflops_dp / self.stream_gbs

    @property
    def flop_per_byte_sp(self) -> float:
        return self.gemm_gflops_sp / self.stream_gbs


#: The four platforms of Table I, keyed as the paper names them.
MACHINES: Dict[str, MachineSpec] = {
    "CPU 1": MachineSpec(
        name="CPU 1",
        arch="cpu",
        description="2x Xeon E5-2640 (Sandy Bridge)",
        clock_ghz=2.4,
        cores=12,
        llc_mb=30.0,
        peak_bw_gbs=85.2,
        stream_gbs=66.8,
        peak_gflops_dp=240.0,
        peak_gflops_sp=480.0,
        gemm_gflops_dp=229.0,
        gemm_gflops_sp=433.0,
        lanes_dp=4,
        lanes_sp=8,
    ),
    "CPU 2": MachineSpec(
        name="CPU 2",
        arch="cpu",
        description="2x Xeon E5-2697 v2 (Ivy Bridge)",
        clock_ghz=2.7,
        cores=24,
        llc_mb=60.0,
        peak_bw_gbs=119.4,
        stream_gbs=98.76,
        peak_gflops_dp=518.0,
        peak_gflops_sp=1036.0,
        gemm_gflops_dp=510.0,
        gemm_gflops_sp=944.0,
        lanes_dp=4,
        lanes_sp=8,
    ),
    "Xeon Phi": MachineSpec(
        name="Xeon Phi",
        arch="phi",
        description="Xeon Phi 5110P (60 cores used)",
        clock_ghz=1.053,
        cores=60,
        llc_mb=30.0,
        peak_bw_gbs=320.0,
        stream_gbs=171.0,
        peak_gflops_dp=1010.0,
        peak_gflops_sp=2020.0,
        gemm_gflops_dp=833.0,
        gemm_gflops_sp=1729.0,
        lanes_dp=8,
        lanes_sp=16,
    ),
    "K40": MachineSpec(
        name="K40",
        arch="gpu",
        description="NVIDIA Tesla K40",
        clock_ghz=0.87,
        cores=2880,
        llc_mb=1.5,
        peak_bw_gbs=288.0,
        stream_gbs=244.0,
        peak_gflops_dp=1430.0,
        peak_gflops_sp=4290.0,
        gemm_gflops_dp=1420.0,
        gemm_gflops_sp=3730.0,
        lanes_dp=32,
        lanes_sp=32,
    ),
}


def table1_rows():
    """Table I as printable rows (benchmark harness hook)."""
    rows = []
    for spec in MACHINES.values():
        rows.append(
            {
                "System": spec.name,
                "Architecture": spec.description,
                "Clock (GHz)": spec.clock_ghz,
                "Cores": spec.cores,
                "LLC (MB)": spec.llc_mb,
                "Peak BW (GB/s)": spec.peak_bw_gbs,
                "Stream BW (GB/s)": spec.stream_gbs,
                "Peak GFLOPS DP(SP)": f"{spec.peak_gflops_dp:.0f}"
                f"({spec.peak_gflops_sp:.0f})",
                "GEMM GFLOPS DP(SP)": f"{spec.gemm_gflops_dp:.0f}"
                f"({spec.gemm_gflops_sp:.0f})",
                "FLOP/byte DP(SP)": f"{spec.flop_per_byte_dp:.2f}"
                f"({spec.flop_per_byte_sp:.2f})",
            }
        )
    return rows
