"""Elementary kernels — the "user code" of the OP2 abstraction.

The paper generates three incarnations of every user kernel from one
high-level source: the scalar C function, an intrinsics version operating
on vector registers, and an OpenCL version.  Here a :class:`Kernel`
carries the **scalar form only**; batched incarnations are *derived* from
it by the kernel compiler (:mod:`repro.kernelc`), which parses the scalar
source into a small IR and emits a batched NumPy kernel per
argument-shape signature:

``scalar``
    Per-element function; each Dat argument is a 1-D view of shape
    ``(dim,)`` (or ``(arity, dim)`` for vector arguments), each Global
    argument a 1-D accumulator.  Mutates in place.

``vector_for(args)``
    The batched form for one loop's argument shapes: each Dat argument
    becomes a 2-D array of shape ``(lanes, dim)`` (or ``(lanes, arity,
    dim)``), reduction Globals a ``(lanes, dim)`` per-lane accumulator
    folded by the backend, READ Globals broadcast constants.  Served
    from the per-shape compile cache; an explicitly attached ``vector``
    callable (tests, special cases) takes precedence over generation.
    Returns ``None`` when the scalar source cannot be vectorized (e.g.
    lane-dependent indexing — the case the paper's compiler
    auto-vectorizer gives up on), and the backends run scalar.

Kernels also carry the arithmetic metadata (FLOPs, transcendental counts)
that Tables II/III of the paper report and the performance model consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

_uid_counter = itertools.count()


@dataclass(frozen=True)
class KernelInfo:
    """Per-element arithmetic cost metadata (paper Tables II and III).

    ``flops`` counts useful floating point operations per set element,
    with transcendental operations (sin, cos, exp, sqrt) counted as one —
    exactly the accounting rule of Section 6.1.  ``transcendentals`` is
    broken out separately because the performance model weighs them by
    their (much larger) reciprocal throughput.
    """

    flops: int = 0
    transcendentals: int = 0
    description: str = ""


class Kernel:
    """A named elementary kernel defined by its scalar source.

    Parameters
    ----------
    name:
        Kernel identifier (used in plan caches, reports and tables).
    scalar:
        The per-element function — the *only* form applications write.
    vector:
        Optional hand-written batched function overriding the generated
        one (kept for tests and exotic kernels outside the IR subset);
        ``None`` (the default) derives the vector form from ``scalar``
        through :mod:`repro.kernelc`.
    info:
        Arithmetic metadata for the performance model.
    vectorizable_simt:
        Whether the SIMT (OpenCL-analogue) compiler would vectorize this
        kernel.  The paper's Table VI shows the Intel OpenCL compiler
        vectorizing a *different* subset of kernels on CPU vs Phi; this
        flag carries the CPU answer, the Phi compiler vectorizes anything
        with a vector form.
    """

    def __init__(
        self,
        name: str,
        scalar: Callable,
        vector: Optional[Callable] = None,
        info: Optional[KernelInfo] = None,
        vectorizable_simt: bool = True,
    ) -> None:
        if not callable(scalar):
            raise TypeError("Kernel scalar form must be callable")
        if vector is not None and not callable(vector):
            raise TypeError("Kernel vector form must be callable or None")
        self.name = name
        self.scalar = scalar
        self.vector = vector
        self.info = info if info is not None else KernelInfo()
        self.vectorizable_simt = bool(vectorizable_simt)
        #: Stable identity for the per-shape compile cache.
        self._uid = next(_uid_counter)

    @property
    def has_vector_form(self) -> bool:
        """Whether *some* batched form exists: an explicit override, or a
        derivable one (the scalar source parses into the kernel IR)."""
        if self.vector is not None:
            return True
        from ..kernelc import vectorizable

        return vectorizable(self)

    def vector_for(self, args: Sequence) -> Optional[Callable]:
        """The batched form for one loop's argument shapes, or ``None``.

        An explicitly attached ``vector`` callable wins; otherwise the
        kernel compiler's per-shape cache answers (compiling on first
        sight, remembering failures).
        """
        if self.vector is not None:
            return self.vector
        from ..kernelc import vector_kernel_for

        return vector_kernel_for(self, args)

    def __call__(self, *args) -> None:
        """Calling the kernel directly invokes the scalar form."""
        self.scalar(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        forms = "scalar+vector" if self.has_vector_form else "scalar"
        return f"Kernel({self.name!r}, {forms}, flops={self.info.flops})"


def kernel(
    name: str,
    *,
    flops: int = 0,
    transcendentals: int = 0,
    description: str = "",
    vectorizable_simt: bool = True,
):
    """Decorator form: wrap a scalar function as a :class:`Kernel`.

    The batched form is derived automatically; a hand-written override
    can still be attached through the returned object's ``vectorized``
    decorator (used by tests pinning exact batched semantics)::

        @kernel("axpy", flops=2)
        def axpy(x, y):
            y[0] += 2.0 * x[0]

        @axpy.vectorized  # optional — axpy vectorizes by itself
        def axpy_vec(x, y):
            y[:, 0] += 2.0 * x[:, 0]
    """

    def wrap(fn: Callable) -> Kernel:
        k = Kernel(
            name,
            fn,
            info=KernelInfo(flops, transcendentals, description),
            vectorizable_simt=vectorizable_simt,
        )

        def vectorized(vfn: Callable) -> Callable:
            k.vector = vfn
            return vfn

        k.vectorized = vectorized  # type: ignore[attr-defined]
        return k

    return wrap
