"""Elementary kernels — the "user code" of the OP2 abstraction.

The paper generates three incarnations of every user kernel: the scalar C
function, an intrinsics version operating on vector registers, and an
OpenCL version.  Here a :class:`Kernel` bundles:

``scalar``
    Per-element function; each Dat argument is a 1-D view of shape
    ``(dim,)`` (or ``(arity, dim)`` for vector arguments), each Global
    argument a 1-D accumulator.  Mutates in place.

``vector``
    Batched function; each Dat argument becomes a 2-D array of shape
    ``(lanes, dim)`` (or ``(lanes, arity, dim)``), each Global argument a
    ``(lanes, dim)`` per-lane accumulator folded by the backend afterwards.
    This is the Python analogue of the paper's ``res_calc_vec`` operating
    on ``F64vec4``/``F64vec8`` wrapper classes: branches must be rewritten
    with :func:`repro.simd.intrinsics.select`.

Kernels also carry the arithmetic metadata (FLOPs, transcendental counts)
that Tables II/III of the paper report and the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class KernelInfo:
    """Per-element arithmetic cost metadata (paper Tables II and III).

    ``flops`` counts useful floating point operations per set element,
    with transcendental operations (sin, cos, exp, sqrt) counted as one —
    exactly the accounting rule of Section 6.1.  ``transcendentals`` is
    broken out separately because the performance model weighs them by
    their (much larger) reciprocal throughput.
    """

    flops: int = 0
    transcendentals: int = 0
    description: str = ""


class Kernel:
    """A named elementary kernel with scalar and (optional) vector forms.

    Parameters
    ----------
    name:
        Kernel identifier (used in plan caches, reports and tables).
    scalar:
        The per-element function.
    vector:
        The batched/vectorized function, or ``None`` if the kernel cannot
        be vectorized (e.g. un-rewritten data-dependent branches — the
        situation the paper's compiler auto-vectorizer gives up on).
    info:
        Arithmetic metadata for the performance model.
    vectorizable_simt:
        Whether the SIMT (OpenCL-analogue) compiler would vectorize this
        kernel.  The paper's Table VI shows the Intel OpenCL compiler
        vectorizing a *different* subset of kernels on CPU vs Phi; this
        flag carries the CPU answer, the Phi compiler vectorizes anything
        with a vector form.
    """

    def __init__(
        self,
        name: str,
        scalar: Callable,
        vector: Optional[Callable] = None,
        info: Optional[KernelInfo] = None,
        vectorizable_simt: bool = True,
    ) -> None:
        if not callable(scalar):
            raise TypeError("Kernel scalar form must be callable")
        if vector is not None and not callable(vector):
            raise TypeError("Kernel vector form must be callable or None")
        self.name = name
        self.scalar = scalar
        self.vector = vector
        self.info = info if info is not None else KernelInfo()
        self.vectorizable_simt = bool(vectorizable_simt)

    @property
    def has_vector_form(self) -> bool:
        return self.vector is not None

    def __call__(self, *args) -> None:
        """Calling the kernel directly invokes the scalar form."""
        self.scalar(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        forms = "scalar+vector" if self.has_vector_form else "scalar"
        return f"Kernel({self.name!r}, {forms}, flops={self.info.flops})"


def kernel(
    name: str,
    *,
    flops: int = 0,
    transcendentals: int = 0,
    description: str = "",
    vectorizable_simt: bool = True,
):
    """Decorator form: wrap a scalar function as a :class:`Kernel`.

    The vector form can be attached later with :meth:`Kernel.vector` via
    the returned object's ``vectorized`` decorator::

        @kernel("axpy", flops=2)
        def axpy(x, y):
            y[0] += 2.0 * x[0]

        @axpy.vectorized
        def axpy_vec(x, y):
            y[:, 0] += 2.0 * x[:, 0]
    """

    def wrap(fn: Callable) -> Kernel:
        k = Kernel(
            name,
            fn,
            info=KernelInfo(flops, transcendentals, description),
            vectorizable_simt=vectorizable_simt,
        )

        def vectorized(vfn: Callable) -> Callable:
            k.vector = vfn
            return vfn

        k.vectorized = vectorized  # type: ignore[attr-defined]
        return k

    return wrap
