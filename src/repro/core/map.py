"""Connectivity between sets (OP2 ``op_map``).

A :class:`Map` stores, for each element of ``from_set``, ``arity`` indices
into ``to_set`` — e.g. ``edge2node`` with arity 2 or ``cell2node`` with
arity 4 on a quad mesh.  Maps drive every indirect access in a parallel
loop, and therefore also drive conflict-graph construction for coloring.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from .set import Set

_map_counter = itertools.count()


class Map:
    """A fixed-arity mapping from one set to another.

    Parameters
    ----------
    from_set, to_set:
        Source and target :class:`~repro.core.set.Set`.
    arity:
        Number of target indices per source element.
    values:
        Integer array of shape ``(from_set.total_size, arity)`` (a flat
        array of the right length is also accepted and reshaped).
    name:
        Identifier used in plan cache keys and reports.
    """

    def __init__(
        self,
        from_set: Set,
        to_set: Set,
        arity: int,
        values: np.ndarray,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(from_set, Set) or not isinstance(to_set, Set):
            raise TypeError("from_set and to_set must be Set instances")
        if arity < 1:
            raise ValueError(f"Map arity must be >= 1, got {arity}")
        self.from_set = from_set
        self.to_set = to_set
        self.arity = int(arity)
        self.name = name if name is not None else f"map_{next(_map_counter)}"
        self._uid = next(_map_counter)

        values = np.asarray(values, dtype=np.int64)
        expected = from_set.total_size * arity
        if values.size != expected:
            raise ValueError(
                f"Map {self.name!r} expects {expected} entries "
                f"({from_set.total_size} x {arity}), got {values.size}"
            )
        self.values = np.ascontiguousarray(values.reshape(from_set.total_size, arity))
        if self.values.size:
            lo = int(self.values.min())
            hi = int(self.values.max())
            if lo < 0 or hi >= to_set.total_size + getattr(to_set, "nonexec_size", 0):
                # Allow indices into the non-exec halo region of the target
                # set (imported read-only elements in the MPI substrate).
                if lo < 0 or hi >= _target_extent(to_set):
                    raise ValueError(
                        f"Map {self.name!r} indices [{lo}, {hi}] out of range "
                        f"for target set of extent {_target_extent(to_set)}"
                    )

    # ------------------------------------------------------------------
    def column(self, index: int) -> np.ndarray:
        """Indices for one map slot, shape ``(from_set.total_size,)``."""
        if not (0 <= index < self.arity):
            raise IndexError(f"Map slot {index} out of range for arity {self.arity}")
        return self.values[:, index]

    def __getitem__(self, element: int) -> np.ndarray:
        """Target indices of a single source element."""
        return self.values[element]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Map({self.name!r}, {self.from_set.name} -> {self.to_set.name}, "
            f"arity={self.arity})"
        )

    def __hash__(self) -> int:
        return hash(("Map", self._uid))

    def __eq__(self, other: object) -> bool:
        return self is other


def _target_extent(to_set: Set) -> int:
    """Total addressable extent of a map's target set.

    Includes owned elements, the redundantly-executed halo and, when the
    set carries one, the read-only non-exec halo appended by the MPI
    decomposition.
    """
    return to_set.total_size + int(getattr(to_set, "nonexec_size", 0))


def identity_map(s: Set, name: Optional[str] = None) -> Map:
    """A 1-ary map from a set onto itself (useful in tests)."""
    return Map(s, s, 1, np.arange(s.total_size, dtype=np.int64), name=name)
