"""Execution plans — OP2's ``op_plan`` analogue.

A :class:`Plan` captures everything a backend needs to execute a parallel
loop free of data races: the mini-partition (block) layout, the block
coloring (first level), the within-block element coloring (second level),
and — for the alternative schemes of Section 4 — the full-permute or
block-permute orderings.  Plans are expensive (graph coloring over the
whole mesh) and depend only on the loop's *access structure*, not on the
data values, so they are cached and reused across time steps exactly as
OP2 does; the plan-cache ablation bench quantifies the saving.

Batched schedules and the gather-index cache
--------------------------------------------
On top of the raw coloring, a plan can serve :meth:`Plan.phases`: the
loop's iteration range regrouped into **conflict-free color phases**,
each a single flat element array that a batched backend executes in one
fused gather → vector-kernel → scatter call (the whole-color fast path
of :class:`~repro.backends.vectorized.VectorizedBackend`).  Each
:class:`Phase` memoizes the per-``(map, slot)`` gather/scatter index
arrays on first use — ``map.values[elems]`` fancy-indexing is pure
overhead to repeat every time step, since neither the plan nor the maps
change between invocations.  Phases (and with them the index arrays) are
cached on the plan keyed by ``(n, start)``, and plans themselves are
cached by loop structure (:class:`PlanCache`), so steady-state
``par_loop`` calls re-derive nothing.

The serialize-vs-colored scatter rule
-------------------------------------
A phase carries ``serialize``: ``True`` means lanes inside the phase may
share an indirect target and INC scatters must apply lanes in element
order (``np.add.at`` — correct and deterministic, but serial per
element).  ``False`` means the coloring guarantees all lane targets are
distinct and the scatter can be one fused array operation.  Under
``two_level`` only whole *block colors* are race-free across blocks —
elements inside a block may still collide, so phases serialize; under
``full_permute``/``block_permute`` every phase is a same-color group and
scatters free.  Backends must never use a free scatter on a
``serialize=True`` phase for INC arguments; WRITE/RW races are excluded
from batching altogether (the planner cannot order them safely).

``docs/architecture.md`` (sections 3–4) covers the plan/schedule design
and its cache levels end to end.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..coloring import (
    BlockLayout,
    BlockPermutation,
    Permutation,
    block_permute,
    color_blocks,
    conflict_targets,
    element_colors_by_block,
    full_permute,
    make_blocks,
)
from .access import Arg, IDX_ALL
from .set import Set

#: Default mini-partition size — OP2's default; Fig 8b sweeps this knob.
DEFAULT_BLOCK_SIZE = 256

#: Supported execution orderings (paper Section 4).
SCHEMES = ("two_level", "full_permute", "block_permute")


def is_contiguous_range(elems: np.ndarray) -> bool:
    """True when ``elems`` is a non-empty ascending unit-stride range.

    Shared by phase construction and the batched gather so both agree on
    when a direct argument may pass a zero-copy contiguous view.
    """
    return bool(
        elems.size
        and elems[0] + elems.size - 1 == elems[-1]
        and np.all(np.diff(elems) == 1)
    )


class Phase:
    """One conflict-free batch of a plan's iteration range.

    ``elems`` is the flat element array the batched backends execute in a
    single fused call; ``serialize`` records whether lanes may share an
    indirect target (see the module docstring's scatter rule).  Gather
    index arrays are memoized per ``(map uid, slot)`` so every loop that
    shares the plan — and every subsequent time step — reuses them.
    """

    __slots__ = ("elems", "serialize", "contiguous", "_indices", "_counters")

    def __init__(
        self,
        elems: np.ndarray,
        serialize: bool,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self.elems = elems
        self.serialize = serialize
        self._counters = counters if counters is not None else {}
        #: True when ``elems`` is an ascending unit-stride range, letting
        #: direct arguments pass zero-copy views instead of gathers.
        self.contiguous = is_contiguous_range(elems)
        self._indices: Dict[Tuple[int, int], np.ndarray] = {}

    def index_for(self, arg: Arg) -> np.ndarray:
        """Cached gather/scatter indices for one indirect argument.

        ``(chunk,)`` for a single-slot argument, ``(chunk, arity)`` for a
        vector (``IDX_ALL``) argument.  Computed once per (map, slot) and
        phase; ``Plan.gather_stats["hits"/"misses"]`` count reuse.
        """
        slot = IDX_ALL if arg.is_vector else arg.index
        key = (arg.map._uid, slot)
        idx = self._indices.get(key)
        if idx is None:
            if arg.is_vector:
                idx = arg.map.values[self.elems]
            else:
                idx = arg.map.values[self.elems, arg.index]
            self._indices[key] = idx
            self._counters["misses"] = self._counters.get("misses", 0) + 1
        else:
            self._counters["hits"] = self._counters.get("hits", 0) + 1
        return idx

    def slice(self, lo: int, hi: int) -> "Phase":
        """A sub-phase over ``elems[lo:hi]`` (the tiled executor's unit).

        The slice preserves the parent's element order and ``serialize``
        flag, so executing a phase as a sequence of its slices performs
        the exact same operations in the exact same order — the bitwise
        foundation of sparse tiling (``repro/tiling``).  Shares the
        parent's gather-stats counters; index arrays are cached on the
        sub-phase itself (sub-phases are long-lived, held by prepared
        tile programs).
        """
        return Phase(
            self.elems[lo:hi], self.serialize, counters=self._counters
        )


@dataclass
class Plan:
    """A race-free execution schedule for one loop shape.

    Attributes
    ----------
    layout:
        Contiguous block (mini-partition) layout.
    block_colors / n_block_colors:
        First-level coloring: same-colored blocks never share an indirect
        write target and may run concurrently.
    blocks_by_color:
        Block ids grouped by color (execution order of the OpenMP/SIMT
        backends).
    elem_colors / block_ncolors:
        Second-level coloring used by the ``two_level`` scheme to
        serialize indirect increments within a block.
    permutation:
        Global color-sorted order (``full_permute`` scheme only).
    block_permutation:
        Per-block color-sorted order (``block_permute`` scheme only).
    is_direct:
        True when the loop has no racing arguments at all; backends skip
        coloring machinery entirely.
    """

    set: Set
    scheme: str
    layout: BlockLayout
    is_direct: bool
    block_colors: np.ndarray
    n_block_colors: int
    blocks_by_color: List[np.ndarray]
    elem_colors: Optional[np.ndarray] = None
    block_ncolors: Optional[np.ndarray] = None
    permutation: Optional[Permutation] = None
    block_permutation: Optional[BlockPermutation] = None
    build_stats: Dict[str, float] = field(default_factory=dict)
    #: Memoized whole-color phase lists, keyed by ``(n, start)``.
    _phase_cache: Dict[Tuple[int, int], List[Phase]] = field(
        default_factory=dict, repr=False
    )
    #: Memoized canonical element orders / phase offsets.
    _order_cache: Dict[Tuple, np.ndarray] = field(
        default_factory=dict, repr=False
    )
    #: Gather-index cache accounting shared by all this plan's phases.
    gather_stats: Dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def nblocks(self) -> int:
        return self.layout.nblocks

    def max_elem_colors(self) -> int:
        if self.elem_colors is None:
            return 1
        return int(self.block_ncolors.max(initial=1))

    # ------------------------------------------------------------------
    # Whole-color batched schedule (the mega-batch fast path).
    # ------------------------------------------------------------------
    def phases(self, n: int, start: int = 0) -> List["Phase"]:
        """Conflict-free color phases covering ``[start, n)``.

        Phase construction per scheme (see the module docstring for the
        scatter rule each phase's ``serialize`` flag encodes):

        ``direct``
            One contiguous phase — the loop has no races at all.
        ``two_level``
            One phase per *block color*: same-colored blocks never share
            an indirect target, so their concatenated element ranges run
            together; within the phase elements of one block may collide,
            hence ``serialize=True``.  Element order matches the chunked
            execution exactly, so INC results are bitwise identical.
        ``full_permute``
            One phase per global element color (``serialize=False``).
        ``block_permute``
            One phase per (block color, local element color): blocks of a
            color group are mutually race-free and each contributes only
            its color-``c`` elements, so the union is conflict-free
            (``serialize=False``).

        Results are memoized on the plan keyed by ``(n, start)``; the MPI
        substrate's core/boundary splits each get their own entry.
        """
        key = (int(n), int(start))
        cached = self._phase_cache.get(key)
        if cached is not None:
            return cached
        phases = self._build_phases(int(n), int(start))
        self._phase_cache[key] = phases
        return phases

    # ------------------------------------------------------------------
    # Per-tile iteration slices (the sparse-tiling executor's view).
    # ------------------------------------------------------------------
    def phase_offsets(self, n: int, start: int = 0) -> np.ndarray:
        """Cumulative start positions of each phase in the canonical
        order: ``offsets[p] .. offsets[p+1]`` are phase ``p``'s
        positions; ``offsets[-1]`` is the total element count."""
        key = ("offsets", int(n), int(start))
        cached = self._order_cache.get(key)
        if cached is None:
            sizes = [ph.elems.size for ph in self.phases(n, start)]
            cached = np.concatenate(
                ([0], np.cumsum(sizes, dtype=np.int64))
            ) if sizes else np.zeros(1, dtype=np.int64)
            self._order_cache[key] = cached
        return cached

    def execution_order(self, n: int, start: int = 0) -> np.ndarray:
        """The canonical element execution order over ``[start, n)``:
        the concatenation of the plan's color phases.  This is the order
        the whole-color batched backends (and the plan-ordered scalar
        backends) perform their per-element operations in; the sparse-
        tiling inspector slices against it."""
        key = ("order", int(n), int(start))
        cached = self._order_cache.get(key)
        if cached is None:
            phases = self.phases(n, start)
            cached = (
                np.concatenate([ph.elems for ph in phases])
                if phases else np.empty(0, dtype=np.int64)
            )
            self._order_cache[key] = cached
        return cached

    def phase_slices(
        self, n: int, start: int, lo: int, hi: int
    ) -> List["Phase"]:
        """The phases (or sub-phases) covering canonical positions
        ``[lo, hi)`` — one tile's slice of this plan's schedule.

        Whole phases are returned by reference (sharing their cached
        gather indices); partial overlaps become :meth:`Phase.slice`
        sub-phases.  Executing the returned list for consecutive
        ``[lo, hi)`` windows replays the eager phase sequence
        operation-for-operation.
        """
        phases = self.phases(n, start)
        offsets = self.phase_offsets(n, start)
        out: List[Phase] = []
        for p, ph in enumerate(phases):
            p_lo, p_hi = int(offsets[p]), int(offsets[p + 1])
            s, e = max(lo, p_lo), min(hi, p_hi)
            if s >= e:
                continue
            if s == p_lo and e == p_hi:
                out.append(ph)
            else:
                out.append(ph.slice(s - p_lo, e - p_lo))
        return out

    def _build_phases(self, n: int, start: int) -> List["Phase"]:
        stats = self.gather_stats
        if self.is_direct:
            elems = np.arange(start, n, dtype=np.int64)
            return [Phase(elems, serialize=False, counters=stats)] if elems.size else []

        phases: List[Phase] = []
        if self.scheme == "two_level":
            for color_blocks in self.blocks_by_color:
                ranges = []
                for b in color_blocks:
                    lo, hi = self.layout.block_range(int(b))
                    lo, hi = max(lo, start), min(hi, n)
                    if lo < hi:
                        ranges.append(np.arange(lo, hi, dtype=np.int64))
                if ranges:
                    phases.append(
                        Phase(np.concatenate(ranges), serialize=True,
                              counters=stats)
                    )
        elif self.scheme == "full_permute":
            for c in range(self.permutation.ncolors):
                elems = self.permutation.color_slice(c)
                elems = elems[(elems >= start) & (elems < n)]
                if elems.size:
                    phases.append(Phase(elems, serialize=False, counters=stats))
        elif self.scheme == "block_permute":
            bp = self.block_permutation
            for color_blocks in self.blocks_by_color:
                max_c = max(
                    (bp.block_ncolors(int(b)) for b in color_blocks), default=0
                )
                for c in range(max_c):
                    slices = []
                    for b in color_blocks:
                        if c >= bp.block_ncolors(int(b)):
                            continue
                        elems = bp.block_color_slice(int(b), c)
                        elems = elems[(elems >= start) & (elems < n)]
                        if elems.size:
                            slices.append(elems)
                    if slices:
                        phases.append(
                            Phase(np.concatenate(slices), serialize=False,
                                  counters=stats)
                        )
        else:  # pragma: no cover - schemes validated at plan build
            raise ValueError(f"Unknown plan scheme {self.scheme!r}")
        return phases


def plan_signature(
    set_: Set, args: Sequence[Arg], block_size: int, scheme: str
) -> Tuple:
    """Hashable cache key: the *structure* of a loop, not its data.

    Two loops share a plan iff they iterate the same set with the same
    racing (map, slot) columns, block size and scheme.  Read-only and
    direct arguments do not influence the plan, so e.g. ``adt_calc``
    (indirect reads only) maps to the trivial direct plan.
    """
    racing = tuple(
        sorted(
            (arg.map._uid, arg.index)
            for arg in args
            if arg.races
        )
    )
    return (set_._uid, set_.size, racing, int(block_size), scheme)


def build_plan(
    set_: Set,
    args: Sequence[Arg],
    block_size: int = DEFAULT_BLOCK_SIZE,
    scheme: str = "two_level",
    coloring_method: str = "auto",
) -> Plan:
    """Construct an execution plan for a loop over ``set_``.

    The plan covers ``set_.total_size`` elements (owned + exec halo) so the
    same plan drives both serial and simulated-MPI execution.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"Unknown scheme {scheme!r}; expected one of {SCHEMES}")
    n = set_.total_size
    layout = make_blocks(n, block_size)
    targets, extent = conflict_targets(args, n)
    is_direct = targets is None

    stats: Dict[str, float] = {}
    if is_direct:
        block_colors = np.zeros(layout.nblocks, dtype=np.int32)
        n_block_colors = 1 if layout.nblocks else 0
    else:
        block_colors, n_block_colors = color_blocks(layout, targets, extent)
    blocks_by_color = [
        np.nonzero(block_colors == c)[0].astype(np.int64)
        for c in range(max(n_block_colors, 0))
    ]
    stats["n_block_colors"] = float(n_block_colors)

    plan = Plan(
        set=set_,
        scheme=scheme,
        layout=layout,
        is_direct=is_direct,
        block_colors=block_colors,
        n_block_colors=n_block_colors,
        blocks_by_color=blocks_by_color,
        build_stats=stats,
    )

    if is_direct:
        # Direct loops need no second level / permutation under any scheme.
        plan.elem_colors = np.zeros(n, dtype=np.int32)
        plan.block_ncolors = np.ones(layout.nblocks, dtype=np.int32)
        return plan

    if scheme == "two_level":
        plan.elem_colors, plan.block_ncolors = element_colors_by_block(
            layout, targets, extent, method=coloring_method
        )
        stats["max_elem_colors"] = float(plan.block_ncolors.max(initial=1))
    elif scheme == "full_permute":
        plan.permutation = full_permute(targets, n, extent, method=coloring_method)
        stats["n_elem_colors"] = float(plan.permutation.ncolors)
    elif scheme == "block_permute":
        plan.block_permutation = block_permute(
            layout, targets, extent, method=coloring_method
        )
        stats["max_elem_colors"] = float(
            max(
                (plan.block_permutation.block_ncolors(b) for b in range(layout.nblocks)),
                default=1,
            )
        )
    return plan


#: Default LRU bound for :class:`PlanCache` (plans are mesh-sized, so a
#: long-running process must not accumulate them without limit).
DEFAULT_PLAN_CACHE_ENTRIES = 256


class PlanCache:
    """Memoizes plans by loop structure (OP2 keeps an identical cache).

    The cache is LRU-bounded: with more than ``max_entries`` distinct
    loop structures the least-recently-used plan is dropped (and
    rebuilt on next use).  ``max_entries=None`` disables eviction.
    ``hits`` / ``misses`` / ``evictions`` counters feed
    :meth:`repro.core.runtime.Runtime.stats`.
    """

    def __init__(
        self, max_entries: Optional[int] = DEFAULT_PLAN_CACHE_ENTRIES
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._plans: OrderedDict[Tuple, Plan] = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self,
        set_: Set,
        args: Sequence[Arg],
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme: str = "two_level",
        coloring_method: str = "auto",
    ) -> Plan:
        key = plan_signature(set_, args, block_size, scheme)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(key)
            return plan
        self.misses += 1
        plan = self._load_or_build(
            set_, args, block_size, scheme, coloring_method
        )
        self._plans[key] = plan
        if self.max_entries is not None:
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    @staticmethod
    def _load_or_build(
        set_: Set,
        args: Sequence[Arg],
        block_size: int,
        scheme: str,
        coloring_method: str,
    ) -> Plan:
        """Disk layer below the memory miss: decode a persisted plan,
        or build (the expensive graph coloring) and persist it.  Any
        failure to decode counts as corrupt and falls back to a build —
        a broken store never surfaces to the execution path."""
        from .. import store

        skey = store.plan_key(set_, args, block_size, scheme, coloring_method)
        pstore = store.store_for("plan")
        payload = pstore.get(skey)
        if payload is not None:
            try:
                return store.decode_plan(payload, set_)
            except Exception:
                store.bump("plan", "corrupt")
                store.unlink_quiet(pstore.path_for(skey))
        store.count_build("plan")
        plan = build_plan(set_, args, block_size, scheme, coloring_method)
        pstore.put(skey, store.encode_plan(plan))
        return plan

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)
