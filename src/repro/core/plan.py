"""Execution plans — OP2's ``op_plan`` analogue.

A :class:`Plan` captures everything a backend needs to execute a parallel
loop free of data races: the mini-partition (block) layout, the block
coloring (first level), the within-block element coloring (second level),
and — for the alternative schemes of Section 4 — the full-permute or
block-permute orderings.  Plans are expensive (graph coloring over the
whole mesh) and depend only on the loop's *access structure*, not on the
data values, so they are cached and reused across time steps exactly as
OP2 does; the plan-cache ablation bench quantifies the saving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..coloring import (
    BlockLayout,
    BlockPermutation,
    Permutation,
    block_permute,
    color_blocks,
    conflict_targets,
    element_colors_by_block,
    full_permute,
    make_blocks,
)
from .access import Arg
from .set import Set

#: Default mini-partition size — OP2's default; Fig 8b sweeps this knob.
DEFAULT_BLOCK_SIZE = 256

#: Supported execution orderings (paper Section 4).
SCHEMES = ("two_level", "full_permute", "block_permute")


@dataclass
class Plan:
    """A race-free execution schedule for one loop shape.

    Attributes
    ----------
    layout:
        Contiguous block (mini-partition) layout.
    block_colors / n_block_colors:
        First-level coloring: same-colored blocks never share an indirect
        write target and may run concurrently.
    blocks_by_color:
        Block ids grouped by color (execution order of the OpenMP/SIMT
        backends).
    elem_colors / block_ncolors:
        Second-level coloring used by the ``two_level`` scheme to
        serialize indirect increments within a block.
    permutation:
        Global color-sorted order (``full_permute`` scheme only).
    block_permutation:
        Per-block color-sorted order (``block_permute`` scheme only).
    is_direct:
        True when the loop has no racing arguments at all; backends skip
        coloring machinery entirely.
    """

    set: Set
    scheme: str
    layout: BlockLayout
    is_direct: bool
    block_colors: np.ndarray
    n_block_colors: int
    blocks_by_color: List[np.ndarray]
    elem_colors: Optional[np.ndarray] = None
    block_ncolors: Optional[np.ndarray] = None
    permutation: Optional[Permutation] = None
    block_permutation: Optional[BlockPermutation] = None
    build_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def nblocks(self) -> int:
        return self.layout.nblocks

    def max_elem_colors(self) -> int:
        if self.elem_colors is None:
            return 1
        return int(self.block_ncolors.max(initial=1))


def plan_signature(
    set_: Set, args: Sequence[Arg], block_size: int, scheme: str
) -> Tuple:
    """Hashable cache key: the *structure* of a loop, not its data.

    Two loops share a plan iff they iterate the same set with the same
    racing (map, slot) columns, block size and scheme.  Read-only and
    direct arguments do not influence the plan, so e.g. ``adt_calc``
    (indirect reads only) maps to the trivial direct plan.
    """
    racing = tuple(
        sorted(
            (arg.map._uid, arg.index)
            for arg in args
            if arg.races
        )
    )
    return (set_._uid, set_.size, racing, int(block_size), scheme)


def build_plan(
    set_: Set,
    args: Sequence[Arg],
    block_size: int = DEFAULT_BLOCK_SIZE,
    scheme: str = "two_level",
    coloring_method: str = "auto",
) -> Plan:
    """Construct an execution plan for a loop over ``set_``.

    The plan covers ``set_.total_size`` elements (owned + exec halo) so the
    same plan drives both serial and simulated-MPI execution.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"Unknown scheme {scheme!r}; expected one of {SCHEMES}")
    n = set_.total_size
    layout = make_blocks(n, block_size)
    targets, extent = conflict_targets(args, n)
    is_direct = targets is None

    stats: Dict[str, float] = {}
    if is_direct:
        block_colors = np.zeros(layout.nblocks, dtype=np.int32)
        n_block_colors = 1 if layout.nblocks else 0
    else:
        block_colors, n_block_colors = color_blocks(layout, targets, extent)
    blocks_by_color = [
        np.nonzero(block_colors == c)[0].astype(np.int64)
        for c in range(max(n_block_colors, 0))
    ]
    stats["n_block_colors"] = float(n_block_colors)

    plan = Plan(
        set=set_,
        scheme=scheme,
        layout=layout,
        is_direct=is_direct,
        block_colors=block_colors,
        n_block_colors=n_block_colors,
        blocks_by_color=blocks_by_color,
        build_stats=stats,
    )

    if is_direct:
        # Direct loops need no second level / permutation under any scheme.
        plan.elem_colors = np.zeros(n, dtype=np.int32)
        plan.block_ncolors = np.ones(layout.nblocks, dtype=np.int32)
        return plan

    if scheme == "two_level":
        plan.elem_colors, plan.block_ncolors = element_colors_by_block(
            layout, targets, extent, method=coloring_method
        )
        stats["max_elem_colors"] = float(plan.block_ncolors.max(initial=1))
    elif scheme == "full_permute":
        plan.permutation = full_permute(targets, n, extent, method=coloring_method)
        stats["n_elem_colors"] = float(plan.permutation.ncolors)
    elif scheme == "block_permute":
        plan.block_permutation = block_permute(
            layout, targets, extent, method=coloring_method
        )
        stats["max_elem_colors"] = float(
            max(
                (plan.block_permutation.block_ncolors(b) for b in range(layout.nblocks)),
                default=1,
            )
        )
    return plan


class PlanCache:
    """Memoizes plans by loop structure (OP2 keeps an identical cache)."""

    def __init__(self) -> None:
        self._plans: Dict[Tuple, Plan] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        set_: Set,
        args: Sequence[Arg],
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme: str = "two_level",
        coloring_method: str = "auto",
    ) -> Plan:
        key = plan_signature(set_, args, block_size, scheme)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = build_plan(set_, args, block_size, scheme, coloring_method)
        self._plans[key] = plan
        return plan

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)
