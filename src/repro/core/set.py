"""Mesh sets — the iteration spaces of the OP2 abstraction.

A :class:`Set` is nothing more than a named size (e.g. ``nodes``, ``edges``,
``cells``): data (:class:`~repro.core.dat.Dat`) and connectivity
(:class:`~repro.core.map.Map`) attach to sets, and parallel loops iterate
over them.  In the distributed substrate a set is additionally partitioned
into *core*, *owned-boundary* and *halo* regions (see
:mod:`repro.mpi.decomposition`), which this class models with optional
region markers so the same object works in both serial and simulated-MPI
execution.
"""

from __future__ import annotations

import itertools
from typing import Optional

_set_counter = itertools.count()


class Set:
    """An abstract collection of mesh elements.

    Parameters
    ----------
    size:
        Number of elements owned by this (serial) set.
    name:
        Identifier used in plan caching, debugging and reports.
    core_size:
        Number of elements that touch no halo data (defaults to ``size``).
        In a distributed setting, elements ``[core_size, size)`` must wait
        for halo exchanges to finish before they execute — mirroring the
        ``op_mpi_wait_all`` call in the paper's generated MPI code (Fig 2b).
    exec_size:
        Number of additional imported halo elements that must be executed
        redundantly for indirect increments (OP2's "exec halo").
    """

    def __init__(
        self,
        size: int,
        name: Optional[str] = None,
        *,
        core_size: Optional[int] = None,
        exec_size: int = 0,
    ) -> None:
        if size < 0:
            raise ValueError(f"Set size must be non-negative, got {size}")
        self.size = int(size)
        self.name = name if name is not None else f"set_{next(_set_counter)}"
        self.core_size = int(core_size) if core_size is not None else self.size
        if not (0 <= self.core_size <= self.size):
            raise ValueError(
                f"core_size {self.core_size} must be within [0, {self.size}]"
            )
        if exec_size < 0:
            raise ValueError("exec_size must be non-negative")
        self.exec_size = int(exec_size)
        self._uid = next(_set_counter)

    # ------------------------------------------------------------------
    @property
    def total_size(self) -> int:
        """Owned plus redundantly-executed halo elements."""
        return self.size + self.exec_size

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = ""
        if self.core_size != self.size:
            extra += f", core={self.core_size}"
        if self.exec_size:
            extra += f", exec_halo={self.exec_size}"
        return f"Set({self.name!r}, size={self.size}{extra})"

    def __hash__(self) -> int:
        return hash(("Set", self._uid))

    def __eq__(self, other: object) -> bool:
        return self is other
