"""The OP2-like core abstraction: sets, data, maps, kernels, parallel loops.

Public API (mirrors the paper's Section 3 building blocks)::

    nodes = Set(n_nodes, "nodes")
    edges = Set(n_edges, "edges")
    edge2node = Map(edges, nodes, 2, conn, "edge2node")
    p_x = Dat(nodes, 2, coords, name="p_x")

    par_loop(res_calc, edges,
             arg_dat(p_x, 0, edge2node, READ),
             arg_dat(p_x, 1, edge2node, READ),
             arg_dat(p_q, IDX_ID, None, READ),
             arg_dat(p_res, 0, edge2cell, INC),
             arg_dat(p_res, 1, edge2cell, INC))
"""

from .access import (
    IDX_ALL,
    IDX_ID,
    INC,
    MAX,
    MIN,
    READ,
    RW,
    WRITE,
    Access,
    Arg,
    arg_dat,
    arg_gbl,
)
from .chain import (
    ChainAnalysis,
    CompiledChain,
    LoopChain,
    LoopSpec,
    analyze_dependencies,
    chain,
    compile_chain,
    fusion_groups,
    pair_fusable,
)
from .codegen import CodegenBackend, compile_loop, generate_loop_source
from .dat import (
    LAYOUTS,
    Dat,
    dat_layout,
    get_default_layout,
    set_default_layout,
)
from .glob import Global
from .kernel import Kernel, KernelInfo, kernel
from .loop import par_loop, validate_loop
from .map import Map, identity_map
from .mat import Mat, arg_mat
from .plan import DEFAULT_BLOCK_SIZE, Plan, PlanCache, build_plan, plan_signature
from .runtime import Runtime, default_runtime, make_backend, set_backend
from .set import Set

__all__ = [
    "Access",
    "Arg",
    "ChainAnalysis",
    "CompiledChain",
    "DEFAULT_BLOCK_SIZE",
    "Dat",
    "LoopChain",
    "LoopSpec",
    "Global",
    "IDX_ALL",
    "IDX_ID",
    "INC",
    "Kernel",
    "KernelInfo",
    "LAYOUTS",
    "MAX",
    "MIN",
    "Map",
    "Mat",
    "Plan",
    "PlanCache",
    "READ",
    "RW",
    "Runtime",
    "Set",
    "WRITE",
    "CodegenBackend",
    "analyze_dependencies",
    "arg_dat",
    "arg_gbl",
    "arg_mat",
    "build_plan",
    "chain",
    "compile_chain",
    "compile_loop",
    "fusion_groups",
    "generate_loop_source",
    "pair_fusable",
    "dat_layout",
    "default_runtime",
    "get_default_layout",
    "set_default_layout",
    "identity_map",
    "kernel",
    "make_backend",
    "par_loop",
    "plan_signature",
    "set_backend",
    "validate_loop",
]
