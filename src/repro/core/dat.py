"""Data defined on mesh sets (OP2 ``op_dat``).

A :class:`Dat` is an ``(set.total_size, dim)`` NumPy array plus metadata.
Storage is array-of-structures (AoS), matching the paper's CPU layout; the
SIMT backend requests a structure-of-arrays (SoA) view via :meth:`Dat.soa`
to model the paper's GPU data transposition (Section 5).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from .set import Set

_dat_counter = itertools.count()


class Dat:
    """A dense dataset attached to a :class:`~repro.core.set.Set`.

    Parameters
    ----------
    set_:
        The set this data lives on.
    dim:
        Arity (number of components per element), e.g. 4 flow variables.
    data:
        Optional initial values, broadcastable to ``(set.total_size, dim)``.
        Zeros when omitted.
    dtype:
        Floating (or integer) dtype; the whole library is dtype-parametric
        so single/double precision runs use the same code path.
    name:
        Identifier used in reports and plan debugging.
    """

    def __init__(
        self,
        set_: Set,
        dim: int,
        data: Optional[np.ndarray] = None,
        dtype: np.dtype = np.float64,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(set_, Set):
            raise TypeError("Dat must be attached to a Set")
        if dim < 1:
            raise ValueError(f"Dat dim must be >= 1, got {dim}")
        self.set = set_
        self.dim = int(dim)
        self.name = name if name is not None else f"dat_{next(_dat_counter)}"
        self._uid = next(_dat_counter)
        extent = set_.total_size + int(getattr(set_, "nonexec_size", 0))
        if data is None:
            self.data = np.zeros((extent, dim), dtype=dtype)
        else:
            arr = np.asarray(data, dtype=dtype)
            if arr.size == extent * dim:
                arr = arr.reshape(extent, dim)
            else:
                arr = np.broadcast_to(arr, (extent, dim)).copy()
            self.data = np.ascontiguousarray(arr)

    # ------------------------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Memory footprint of the owned portion (dim * size * itemsize)."""
        return self.set.size * self.dim * self.itemsize

    def soa(self) -> np.ndarray:
        """Structure-of-arrays view ``(dim, extent)`` — a transposed *copy*.

        Models the paper's GPU SoA layout; callers that mutate the copy
        must write it back with :meth:`from_soa`.
        """
        return np.ascontiguousarray(self.data.T)

    def from_soa(self, soa: np.ndarray) -> None:
        """Write back a (possibly modified) SoA copy from :meth:`soa`."""
        if soa.shape != (self.dim, self.data.shape[0]):
            raise ValueError(
                f"SoA shape {soa.shape} does not match ({self.dim}, "
                f"{self.data.shape[0]})"
            )
        self.data[...] = soa.T

    def copy(self, name: Optional[str] = None) -> "Dat":
        """Deep copy (same set, fresh storage)."""
        return Dat(self.set, self.dim, self.data.copy(), self.dtype, name=name)

    def zero(self) -> None:
        """In-place reset — cheaper than reallocating (guide: in-place ops)."""
        self.data[...] = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Dat({self.name!r}, set={self.set.name}, dim={self.dim}, "
            f"dtype={self.data.dtype})"
        )

    def __hash__(self) -> int:
        return hash(("Dat", self._uid))

    def __eq__(self, other: object) -> bool:
        return self is other
