"""Data defined on mesh sets (OP2 ``op_dat``) with configurable layout.

A :class:`Dat` is logically an ``(set.total_size, dim)`` array plus
metadata.  *Physically* the values live in one of two layouts (paper
Section 5; "A study of vectorization for matrix-free finite element
methods" studies the same trade-off):

``aos`` (array-of-structures)
    Storage shape ``(extent, dim)``, C-contiguous — one element's ``dim``
    components are adjacent.  This is the paper's CPU layout: a scalar
    loop touching all components of one element gets them in one cache
    line.

``soa`` (structure-of-arrays)
    Storage shape ``(dim, extent)``, C-contiguous — one *component* of
    all elements is adjacent.  This is the paper's GPU / wide-SIMD
    layout: a batched kernel reading component ``k`` of many elements
    streams one contiguous row.

The layout is **transparent**: :attr:`Dat.data` always presents the
logical ``(extent, dim)`` shape (for SoA it is a transposed view of the
storage, aliasing the same memory), so kernels, backends and tests are
layout-agnostic.  Performance-sensitive code uses :meth:`Dat.gather` /
:meth:`Dat.scatter` / :meth:`Dat.scatter_add`, which index the physical
storage along its contiguous axis.

The gather/scatter contract
---------------------------
``gather(idx)`` returns a fresh ``(len(idx), dim)`` array of the rows
named by ``idx`` (never a view).  ``scatter(idx, values)`` writes rows
back and requires **unique** targets in ``idx`` — it is the free scatter
of the permute schemes.  ``scatter_add(idx, values, serialize=True)``
accumulates; with ``serialize=True`` it applies lanes in index order
(``np.add.at``), which is correct even when lanes share a target — the
paper's sequential scatter out of the vector register.  With
``serialize=False`` targets must be unique (conflict-free color), and the
add is one fused operation.

A process-wide default layout can be set with :func:`set_default_layout`
or scoped with the :func:`dat_layout` context manager; a
:class:`~repro.core.runtime.Runtime` carries a ``layout`` attribute that
the application drivers apply when allocating their state.  The layout
subsystem is described end-to-end in ``docs/architecture.md`` (section 2).

Example
-------
>>> nodes = Set(100, "nodes")
>>> x = Dat(nodes, 3, layout="soa")     # explicit per-Dat layout
>>> with dat_layout("soa"):
...     y = Dat(nodes, 3)               # scoped default
>>> x.data.shape, x.storage.shape
((100, 3), (3, 100))
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Iterator, Optional

import numpy as np

from .set import Set

_dat_counter = itertools.count()

#: Supported physical layouts.
LAYOUTS = ("aos", "soa")

_default_layout = "aos"


def _check_layout(layout: str) -> str:
    if layout not in LAYOUTS:
        raise ValueError(f"Unknown layout {layout!r}; expected one of {LAYOUTS}")
    return layout


def get_default_layout() -> str:
    """The process-wide layout used when ``Dat(layout=None)``."""
    return _default_layout


def set_default_layout(layout: str) -> str:
    """Set the process-wide default layout; returns the previous one."""
    global _default_layout
    previous = _default_layout
    _default_layout = _check_layout(layout)
    return previous


@contextlib.contextmanager
def dat_layout(layout: Optional[str]) -> Iterator[None]:
    """Scoped default layout (``None`` is a no-op passthrough).

    >>> with dat_layout("soa"):
    ...     q = Dat(cells, 4)    # q.layout == "soa"
    """
    if layout is None:
        yield
        return
    previous = set_default_layout(layout)
    try:
        yield
    finally:
        set_default_layout(previous)


class Dat:
    """A dense dataset attached to a :class:`~repro.core.set.Set`.

    Parameters
    ----------
    set_:
        The set this data lives on.
    dim:
        Arity (number of components per element), e.g. 4 flow variables.
    data:
        Optional initial values, broadcastable to ``(set.total_size, dim)``.
        Zeros when omitted.
    dtype:
        Floating (or integer) dtype; the whole library is dtype-parametric
        so single/double precision runs use the same code path.
    name:
        Identifier used in reports and plan debugging.
    layout:
        ``"aos"`` (default) or ``"soa"`` physical storage layout; ``None``
        takes the process default (see :func:`set_default_layout`).  The
        logical :attr:`data` interface is identical under both — only the
        memory order (and therefore gather/scatter locality) changes.
    """

    def __init__(
        self,
        set_: Set,
        dim: int,
        data: Optional[np.ndarray] = None,
        dtype: np.dtype = np.float64,
        name: Optional[str] = None,
        layout: Optional[str] = None,
    ) -> None:
        if not isinstance(set_, Set):
            raise TypeError("Dat must be attached to a Set")
        if dim < 1:
            raise ValueError(f"Dat dim must be >= 1, got {dim}")
        self.set = set_
        self.dim = int(dim)
        self.layout = _check_layout(layout if layout is not None else _default_layout)
        self.name = name if name is not None else f"dat_{next(_dat_counter)}"
        self._uid = next(_dat_counter)
        extent = set_.total_size + int(getattr(set_, "nonexec_size", 0))
        if data is None:
            aos = np.zeros((extent, dim), dtype=dtype)
        else:
            arr = np.asarray(data, dtype=dtype)
            if arr.size == extent * dim:
                aos = arr.reshape(extent, dim)
            else:
                aos = np.broadcast_to(arr, (extent, dim))
        if self.layout == "soa":
            self._storage = np.ascontiguousarray(aos.T)
        else:
            self._storage = np.ascontiguousarray(aos)
        # Logical (extent, dim) array, writable, aliasing the storage.
        # For AoS this *is* the storage; for SoA it is a transposed view.
        # All element-wise access patterns (data[e], data[idx],
        # data[lo:hi], np.add.at(data, ...)) work identically under both
        # layouts.  The view is bound once (the storage is never
        # rebound); the :attr:`data` property only adds the deferred-
        # execution read barrier check on top.
        self._data = self._storage.T if self.layout == "soa" else self._storage
        #: Pending :class:`~repro.core.chain.LoopChain` that has recorded
        #: (but not yet executed) loops touching this Dat.  Any host
        #: access through :attr:`data` / :attr:`storage` flushes it
        #: first, so deferred execution can never serve a stale read.
        self._barrier = None

    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Flush the pending loop chain (if any) before host access."""
        barrier = self._barrier
        if barrier is not None:
            barrier.flush()

    @property
    def data(self) -> np.ndarray:
        """Logical ``(extent, dim)`` array, writable, aliasing the storage.

        Reading it while a :class:`~repro.core.chain.LoopChain` has
        pending loops touching this Dat flushes the chain first (the
        read/write-version barrier of the deferred-execution API); the
        returned view is then always up to date.
        """
        barrier = self._barrier
        if barrier is not None:
            barrier.flush()
        return self._data

    @property
    def storage(self) -> np.ndarray:
        """The physical C-contiguous array: ``(extent, dim)`` for AoS,
        ``(dim, extent)`` for SoA.  Exposed for diagnostics and layout-aware
        fast paths; mutate through :attr:`data` unless you know the layout.
        """
        self._sync()
        return self._storage

    @property
    def dtype(self) -> np.dtype:
        return self._storage.dtype

    @property
    def itemsize(self) -> int:
        return self._storage.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Memory footprint of the owned portion (dim * size * itemsize)."""
        return self.set.size * self.dim * self.itemsize

    # ------------------------------------------------------------------
    # Layout-aware gather/scatter primitives (used by batched backends).
    # ------------------------------------------------------------------
    def gather(self, idx: np.ndarray) -> np.ndarray:
        """Gather rows ``idx`` into a fresh ``idx.shape + (dim,)`` array.

        ``idx`` may be 1-D (single-slot indirection) or 2-D (vector
        ``IDX_ALL`` arguments: ``(chunk, arity)``).  Indexes the physical
        storage along its contiguous axis: an AoS gather copies whole
        rows, an SoA gather streams one component row per ``k < dim`` —
        the access pattern the paper's packing code and GPU transposition
        respectively optimize for.
        """
        self._sync()
        if self.layout == "soa":
            # (dim, *idx.shape) -> (*idx.shape, dim); .T would *reverse*
            # the axes and silently swap chunk/arity for 2-D indices.
            return np.moveaxis(self._storage[:, idx], 0, -1)
        return self._storage[idx]

    def scatter(self, idx: np.ndarray, values: np.ndarray) -> None:
        """Write rows back (WRITE/RW scatter).

        ``values`` has shape ``idx.shape + (dim,)``; ``idx`` targets must
        be unique — guaranteed by coloring for indirect arguments.
        """
        self._sync()
        if self.layout == "soa":
            self._storage[:, idx] = np.moveaxis(values, -1, 0)
        else:
            self._storage[idx] = values

    def scatter_add(
        self, idx: np.ndarray, values: np.ndarray, serialize: bool = True
    ) -> None:
        """Accumulate rows (INC scatter); ``values`` is ``idx.shape + (dim,)``.

        ``serialize=True`` applies lanes strictly in index order via
        ``np.add.at`` — correct when lanes collide (two_level scheme).
        ``serialize=False`` is the permute schemes' free scatter: one
        fused ``+=`` that requires unique targets.
        """
        self._sync()
        if serialize:
            np.add.at(self._data, idx, values)
        elif self.layout == "soa":
            self._storage[:, idx] += np.moveaxis(values, -1, 0)
        else:
            self._storage[idx] += values

    # ------------------------------------------------------------------
    def soa(self) -> np.ndarray:
        """Structure-of-arrays ``(dim, extent)`` *copy* of the values.

        Models the paper's GPU SoA transposition for AoS Dats; callers
        that mutate the copy must write it back with :meth:`from_soa`.
        (An SoA-layout Dat still returns a copy so the contract is
        layout-independent.)
        """
        self._sync()
        if self.layout == "soa":
            return self._storage.copy()
        return np.ascontiguousarray(self._storage.T)

    def from_soa(self, soa: np.ndarray) -> None:
        """Write back a (possibly modified) SoA copy from :meth:`soa`."""
        extent = self.data.shape[0]
        if soa.shape != (self.dim, extent):
            raise ValueError(
                f"SoA shape {soa.shape} does not match ({self.dim}, {extent})"
            )
        self.data[...] = soa.T

    def copy(self, name: Optional[str] = None) -> "Dat":
        """Deep copy (same set, fresh storage, same layout)."""
        return Dat(
            self.set, self.dim, np.array(self.data), self.dtype,
            name=name, layout=self.layout,
        )

    def zero(self) -> None:
        """In-place reset — cheaper than reallocating (guide: in-place ops)."""
        self._sync()
        self._storage[...] = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Dat({self.name!r}, set={self.set.name}, dim={self.dim}, "
            f"dtype={self.dtype}, layout={self.layout})"
        )

    def __hash__(self) -> int:
        return hash(("Dat", self._uid))

    def __eq__(self, other: object) -> bool:
        return self is other
