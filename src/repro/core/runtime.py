"""Runtime configuration: backend selection, plan caches, loop accounting.

OP2 separates the application (written once against the API) from the
backend chosen at build/run time; here the same separation is a runtime
:class:`Runtime` object.  A module-level default runtime keeps the common
case (serial experimentation) zero-ceremony, while benchmarks construct
isolated runtimes per configuration.

Two cache levels keep steady-state ``par_loop`` calls cheap:

1. the structural :class:`~repro.core.plan.PlanCache` (coloring reused by
   every loop with the same racing access structure), and
2. a **loop cache** keyed by ``(kernel, set, args signature)`` — the
   exact call site — that skips even the signature normalization and
   returns the memoized plan directly.  Because plans memoize their
   whole-color phases and gather index arrays
   (:meth:`~repro.core.plan.Plan.phases`), a cache hit here means a
   repeated invocation rebuilds *no* index arrays at all.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..backends.autovec import AutoVecBackend
from ..backends.base import Backend
from ..backends.openmp import OpenMPBackend
from ..backends.sequential import SequentialBackend
from ..backends.simt import SIMTBackend
from ..backends.vectorized import VectorizedBackend
from .access import Arg
from .codegen import CodegenBackend
from .dat import _check_layout
from .kernel import Kernel
from .plan import DEFAULT_BLOCK_SIZE, Plan, PlanCache
from .set import Set


def loop_signature(kernel: Kernel, set_: Set, args: Sequence[Arg]) -> Tuple:
    """Hashable identity of one ``par_loop`` call site.

    Unlike :func:`~repro.core.plan.plan_signature` (which keys only the
    racing structure), this keys the full argument *shape* — maps, slots
    and access modes per position — so it can stand in for re-normalizing
    the arguments on every invocation.  Dat identity is deliberately
    excluded: plans depend on access structure, never on which Dat flows
    through it, and keying on Dats would grow the cache without bound for
    apps that allocate scratch Dats every time step.
    """
    return (
        kernel.name,
        set_._uid,
        tuple(
            (
                arg.map._uid if arg.map is not None else -1,
                arg.index,
                arg.access.name,
            )
            for arg in args
        ),
    )


def make_backend(name: str, **options) -> Backend:
    """Instantiate a backend by registry name.

    Names: ``sequential``, ``openmp``, ``vectorized``, ``simt``,
    ``autovec``, ``codegen``.  Options are forwarded (``vec=`` for
    vectorized, ``device=`` for simt).
    """
    registry = {
        "sequential": SequentialBackend,
        "openmp": OpenMPBackend,
        "vectorized": VectorizedBackend,
        "simt": SIMTBackend,
        "autovec": AutoVecBackend,
        "codegen": CodegenBackend,
    }
    if name not in registry:
        raise KeyError(
            f"Unknown backend {name!r}; available: {sorted(registry)}"
        )
    return registry[name](**options)


class Runtime:
    """Execution context for parallel loops.

    Parameters
    ----------
    backend:
        Backend instance or registry name.
    block_size:
        Mini-partition size for plans (paper Fig 8b's tuning knob).
    scheme:
        Default execution ordering: ``two_level`` (original),
        ``full_permute`` or ``block_permute``.
    coloring_method:
        ``auto``, ``greedy`` (serial sweep) or ``jp`` (vectorized rounds).
    layout:
        Default :class:`~repro.core.dat.Dat` storage layout (``"aos"`` or
        ``"soa"``) the application drivers apply when allocating state;
        ``None`` leaves the process default untouched.
    """

    def __init__(
        self,
        backend: Backend | str = "vectorized",
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme: str = "two_level",
        coloring_method: str = "auto",
        layout: Optional[str] = None,
    ) -> None:
        self.backend = (
            backend if isinstance(backend, Backend) else make_backend(backend)
        )
        self.block_size = int(block_size)
        self.scheme = scheme
        self.coloring_method = coloring_method
        self.layout = _check_layout(layout) if layout is not None else None
        self.plans = PlanCache()
        self._loop_plans: Dict[Tuple, Plan] = {}
        self.loop_cache_hits = 0
        self.loop_cache_misses = 0

    # ------------------------------------------------------------------
    def plan_for(self, kernel: Kernel, set_: Set, args: Sequence[Arg]) -> Plan:
        """Plan lookup for one call site, through the two-level cache.

        First consults the loop cache (exact call-site identity); on a
        miss, falls through to the structural :class:`PlanCache` (which
        may still hit — e.g. two kernels sharing a racing structure) and
        records the resolved plan under the call-site key.
        """
        key = loop_signature(kernel, set_, args)
        plan = self._loop_plans.get(key)
        if plan is not None:
            self.loop_cache_hits += 1
            return plan
        self.loop_cache_misses += 1
        plan = self.plans.get(
            set_, args, self.block_size, self.scheme, self.coloring_method
        )
        self._loop_plans[key] = plan
        return plan

    def clear_caches(self) -> None:
        """Drop both cache levels (cold-start; used by the cache ablation)."""
        self.plans.clear()
        self._loop_plans.clear()
        self.loop_cache_hits = 0
        self.loop_cache_misses = 0

    def cache_stats(self) -> Dict[str, int]:
        """Counters for the caching ablation tables."""
        return {
            "loop_hits": self.loop_cache_hits,
            "loop_misses": self.loop_cache_misses,
            "plan_hits": self.plans.hits,
            "plan_misses": self.plans.misses,
            "plans": len(self.plans),
        }

    # ------------------------------------------------------------------
    def configure(
        self,
        backend: Optional[Backend | str] = None,
        block_size: Optional[int] = None,
        scheme: Optional[str] = None,
        coloring_method: Optional[str] = None,
        layout: Optional[str] = None,
    ) -> "Runtime":
        """Update settings in place; plans are invalidated as needed."""
        if backend is not None:
            self.backend = (
                backend if isinstance(backend, Backend) else make_backend(backend)
            )
        if block_size is not None and block_size != self.block_size:
            self.block_size = int(block_size)
            self._loop_plans.clear()
        if scheme is not None:
            if scheme != self.scheme:
                self._loop_plans.clear()
            self.scheme = scheme
        if coloring_method is not None:
            self.coloring_method = coloring_method
            self.plans.clear()
            self._loop_plans.clear()
        if layout is not None:
            self.layout = _check_layout(layout)
        return self

    @property
    def stats(self) -> Dict[str, object]:
        return self.backend.stats

    def reset_stats(self) -> None:
        self.backend.reset_stats()

    def timing_report(self) -> str:
        """Per-kernel timing summary (OP2's ``op_timing_output``).

        One line per kernel: calls, total seconds, share of the loop
        time, and element throughput — the numbers the paper's per-kernel
        breakdown tables are built from.
        """
        stats = self.backend.stats
        total = sum(s.elapsed for s in stats.values()) or 1.0
        name_w = max([len(n) for n in stats] + [6])
        lines = [
            f"{'kernel'.ljust(name_w)}  {'calls':>6s}  {'time s':>9s}  "
            f"{'share':>6s}  {'Melem/s':>8s}",
        ]
        for name in sorted(stats, key=lambda n: -stats[n].elapsed):
            s = stats[name]
            rate = s.elements / s.elapsed / 1e6 if s.elapsed else 0.0
            lines.append(
                f"{name.ljust(name_w)}  {s.calls:6d}  {s.elapsed:9.4f}  "
                f"{s.elapsed / total:6.1%}  {rate:8.2f}"
            )
        lines.append(
            f"{'total'.ljust(name_w)}  {'':6s}  {total:9.4f}"
        )
        return "\n".join(lines)


#: Default module-level runtime used when par_loop is called without one.
_default_runtime = Runtime()


def default_runtime() -> Runtime:
    return _default_runtime


def set_backend(backend: Backend | str, **options) -> Runtime:
    """Switch the default runtime's backend (convenience for scripts)."""
    if isinstance(backend, str):
        backend = make_backend(backend, **options)
    return _default_runtime.configure(backend=backend)
