"""Runtime configuration: backend selection, plan caches, loop accounting.

OP2 separates the application (written once against the API) from the
backend chosen at build/run time; here the same separation is a runtime
:class:`Runtime` object.  A module-level default runtime keeps the common
case (serial experimentation) zero-ceremony, while benchmarks construct
isolated runtimes per configuration.

Four cache levels keep steady-state execution cheap:

1. the structural :class:`~repro.core.plan.PlanCache` (coloring reused by
   every loop with the same racing access structure),
2. a **loop cache** keyed by ``(kernel, set, args signature)`` — the
   exact call site — that skips even the signature normalization and
   returns the memoized plan directly.  Because plans memoize their
   whole-color phases and gather index arrays
   (:meth:`~repro.core.plan.Plan.phases`), a cache hit here means a
   repeated invocation rebuilds *no* index arrays at all; and
3. a **chain cache** keyed by the structural signature of a whole
   recorded loop sequence (:mod:`repro.core.chain`): a steady-state
   time step traced with ``with runtime.chain():`` replays a
   pre-analyzed, pre-fused schedule with zero re-analysis; and
4. the **kernel-compilation cache** (:mod:`repro.kernelc`): generated
   batched kernels memoized per (kernel, argument shape), so each
   kernel's vector form is derived from its scalar source exactly once
   per shape for the whole process.

All of them are LRU-bounded (configurable ``*_entries`` knobs) so
long-running processes cannot grow them without bound;
:meth:`Runtime.stats` exposes the hit/miss/eviction counters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from ..backends.autovec import AutoVecBackend
from ..backends.base import Backend
from ..backends.codegen import CodegenBackend
from ..backends.openmp import OpenMPBackend
from ..backends.sequential import SequentialBackend
from ..backends.simt import SIMTBackend
from ..backends.vectorized import VectorizedBackend
from .access import Arg
from .chain import CompiledChain, LoopChain, LoopSpec, compile_chain
from .dat import _check_layout
from .kernel import Kernel
from .plan import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_PLAN_CACHE_ENTRIES,
    Plan,
    PlanCache,
)
from .set import Set

#: Default LRU bound for the call-site loop cache.
DEFAULT_LOOP_CACHE_ENTRIES = 1024

#: Default LRU bound for the compiled-chain cache.
DEFAULT_CHAIN_CACHE_ENTRIES = 64


def loop_signature(kernel: Kernel, set_: Set, args: Sequence[Arg]) -> Tuple:
    """Hashable identity of one ``par_loop`` call site.

    Unlike :func:`~repro.core.plan.plan_signature` (which keys only the
    racing structure), this keys the full argument *shape* — maps, slots
    and access modes per position — so it can stand in for re-normalizing
    the arguments on every invocation.  Dat identity is deliberately
    excluded: plans depend on access structure, never on which Dat flows
    through it, and keying on Dats would grow the cache without bound for
    apps that allocate scratch Dats every time step.
    """
    return (
        kernel.name,
        set_._uid,
        tuple(
            (
                arg.map._uid if arg.map is not None else -1,
                arg.index,
                arg.access.name,
            )
            for arg in args
        ),
    )


def make_backend(name: str, **options) -> Backend:
    """Instantiate a backend by registry name.

    Names: ``sequential``, ``openmp``, ``vectorized``, ``simt``,
    ``autovec``, ``codegen``, ``native``.  Options are forwarded
    (``vec=`` for vectorized, ``device=`` for simt).
    """
    from ..backends.native import NativeBackend

    registry = {
        "sequential": SequentialBackend,
        "openmp": OpenMPBackend,
        "vectorized": VectorizedBackend,
        "simt": SIMTBackend,
        "autovec": AutoVecBackend,
        "codegen": CodegenBackend,
        "native": NativeBackend,
    }
    if name not in registry:
        raise KeyError(
            f"Unknown backend {name!r}; available: {sorted(registry)}"
        )
    return registry[name](**options)


class Runtime:
    """Execution context for parallel loops.

    Parameters
    ----------
    backend:
        Backend instance or registry name.
    block_size:
        Mini-partition size for plans (paper Fig 8b's tuning knob).
    scheme:
        Default execution ordering: ``two_level`` (original),
        ``full_permute`` or ``block_permute``.
    coloring_method:
        ``auto``, ``greedy`` (serial sweep) or ``jp`` (vectorized rounds).
    layout:
        Default :class:`~repro.core.dat.Dat` storage layout (``"aos"`` or
        ``"soa"``) the application drivers apply when allocating state;
        ``None`` leaves the process default untouched.
    plan_cache_entries / loop_cache_entries / chain_cache_entries:
        LRU bounds for the three cache levels (``None`` = unbounded).

    ``backend="auto"`` requests the auto-tuning runtime
    (:mod:`repro.tune`): execution starts on the vectorized default,
    and the first app driver constructed over this runtime negotiates
    ``(backend, layout, tile size, chained-vs-eager)`` — replaying a
    persisted decision when the tuning DB has one for this machine and
    workload, probing otherwise.  Explicit knobs (``layout=...``, a
    driver's ``chained=``/``tiling=``) are pins the tuner never
    overrides, and results stay bitwise identical to sequential eager
    whatever configuration wins.
    """

    def __init__(
        self,
        backend: Backend | str = "vectorized",
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme: str = "two_level",
        coloring_method: str = "auto",
        layout: Optional[str] = None,
        plan_cache_entries: Optional[int] = DEFAULT_PLAN_CACHE_ENTRIES,
        loop_cache_entries: Optional[int] = DEFAULT_LOOP_CACHE_ENTRIES,
        chain_cache_entries: Optional[int] = DEFAULT_CHAIN_CACHE_ENTRIES,
    ) -> None:
        #: True when constructed as ``Runtime("auto")``: app drivers
        #: will call :meth:`autotune` before their first step.
        self.autotune_requested = backend == "auto"
        if self.autotune_requested:
            backend = "vectorized"  # placeholder until a decision lands
        self.backend = (
            backend if isinstance(backend, Backend) else make_backend(backend)
        )
        self.block_size = int(block_size)
        self.scheme = scheme
        self.coloring_method = coloring_method
        #: Whether the caller pinned the layout explicitly (the tuner
        #: treats an explicit layout as non-negotiable).
        self.layout_explicit = layout is not None
        self.layout = _check_layout(layout) if layout is not None else None
        #: The tuner's decision applied to this runtime, if any.
        self.tuned_decision = None
        #: Always-on per-loop/per-chain instrumentation
        #: (``stats()["profile"]``); registration happens on loop-cache
        #: misses and chain flushes, so steady state pays nothing new.
        from ..tune.profile import RuntimeProfile

        self.profile = RuntimeProfile()
        self.plans = PlanCache(max_entries=plan_cache_entries)
        self.loop_cache_entries = loop_cache_entries
        self.chain_cache_entries = chain_cache_entries
        self._loop_plans: OrderedDict[Tuple, Plan] = OrderedDict()
        self.loop_cache_hits = 0
        self.loop_cache_misses = 0
        self.loop_cache_evictions = 0
        self._chains: OrderedDict[Tuple, CompiledChain] = OrderedDict()
        self.chain_cache_hits = 0
        self.chain_cache_misses = 0
        self.chain_cache_evictions = 0
        #: The LoopChain currently recording par_loop calls (``with
        #: runtime.chain():`` sets and clears this), or ``None``.
        self._active_chain: Optional[LoopChain] = None

    # ------------------------------------------------------------------
    def plan_for(self, kernel: Kernel, set_: Set, args: Sequence[Arg]) -> Plan:
        """Plan lookup for one call site, through the two-level cache.

        First consults the loop cache (exact call-site identity); on a
        miss, falls through to the structural :class:`PlanCache` (which
        may still hit — e.g. two kernels sharing a racing structure) and
        records the resolved plan under the call-site key.
        """
        key = loop_signature(kernel, set_, args)
        plan = self._loop_plans.get(key)
        if plan is not None:
            self.loop_cache_hits += 1
            self._loop_plans.move_to_end(key)
            return plan
        self.loop_cache_misses += 1
        # First sight of a loop shape: record its transfer profile (kind
        # + bytes-per-element estimate) for stats()["profile"] and the
        # tuner's model seeding.  Once per call site, never per step.
        self.profile.register_loop(kernel, set_, args)
        plan = self.plans.get(
            set_, args, self.block_size, self.scheme, self.coloring_method
        )
        self._loop_plans[key] = plan
        if self.loop_cache_entries is not None:
            while len(self._loop_plans) > self.loop_cache_entries:
                self._loop_plans.popitem(last=False)
                self.loop_cache_evictions += 1
        return plan

    # ------------------------------------------------------------------
    # Deferred execution (see core/chain.py).
    # ------------------------------------------------------------------
    def chain(self, tiling=None) -> LoopChain:
        """A fresh deferred-execution trace bound to this runtime.

        Use as a context manager: ``with runtime.chain() as ch:`` —
        ``par_loop`` calls against this runtime record instead of
        executing until the block exits (or a traced Dat/Global is read).

        ``tiling`` selects the sparse-tiled lowering
        (:mod:`repro.tiling`): ``"auto"`` picks a cache-sized seed tile,
        an int fixes the seed tile size, ``None`` (default) keeps the
        fused loop-major execution.  Results are bitwise identical in
        every mode.
        """
        return LoopChain(self, tiling=tiling)

    def compiled_chain_for(
        self, specs: Sequence[LoopSpec], tiling=None
    ) -> CompiledChain:
        """Compiled schedule for a trace, through the chain cache.

        The cache key is the tiling request plus the tuple of per-loop
        structural signatures (kernel, set, per-arg dat/map/slot/access
        identities, range), so a steady-state time step that re-records
        the same loop sequence replays its memoized schedule — no
        dependency analysis, fusion, tiling inspection or plan lookup
        at all — while tiled and untiled compilations of the same trace
        coexist as distinct cache entry kinds.
        """
        key = (tiling, tuple(spec.key() for spec in specs))
        compiled = self._chains.get(key)
        if compiled is not None:
            self.chain_cache_hits += 1
            self._chains.move_to_end(key)
            return compiled
        self.chain_cache_misses += 1
        compiled = self._load_or_compile_chain(specs, tiling)
        self._chains[key] = compiled
        if self.chain_cache_entries is not None:
            while len(self._chains) > self.chain_cache_entries:
                self._chains.popitem(last=False)
                self.chain_cache_evictions += 1
        return compiled

    def _load_or_compile_chain(
        self, specs: Sequence[LoopSpec], tiling
    ) -> CompiledChain:
        """Memory-miss path: persistent chain store, then compilation.

        A warm process decodes the persisted fusion/analysis decisions
        and rebinds them over the live trace (plans resolve through
        :meth:`plan_for`, whose structural cache has its own disk
        layer), attaching the tiled schedule from the tiled store —
        zero validation, dependency analysis, fusion or tiling
        inspection.  Decode failures count as corrupt and fall back to
        a full compile; traces with explicit plan overrides are
        unkeyable (``chain_key`` returns ``None``) and always compile.
        """
        from .. import store

        skey = store.chain_key(
            specs, tiling, self.block_size, self.scheme, self.coloring_method
        )
        cstore = store.store_for("chain")
        payload = cstore.get(skey)
        if payload is not None:
            try:
                plans = [
                    self.plan_for(s.kernel, s.set, s.args) for s in specs
                ]
                compiled = store.decode_chain(payload, specs, plans)
            except Exception:
                store.bump("chain", "corrupt")
                store.unlink_quiet(cstore.path_for(skey))
            else:
                object.__setattr__(compiled, "store_key", skey)
                if compiled.tiling is not None:
                    from .chain import load_or_build_tiled

                    object.__setattr__(
                        compiled,
                        "tiled",
                        load_or_build_tiled(
                            skey, compiled.loops, compiled.tile_size,
                            "phases",
                        ),
                    )
                return compiled
        store.count_build("chain")
        compiled = compile_chain(specs, self, tiling=tiling, store_key=skey)
        cstore.put(skey, store.encode_chain(compiled))
        return compiled

    def clear_caches(self) -> None:
        """Drop all cache levels (cold-start; used by the cache ablation)."""
        self.plans.clear()
        self._loop_plans.clear()
        self.loop_cache_hits = 0
        self.loop_cache_misses = 0
        self.loop_cache_evictions = 0
        self._chains.clear()
        self.chain_cache_hits = 0
        self.chain_cache_misses = 0
        self.chain_cache_evictions = 0

    def cache_stats(self) -> Dict[str, int]:
        """Counters for the caching ablation tables."""
        return {
            "loop_hits": self.loop_cache_hits,
            "loop_misses": self.loop_cache_misses,
            "plan_hits": self.plans.hits,
            "plan_misses": self.plans.misses,
            "plans": len(self.plans),
        }

    def stats(self) -> Dict[str, object]:
        """All runtime counters: the seven cache kinds, backend
        per-kernel timings, and the loop/chain profile.

        Every cache kind reports the canonical ``hits`` / ``misses`` /
        ``evictions`` / ``entries`` / ``max_entries`` schema
        (kind-specific extras ride alongside; the native cache keeps
        its historical ``compiles``/``disk_hits``/``mem_hits`` keys as
        deprecated aliases) — the observability surface for
        long-running processes (are my caches sized right? is steady
        state hitting?).  The six persistent kinds (plan, chain, tiled,
        kernelc, native, tune) additionally carry a ``store`` sub-dict
        with the uniform disk-layer counters of :mod:`repro.store`
        (``disk_hits`` / ``disk_misses`` / ``writes`` / ``corrupt`` /
        ``evictions`` / ``builds`` + ``disk_entries``) — the loop cache
        has none because call-site identity cannot persist.  The
        warm-start CI job asserts over these: a second process running
        an identical workload must show ``disk_hits > 0`` and
        ``builds == 0`` per kind.  ``profile`` joins the per-loop
        transfer estimates with the backend's measured timings;
        ``tune_cache`` covers the persistent tuning DB.
        """
        from .. import store as artifact_store
        from ..kernelc import cache_stats
        from ..kernelc.native import native_cache_stats
        from ..tune.store import tune_cache_stats

        def with_store(d: Dict[str, object], kind: str) -> Dict[str, object]:
            d = dict(d)
            d["store"] = artifact_store.store_stats(kind)
            return d

        native = dict(native_cache_stats())
        # Normalized aliases over the historical counter names: a disk
        # or memory hit is a hit; a compile (cold fill) or failed
        # compile is a miss; sha-keyed content addressing never evicts
        # in memory (the disk layer's mtime-LRU reports via "store").
        native["hits"] = native["mem_hits"] + native["disk_hits"]
        native["misses"] = native["compiles"] + native["failures"]
        native["evictions"] = 0
        native["max_entries"] = None

        # Tiled schedules have no in-memory LRU of their own (they live
        # on the compiled chains that own them), so the canonical keys
        # mirror the disk layer.
        tiled_store = artifact_store.store_stats("tiled")

        return {
            "loop_cache": {
                "hits": self.loop_cache_hits,
                "misses": self.loop_cache_misses,
                "evictions": self.loop_cache_evictions,
                "entries": len(self._loop_plans),
                "max_entries": self.loop_cache_entries,
            },
            "plan_cache": with_store({
                "hits": self.plans.hits,
                "misses": self.plans.misses,
                "evictions": self.plans.evictions,
                "entries": len(self.plans),
                "max_entries": self.plans.max_entries,
            }, "plan"),
            "chain_cache": with_store({
                "hits": self.chain_cache_hits,
                "misses": self.chain_cache_misses,
                "evictions": self.chain_cache_evictions,
                "entries": len(self._chains),
                "max_entries": self.chain_cache_entries,
            }, "chain"),
            "tiled_cache": {
                "hits": tiled_store["disk_hits"],
                "misses": tiled_store["disk_misses"],
                "evictions": tiled_store["evictions"],
                "entries": tiled_store["disk_entries"],
                "max_entries": tiled_store["max_entries"],
                "store": tiled_store,
            },
            # Kernel-compilation cache (repro.kernelc): process-wide,
            # since generated kernels depend only on (kernel, shape).
            "kernelc_cache": with_store(cache_stats(), "kernelc"),
            # Native chain-compilation cache (repro.kernelc.native):
            # process-wide in memory, content-hash keyed on disk.
            "native_cache": with_store(native, "native"),
            # Persistent tuning DB (repro.tune.store): cross-process,
            # keyed by (machine, chain signature).
            "tune_cache": with_store(tune_cache_stats(), "tune"),
            "kernels": dict(self.backend.stats),
            "profile": self.profile.snapshot(self.backend.stats),
        }

    # ------------------------------------------------------------------
    def configure(
        self,
        backend: Optional[Backend | str] = None,
        block_size: Optional[int] = None,
        scheme: Optional[str] = None,
        coloring_method: Optional[str] = None,
        layout: Optional[str] = None,
    ) -> "Runtime":
        """Update settings in place; plans are invalidated as needed."""
        if backend is not None:
            self.backend = (
                backend if isinstance(backend, Backend) else make_backend(backend)
            )
        if block_size is not None and block_size != self.block_size:
            self.block_size = int(block_size)
            self._loop_plans.clear()
            self._chains.clear()
        if scheme is not None:
            if scheme != self.scheme:
                self._loop_plans.clear()
                self._chains.clear()
            self.scheme = scheme
        if coloring_method is not None:
            self.coloring_method = coloring_method
            self.plans.clear()
            self._loop_plans.clear()
            self._chains.clear()
        if layout is not None:
            self.layout = _check_layout(layout)
        return self

    # ------------------------------------------------------------------
    # Auto-tuning (see repro/tune).
    # ------------------------------------------------------------------
    def apply_decision(self, decision) -> "Runtime":
        """Install a :class:`~repro.tune.TuneDecision` on this runtime.

        Backend and layout are runtime-wide; the chained/tiling half of
        a decision lives on the sims (``repro.tune.apps`` applies it).
        """
        self.configure(backend=decision.backend, layout=decision.layout)
        self.tuned_decision = decision
        return self

    def autotune(self, sim=None, *, signature=None, probe=None,
                 candidates=None, pins=None, store=None):
        """Negotiate this runtime's configuration (see :mod:`repro.tune`).

        ``runtime.autotune(sim)`` tunes for an app driver's workload —
        the same path ``backend="auto"`` triggers implicitly.  The
        keyword form negotiates a raw ``(signature, probe)`` pair for
        custom workloads; either way the winning decision is applied to
        this runtime and returned.
        """
        from ..tune import Tuner, autotune_sim

        if sim is not None:
            return autotune_sim(sim, runtime=self)
        if signature is None:
            raise ValueError("autotune() needs a sim or a signature")
        tuner = Tuner(store=store) if store is not None else Tuner()
        decision = tuner.negotiate(
            signature, probe=probe, candidates=candidates, pins=pins,
            loop_infos=self.profile.loop_infos(),
        )
        self.apply_decision(decision)
        return decision

    def reset_stats(self) -> None:
        self.backend.reset_stats()

    def timing_report(self) -> str:
        """Per-kernel timing summary (OP2's ``op_timing_output``).

        One line per kernel: calls, total seconds, share of the loop
        time, and element throughput — the numbers the paper's per-kernel
        breakdown tables are built from.
        """
        stats = self.backend.stats
        total = sum(s.elapsed for s in stats.values()) or 1.0
        name_w = max([len(n) for n in stats] + [6])
        lines = [
            f"{'kernel'.ljust(name_w)}  {'calls':>6s}  {'time s':>9s}  "
            f"{'share':>6s}  {'Melem/s':>8s}",
        ]
        for name in sorted(stats, key=lambda n: -stats[n].elapsed):
            s = stats[name]
            rate = s.elements / s.elapsed / 1e6 if s.elapsed else 0.0
            lines.append(
                f"{name.ljust(name_w)}  {s.calls:6d}  {s.elapsed:9.4f}  "
                f"{s.elapsed / total:6.1%}  {rate:8.2f}"
            )
        lines.append(
            f"{'total'.ljust(name_w)}  {'':6s}  {total:9.4f}"
        )
        return "\n".join(lines)


#: Default module-level runtime used when par_loop is called without one.
_default_runtime = Runtime()


def default_runtime() -> Runtime:
    return _default_runtime


def set_backend(backend: Backend | str, **options) -> Runtime:
    """Switch the default runtime's backend (convenience for scripts)."""
    if isinstance(backend, str):
        backend = make_backend(backend, **options)
    return _default_runtime.configure(backend=backend)
