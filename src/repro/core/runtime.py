"""Runtime configuration: backend selection, plan cache, loop accounting.

OP2 separates the application (written once against the API) from the
backend chosen at build/run time; here the same separation is a runtime
:class:`Runtime` object.  A module-level default runtime keeps the common
case (serial experimentation) zero-ceremony, while benchmarks construct
isolated runtimes per configuration.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..backends.autovec import AutoVecBackend
from ..backends.base import Backend
from ..backends.openmp import OpenMPBackend
from .codegen import CodegenBackend
from ..backends.sequential import SequentialBackend
from ..backends.simt import SIMTBackend
from ..backends.vectorized import VectorizedBackend
from .plan import DEFAULT_BLOCK_SIZE, PlanCache


def make_backend(name: str, **options) -> Backend:
    """Instantiate a backend by registry name.

    Names: ``sequential``, ``openmp``, ``vectorized``, ``simt``,
    ``autovec``, ``codegen``.  Options are forwarded (``vec=`` for
    vectorized, ``device=`` for simt).
    """
    registry = {
        "sequential": SequentialBackend,
        "openmp": OpenMPBackend,
        "vectorized": VectorizedBackend,
        "simt": SIMTBackend,
        "autovec": AutoVecBackend,
        "codegen": CodegenBackend,
    }
    if name not in registry:
        raise KeyError(
            f"Unknown backend {name!r}; available: {sorted(registry)}"
        )
    return registry[name](**options)


class Runtime:
    """Execution context for parallel loops.

    Parameters
    ----------
    backend:
        Backend instance or registry name.
    block_size:
        Mini-partition size for plans (paper Fig 8b's tuning knob).
    scheme:
        Default execution ordering: ``two_level`` (original),
        ``full_permute`` or ``block_permute``.
    coloring_method:
        ``auto``, ``greedy`` (serial sweep) or ``jp`` (vectorized rounds).
    """

    def __init__(
        self,
        backend: Backend | str = "vectorized",
        block_size: int = DEFAULT_BLOCK_SIZE,
        scheme: str = "two_level",
        coloring_method: str = "auto",
    ) -> None:
        self.backend = (
            backend if isinstance(backend, Backend) else make_backend(backend)
        )
        self.block_size = int(block_size)
        self.scheme = scheme
        self.coloring_method = coloring_method
        self.plans = PlanCache()

    # ------------------------------------------------------------------
    def configure(
        self,
        backend: Optional[Backend | str] = None,
        block_size: Optional[int] = None,
        scheme: Optional[str] = None,
        coloring_method: Optional[str] = None,
    ) -> "Runtime":
        """Update settings in place; plans are invalidated as needed."""
        if backend is not None:
            self.backend = (
                backend if isinstance(backend, Backend) else make_backend(backend)
            )
        if block_size is not None and block_size != self.block_size:
            self.block_size = int(block_size)
        if scheme is not None:
            self.scheme = scheme
        if coloring_method is not None:
            self.coloring_method = coloring_method
            self.plans.clear()
        return self

    @property
    def stats(self) -> Dict[str, object]:
        return self.backend.stats

    def reset_stats(self) -> None:
        self.backend.reset_stats()

    def timing_report(self) -> str:
        """Per-kernel timing summary (OP2's ``op_timing_output``).

        One line per kernel: calls, total seconds, share of the loop
        time, and element throughput — the numbers the paper's per-kernel
        breakdown tables are built from.
        """
        stats = self.backend.stats
        total = sum(s.elapsed for s in stats.values()) or 1.0
        name_w = max([len(n) for n in stats] + [6])
        lines = [
            f"{'kernel'.ljust(name_w)}  {'calls':>6s}  {'time s':>9s}  "
            f"{'share':>6s}  {'Melem/s':>8s}",
        ]
        for name in sorted(stats, key=lambda n: -stats[n].elapsed):
            s = stats[name]
            rate = s.elements / s.elapsed / 1e6 if s.elapsed else 0.0
            lines.append(
                f"{name.ljust(name_w)}  {s.calls:6d}  {s.elapsed:9.4f}  "
                f"{s.elapsed / total:6.1%}  {rate:8.2f}"
            )
        lines.append(
            f"{'total'.ljust(name_w)}  {'':6s}  {total:9.4f}"
        )
        return "\n".join(lines)


#: Default module-level runtime used when par_loop is called without one.
_default_runtime = Runtime()


def default_runtime() -> Runtime:
    return _default_runtime


def set_backend(backend: Backend | str, **options) -> Runtime:
    """Switch the default runtime's backend (convenience for scripts)."""
    if isinstance(backend, str):
        backend = make_backend(backend, **options)
    return _default_runtime.configure(backend=backend)
