"""Access descriptors for :func:`repro.core.loop.par_loop` arguments.

This mirrors the OP2 ``op_arg_dat`` / ``op_arg_gbl`` API from the paper
(Section 3): every argument to a parallel loop declares *what* data it
touches, *through which* mapping (if any) and *how* it is accessed.  The
access mode is what lets the runtime detect potential data races (indirect
``INC``/``RW``/``WRITE``) and build a race-free execution plan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .dat import Dat
    from .glob import Global
    from .map import Map


class Access(enum.Enum):
    """How a parallel-loop argument accesses its data.

    Matches OP2's ``OP_READ``/``OP_WRITE``/``OP_RW``/``OP_INC`` plus the
    global-reduction modes ``OP_MIN``/``OP_MAX`` used by Volna's
    ``numerical_flux`` (minimum time step) and Airfoil's ``update``
    (residual sum).
    """

    READ = "read"
    WRITE = "write"
    RW = "rw"
    INC = "inc"
    MIN = "min"
    MAX = "max"

    @property
    def writes(self) -> bool:
        """True if this access may modify the underlying data."""
        return self is not Access.READ

    @property
    def reads(self) -> bool:
        """True if this access observes existing values."""
        return self not in (Access.WRITE,)

    @property
    def is_reduction(self) -> bool:
        """True for commutative-reduction accesses (INC/MIN/MAX)."""
        return self in (Access.INC, Access.MIN, Access.MAX)


#: Module-level aliases so applications can write ``READ`` instead of
#: ``Access.READ`` — mirroring OP2's C macros.
READ = Access.READ
WRITE = Access.WRITE
RW = Access.RW
INC = Access.INC
MIN = Access.MIN
MAX = Access.MAX


#: Sentinel index meaning "no indirection": the dat lives on the iteration
#: set itself (OP2 uses ``OP_ID`` with index -1).
IDX_ID = -1

#: Sentinel index meaning "all map indices at once" — the kernel receives a
#: ``(arity, dim)`` view (OP2's ``OP_ALL`` vector-argument extension).
IDX_ALL = -2


@dataclass(frozen=True)
class Arg:
    """A fully-described parallel-loop argument.

    Parameters
    ----------
    dat:
        The :class:`~repro.core.dat.Dat` or :class:`~repro.core.glob.Global`
        being accessed.
    index:
        Which slot of the mapping to use (``0 .. map.arity-1``), or
        :data:`IDX_ID` for direct access, or :data:`IDX_ALL` for a
        vector-argument covering every slot.
    map:
        The :class:`~repro.core.map.Map` used for indirection, or ``None``
        for direct/global arguments.
    access:
        The :class:`Access` mode.
    """

    dat: object
    index: int
    map: Optional[object]
    access: Access

    def __post_init__(self) -> None:
        from .dat import Dat
        from .glob import Global
        from .map import Map

        if isinstance(self.dat, Global):
            if self.map is not None:
                raise ValueError("Global arguments cannot use a mapping")
            if self.access in (Access.WRITE, Access.RW):
                raise ValueError(
                    "Global arguments must be READ or a reduction (INC/MIN/MAX)"
                )
            return
        if not isinstance(self.dat, Dat):
            raise TypeError(f"Arg dat must be a Dat or Global, got {type(self.dat)!r}")
        if self.map is not None:
            if not isinstance(self.map, Map):
                raise TypeError(f"Arg map must be a Map, got {type(self.map)!r}")
            if self.map.to_set is not self.dat.set:
                raise ValueError(
                    f"Map {self.map.name!r} targets set {self.map.to_set.name!r} "
                    f"but dat {self.dat.name!r} lives on {self.dat.set.name!r}"
                )
            if self.index == IDX_ID:
                raise ValueError("Indirect arguments need an index >= 0 or IDX_ALL")
            if self.index != IDX_ALL and not (0 <= self.index < self.map.arity):
                raise ValueError(
                    f"Map index {self.index} out of range for arity {self.map.arity}"
                )
        else:
            if self.index not in (IDX_ID,):
                raise ValueError("Direct arguments must use index IDX_ID (-1)")

    # ------------------------------------------------------------------
    # Classification helpers used by the planner and the backends.
    # ------------------------------------------------------------------
    @property
    def is_global(self) -> bool:
        from .glob import Global

        return isinstance(self.dat, Global)

    @property
    def is_direct(self) -> bool:
        return not self.is_global and self.map is None

    @property
    def is_indirect(self) -> bool:
        return self.map is not None

    @property
    def is_vector(self) -> bool:
        """True when the argument passes every map slot at once."""
        return self.index == IDX_ALL

    @property
    def races(self) -> bool:
        """True when this argument can cause inter-element data races.

        Indirect modified data is the only source of races in the OP2 model:
        two iteration-set elements may map to the same target element.
        """
        return self.is_indirect and self.access.writes

    def describe(self) -> str:
        """Human-readable one-line summary (for plan debugging)."""
        if self.is_global:
            return f"gbl({self.dat.name}, {self.access.name})"
        if self.is_direct:
            return f"dat({self.dat.name}, direct, {self.access.name})"
        idx = "ALL" if self.is_vector else str(self.index)
        return f"dat({self.dat.name}, {self.map.name}[{idx}], {self.access.name})"


def arg_dat(dat, index: int, map_, access: Access) -> Arg:
    """OP2-style ``op_arg_dat`` constructor.

    ``arg_dat(p_x, 0, edge2node, READ)`` reads ``p_x`` through slot 0 of the
    ``edge2node`` map; ``arg_dat(p_q, IDX_ID, None, READ)`` reads directly.
    """
    return Arg(dat=dat, index=index, map=map_, access=access)


def arg_gbl(glob, access: Access) -> Arg:
    """OP2-style ``op_arg_gbl`` constructor for global reductions/constants."""
    return Arg(dat=glob, index=IDX_ID, map=None, access=access)
