"""``par_loop`` — the OP2 parallel-loop entry point (paper Fig 2a).

Dispatches an elementary kernel over every element of a set, with data
access fully described by :class:`~repro.core.access.Arg` descriptors.
The runtime builds (or fetches from cache) a race-free execution plan and
hands off to the configured backend.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .access import Arg
from .kernel import Kernel
from .plan import Plan
from .runtime import Runtime, default_runtime
from .set import Set


def validate_loop(kernel: Kernel, set_: Set, args: Sequence[Arg]) -> None:
    """Static checks OP2's code generator would perform."""
    if not isinstance(kernel, Kernel):
        raise TypeError(f"par_loop expects a Kernel, got {type(kernel)!r}")
    if not isinstance(set_, Set):
        raise TypeError(f"par_loop expects a Set, got {type(set_)!r}")
    for i, arg in enumerate(args):
        if not isinstance(arg, Arg):
            raise TypeError(f"argument {i} is not an Arg (use arg_dat/arg_gbl)")
        if arg.is_global:
            continue
        if arg.is_direct:
            if arg.dat.set is not set_:
                raise ValueError(
                    f"direct argument {i} ({arg.dat.name!r}) lives on set "
                    f"{arg.dat.set.name!r}, loop iterates {set_.name!r}"
                )
        else:
            if arg.map.from_set is not set_:
                raise ValueError(
                    f"indirect argument {i} maps from {arg.map.from_set.name!r}, "
                    f"loop iterates {set_.name!r}"
                )


def par_loop(
    kernel: Kernel,
    set_: Set,
    *args: Arg,
    runtime: Optional[Runtime] = None,
    n_elements: Optional[int] = None,
    start_element: int = 0,
    plan: Optional[Plan] = None,
) -> None:
    """Execute ``kernel`` for every element of ``set_``.

    Parameters
    ----------
    kernel:
        The elementary :class:`~repro.core.kernel.Kernel`.
    set_:
        Iteration set.
    args:
        One :class:`~repro.core.access.Arg` per kernel parameter, in
        kernel-signature order (built with ``arg_dat`` / ``arg_gbl``).
    runtime:
        Execution context; the module default when omitted.
    n_elements:
        Restrict execution to a prefix of the set (used by the MPI
        substrate to skip halo elements on direct loops).
    start_element:
        Skip a prefix (the MPI substrate's core/boundary overlap split).
    plan:
        Pre-built plan override (used by ablation benchmarks).

    Deferred execution
    ------------------
    When the runtime has an active :class:`~repro.core.chain.LoopChain`
    (``with runtime.chain():``), the call *records* instead of
    executing.  Both validation and execution then happen at the
    chain's flush point (block exit, or the first host read of a
    touched Dat/Global) — validation once per distinct trace signature,
    so a malformed loop raises at its trace's first flush rather than
    at this call site.  Results are bitwise identical either way.
    """
    rt = runtime if runtime is not None else default_runtime()
    ch = rt._active_chain
    if ch is not None:
        ch.record(
            kernel, set_, args,
            n_elements=n_elements, start_element=start_element, plan=plan,
        )
        return
    validate_loop(kernel, set_, args)
    if plan is None:
        # Two-level lookup: call-site loop cache, then structural plan
        # cache (see core/runtime.py) — a warm hit re-derives nothing.
        plan = rt.plan_for(kernel, set_, args)
    rt.backend.execute(
        kernel, set_, args, plan,
        n_elements=n_elements, start_element=start_element,
    )
