"""Deferred-execution loop chains — trace, fuse, and batch ``par_loop``s.

The paper's speedups come from doing expensive analysis once and
amortizing it over many identical time steps.  The eager path already
caches plans per call site, but it still validates, dispatches and
synchronizes every loop independently.  A :class:`LoopChain` treats a
*sequence* of loops as the unit of execution instead (Luporini et al.'s
"loop chain" abstraction, PAPERS.md), traced Dr.Jit-style::

    with runtime.chain():
        par_loop(save_soln, cells, ...)     # recorded, not executed
        par_loop(adt_calc, cells, ...)
        ...
    # exit (or any read of a traced Dat/Global) flushes the chain

Recording is cheap: each ``par_loop`` becomes a :class:`LoopSpec` node.
At flush time the chain is *compiled* — dependency analysis
(:func:`analyze_dependencies`), fusion of adjacent compatible loops
(:func:`fusion_groups`), plan resolution through the runtime's two cache
levels — and the compiled schedule is handed to the backend's
:meth:`~repro.backends.base.Backend.run_chain` entry point.  Compiled
chains are memoized on the runtime by structural signature (the *third*
cache level, above the loop cache), so a steady-state time step replays
a pre-analyzed, pre-fused schedule with zero re-analysis.

Flush points
------------
A chain flushes when

1. the ``with`` block exits (the normal case),
2. any Dat or Global *touched by a recorded loop* is accessed from host
   code — :attr:`Dat.data` / :attr:`Global.value` carry a version
   barrier that forces the pending loops to execute first, so a stale
   read is impossible, or
3. :meth:`LoopChain.flush` is called explicitly.

An exception inside the ``with`` block *discards* the recorded loops
(they never executed, so no partial state exists).

Dependency analysis
-------------------
Edges between recorded loops follow the classical hazards over the data
objects they touch: RAW (read after write), WAR (write after read) and
WAW (write after write) all order loops, with one relaxation —
**commuting reductions**: two ``INC`` (or two ``MIN``, or two ``MAX``)
accesses to the same data commute, so back-to-back increment loops (e.g.
Airfoil's ``res_calc`` → ``bres_calc`` both incrementing ``p_res``)
carry no edge and share a dependency frontier.  Frontiers drive the MPI
substrate's batched halo exchanges
(:meth:`repro.mpi.decomposition.DistContext.chain`): one coalesced
exchange per frontier instead of one per loop.

Fusion legality
---------------
Adjacent loops fuse into one :class:`FusedGroup` (executed
phase-interleaved by the batched backends, sharing coloring and cached
gather-index arrays) only when the fusion is *provably bitwise
identical* to eager execution:

1. same iteration set and the same ``[start, n)`` range;
2. identical plan (same structural plan signature — trivially true when
   both loops are race-free/direct);
3. every Dat accessed by two fused loops where at least one access
   writes must be accessed **directly** by both (element ``e`` only
   touches row ``e``, so per-phase interleaving preserves each
   element's read-after-write order exactly);
4. a Global reduced by one fused loop may not be read by another, and
   two loops reducing the same Global must use the same reduction mode
   (per-loop accumulators are folded in loop order, as eager does).

Anything else stays a singleton group and executes exactly as the eager
path would — the conservative fallback keeps chained execution bitwise
identical to eager on every backend, which the test suite asserts over
the full backend × layout matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .access import Access, Arg
from .kernel import Kernel
from .plan import Plan
from .set import Set

#: Reduction modes that commute with themselves (no dependency edge
#: between two loops applying the same mode to the same data).
_COMMUTING = (Access.INC, Access.MIN, Access.MAX)


def _token(arg: Arg) -> Tuple[str, int]:
    """Identity of the data object an argument touches."""
    return ("g" if arg.is_global else "d", arg.dat._uid)


@dataclass(frozen=True)
class LoopSpec:
    """One recorded (deferred) ``par_loop`` invocation."""

    kernel: Kernel
    set: Set
    args: Tuple[Arg, ...]
    n: int
    start: int
    plan: Optional[Plan] = None

    def key(self) -> Tuple:
        """Hashable structural identity (kernel, set, args, range).

        Dats/maps hash by identity, so a steady-state time step that
        re-records the same loops produces the same key — the chain
        cache's hit condition.  Scratch Dats allocated per step change
        the key and correctly force a re-compile.
        """
        return (
            self.kernel,
            self.set,
            tuple(
                (arg.dat, arg.map, arg.index, arg.access)
                for arg in self.args
            ),
            self.n,
            self.start,
            # Plans hold numpy arrays (no value hash); identity is the
            # right notion anyway — a pre-built override plan is reused
            # by object.
            id(self.plan) if self.plan is not None else None,
        )


@dataclass(frozen=True)
class ChainAnalysis:
    """Dependency structure of one recorded loop sequence.

    ``edges`` holds ``(i, j)`` pairs meaning loop ``i`` must execute
    before loop ``j``; ``levels[i]`` is the longest-path depth of loop
    ``i`` in that DAG; ``frontiers`` groups *consecutive* loops of equal
    level — mutually independent batches whose halo exchanges the MPI
    substrate coalesces into one message per rank pair.
    """

    edges: frozenset
    levels: Tuple[int, ...]
    frontiers: Tuple[Tuple[int, ...], ...]


def analyze_dependencies(specs: Sequence[LoopSpec]) -> ChainAnalysis:
    """RAW/WAR/WAW hazard analysis over a recorded loop sequence.

    Commuting reductions (INC-INC, MIN-MIN, MAX-MAX on the same data)
    produce no edge; every other write-involved sharing does.  Analysis
    is conservative about indirection: a write through *any* map
    conflicts with any other access of the same Dat, because two
    iteration-set elements may reach the same target row.
    """
    edges = set()
    # Per data token: the last plain writer, reductions applied since
    # then, and plain readers since then.
    last_write: Dict[Tuple[str, int], int] = {}
    reducers: Dict[Tuple[str, int], List[Tuple[int, Access]]] = {}
    readers: Dict[Tuple[str, int], List[int]] = {}

    def edge(i: int, j: int) -> None:
        if i != j:
            edges.add((i, j))

    for i, spec in enumerate(specs):
        for arg in spec.args:
            tok = _token(arg)
            acc = arg.access
            if acc in _COMMUTING:
                if tok in last_write:
                    edge(last_write[tok], i)
                for j, mode in reducers.get(tok, ()):  # mixed modes order
                    if mode is not acc:
                        edge(j, i)
                for j in readers.get(tok, ()):  # WAR
                    edge(j, i)
                reducers.setdefault(tok, []).append((i, acc))
            elif acc.writes:  # WRITE / RW
                if tok in last_write:  # WAW
                    edge(last_write[tok], i)
                for j, _ in reducers.get(tok, ()):
                    edge(j, i)
                for j in readers.get(tok, ()):  # WAR
                    edge(j, i)
                last_write[tok] = i
                reducers[tok] = []
                readers[tok] = []
            else:  # READ
                if tok in last_write:  # RAW
                    edge(last_write[tok], i)
                for j, _ in reducers.get(tok, ()):  # read-after-reduce
                    edge(j, i)
                readers.setdefault(tok, []).append(i)

    levels = []
    for i in range(len(specs)):
        preds = [levels[j] for (j, k) in edges if k == i]
        levels.append(max(preds) + 1 if preds else 0)

    frontiers: List[List[int]] = []
    for i, lvl in enumerate(levels):
        if frontiers and levels[frontiers[-1][-1]] == lvl:
            frontiers[-1].append(i)
        else:
            frontiers.append([i])

    return ChainAnalysis(
        edges=frozenset(edges),
        levels=tuple(levels),
        frontiers=tuple(tuple(f) for f in frontiers),
    )


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def pair_fusable(a: LoopSpec, b: LoopSpec) -> bool:
    """Whether two loops may execute phase-interleaved bitwise-safely.

    Implements legality rules 3 and 4 of the module docstring (set /
    range / plan compatibility are the group's responsibility).
    """
    touched: Dict[Tuple[str, int], List[Arg]] = {}
    for arg in a.args:
        touched.setdefault(_token(arg), []).append(arg)
    for arg in b.args:
        for other in touched.get(_token(arg), ()):
            if not (arg.access.writes or other.access.writes):
                continue  # concurrent reads never conflict
            if arg.is_global:
                # Same-mode reductions fold per-loop accumulators in
                # loop order — identical to eager.  Anything else
                # (read vs reduce, mixed modes) must not interleave.
                if not (
                    arg.access is other.access
                    and arg.access.is_reduction
                ):
                    return False
            else:
                # Elementwise (direct-direct) dependencies survive
                # phase interleaving; anything through a map may cross
                # elements and must keep whole-loop ordering.
                if not (arg.is_direct and other.is_direct):
                    return False
    return True


def fusion_groups(
    specs: Sequence[LoopSpec], plans: Sequence[Plan]
) -> List[List[int]]:
    """Partition the trace into maximal runs of fusable adjacent loops.

    Order is never changed: groups are consecutive index runs, and a
    loop joins the open group only if it is fusable against *every*
    member (legality is pairwise but must hold group-wide).
    """
    groups: List[List[int]] = []
    for i, spec in enumerate(specs):
        if groups:
            g = groups[-1]
            head = specs[g[0]]
            if (
                spec.set is head.set
                and spec.n == head.n
                and spec.start == head.start
                and plans[i] is plans[g[0]]
                and all(pair_fusable(specs[j], spec) for j in g)
            ):
                g.append(i)
                continue
        groups.append([i])
    return groups


# ----------------------------------------------------------------------
# Compiled form
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundLoop:
    """A recorded loop with its plan resolved — ready to execute."""

    kernel: Kernel
    set: Set
    args: Tuple[Arg, ...]
    plan: Plan
    n: int
    start: int


@dataclass(frozen=True)
class FusedGroup:
    """A maximal run of fusable loops sharing one plan and range.

    Batched backends execute a multi-loop group phase-interleaved (one
    pass over the plan's conflict-free phases, running every loop's
    gather → kernel → scatter per phase, sharing the phase's cached
    gather-index arrays); everything else executes the loops in order.
    """

    loops: Tuple[BoundLoop, ...]
    plan: Plan
    n: int
    start: int

    @property
    def fused(self) -> bool:
        return len(self.loops) > 1


@dataclass(frozen=True)
class CompiledChain:
    """A pre-analyzed schedule for one trace signature.

    Carries one or two lowerings of the same trace:

    * the **fused program** (``groups``) — loop-major execution with
      adjacent compatible loops phase-interleaved; always present;
    * optionally a **tiled schedule** (``tiled``) — the sparse-tiling
      inspector's tile-major decomposition (:mod:`repro.tiling`),
      present when the chain was traced with ``tiling=``.  Backends
      execute it through :meth:`~repro.backends.base.Backend.run_tiled`
      (falling back to the fused program when they cannot slice
      bitwise-safely).
    """

    groups: Tuple[FusedGroup, ...]
    analysis: ChainAnalysis
    #: The ``tiling=`` request this chain was compiled under
    #: (``None`` | ``"auto"`` | int) — part of the cache key.
    tiling: object = None
    #: Resolved seed tile size (0 when untiled).
    tile_size: int = 0
    #: Canonical (``"phases"`` profile) tiled schedule, or ``None``.
    tiled: object = None
    #: Persistent-store key of this chain (:func:`repro.store.chain_key`),
    #: or ``None`` for unkeyable traces (explicit plan overrides).  Set
    #: by the runtime; lazily-built tiled profiles use it to consult the
    #: tiled store before re-running the inspector.
    store_key: Optional[str] = field(default=None, compare=False, repr=False)
    #: Per-backend prepared executor programs (populated lazily by
    #: backends that specialize replay, e.g. the vectorized backend's
    #: prebound gather/kernel/scatter closures).  Keyed by backend
    #: instance; invalidated with the chain cache itself.
    exec_cache: Dict = field(default_factory=dict, compare=False, repr=False)
    #: Lazily-built tiled schedules for non-canonical element orders
    #: (the scalar backends' ``"ascending"`` profile).
    _tiled_profiles: Dict = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def n_loops(self) -> int:
        return sum(len(g.loops) for g in self.groups)

    @property
    def loops(self) -> Tuple[BoundLoop, ...]:
        """The flat plan-resolved loop list, recorded order."""
        return tuple(bl for g in self.groups for bl in g.loops)

    def tiled_for(self, profile: str):
        """The tiled schedule sliced against one eager element order.

        ``"phases"`` returns the canonical schedule built at compile
        time; other profiles are produced by re-running the inspector
        against that profile's element order (memoized — the cuts
        differ per order because bitwise identity requires slicing each
        backend's *own* eager sequence contiguously).  ``None`` when
        the chain was not compiled with tiling.
        """
        if self.tiled is None:
            return None
        if profile == "phases":
            return self.tiled
        sched = self._tiled_profiles.get(profile)
        if sched is None:
            sched = load_or_build_tiled(
                self.store_key, self.loops, self.tile_size, profile
            )
            self._tiled_profiles[profile] = sched
        return sched


def load_or_build_tiled(store_key, loops, tile_size: int, profile: str):
    """One tiled schedule, through the persistent ``tiled`` store.

    A warm process replays the inspector's slicing decisions from disk
    — zero tiling inspection; a cold (or unkeyable: ``store_key=None``)
    one runs the inspector, counts the build, and persists the result.
    """
    from .. import store
    from ..tiling import build_tiled_schedule

    tstore = store.store_for("tiled")
    tkey = (
        store.tiled_key(store_key, tile_size, profile)
        if store_key is not None
        else None
    )
    payload = tstore.get(tkey)
    if payload is not None:
        try:
            return store.decode_tiled(payload)
        except Exception:
            store.bump("tiled", "corrupt")
            store.unlink_quiet(tstore.path_for(tkey))
    store.count_build("tiled")
    sched = build_tiled_schedule(loops, tile_size, profile=profile)
    tstore.put(tkey, store.encode_tiled(sched))
    return sched


def compile_chain(
    specs: Sequence[LoopSpec], runtime, tiling=None, store_key=None
) -> CompiledChain:
    """Validate, resolve plans, fuse, analyze — and optionally tile.

    Validation happens here — once per distinct trace signature —
    rather than per recorded call: a malformed loop raises at the first
    flush of the trace containing it, and a memoized replay (which by
    construction re-records a previously validated sequence) pays no
    validation at all.

    With ``tiling`` (``"auto"`` or a seed tile size) the sparse-tiling
    inspector additionally lowers the trace into a
    :class:`~repro.tiling.schedule.TiledSchedule` attached to the
    result; the runtime's chain cache keys on the tiling request, so
    tiled and untiled compilations of the same trace coexist.
    """
    from .loop import validate_loop

    for spec in specs:
        validate_loop(spec.kernel, spec.set, spec.args)
        # Same range check Backend.execute performs — the prepared
        # replay programs bypass execute, and a chained loop must fail
        # exactly where its eager twin would.
        if not (0 <= spec.start <= spec.n):
            raise ValueError(
                f"start_element {spec.start} outside [0, {spec.n}]"
            )
    plans = [
        spec.plan
        if spec.plan is not None
        else runtime.plan_for(spec.kernel, spec.set, spec.args)
        for spec in specs
    ]
    bound = [
        BoundLoop(
            kernel=spec.kernel,
            set=spec.set,
            args=spec.args,
            plan=plans[i],
            n=spec.n,
            start=spec.start,
        )
        for i, spec in enumerate(specs)
    ]
    groups = []
    for idx_group in fusion_groups(specs, plans):
        head = specs[idx_group[0]]
        groups.append(
            FusedGroup(
                loops=tuple(bound[i] for i in idx_group),
                plan=plans[idx_group[0]],
                n=head.n,
                start=head.start,
            )
        )

    tiled = None
    tile_size = 0
    if tiling is not None:
        from ..tiling import auto_tile_size, check_tiling

        tiling = check_tiling(tiling)
        tile_size = (
            auto_tile_size(bound) if tiling == "auto" else int(tiling)
        )
        tiled = load_or_build_tiled(store_key, bound, tile_size, "phases")

    return CompiledChain(
        groups=tuple(groups),
        analysis=analyze_dependencies(specs),
        tiling=tiling,
        tile_size=tile_size,
        tiled=tiled,
        store_key=store_key,
    )


# ----------------------------------------------------------------------
# The user-facing trace object
# ----------------------------------------------------------------------
class LoopChain:
    """A deferred-execution trace bound to one runtime.

    Use as a context manager (``with runtime.chain() as ch:``); inside
    the block every ``par_loop`` against that runtime records instead of
    executing.  See the module docstring for flush semantics.
    """

    def __init__(self, runtime, tiling=None) -> None:
        from ..tiling import check_tiling

        self.runtime = runtime
        #: Sparse-tiling request: ``None`` (fused loop-major execution),
        #: ``"auto"`` or a seed tile size (tile-major execution through
        #: the inspector/executor of :mod:`repro.tiling`).
        self.tiling = check_tiling(tiling)
        self._specs: List[LoopSpec] = []
        self._touched: List[object] = []
        self._flushing = False
        #: Loops executed through this chain (diagnostics/tests).
        self.flushed_loops = 0
        self.flushes = 0

    # -- recording -----------------------------------------------------
    def record(
        self,
        kernel: Kernel,
        set_: Set,
        args: Sequence[Arg],
        n_elements: Optional[int] = None,
        start_element: int = 0,
        plan: Optional[Plan] = None,
    ) -> None:
        """Append one loop to the trace and arm read barriers.

        Validation is deferred to :func:`compile_chain` (once per
        distinct trace signature) — recording stays cheap in steady
        state; a malformed loop still raises at its trace's first flush.
        """
        n = set_.total_size if n_elements is None else int(n_elements)
        self._specs.append(
            LoopSpec(
                kernel=kernel,
                set=set_,
                args=tuple(args),
                n=n,
                start=int(start_element),
                plan=plan,
            )
        )
        # Barrier every touched Dat/Global — reads too, so a host write
        # to a Dat a pending loop *reads* also flushes first (the
        # pending loop must observe the pre-write values, as eager
        # execution would have).  A Dat already barriered by a
        # *different* chain (two runtimes tracing over shared data) has
        # that chain flushed first: its pending loops precede ours in
        # program order, and the single barrier slot must end up
        # guarding the latest pending writer.
        for arg in args:
            barrier = arg.dat._barrier
            if barrier is not None and barrier is not self:
                barrier.flush()
                barrier = arg.dat._barrier
            if barrier is None:
                arg.dat._barrier = self
                self._touched.append(arg.dat)

    def __len__(self) -> int:
        return len(self._specs)

    # -- execution -----------------------------------------------------
    def flush(self) -> None:
        """Compile (or fetch the memoized schedule) and execute the trace.

        Idempotent and re-entrancy safe: barriers are disarmed before
        execution, so backend data accesses do not recurse.
        """
        if self._flushing or not self._specs:
            return
        specs, self._specs = self._specs, []
        self._disarm()
        compiled = self.runtime.compiled_chain_for(specs, tiling=self.tiling)
        self._flushing = True
        t0 = time.perf_counter()
        try:
            if compiled.tiled is not None:
                self.runtime.backend.run_tiled(compiled)
            else:
                self.runtime.backend.run_chain(compiled)
        finally:
            self._flushing = False
        # Per-chain wall time for stats()["profile"] (repro/tune): one
        # perf_counter pair per flush, negligible next to execution.
        profile = getattr(self.runtime, "profile", None)
        if profile is not None:
            profile.record_chain(
                tuple(s.kernel.name for s in specs),
                time.perf_counter() - t0,
                tiled=compiled.tiled is not None,
            )
        self.flushed_loops += len(specs)
        self.flushes += 1

    def discard(self) -> None:
        """Drop recorded loops without executing (exception path)."""
        self._specs = []
        self._disarm()

    def _disarm(self) -> None:
        for obj in self._touched:
            if obj._barrier is self:
                obj._barrier = None
        self._touched = []

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "LoopChain":
        if self.runtime._active_chain is not None:
            raise RuntimeError(
                "a LoopChain is already active on this runtime; "
                "chains do not nest"
            )
        self.runtime._active_chain = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.runtime._active_chain = None
        if exc_type is not None:
            self.discard()
        else:
            self.flush()


def chain(runtime=None, tiling=None) -> LoopChain:
    """Module-level convenience: a chain over the default runtime."""
    from .runtime import default_runtime

    return LoopChain(
        runtime if runtime is not None else default_runtime(), tiling=tiling
    )
