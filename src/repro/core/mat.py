"""Sparse-matrix arguments — OP2's ``op_mat`` analogue (the aero workload).

Finite-element assembly has a fundamentally different access pattern from
the finite-volume apps: each iteration-set element computes a dense
*local* matrix (a ``(arity, arity)`` block for one element's basis
functions) that scatters into a global sparse operator addressed through
a **pair of maps** — rows through ``rmap``, columns through ``cmap``.  A
:class:`Mat` is that operator: declared over the ``(rmap, cmap)`` pair,
its CSR sparsity derived from the mesh connectivity the first time it is
needed, and accepted by :func:`~repro.core.loop.par_loop` as an ``INC``
argument (built with :func:`arg_mat`) alongside ``Dat``/``Global``.

Two-phase deterministic assembly
--------------------------------
OP2 scatters element contributions straight into CSR under the loop's
coloring, which makes the assembled values depend on the color order —
a different answer per backend/scheme.  We split assembly in two:

1. **Element-local staging** — ``arg_mat(mat, INC)`` hands the kernel a
   flat ``(rmap.arity * cmap.arity,)`` local-matrix row of a staging
   ``Dat`` on the iteration set (``K[cmap.arity * i + j]`` is local
   entry ``(i, j)``).  Every element owns its row, so the par_loop is
   race-free on every backend, under every scheme, layout, chaining and
   tiling mode — and the staged values are *bitwise identical* across
   all of them.
2. **Canonical reduction** — :meth:`Mat.assemble` folds the staged
   contributions into CSR in one fixed order: CSR slot major, element
   minor, each slot summed left to right from ``0.0`` over a
   precomputed fixed-width contribution table (:attr:`Mat.fold_table`,
   padded with a synthetic always-zero contribution).  The order is
   *explicit* — a plain sequential sum a generated kernel can replicate
   term for term — rather than delegated to a NumPy reduction whose
   internal association is an implementation detail, and it is
   independent of how the loop executed.

The assembled CSR is therefore a pure function of the mesh and the
kernel: the reproducibility guarantee the aero acceptance tests pin over
the whole backend x layout x {eager, chained, tiled} matrix.

The solver view
---------------
CG consumes the operator through :meth:`Mat.solver_view`: a padded
fixed-arity (ELL-style) row view — ``row_slots`` maps every row to its
CSR value slots, ``row_cols`` to the matching column indices, both
padded to the maximum row degree with a dedicated always-zero slot.
SpMV then *is* a ``par_loop`` over rows (gather values + gather x +
fixed-order dot per row; see :mod:`repro.solve`), with no inline CSR
index arithmetic anywhere outside this module — vectorizing unstructured
SpMV by padding to a rectangular gather is the classic ELLPACK rewrite
the paper's SIMD model favours.

Lifecycle::

    mat = Mat(cell2node, cell2node, name="K")
    mat.zero()
    par_loop(assemble, cells, ..., arg_mat(mat, INC))
    mat.assemble()                  # staged -> CSR, canonical order
    mat.set_dirichlet(bc_mask)      # rows/cols -> identity (host-side)
    y = mat @ x                     # dense-vector product (host-side)
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from .access import Access, Arg, IDX_ID
from .dat import Dat
from .map import Map
from .set import Set

_mat_counter = itertools.count()


class Mat:
    """A sparse matrix declared over a ``(row map, column map)`` pair.

    Parameters
    ----------
    rmap, cmap:
        Maps from the *assembly* iteration set (e.g. cells) to the row
        and column sets (e.g. nodes).  Both must share their ``from_set``;
        the sparsity is the union over elements of all
        ``(rmap[e, i], cmap[e, j])`` pairs.
    dtype:
        Value dtype (the library is dtype-parametric).
    name:
        Identifier used in reports and staging/CSR Dat names.
    """

    def __init__(
        self,
        rmap: Map,
        cmap: Map,
        dtype: np.dtype = np.float64,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(rmap, Map) or not isinstance(cmap, Map):
            raise TypeError("Mat must be declared over a (Map, Map) pair")
        if rmap.from_set is not cmap.from_set:
            raise ValueError(
                f"Mat maps must share their from_set: {rmap.name!r} is over "
                f"{rmap.from_set.name!r}, {cmap.name!r} over "
                f"{cmap.from_set.name!r}"
            )
        self.rmap = rmap
        self.cmap = cmap
        self.elem_set = rmap.from_set
        self.row_set = rmap.to_set
        self.col_set = cmap.to_set
        self.name = name if name is not None else f"mat_{next(_mat_counter)}"
        self._uid = next(_mat_counter)
        #: Element-local contribution staging: one flat
        #: ``(rmap.arity * cmap.arity,)`` local matrix per element,
        #: race-free by construction (each element owns its row).
        self.staging = Dat(
            self.elem_set,
            rmap.arity * cmap.arity,
            dtype=dtype,
            name=f"{self.name}_elem",
        )
        # CSR sparsity + canonical-reduction machinery, derived from the
        # map pair on first use ("plan time": connectivity only, no data).
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._nnz = 0
        self._fold_table: Optional[np.ndarray] = None
        self._fold_width = 0
        self._n_staged = 0
        self._slot_rows: Optional[np.ndarray] = None
        self._nnz_set: Optional[Set] = None
        self._values: Optional[Dat] = None
        self._solver_view: Optional[Tuple[Map, Map]] = None
        self._dirichlet_cache: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self.assembled = False
        #: Number of :meth:`assemble` folds performed over this Mat's
        #: lifetime — the matrix-free acceptance tests pin "at most one
        #: assemble per solve" on this counter.
        self.assemble_calls = 0

    # ------------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.row_set.size

    @property
    def ncols(self) -> int:
        return self.col_set.size

    @property
    def dtype(self) -> np.dtype:
        return self.staging.dtype

    @property
    def local_shape(self) -> Tuple[int, int]:
        """Shape of one element's local matrix block."""
        return (self.rmap.arity, self.cmap.arity)

    # ------------------------------------------------------------------
    # Sparsity construction (lazy, connectivity-only).
    # ------------------------------------------------------------------
    def _ensure_sparsity(self) -> None:
        if self._indptr is not None:
            return
        a1, a2 = self.rmap.arity, self.cmap.arity
        # COO triplets in staging order: entry (e, i, j) lives at staged
        # column a2 * i + j of element e.
        rows = np.repeat(self.rmap.values, a2, axis=1).reshape(-1)
        cols = np.tile(self.cmap.values, (1, a1)).reshape(-1)
        keys = rows.astype(np.int64) * self.ncols + cols
        # ``np.unique`` sorts keys => (row, col) lexicographic = CSR
        # order; ``inverse`` is each staged entry's CSR slot.
        uniq, inverse = np.unique(keys, return_inverse=True)
        self._nnz = int(uniq.size)
        self._indices = (uniq % self.ncols).astype(np.int64)
        uniq_rows = (uniq // self.ncols).astype(np.int64)
        counts = np.bincount(uniq_rows, minlength=self.nrows)
        self._indptr = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        # Canonical reduction order: CSR slot major, staging (= element)
        # order minor — the stable sort pins the element-minor tiebreak,
        # so the fold order never depends on how the loop executed.  The
        # order is materialized as a fixed-width per-slot contribution
        # table (row = CSR slot, columns = staged-entry indices in fold
        # order, padded with the synthetic zero contribution
        # ``n_staged``): assemble() sums its columns left to right, and
        # the matrix-free action kernels replicate exactly that fold.
        n_staged = inverse.size
        order = np.argsort(inverse, kind="stable")
        slot_counts = np.bincount(inverse, minlength=self._nnz)
        starts = np.concatenate(
            ([0], np.cumsum(slot_counts)[:-1])
        ).astype(np.int64)
        width = int(slot_counts.max(initial=1))
        self._n_staged = int(n_staged)
        self._fold_width = max(width, 1)
        table = np.full(
            (self._nnz + 1, self._fold_width), n_staged, dtype=np.int64
        )
        slot_ids = np.repeat(
            np.arange(self._nnz, dtype=np.int64), slot_counts
        )
        pos = np.arange(n_staged, dtype=np.int64) - starts[slot_ids]
        table[slot_ids, pos] = order
        self._fold_table = table
        # Row index of every CSR slot (shared by set_dirichlet, the
        # solver view and the host-side conveniences).
        self._slot_rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), counts
        )
        # Values live in a Dat over the nonzero set so SpMV can read
        # them through maps like any other par_loop operand; one extra
        # trailing slot stays 0.0 forever — the padding target of the
        # fixed-arity solver view.
        self._nnz_set = Set(self._nnz + 1, f"{self.name}_nnz")
        self._values = Dat(
            self._nnz_set, 1, dtype=self.staging.dtype,
            name=f"{self.name}_csr",
        )

    @property
    def indptr(self) -> np.ndarray:
        self._ensure_sparsity()
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        self._ensure_sparsity()
        return self._indices

    @property
    def nnz(self) -> int:
        self._ensure_sparsity()
        return self._nnz

    @property
    def fold_table(self) -> np.ndarray:
        """Canonical-fold contribution table, ``(nnz + 1, fold_width)``.

        Row ``s`` lists the staged-entry indices that accumulate into
        CSR slot ``s``, in the canonical (element-minor) order, padded
        with the synthetic zero contribution ``n_staged``; the trailing
        row (the solver view's always-zero pad slot) is all padding.
        :meth:`assemble` sums the columns left to right from ``0.0``,
        which is the exact fold the matrix-free kernels replicate.
        """
        self._ensure_sparsity()
        return self._fold_table

    @property
    def fold_width(self) -> int:
        """Maximum contributions per CSR slot (fold-table width)."""
        self._ensure_sparsity()
        return self._fold_width

    @property
    def n_staged(self) -> int:
        """Staged contribution count (= elements × local entries)."""
        self._ensure_sparsity()
        return self._n_staged

    @property
    def values(self) -> Dat:
        """Assembled CSR values as a ``Dat`` over the nonzero set.

        Rows ``[0, nnz)`` hold the CSR data; row ``nnz`` is the
        always-zero padding slot of the solver view.
        """
        self._ensure_sparsity()
        return self._values

    @property
    def data(self) -> np.ndarray:
        """The assembled ``(nnz,)`` CSR value array (host view)."""
        return self.values.data[: self.nnz, 0]

    # ------------------------------------------------------------------
    # Assembly lifecycle.
    # ------------------------------------------------------------------
    def zero(self) -> None:
        """Clear staged contributions (and any previously assembled CSR)."""
        self.staging.zero()
        if self._values is not None:
            self._values.zero()
        self.assembled = False

    def assemble(self) -> "Mat":
        """Fold staged element contributions into CSR, canonically.

        Reading ``staging.data`` here is also the deferred-execution
        barrier: a pending loop chain that recorded the assembly loop
        flushes first, so ``assemble()`` always folds the final staged
        values.  The fold is an explicit left-to-right sum from ``0.0``
        over :attr:`fold_table` (CSR-slot-major, element-minor, padded
        entries contributing an exact ``+0.0``) — a fixed, term-for-term
        replicable summation order, independent of backend, scheme,
        layout, chaining and tiling, and reproduced bit for bit by the
        matrix-free coefficient kernels.
        """
        self._ensure_sparsity()
        staged = self.staging.data[: self.elem_set.total_size]
        flat = np.ascontiguousarray(staged).reshape(-1)[: self._n_staged]
        padded = np.concatenate(
            [flat, np.zeros(1, dtype=flat.dtype)]
        )
        acc = np.zeros(self._nnz, dtype=flat.dtype)
        table = self._fold_table
        for c in range(self._fold_width):
            acc += padded[table[: self._nnz, c]]
        self._values.data[: self._nnz, 0] = acc
        self.assembled = True
        self.assemble_calls += 1
        return self

    def set_dirichlet(self, row_mask: np.ndarray, diag: float = 1.0) -> None:
        """Impose Dirichlet rows/columns on the assembled operator.

        Rows flagged by ``row_mask`` become ``diag`` on the diagonal and
        zero elsewhere; flagged *columns* are zeroed in the remaining
        rows (the symmetric elimination — move the known-value coupling
        to the right-hand side first, e.g. via ``mat @ lift``).  Host
        side and deterministic, like :meth:`assemble`.

        The drop/diagonal slot selections depend only on the sparsity
        and the mask, so they are memoized: Picard iterations reapplying
        the same boundary mask every step pay two fancy-indexed stores
        and nothing else (no per-step index allocation).
        """
        self._ensure_sparsity()
        mask = np.asarray(row_mask, dtype=bool)
        if mask.shape != (self.nrows,):
            raise ValueError(
                f"row_mask must have shape ({self.nrows},), got {mask.shape}"
            )
        cached = self._dirichlet_cache
        if cached is None or not np.array_equal(cached[0], mask):
            rows = self._slot_rows
            drop = mask[rows] | mask[self._indices]
            diag_slots = (rows == self._indices) & mask[rows]
            cached = (mask.copy(), drop, diag_slots)
            self._dirichlet_cache = cached
        _, drop, diag_slots = cached
        vals = self._values.data
        vals[: self._nnz, 0][drop] = 0.0
        vals[: self._nnz, 0][diag_slots] = diag

    # ------------------------------------------------------------------
    # Fixed-arity (padded ELL) row view for the par_loop SpMV.
    # ------------------------------------------------------------------
    @property
    def max_row_nnz(self) -> int:
        """Maximum row degree — the solver view's padded arity."""
        self._ensure_sparsity()
        return int(np.diff(self._indptr).max(initial=0))

    def solver_view(self) -> Tuple[Map, Map]:
        """``(row_slots, row_cols)`` — the padded fixed-arity row view.

        ``row_slots`` maps each row to ``max_row_nnz`` CSR value slots
        (padded with the always-zero slot ``nnz``); ``row_cols`` maps to
        the matching column elements (padded with the row itself — the
        gathered x value is multiplied by the zero pad slot, so the pad
        column never contributes).  Built once and cached; the maps are
        connectivity, so re-assembly and Dirichlet edits reuse them.
        """
        if self._solver_view is not None:
            return self._solver_view
        self._ensure_sparsity()
        if self.row_set is not self.col_set:
            raise ValueError(
                "solver_view requires a square operator "
                "(row and column sets must be the same Set)"
            )
        width = self.max_row_nnz
        slots = np.full((self.nrows, width), self._nnz, dtype=np.int64)
        cols = np.tile(
            np.arange(self.nrows, dtype=np.int64)[:, None], (1, width)
        )
        rows = self._slot_rows
        position = np.arange(self._nnz, dtype=np.int64) - self._indptr[rows]
        slots[rows, position] = np.arange(self._nnz, dtype=np.int64)
        cols[rows, position] = self._indices
        self._solver_view = (
            Map(self.row_set, self._nnz_set, width, slots,
                f"{self.name}_row_slots"),
            Map(self.row_set, self.col_set, width, cols,
                f"{self.name}_row_cols"),
        )
        return self._solver_view

    # ------------------------------------------------------------------
    # Host-side conveniences (tests, RHS construction, diagnostics).
    # ------------------------------------------------------------------
    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        """Dense CSR matrix-vector product on the host (``mat @ x``)."""
        x = np.asarray(x, dtype=self.dtype).reshape(-1)
        if x.size != self.ncols:
            raise ValueError(
                f"operand has {x.size} entries, matrix has {self.ncols} columns"
            )
        vals = self.data
        y = np.zeros(self.nrows, dtype=self.dtype)
        np.add.at(y, self._slot_rows, vals * x[self._indices])
        return y

    def todense(self) -> np.ndarray:
        """Dense ``(nrows, ncols)`` copy (small meshes / tests only)."""
        self._ensure_sparsity()
        dense = np.zeros((self.nrows, self.ncols), dtype=self.dtype)
        dense[self._slot_rows, self._indices] = self.data
        return dense

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shape = f"{self.nrows}x{self.ncols}" if self._indptr is not None \
            else f"{self.row_set.size}x{self.col_set.size} (sparsity pending)"
        return (
            f"Mat({self.name!r}, {shape}, local={self.local_shape}, "
            f"dtype={self.dtype})"
        )

    def __hash__(self) -> int:
        return hash(("Mat", self._uid))

    def __eq__(self, other: object) -> bool:
        return self is other


def arg_mat(mat: Mat, access: Access = Access.INC) -> Arg:
    """OP2-style ``op_arg_mat``: pass a :class:`Mat` to a ``par_loop``.

    The kernel parameter receives the element's flat local-matrix row
    (``(rmap.arity * cmap.arity,)``; entry ``(i, j)`` at index
    ``cmap.arity * i + j``) to increment — assembly kernels never see
    CSR indices.  Only ``INC`` access is meaningful: contributions
    accumulate, and :meth:`Mat.assemble` folds them canonically.
    """
    if not isinstance(mat, Mat):
        raise TypeError(f"arg_mat expects a Mat, got {type(mat)!r}")
    if access is not Access.INC:
        raise ValueError(
            "Mat arguments must use INC access (element contributions "
            f"accumulate); got {access}"
        )
    return Arg(dat=mat.staging, index=IDX_ID, map=None, access=access)
