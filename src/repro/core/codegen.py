"""Compatibility shim — the code generator moved to :mod:`repro.kernelc`.

``core/codegen.py`` was promoted into the kernel-compilation package:
the specialized scalar stub emitter now lives in
:mod:`repro.kernelc.scalar` (next to the kernel IR and the batched
vector emitter) and the executing backend in
:mod:`repro.backends.codegen`.  This module re-exports the public names
so existing imports (``from repro.core import compile_loop``,
``from repro.core.codegen import loop_shape_key``) keep working.
"""

from __future__ import annotations

from ..backends.codegen import CodegenBackend
from ..kernelc.scalar import (
    compile_loop,
    generate_loop_source,
    loop_shape_key,
    supports,
)

__all__ = [
    "CodegenBackend",
    "compile_loop",
    "generate_loop_source",
    "loop_shape_key",
    "supports",
]
