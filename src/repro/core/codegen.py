"""Code generation: OP2's "active library" program transformation.

OP2 is not an interpreter — a source-to-source translator turns every
``op_par_loop`` call site into a *specialized* stub (paper Fig 2b) with
the argument handling unrolled: indirection indices become named locals,
pointer arithmetic is inlined, conditionals and loops over the argument
list disappear.  Section 5 credits exactly this specialization (replacing
the generic function-pointer dispatcher) with enabling the compiler
optimizations their baseline numbers rely on.

This module reproduces that mechanism in Python: :func:`generate_loop_source`
emits the text of a specialized loop function for one loop *shape*
(iteration set + argument descriptors), :func:`compile_loop` ``exec``-s it,
and :class:`CodegenBackend` caches the compiled stubs per shape — the same
generate-once / run-many structure as OP2's build flow, with the generated
source inspectable for tests and the curious.

The generator covers the argument forms of Fig 2b (direct, single-slot
indirect, READ vector arguments and global reductions); loops outside
that subset (e.g. vector INC arguments) fall back to the generic
interpreter path, mirroring OP2's own fallback for unsupported shapes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..backends.base import Backend, run_scalar_element
from .access import Access, Arg


def loop_shape_key(kernel_name: str, args: Sequence[Arg]) -> Tuple:
    """Hashable description of a loop's argument structure."""
    shape = []
    for arg in args:
        if arg.is_global:
            shape.append(("gbl", arg.dat.dim, arg.access.name))
        else:
            shape.append(
                (
                    "dat",
                    arg.dat.dim,
                    arg.index,
                    arg.map.arity if arg.map is not None else 0,
                    arg.access.name,
                )
            )
    return (kernel_name,) + tuple(shape)


def supports(args: Sequence[Arg]) -> bool:
    """Can a specialized stub be generated for this argument list?"""
    for arg in args:
        if arg.is_vector and arg.access is not Access.READ:
            return False  # writing vector args need writeback machinery
    return True


def generate_loop_source(kernel_name: str, args: Sequence[Arg]) -> str:
    """Emit the specialized stub's source (the Fig 2b transformation).

    The generated function has signature::

        op_par_loop_<kernel>(start, end, user_kernel, data, maps, red)

    where ``data[i]`` is argument *i*'s array, ``maps[i]`` its map values
    (or None) and ``red[i]`` its reduction accumulator (globals only).
    """
    name = f"op_par_loop_{kernel_name}"
    lines = [
        f"def {name}(start, end, user_kernel, data, maps, red):",
        '    """Generated specialized stub — do not edit by hand."""',
    ]
    # Hoist every per-argument lookup out of the element loop.
    call_operands = []
    for i, arg in enumerate(args):
        if arg.is_global:
            if arg.access.is_reduction:
                lines.append(f"    arg{i} = red[{i}]")
            else:
                lines.append(f"    arg{i} = data[{i}]")
            call_operands.append(f"arg{i}")
        elif arg.is_direct:
            lines.append(f"    dat{i} = data[{i}]")
            call_operands.append(f"dat{i}[n]")
        elif arg.is_vector:
            lines.append(f"    dat{i} = data[{i}]")
            lines.append(f"    map{i} = maps[{i}]")
            call_operands.append(f"dat{i}[map{i}[n]]")
        else:
            lines.append(f"    dat{i} = data[{i}]")
            lines.append(f"    map{i}_col = maps[{i}][:, {arg.index}]")
            call_operands.append(f"dat{i}[map{i}_col[n]]")
    lines.append("    for n in range(start, end):")
    lines.append(f"        user_kernel({', '.join(call_operands)})")
    return "\n".join(lines) + "\n"


def compile_loop(kernel_name: str, args: Sequence[Arg]) -> Callable:
    """Compile the generated stub and return the callable."""
    source = generate_loop_source(kernel_name, args)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<generated op_par_loop_{kernel_name}>", "exec"),
         namespace)
    fn = namespace[f"op_par_loop_{kernel_name}"]
    fn.__source__ = source  # type: ignore[attr-defined]
    return fn


class CodegenBackend(Backend):
    """Scalar backend running generated specialized stubs.

    Semantically identical to :class:`SequentialBackend` (element order,
    single process, no races); the specialization removes the generic
    per-element argument dispatch, exactly as OP2's generated pure-MPI
    stub removes its function-pointer dispatcher.
    """

    name = "codegen"

    def __init__(self) -> None:
        super().__init__()
        self._compiled: Dict[Tuple, Callable] = {}
        self.generated = 0

    def stub_for(self, kernel, args: Sequence[Arg]) -> Optional[Callable]:
        if not supports(args):
            return None
        key = loop_shape_key(kernel.name, args)
        fn = self._compiled.get(key)
        if fn is None:
            fn = compile_loop(kernel.name, args)
            self._compiled[key] = fn
            self.generated += 1
        return fn

    def _run(self, kernel, set_, args, plan, n, reductions, start=0) -> None:
        stub = self.stub_for(kernel, args)
        if stub is None:
            # Unsupported shape: generic interpreter fallback.
            for e in range(start, n):
                run_scalar_element(kernel.scalar, args, e, reductions)
            return
        data = [arg.dat.data for arg in args]
        maps = [
            arg.map.values if arg.map is not None else None for arg in args
        ]
        stub(start, n, kernel.scalar, data, maps, reductions)

    def tiled_profile(self, compiled) -> str:
        # The generated stubs sweep [start, n) in ascending element
        # order with per-element operations identical to the generic
        # interpreter's, so the generic tiled executor replays the
        # same sequence.
        return "ascending"
