"""Global scalars/small vectors with reduction semantics (OP2 ``op_gbl``).

Airfoil's ``update`` kernel accumulates an RMS residual and Volna's
``numerical_flux`` computes a global minimum time step; both are expressed
as :class:`Global` arguments with ``INC``/``MIN`` access.  Backends combine
per-lane / per-thread partial reductions exactly the way the paper's
OpenCL backend does (vector accumulator, folded at the end).
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from .access import Access

_gbl_counter = itertools.count()


class Global:
    """A global value shared by every iteration of a parallel loop."""

    def __init__(
        self,
        dim: int,
        value=0.0,
        dtype: np.dtype = np.float64,
        name: Optional[str] = None,
    ) -> None:
        if dim < 1:
            raise ValueError(f"Global dim must be >= 1, got {dim}")
        self.dim = int(dim)
        self.name = name if name is not None else f"gbl_{next(_gbl_counter)}"
        self._uid = next(_gbl_counter)
        self._data = np.zeros(dim, dtype=dtype)
        self._data[...] = value
        #: Pending :class:`~repro.core.chain.LoopChain` touching this
        #: global; host access through :attr:`value` or :attr:`data`
        #: flushes it first (mirrors the :class:`~repro.core.dat.Dat`
        #: read barrier).
        self._barrier = None

    def _sync(self) -> None:
        barrier = self._barrier
        if barrier is not None:
            barrier.flush()

    @property
    def data(self) -> np.ndarray:
        """The ``(dim,)`` value array.

        Reading it while a loop chain has pending loops touching this
        global flushes the chain first, so host code can never observe
        a stale reduction value through either accessor.
        """
        self._sync()
        return self._data

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def value(self):
        """Scalar convenience accessor for dim-1 globals.

        Reading *or writing* it flushes any pending loop chain first: a
        pending reduction must land before a read, and a pending reader
        must observe the pre-write value — exactly eager ordering.
        """
        self._sync()
        return self._data[0] if self.dim == 1 else self._data.copy()

    @value.setter
    def value(self, v) -> None:
        self._sync()
        self._data[...] = v

    def identity_for(self, access: Access) -> np.ndarray:
        """Reduction identity element for a given access mode."""
        if access is Access.INC:
            return np.zeros(self.dim, dtype=self.dtype)
        if access is Access.MIN:
            return np.full(self.dim, _type_max(self.dtype), dtype=self.dtype)
        if access is Access.MAX:
            return np.full(self.dim, _type_min(self.dtype), dtype=self.dtype)
        raise ValueError(f"No reduction identity for access {access}")

    def combine(self, access: Access, partial: np.ndarray) -> None:
        """Fold a partial reduction result into the global value.

        Backend-side: folds run after barriers are disarmed, so this
        writes the raw storage directly.
        """
        partial = np.asarray(partial, dtype=self.dtype).reshape(self.dim)
        if access is Access.INC:
            self._data += partial
        elif access is Access.MIN:
            np.minimum(self._data, partial, out=self._data)
        elif access is Access.MAX:
            np.maximum(self._data, partial, out=self._data)
        else:
            raise ValueError(f"Cannot combine with access {access}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Global({self.name!r}, dim={self.dim}, value={self.data!r})"

    def __hash__(self) -> int:
        return hash(("Global", self._uid))

    def __eq__(self, other: object) -> bool:
        return self is other


def _type_max(dtype: np.dtype):
    return np.finfo(dtype).max if np.issubdtype(dtype, np.floating) else np.iinfo(dtype).max


def _type_min(dtype: np.dtype):
    return np.finfo(dtype).min if np.issubdtype(dtype, np.floating) else np.iinfo(dtype).min
