"""The sparse-tiling inspector: dependency-aware tile assignment.

Sparse tiling (Strout et al.'s full sparse tiling; Luporini et al.,
"Automated Tiling of Unstructured Mesh Computations"; Sulyok et al.,
"Locality Optimized Unstructured Mesh Algorithms on GPUs" — PAPERS.md)
splits a *loop chain* into tiles that are executed cross-loop: the
inspector partitions the first loop's iterations into seed tiles, then
*projects* the tiling through the chain's maps so every later loop's
iterations land in a tile that respects all data dependencies.  The
executor then replays all loops tile-by-tile while the tile's data is
hot in cache.

This inspector produces schedules that are **bitwise identical** to
eager execution, which is stronger than the usual "correct up to FP
reassociation" guarantee.  Two ingredients make that possible:

1. **Element-major operation order.**  The backends apply every
   order-sensitive scatter element-major (see
   ``backends/base.py: scatter_batch``), so the sequence of
   floating-point operations a loop performs is a pure function of the
   sequence of elements it executes.

2. **Monotone contiguous slicing.**  For each loop the inspector
   computes per-element *minimum tiles* from a last-touch projection
   (below), then takes the running maximum over the loop's eager
   element order.  The resulting tile assignment is non-decreasing
   along that order, so each tile's slice is a contiguous run of it and
   the concatenation of slices in tile order *is* the eager order —
   the per-loop operation sequence is untouched; only other loops'
   slices are interleaved between its chunks.

The last-touch projection
-------------------------
For every Dat row the inspector tracks ``last_tile[row]``: the highest
tile of any already-assigned iteration (of any earlier loop in the
segment) that touched the row — reads included.  An iteration's minimum
tile is the max of ``last_tile`` over every row it touches.  This
enforces, per shared row, *program order across loops*:

* RAW — a reader lands in a tile ≥ every earlier writer's tile, so by
  the time its tile runs, all writes it must observe have completed
  (and in their original relative order, by ingredient 2);
* WAR — a writer lands in a tile ≥ every earlier reader's tile, so no
  read can observe a future write early;
* WAW / INC-INC — later writes and increments land in tiles ≥ earlier
  ones, preserving the exact accumulation order bitwise (this is why
  commuting increments, relaxed in the chain's *dependency* analysis,
  are still ordered here: tiling must not reassociate them).

Tracking reads as touches is slightly conservative (read-read imposes
no real ordering) but it doubles as the *affinity* heuristic that gives
tiling its locality: an iteration is placed in the tile that last had
its data in cache.

Barriers
--------
Loops the inspector cannot slice bitwise-safely execute whole, as full
synchronization points that also reset the projection:

* loops reducing into a ``Global`` — batched backends fold per-phase
  partial sums, and re-slicing a phase changes the summation tree;
* loops where an indirectly-written Dat is also *read* in the same loop
  — eager phase execution observes earlier phases' writes in a phase-
  major order that slicing cannot reproduce;
* loops mixing a vector (``IDX_ALL``) increment with another write to
  the same Dat — the element-major merge in the backends covers
  single-slot groups only;
* single-loop segments, where tiling has nothing to gain.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..coloring.tiles import color_tiles
from ..core.access import Access, Arg
from .schedule import (
    BarrierLoop,
    LoopSlices,
    SchedulePart,
    TiledSchedule,
    TiledSegment,
)

#: Eager element orders the inspector can slice against.
PROFILES = ("phases", "ascending")

#: Per-tile working-set target for ``tiling="auto"`` (bytes).  Sized for
#: a typical per-core L2: a tile's slice of every Dat the chain touches
#: should fit, leaving headroom for gather indices.
AUTO_TILE_BYTES = 1 << 20


def check_tiling(tiling) -> object:
    """Validate a ``tiling=`` argument (``None`` | ``"auto"`` | int >= 1)."""
    if tiling is None or tiling == "auto":
        return tiling
    size = int(tiling)
    if size < 1:
        raise ValueError(f"tile size must be >= 1, got {tiling!r}")
    return size


def auto_tile_size(loops: Sequence) -> int:
    """Pick a seed tile size so one tile's working set ~fits in cache.

    Estimates the chain's bytes-per-seed-element as (total bytes of all
    distinct Dats touched) / (seed loop's iteration count) and sizes
    tiles at :data:`AUTO_TILE_BYTES` / that.
    """
    if not loops:
        return 1
    seen = {}
    for bl in loops:
        for arg in bl.args:
            if not arg.is_global:
                seen[arg.dat._uid] = arg.dat
    total_bytes = sum(
        d._data.shape[0] * d.dim * d.dtype.itemsize for d in seen.values()
    )
    seed_n = max(loops[0].n - loops[0].start, 1)
    per_elem = max(total_bytes / seed_n, 1.0)
    return max(256, int(AUTO_TILE_BYTES / per_elem))


# ----------------------------------------------------------------------
# Sliceability (barrier) analysis
# ----------------------------------------------------------------------
def barrier_reason(bl) -> Optional[str]:
    """Why a loop must execute whole, or ``None`` when it can be sliced."""
    by_dat: Dict[int, List[Arg]] = {}
    for arg in bl.args:
        if arg.is_global:
            if arg.access.is_reduction:
                return "global-reduction"
            continue
        by_dat.setdefault(arg.dat._uid, []).append(arg)
    for args in by_dat.values():
        indirect_writes = [a for a in args if a.races]
        if not indirect_writes:
            continue
        if any(a.access in (Access.READ, Access.RW) for a in args):
            return "indirect-write-and-read"
        writers = [a for a in args if a.access.writes]
        if len(writers) > 1 and any(a.is_vector for a in writers):
            return "vector-inc-group"
    return None


# ----------------------------------------------------------------------
# Eager element orders
# ----------------------------------------------------------------------
def loop_order(bl, profile: str) -> np.ndarray:
    """The eager element execution order the profile's backends use."""
    if profile == "ascending":
        return np.arange(bl.start, bl.n, dtype=np.int64)
    if profile == "phases":
        return bl.plan.execution_order(bl.n, bl.start)
    raise ValueError(f"Unknown tiling profile {profile!r}; expected {PROFILES}")


def _arg_rows(arg: Arg, elems: np.ndarray) -> Optional[np.ndarray]:
    """Dat rows touched per element, shape ``(n, k)`` (``None`` = global)."""
    if arg.is_global:
        return None
    if arg.is_direct:
        return elems.reshape(-1, 1)
    if arg.is_vector:
        return arg.map.values[elems]
    return arg.map.values[elems, arg.index].reshape(-1, 1)


# ----------------------------------------------------------------------
# The inspector proper
# ----------------------------------------------------------------------
def _assign_segment(
    loops: Sequence, indices: List[int], tile_size: int, profile: str
) -> TiledSegment:
    """Tile one barrier-free run of loops (the projection/expansion pass)."""
    orders = [loop_order(loops[k], profile) for k in indices]
    seed_n = orders[0].size
    n_tiles = max(1, math.ceil(seed_n / tile_size))

    #: Per Dat uid: highest tile that touched each row so far (-1 = none).
    last_tile: Dict[int, np.ndarray] = {}

    def touched(dat) -> np.ndarray:
        arr = last_tile.get(dat._uid)
        if arr is None:
            arr = np.full(dat._data.shape[0], -1, dtype=np.int64)
            last_tile[dat._uid] = arr
        return arr

    slices: List[LoopSlices] = []
    for pos, k in enumerate(indices):
        bl = loops[k]
        order = orders[pos]
        n_el = order.size
        if n_el == 0:
            slices.append(
                LoopSlices(order=order, cuts=np.zeros(n_tiles + 1, np.int64))
            )
            continue
        # Balanced position-proportional tiles for unconstrained
        # iterations (and the whole seed loop).
        prop = (np.arange(n_el, dtype=np.int64) * n_tiles) // n_el
        if pos == 0:
            t_pos = prop
        else:
            # Minimum tile per iteration: the last-touch projection.
            m = np.full(n_el, -1, dtype=np.int64)
            for arg in bl.args:
                rows = _arg_rows(arg, order)
                if rows is None:
                    continue
                lt = touched(arg.dat)[rows]
                np.maximum(m, lt.max(axis=1), out=m)
            base = np.where(m >= 0, m, prop)
            # Monotone along the eager order -> contiguous slices whose
            # concatenation is exactly the eager order (the bitwise
            # identity invariant).
            t_pos = np.minimum(
                np.maximum.accumulate(base), n_tiles - 1
            )
        cuts = np.searchsorted(t_pos, np.arange(n_tiles + 1), side="left")
        cuts = cuts.astype(np.int64)
        cuts[-1] = n_el
        slices.append(LoopSlices(order=order, cuts=cuts))

        # Project this loop's touches forward (reads included: they are
        # both WAR constraints for later writers and the locality
        # affinity for later readers).
        for arg in bl.args:
            rows = _arg_rows(arg, order)
            if rows is None:
                continue
            arr = touched(arg.dat)
            flat = rows.reshape(-1)
            np.maximum.at(arr, flat, np.repeat(t_pos, rows.shape[1]))

    segment = TiledSegment(
        loop_indices=tuple(indices),
        n_tiles=n_tiles,
        slices=tuple(slices),
        tile_colors=np.zeros(n_tiles, dtype=np.int32),
        n_tile_colors=1 if n_tiles else 0,
    )
    colors, n_colors = color_tiles(segment_written_rows(loops, segment))
    return dataclasses.replace(
        segment, tile_colors=colors, n_tile_colors=n_colors
    )


def segment_written_rows(
    loops: Sequence, segment: TiledSegment
) -> List[List[Tuple[int, np.ndarray]]]:
    """Per tile: the ``(dat uid, written rows)`` pairs of its slices.

    The tile-graph conflict structure (input to
    :func:`repro.coloring.tiles.color_tiles`); also the reference
    recomputation the property tests validate schedule colorings
    against.
    """
    rows_per_tile: List[List[Tuple[int, np.ndarray]]] = [
        [] for _ in range(segment.n_tiles)
    ]
    for j, k in enumerate(segment.loop_indices):
        bl = loops[k]
        for arg in bl.args:
            if arg.is_global or not arg.access.writes:
                continue
            for t in range(segment.n_tiles):
                elems = segment.slices[j].tile_elems(t)
                if elems.size:
                    rows_per_tile[t].append(
                        (arg.dat._uid, _arg_rows(arg, elems).reshape(-1))
                    )
    return rows_per_tile


def build_tiled_schedule(
    loops: Sequence, tile_size: int, profile: str = "phases"
) -> TiledSchedule:
    """Run the inspector over a compiled chain's flat loop list.

    ``loops`` is a sequence of plan-resolved loops
    (:class:`repro.core.chain.BoundLoop`); ``tile_size`` the seed tile
    size in iterations of each segment's first loop; ``profile`` which
    eager element order to slice against (``"phases"`` for the batched
    and plan-ordered backends, ``"ascending"`` for the scalar ones).
    """
    if profile not in PROFILES:
        raise ValueError(
            f"Unknown tiling profile {profile!r}; expected one of {PROFILES}"
        )
    tile_size = int(tile_size)
    if tile_size < 1:
        raise ValueError(f"tile size must be >= 1, got {tile_size}")

    parts: List[SchedulePart] = []
    pending: List[int] = []

    def close_segment() -> None:
        if not pending:
            return
        if len(pending) == 1:
            # A lone loop gains nothing from tiling; run it whole.
            parts.append(BarrierLoop(pending[0], reason="singleton-segment"))
        else:
            parts.append(
                _assign_segment(loops, list(pending), tile_size, profile)
            )
        pending.clear()

    for k, bl in enumerate(loops):
        reason = barrier_reason(bl)
        if reason is not None:
            close_segment()
            parts.append(BarrierLoop(k, reason=reason))
        else:
            pending.append(k)
    close_segment()

    return TiledSchedule(
        parts=tuple(parts), tile_size=tile_size, profile=profile
    )
