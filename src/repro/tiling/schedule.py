"""The :class:`TiledSchedule` artifact — output of the sparse-tiling inspector.

A tiled schedule reorganizes a compiled loop chain from *loop-major*
execution (run loop 0 over the whole mesh, then loop 1, ...) into
*tile-major* execution (run every loop of a segment over tile 0's
slices, then tile 1's, ...), so the data a tile touches stays in cache
across all the loops that reuse it.  The schedule is a pure description
— which elements of which loop belong to which tile — and carries no
backend state; executors (:meth:`repro.backends.base.Backend.run_tiled`
and the vectorized fast path) interpret it.

Structure
---------
A schedule is a sequence of *parts* in program order:

:class:`TiledSegment`
    A run of *sliceable* loops executed tile-by-tile.  Per loop it
    stores the loop's eager element ``order`` (the sequence the owning
    backend would execute eagerly) and ``cuts``, a monotone array of
    ``n_tiles + 1`` positions into that order: tile ``t`` executes
    ``order[cuts[t]:cuts[t+1]]`` for every loop before tile ``t + 1``
    starts.  Because the cuts slice each loop's eager order *contiguously
    and monotonically*, the per-loop sequence of floating-point
    operations is exactly the eager sequence — only interleaved with
    other loops' slices — which is what makes tiled execution bitwise
    identical to eager execution (see ``docs/architecture.md`` §7).

:class:`BarrierLoop`
    A loop the inspector refuses to slice (global reduction, intra-loop
    read of an indirectly-written Dat, ...).  It executes whole, after
    every tile of the preceding segment and before any tile of the next
    — a full synchronization point, which also resets the inspector's
    dependency projections.

Tile colors
-----------
Each segment carries a conflict coloring of its tiles (two tiles of the
same color write no common Dat row — :mod:`repro.coloring.tiles`), the
standard sparse-tiling parallelism artifact: same-colored tiles could
run concurrently on a parallel machine.  The Python executors run tiles
in ascending order regardless (serial execution is what preserves
bitwise identity); the coloring is validated by the property tests and
reported by :meth:`TiledSchedule.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

import numpy as np


@dataclass(frozen=True)
class LoopSlices:
    """One sliced loop's tile decomposition inside a segment."""

    #: The loop's eager element execution order, shape ``(n - start,)``.
    order: np.ndarray
    #: Monotone cut positions into ``order``, shape ``(n_tiles + 1,)``;
    #: tile ``t`` executes ``order[cuts[t]:cuts[t+1]]``.
    cuts: np.ndarray

    def tile_elems(self, t: int) -> np.ndarray:
        return self.order[int(self.cuts[t]) : int(self.cuts[t + 1])]


@dataclass(frozen=True)
class TiledSegment:
    """A run of sliceable loops executed tile-by-tile."""

    #: Indices into the compiled chain's flat loop list, program order.
    loop_indices: Tuple[int, ...]
    n_tiles: int
    #: One :class:`LoopSlices` per entry of ``loop_indices``.
    slices: Tuple[LoopSlices, ...]
    #: Conflict-free tile coloring (two same-colored tiles write no
    #: common Dat row); shape ``(n_tiles,)``.
    tile_colors: np.ndarray
    n_tile_colors: int


@dataclass(frozen=True)
class BarrierLoop:
    """A loop executed whole, synchronizing the tiles around it."""

    loop_index: int
    #: Why the inspector refused to slice it (diagnostics / stats).
    reason: str


SchedulePart = Union[TiledSegment, BarrierLoop]


@dataclass(frozen=True)
class TiledSchedule:
    """A complete tile-by-tile execution recipe for one loop chain."""

    parts: Tuple[SchedulePart, ...]
    tile_size: int
    #: Which eager element order the cuts were computed against:
    #: ``"phases"`` (plan color-phase order — the batched backends) or
    #: ``"ascending"`` (plain element order — the scalar backends).
    profile: str

    # ------------------------------------------------------------------
    @property
    def segments(self) -> List[TiledSegment]:
        return [p for p in self.parts if isinstance(p, TiledSegment)]

    @property
    def barriers(self) -> List[BarrierLoop]:
        return [p for p in self.parts if isinstance(p, BarrierLoop)]

    @property
    def n_sliced_loops(self) -> int:
        return sum(len(s.loop_indices) for s in self.segments)

    # ------------------------------------------------------------------
    def covers_exactly_once(self) -> Dict[int, bool]:
        """Per sliced loop index: do its tile slices partition its range?

        The central inspector invariant (property-tested): concatenating
        a loop's slices across tiles in execution order reproduces its
        eager order exactly — every iteration executed exactly once, in
        the eager relative order.
        """
        out: Dict[int, bool] = {}
        for seg in self.segments:
            for k, sl in zip(seg.loop_indices, seg.slices):
                cuts = sl.cuts
                ok = (
                    cuts.shape == (seg.n_tiles + 1,)
                    and int(cuts[0]) == 0
                    and int(cuts[-1]) == sl.order.size
                    and bool(np.all(np.diff(cuts) >= 0))
                )
                out[k] = ok
        return out

    def stats(self) -> Dict[str, object]:
        """Shape summary for benches, tests and docs."""
        segs = self.segments
        tile_spans = [
            int(sl.cuts[t + 1] - sl.cuts[t])
            for seg in segs
            for sl in seg.slices
            for t in range(seg.n_tiles)
        ]
        nonempty = [s for s in tile_spans if s]
        return {
            "profile": self.profile,
            "tile_size": self.tile_size,
            "n_parts": len(self.parts),
            "n_segments": len(segs),
            "n_barriers": len(self.barriers),
            "barrier_reasons": sorted({b.reason for b in self.barriers}),
            "n_sliced_loops": self.n_sliced_loops,
            "n_tiles": sum(seg.n_tiles for seg in segs),
            "max_tile_colors": max(
                (seg.n_tile_colors for seg in segs), default=0
            ),
            "mean_slice_elems": (
                float(np.mean(nonempty)) if nonempty else 0.0
            ),
        }
