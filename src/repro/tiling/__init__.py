"""Sparse tiling: inspector/executor cross-loop cache blocking.

The inspector (:mod:`repro.tiling.inspector`) turns a compiled loop
chain into a :class:`~repro.tiling.schedule.TiledSchedule` — seed
partition, dependency-aware tile expansion through the chain's maps,
monotone per-loop slices, tile conflict coloring.  Executors live with
the backends (:meth:`repro.backends.base.Backend.run_tiled` and the
vectorized fast path); ``runtime.chain(tiling="auto")`` is the user
entry point.
"""

from .inspector import (
    AUTO_TILE_BYTES,
    PROFILES,
    auto_tile_size,
    barrier_reason,
    build_tiled_schedule,
    check_tiling,
    loop_order,
    segment_written_rows,
)
from .schedule import (
    BarrierLoop,
    LoopSlices,
    TiledSchedule,
    TiledSegment,
)

__all__ = [
    "AUTO_TILE_BYTES",
    "BarrierLoop",
    "LoopSlices",
    "PROFILES",
    "TiledSchedule",
    "TiledSegment",
    "auto_tile_size",
    "barrier_reason",
    "build_tiled_schedule",
    "check_tiling",
    "loop_order",
    "segment_written_rows",
]
