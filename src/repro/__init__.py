"""repro — reproduction of "Vectorizing Unstructured Mesh Computations for
Many-core Architectures" (Reguly, László, Mudalige, Giles).

An OP2-like domain-specific library for unstructured-mesh computations
with scalar, explicitly-vectorized (SIMD), SIMT (OpenCL/CUDA-analogue) and
simulated-MPI execution backends, two full applications (the Airfoil CFD
benchmark and the Volna shallow-water tsunami solver), and a calibrated
performance model regenerating every table and figure of the paper's
evaluation.

Quickstart::

    import numpy as np
    from repro import Set, Dat, Map, par_loop, arg_dat, READ, INC, kernel

    nodes = Set(4, "nodes")
    edges = Set(3, "edges")
    e2n = Map(edges, nodes, 2, np.array([[0, 1], [1, 2], [2, 3]]), "e2n")
    w = Dat(edges, 1, np.ones(3), name="weights")
    acc = Dat(nodes, 1, name="acc")

    @kernel("spmv_row", flops=2)
    def spmv(wt, out0, out1):
        out0[0] += wt[0]
        out1[0] += wt[0]

    # Batched (SIMD-style) forms are generated automatically from the
    # scalar source by the kernel compiler (repro.kernelc) — users
    # write scalar kernels only.
    par_loop(spmv, edges,
             arg_dat(w, -1, None, READ),
             arg_dat(acc, 0, e2n, INC),
             arg_dat(acc, 1, e2n, INC))
"""

from .core import (
    IDX_ALL,
    IDX_ID,
    INC,
    MAX,
    MIN,
    READ,
    RW,
    WRITE,
    Access,
    Arg,
    Dat,
    Global,
    Kernel,
    KernelInfo,
    LoopChain,
    Map,
    Plan,
    Runtime,
    Set,
    arg_dat,
    arg_gbl,
    build_plan,
    chain,
    default_runtime,
    identity_map,
    kernel,
    make_backend,
    par_loop,
    set_backend,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "Arg",
    "Dat",
    "Global",
    "IDX_ALL",
    "IDX_ID",
    "INC",
    "Kernel",
    "KernelInfo",
    "LoopChain",
    "MAX",
    "MIN",
    "Map",
    "Plan",
    "READ",
    "RW",
    "Runtime",
    "Set",
    "WRITE",
    "arg_dat",
    "arg_gbl",
    "build_plan",
    "chain",
    "default_runtime",
    "identity_map",
    "kernel",
    "make_backend",
    "par_loop",
    "set_backend",
    "__version__",
]
