"""Generators for every table of the paper's evaluation (I-IX).

Each function returns a :class:`~repro.bench.harness.ReportTable` whose
rows put our reproduced value next to the published one.  Tables I-IV
derive from specifications and the API itself; Tables V-IX come from the
calibrated performance model at paper scale.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..mesh import airfoil_paper_dims, volna_paper_dims
from ..perfmodel import (
    AUTOVEC_OPENMP,
    CUDA,
    MACHINES,
    OPENCL,
    SCALAR_MPI,
    SCALAR_OPENMP,
    VEC_MPI,
    VEC_OPENMP,
    airfoil_workload,
    predict_app,
    table1_rows,
    volna_workload,
)
from . import paper_data
from .harness import ReportTable

_WORKLOADS: Dict[str, object] = {}


def _workload(name: str):
    """Cached workloads — profile analysis builds meshes once."""
    if name not in _WORKLOADS:
        if name == "airfoil-large":
            _WORKLOADS[name] = airfoil_workload("large")
        elif name == "airfoil-small":
            _WORKLOADS[name] = airfoil_workload("small")
        elif name == "volna":
            _WORKLOADS[name] = volna_workload()
        else:
            raise KeyError(name)
    return _WORKLOADS[name]


AIRFOIL_KERNELS = ("save_soln", "adt_calc", "res_calc", "bres_calc", "update")
VOLNA_KERNELS = ("RK_1", "RK_2", "compute_flux", "numerical_flux",
                 "space_disc")


# ----------------------------------------------------------------------
def table1() -> ReportTable:
    """Table I: benchmark systems specifications."""
    t = ReportTable("Table I - Benchmark systems specifications")
    for row in table1_rows():
        t.add(**row)
    t.note("Transcribed Table I values; FLOP/byte = GEMM / STREAM.")
    return t


# ----------------------------------------------------------------------
def _kernel_properties_table(title, workload, kernels, paper, itemsize_dp,
                             sp_col=True) -> ReportTable:
    t = ReportTable(title)
    for name in kernels:
        p = workload.profile(name)
        lt = p.transfer
        row = {
            "Kernel": name,
            "DirRd": lt.direct_read, "DirWr": lt.direct_write,
            "IndRd": lt.indirect_read, "IndWr": lt.indirect_write,
            "FLOP": p.flops,
            "F/B": round(lt.flop_per_byte(p.flops, itemsize_dp), 2),
        }
        if sp_col:
            row["F/B(SP)"] = round(
                lt.flop_per_byte(p.flops, itemsize_dp // 2), 2
            )
        pap = paper.get(name)
        if pap:
            row["paper DirRd"] = pap[0]
            row["paper DirWr"] = pap[1]
            row["paper IndRd"] = pap[2]
            row["paper IndWr"] = pap[3]
            row["paper FLOP"] = pap[4]
            row["paper F/B"] = pap[5]
        t.add(**row)
    t.note(
        "Our transfer counts are derived from the par_loop argument "
        "lists; INC counts as read+write (paper convention)."
    )
    return t


def table2() -> ReportTable:
    """Table II: Airfoil kernel properties."""
    return _kernel_properties_table(
        "Table II - Airfoil kernel properties",
        _workload("airfoil-large"), AIRFOIL_KERNELS,
        paper_data.TABLE2_AIRFOIL, itemsize_dp=8,
    )


def table3() -> ReportTable:
    """Table III: Volna kernel properties (single precision)."""
    return _kernel_properties_table(
        "Table III - Volna kernel properties",
        _workload("volna"), VOLNA_KERNELS + ("sim_1",),
        paper_data.TABLE3_VOLNA, itemsize_dp=8, sp_col=False,
    )


# ----------------------------------------------------------------------
def table4() -> ReportTable:
    """Table IV: mesh sizes and memory footprints."""
    t = ReportTable("Table IV - Test mesh sizes and memory footprint")
    ni, nj = airfoil_paper_dims(720_000)
    entries = [
        ("Airfoil small", ni * nj, ni * (nj + 1), 2 * ni * nj - ni,
         {"nodes": 2, "cells": 13, "bedges": 1}, 8),
        ("Airfoil large", 4 * ni * nj, 2 * ni * (2 * nj + 1),
         2 * (2 * ni) * (2 * nj) - 2 * ni,
         {"nodes": 2, "cells": 13, "bedges": 1}, 8),
    ]
    nx, ny = volna_paper_dims()
    entries.append(
        ("Volna", 2 * nx * ny, (nx + 1) * (ny + 1), 3 * nx * ny + nx + ny,
         {"cells": 17, "edges": 10, "nodes": 0}, 4)
    )
    for name, cells, nodes, edges, dat_dims, itemsize in entries:
        sizes = {"cells": cells, "nodes": nodes, "edges": edges,
                 "bedges": max(1, int(0.002 * cells))}
        data_mb = sum(
            sizes[s] * d * itemsize for s, d in dat_dims.items()
        ) / 2**20
        pap = paper_data.TABLE4_MESHES[name]
        t.add(
            Mesh=name, cells=cells, nodes=nodes, edges=edges,
            **{"data MB": round(data_mb, 1),
               "paper cells": pap[0], "paper nodes": pap[1],
               "paper edges": pap[2],
               "paper MB": pap[3] if pap[3] is not None else pap[4]},
        )
    t.note(
        "Generated-mesh sizes from the O-mesh/triangulation formulas; "
        "paper footprints include one int32 connectivity map on top of "
        "our data-only figure (see EXPERIMENTS.md)."
    )
    return t


# ----------------------------------------------------------------------
def _breakdown_rows(t, pred, kernels, paper_col, dtype_label=""):
    for name in kernels:
        kp = pred.kernels[name]
        row = {
            "Kernel": name,
            "time s": round(kp.time_s, 2),
            "BW GB/s": round(kp.bandwidth_gbs, 1),
            "GFLOP/s": round(kp.gflops, 1),
            "bound": kp.bound,
        }
        if paper_col and name in paper_col:
            row["paper t"] = paper_col[name][0]
            row["paper BW"] = paper_col[name][1]
        t.add(**row)


def table5() -> ReportTable:
    """Table V: baseline (non-vectorized MPI / CUDA) breakdowns."""
    t = ReportTable(
        "Table V - Baseline per-kernel breakdowns "
        "(Airfoil DP 2.8M + Volna SP)"
    )
    awl, vwl = _workload("airfoil-large"), _workload("volna")
    awl_small = _workload("airfoil-small")
    combos = [
        ("MPI CPU 1", MACHINES["CPU 1"], SCALAR_MPI, awl, np.float64,
         AIRFOIL_KERNELS),
        ("MPI CPU 2", MACHINES["CPU 2"], SCALAR_MPI, awl, np.float64,
         AIRFOIL_KERNELS),
        ("CUDA K40", MACHINES["K40"], CUDA, awl_small, np.float64,
         AIRFOIL_KERNELS),
        ("MPI CPU 1", MACHINES["CPU 1"], SCALAR_MPI, vwl, np.float32,
         VOLNA_KERNELS),
        ("MPI CPU 2", MACHINES["CPU 2"], SCALAR_MPI, vwl, np.float32,
         VOLNA_KERNELS),
        ("CUDA K40", MACHINES["K40"], CUDA, vwl, np.float32,
         VOLNA_KERNELS),
    ]
    for label, machine, cfg, wl, dtype, kernels in combos:
        pred = predict_app(wl, machine, cfg, dtype)
        paper_col = paper_data.TABLE5_BASELINE.get(label, {})
        for name in kernels:
            kp = pred.kernels[name]
            pap = paper_col.get(name, (None, None, None))
            t.add(
                Config=label, App=wl.name, Kernel=name,
                **{"time s": round(kp.time_s, 2),
                   "BW GB/s": round(kp.bandwidth_gbs, 1),
                   "GFLOP/s": round(kp.gflops, 1),
                   "bound": kp.bound,
                   "paper t": pap[0], "paper BW": pap[1],
                   "paper GF": pap[2]},
            )
    t.note(
        "Airfoil CUDA uses the 720k mesh — the paper's own byte "
        "accounting shows the published CUDA column did too."
    )
    return t


def table6() -> ReportTable:
    """Table VI: OpenCL breakdowns on CPU 1 and the Xeon Phi."""
    t = ReportTable("Table VI - OpenCL per-kernel breakdowns")
    awl, vwl = _workload("airfoil-large"), _workload("volna")
    for mname in ("CPU 1", "Xeon Phi"):
        machine = MACHINES[mname]
        paper_col = paper_data.TABLE6_OPENCL[mname]
        for wl, dtype, kernels in (
            (awl, np.float64, AIRFOIL_KERNELS),
            (vwl, np.float32, VOLNA_KERNELS),
        ):
            pred = predict_app(wl, machine, OPENCL, dtype)
            for name in kernels:
                kp = pred.kernels[name]
                pap = paper_col.get(name, (None, None))
                vec_paper = (
                    name in paper_data.TABLE6_VECTORIZED_CPU
                    if mname == "CPU 1"
                    else True
                )
                t.add(
                    Device=mname, Kernel=name,
                    **{"time s": round(kp.time_s, 2),
                       "BW GB/s": round(kp.bandwidth_gbs, 1),
                       "vectorized": kp.vectorized,
                       "paper t": pap[0], "paper BW": pap[1],
                       "paper vec": vec_paper},
                )
    t.note(
        "OpenCL vectorizes whole kernels or not at all; the AVX device "
        "refuses the scatter/direct kernels, IMCI accepts everything."
    )
    return t


def table7() -> ReportTable:
    """Table VII: vectorized pure-MPI breakdowns on CPU 1 / CPU 2."""
    t = ReportTable("Table VII - Vectorized (intrinsics) MPI breakdowns")
    awl, vwl = _workload("airfoil-large"), _workload("volna")
    for mname in ("CPU 1", "CPU 2"):
        machine = MACHINES[mname]
        paper_col = paper_data.TABLE7_VECTORIZED[mname]
        for wl, dtype, kernels in (
            (awl, np.float64, AIRFOIL_KERNELS),
            (vwl, np.float32, VOLNA_KERNELS),
        ):
            pred = predict_app(wl, machine, VEC_MPI, dtype)
            for name in kernels:
                kp = pred.kernels[name]
                pap = paper_col.get(name, (None, None))
                t.add(
                    Device=mname, Kernel=name,
                    **{"time s": round(kp.time_s, 2),
                       "BW GB/s": round(kp.bandwidth_gbs, 1),
                       "bound": kp.bound,
                       "paper t": pap[0], "paper BW": pap[1]},
                )
    return t


def table8() -> ReportTable:
    """Table VIII: Xeon Phi scalar / auto-vectorized / intrinsics."""
    t = ReportTable("Table VIII - Xeon Phi per-kernel breakdowns")
    awl, vwl = _workload("airfoil-large"), _workload("volna")
    phi = MACHINES["Xeon Phi"]
    for label, cfg in (
        ("Scalar", SCALAR_OPENMP),
        ("Auto-vectorized", AUTOVEC_OPENMP),
        ("Intrinsics", VEC_OPENMP),
    ):
        paper_col = paper_data.TABLE8_PHI[label]
        for wl, dtype, kernels in (
            (awl, np.float64, AIRFOIL_KERNELS),
            (vwl, np.float32, VOLNA_KERNELS),
        ):
            pred = predict_app(wl, phi, cfg, dtype)
            for name in kernels:
                kp = pred.kernels[name]
                pap = paper_col.get(name, (None, None))
                t.add(
                    Version=label, Kernel=name,
                    **{"time s": round(kp.time_s, 2),
                       "BW GB/s": round(kp.bandwidth_gbs, 1),
                       "paper t": pap[0], "paper BW": pap[1]},
                )
    return t


def table9() -> ReportTable:
    """Table IX: relative per-kernel improvement over CPU 1."""
    t = ReportTable("Table IX - Relative performance vs CPU 1 (best config)")
    awl, vwl = _workload("airfoil-large"), _workload("volna")
    best = {
        "CPU 1": (MACHINES["CPU 1"], VEC_MPI),
        "CPU 2": (MACHINES["CPU 2"], VEC_MPI),
        "Xeon Phi": (MACHINES["Xeon Phi"], VEC_OPENMP),
        "K40": (MACHINES["K40"], CUDA),
    }
    preds = {}
    for mname, (machine, cfg) in best.items():
        preds[mname] = {
            "airfoil": predict_app(awl, machine, cfg, np.float64),
            "volna": predict_app(vwl, machine, cfg, np.float32),
        }
    for name in AIRFOIL_KERNELS + VOLNA_KERNELS:
        if name == "bres_calc":
            continue
        app = "airfoil" if name in AIRFOIL_KERNELS else "volna"
        base = preds["CPU 1"][app].kernels[name].time_s
        row = {"Kernel": name}
        for i, mname in enumerate(paper_data.TABLE9_COLUMNS):
            ours = base / preds[mname][app].kernels[name].time_s
            row[mname] = round(ours, 2)
            row[f"paper {mname}"] = paper_data.TABLE9_RELATIVE[name][i]
        t.add(**row)
    return t


ALL_TABLES = {
    "table1": table1, "table2": table2, "table3": table3,
    "table4": table4, "table5": table5, "table6": table6,
    "table7": table7, "table8": table8, "table9": table9,
}

# Measured ablation tables (whole-color batching, AoS/SoA layout, plan
# cache warm-vs-cold) are wall-clock experiments rather than
# deterministic model reconstructions; they live in .measured
# (ALL_ABLATIONS) and `python -m repro.bench --ablations` renders them
# alongside these tables.
