"""Published numbers from the paper, for side-by-side comparison.

Transcribed from Tables I-IX of Reguly et al.  Used only for reporting
(model-vs-paper columns) and for shape assertions in the benchmark
suite; the model never reads them.
"""

from __future__ import annotations

# Table II — Airfoil kernel properties.
# kernel: (direct_read, direct_write, indirect_read, indirect_write,
#          flops, flop_per_byte_dp, flop_per_byte_sp)
TABLE2_AIRFOIL = {
    "save_soln": (4, 4, 0, 0, 4, 0.04, 0.08),
    "adt_calc": (4, 1, 8, 0, 64, 0.57, 1.14),
    "res_calc": (0, 0, 22, 8, 73, 0.3, 0.6),
    "bres_calc": (1, 0, 13, 4, 73, 0.5, 1.01),
    "update": (9, 8, 0, 0, 17, 0.1, 0.2),
}

# Table III — Volna kernel properties (single precision only).
TABLE3_VOLNA = {
    "RK_1": (8, 12, 0, 0, 12, 0.6),
    "RK_2": (12, 8, 0, 0, 16, 0.8),
    "sim_1": (4, 4, 0, 0, 0, 0.0),
    "compute_flux": (4, 6, 8, 0, 154, 8.5),
    "numerical_flux": (1, 4, 6, 0, 9, 0.81),
    "space_disc": (8, 0, 10, 8, 23, 0.88),
}

# Table IV — meshes (cells, nodes, edges, memory MB dp(sp)).
TABLE4_MESHES = {
    "Airfoil small": (720_000, 721_801, 1_438_600, 94, 47),
    "Airfoil large": (2_880_000, 2_883_601, 5_757_200, 373, 186),
    "Volna": (2_392_352, 1_197_384, 3_589_735, None, 355),
}

# Table V — baseline per-kernel (time s, BW GB/s, GFLOP/s).
# Airfoil rows are double precision on the 2.8M mesh (CUDA column: the
# byte accounting shows the 720k mesh was used); Volna rows are SP.
TABLE5_BASELINE = {
    "MPI CPU 1": {
        "save_soln": (4.0, 46, 3.2), "adt_calc": (24.6, 13, 14.6),
        "res_calc": (25.2, 27, 32), "bres_calc": (0.09, 29, 12),
        "update": (14.05, 56, 8), "RK_1": (3.24, 53, 4),
        "RK_2": (2.88, 59, 5), "compute_flux": (23.34, 14, 42),
        "numerical_flux": (4.68, 29, 4), "space_disc": (16.86, 21, 9),
    },
    "MPI CPU 2": {
        "save_soln": (2.9, 63, 4), "adt_calc": (7.6, 43, 48),
        "res_calc": (13.6, 50, 61), "bres_calc": (0.05, 52, 16),
        "update": (9.7, 81, 10), "RK_1": (0.72, 79, 6),
        "RK_2": (0.64, 89, 9), "compute_flux": (4.01, 27, 82),
        "numerical_flux": (0.96, 57, 6), "space_disc": (1.51, 79, 33),
    },
    "CUDA K40": {
        "save_soln": (0.20, 230, 14), "adt_calc": (0.69, 116, 133),
        "res_calc": (2.77, 62, 75), "bres_calc": (0.06, 32, 5),
        "update": (0.83, 235, 29), "RK_1": (0.87, 198, 15),
        "RK_2": (0.72, 242, 24), "compute_flux": (3.21, 101, 309),
        "numerical_flux": (1.14, 120, 17), "space_disc": (1.92, 73, 31),
    },
}

# Table VI — OpenCL per-kernel time s / BW GB/s, DP where dual (Airfoil),
# plus which kernels the OpenCL compiler vectorized on each device.
TABLE6_OPENCL = {
    "CPU 1": {
        "save_soln": (4.15, 44), "adt_calc": (18.27, 17.7),
        "res_calc": (31.43, 22), "update": (14.65, 53.5),
        "RK_1": (1.37, 42), "RK_2": (1.18, 49),
        "compute_flux": (6.4, 51), "numerical_flux": (7.48, 18),
        "space_disc": (9.24, 40),
    },
    "Xeon Phi": {
        "save_soln": (2.6, 71), "adt_calc": (12.1, 27),
        "res_calc": (46.0, 15), "update": (12.0, 65),
        "RK_1": (0.89, 64), "RK_2": (0.76, 75),
        "compute_flux": (4.91, 67), "numerical_flux": (3.28, 42),
        "space_disc": (7.95, 45),
    },
}
TABLE6_VECTORIZED_CPU = {"adt_calc", "bres_calc", "compute_flux",
                         "numerical_flux"}
# Phi: everything vectorized.

# Table VII — vectorized pure MPI per-kernel (time s, BW GB/s), DP.
TABLE7_VECTORIZED = {
    "CPU 1": {
        "save_soln": (4.08, 45), "adt_calc": (12.7, 25),
        "res_calc": (19.5, 35), "update": (14.6, 53),
        "RK_1": (3.27, 52), "RK_2": (2.88, 59),
        "compute_flux": (8.82, 37), "numerical_flux": (4.59, 30),
        "space_disc": (7.47, 48),
    },
    "CPU 2": {
        "save_soln": (2.9, 62), "adt_calc": (5.6, 57),
        "res_calc": (9.9, 69), "update": (9.8, 79),
        "RK_1": (2.19, 78), "RK_2": (1.86, 92),
        "compute_flux": (6.0, 54), "numerical_flux": (3.18, 43),
        "space_disc": (4.56, 79),
    },
}

# Table VIII — Xeon Phi per-kernel (time s, BW GB/s), DP Airfoil + Volna.
TABLE8_PHI = {
    "Scalar": {
        "save_soln": (1.95, 94), "adt_calc": (27.7, 12),
        "res_calc": (48.8, 14), "update": (11.8, 66),
        "RK_1": (2.16, 79), "RK_2": (2.37, 70),
        "compute_flux": (32.1, 10), "numerical_flux": (12.9, 11),
        "space_disc": (23.6, 15),
    },
    "Auto-vectorized": {
        "save_soln": (1.94, 95), "adt_calc": (14.35, 23),
        "res_calc": (84.03, 8), "update": (8.33, 94),
        "RK_1": (2.19, 78), "RK_2": (3.24, 53),
        "compute_flux": (29.3, 11), "numerical_flux": (11.3, 12),
        "space_disc": (24.5, 15),
    },
    "Intrinsics": {
        "save_soln": (2.17, 84), "adt_calc": (6.86, 47),
        "res_calc": (27.22, 25), "update": (8.77, 89),
        "RK_1": (1.35, 128), "RK_2": (1.32, 130),
        "compute_flux": (10.95, 30), "numerical_flux": (7.29, 19),
        "space_disc": (9.93, 36),
    },
}

# Table IX — relative improvement over CPU 1, per kernel.
TABLE9_RELATIVE = {
    "save_soln": (1.0, 1.37, 1.88, 5.11),
    "adt_calc": (1.0, 2.25, 1.87, 4.84),
    "res_calc": (1.0, 1.95, 0.81, 1.79),
    "update": (1.0, 1.48, 1.67, 4.54),
    "RK_1": (1.0, 1.5, 2.42, 3.75),
    "RK_2": (1.0, 1.54, 2.18, 4.05),
    "compute_flux": (1.0, 1.46, 0.81, 2.75),
    "numerical_flux": (1.0, 1.43, 0.63, 4.02),
    "space_disc": (1.0, 1.63, 0.75, 1.52),
}
TABLE9_COLUMNS = ("CPU 1", "CPU 2", "Xeon Phi", "K40")

# Headline speedup bands from the conclusions (Section 7).
CPU_VEC_SPEEDUP_SP = (1.6, 2.0)
CPU_VEC_SPEEDUP_DP = (1.1, 1.4)
PHI_VEC_SPEEDUP_SP = (2.0, 2.2)
PHI_VEC_SPEEDUP_DP = (1.7, 1.8)
