"""CLI: regenerate every table and figure.

Usage::

    python -m repro.bench              # all tables + figures
    python -m repro.bench table5       # one artifact
    python -m repro.bench --measured   # also run wall-clock measurements
"""

from __future__ import annotations

import argparse
import sys

from .figures import ALL_FIGURES
from .harness import RESULTS_DIR
from .measured import measured_speedups
from .tables import ALL_TABLES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts", nargs="*",
        help="names to generate (default: everything)",
    )
    parser.add_argument(
        "--measured", action="store_true",
        help="also measure wall-clock backend speedups on this machine",
    )
    parser.add_argument("--outdir", default=None, help="output directory")
    args = parser.parse_args(argv)

    registry = {**ALL_TABLES, **ALL_FIGURES}
    names = args.artifacts or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        parser.error(f"unknown artifacts {unknown}; known: {sorted(registry)}")

    for name in names:
        artifact = registry[name]()
        print(artifact.render())
        path = artifact.save(name, args.outdir)
        print(f"[saved {path}]\n")

    if args.measured:
        for app in ("airfoil", "volna"):
            table = measured_speedups(app)
            print(table.render())
            table.save(f"measured_{app}", args.outdir)
    print(f"Results under {args.outdir or RESULTS_DIR}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
