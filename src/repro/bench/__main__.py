"""CLI: regenerate every table and figure.

Usage::

    python -m repro.bench                # all tables + figures
    python -m repro.bench table5         # one artifact
    python -m repro.bench --measured     # also run wall-clock measurements
    python -m repro.bench --ablations    # layout / batching / caching ablations
    python -m repro.bench --quick        # CI smoke: one table + tiny ablation
"""

from __future__ import annotations

import argparse
import sys

from .figures import ALL_FIGURES
from .harness import RESULTS_DIR
from .measured import (
    ALL_ABLATIONS,
    aero_ablation,
    autotune_ablation,
    batch_ablation,
    kernelc_ablation,
    loop_chain_ablation,
    matfree_ablation,
    measured_speedups,
    native_ablation,
    tiling_ablation,
)
from .tables import ALL_TABLES


def dump_kernel(name: str) -> int:
    """Print the kernelc-generated sources for one application kernel.

    Shapes are harvested from a real traced time step (a tiny sim run
    with a chained sequential runtime), so the dump shows exactly what
    the backends compile: the specialized scalar loop stub and the
    batched vector kernel for that loop's argument signature.
    """
    import numpy as np

    from ..apps.airfoil import AirfoilSim
    from ..apps.volna import VolnaSim
    from ..core import Runtime
    from ..kernelc import (
        generate_loop_source,
        supports,
        vector_source_for,
    )
    from ..mesh import make_airfoil_mesh, make_tri_mesh

    from ..apps.aero import AeroSim

    loops = {}
    for build in (
        lambda: AirfoilSim(make_airfoil_mesh(6, 3),
                           runtime=Runtime("sequential"), chained=True),
        lambda: VolnaSim(make_tri_mesh(4, 3, 100_000.0, 75_000.0),
                         dtype=np.float64,
                         runtime=Runtime("sequential"), chained=True),
        lambda: AeroSim(make_airfoil_mesh(8, 4),
                        runtime=Runtime("sequential"), chained=True),
    ):
        sim = build()
        sim.step()
        for compiled in sim.runtime._chains.values():
            for bl in compiled.loops:
                loops.setdefault(bl.kernel.name, (bl.kernel, bl.args))
    if name not in loops:
        print(f"unknown kernel {name!r}; traced kernels: "
              f"{', '.join(sorted(loops))}")
        return 1
    kernel, args = loops[name]
    print(f"# ---- {name}: specialized scalar stub "
          f"(repro.kernelc.scalar) ----")
    if supports(args):
        print(generate_loop_source(kernel.name, args))
    else:
        print("# shape outside the stub subset "
              "(generic interpreter fallback)\n")
    print(f"# ---- {name}: generated vector kernel "
          f"(repro.kernelc.vector) ----")
    from ..kernelc import UnvectorizableKernel

    try:
        print(vector_source_for(kernel, args))
    except UnvectorizableKernel as exc:
        print(f"# not vectorizable (scalar fallback at run time): {exc}\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "artifacts", nargs="*",
        help="names to generate (default: everything)",
    )
    parser.add_argument(
        "--measured", action="store_true",
        help="also measure wall-clock backend speedups on this machine",
    )
    parser.add_argument(
        "--ablations", action="store_true",
        help="also run the layout / batching / caching ablations "
             "(AoS-vs-SoA, whole-color-vs-chunked, warm-vs-cold caches)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: one model table plus a small "
             "batched-vs-chunked measurement",
    )
    parser.add_argument(
        "--dump-kernel", metavar="NAME", default=None,
        help="print the kernelc-generated scalar stub and vector kernel "
             "for one application kernel (e.g. res_calc, compute_flux)",
    )
    parser.add_argument("--outdir", default=None, help="output directory")
    args = parser.parse_args(argv)

    if args.dump_kernel is not None:
        return dump_kernel(args.dump_kernel)

    registry = {**ALL_TABLES, **ALL_FIGURES}

    if args.quick:
        if args.artifacts or args.measured or args.ablations:
            parser.error("--quick runs a fixed smoke subset; drop the "
                         "artifact names / --measured / --ablations or "
                         "run them without --quick")
        from ..mesh import make_airfoil_mesh

        table = registry["table2"]()
        print(table.render())
        print(f"[saved {table.save('table2', args.outdir)}]\n")
        quick = batch_ablation(
            mesh=make_airfoil_mesh(24, 12), steps=2, schemes=("two_level",)
        )
        print(quick.render())
        print(f"[saved {quick.save('BENCH_quick_batch', args.outdir)}]\n")
        chain_t = loop_chain_ablation(mesh=make_airfoil_mesh(24, 12), steps=5)
        print(chain_t.render())
        print(f"[saved {chain_t.save('ablation_loop_chain', args.outdir)}]\n")
        from ..mesh import make_tri_mesh

        tiling_t = tiling_ablation(
            steps=3, tile_sizes=("auto", 512),
            meshes={
                ("airfoil", "48x24"): make_airfoil_mesh(48, 24),
                ("volna", "40x30"): make_tri_mesh(40, 30, 100_000.0,
                                                  75_000.0),
            },
        )
        print(tiling_t.render())
        print(f"[saved {tiling_t.save('ablation_tiling', args.outdir)}]\n")
        kc_t = kernelc_ablation(
            steps=3,
            meshes={
                ("airfoil", "48x24"): make_airfoil_mesh(48, 24),
                ("volna", "24x18"): make_tri_mesh(24, 18, 100_000.0,
                                                  75_000.0),
            },
        )
        print(kc_t.render())
        print(f"[saved {kc_t.save('ablation_kernelc', args.outdir)}]\n")
        aero_t = aero_ablation(steps=2, mesh=make_airfoil_mesh(32, 16),
                               repeats=3)
        print(aero_t.render())
        print(f"[saved {aero_t.save('ablation_aero', args.outdir)}]\n")
        native_t = native_ablation(mesh=make_airfoil_mesh(48, 24), steps=5)
        print(native_t.render())
        print(f"[saved {native_t.save('ablation_native', args.outdir)}]\n")
        mf_t = matfree_ablation(mesh=make_airfoil_mesh(96, 48))
        print(mf_t.render())
        print(f"[saved {mf_t.save('ablation_matfree', args.outdir)}]\n")
        auto_t = autotune_ablation(steps=2, repeats=5)
        print(auto_t.render())
        print(f"[saved {auto_t.save('ablation_autotune', args.outdir)}]\n")
        from .warmstart import cold_warm_ablation

        cw_t = cold_warm_ablation(steps=2)
        print(cw_t.render())
        print(f"[saved {cw_t.save('ablation_cold_warm', args.outdir)}]\n")
        print(f"Results under {args.outdir or RESULTS_DIR}/")
        return 0

    names = args.artifacts or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        parser.error(f"unknown artifacts {unknown}; known: {sorted(registry)}")

    for name in names:
        artifact = registry[name]()
        print(artifact.render())
        path = artifact.save(name, args.outdir)
        print(f"[saved {path}]\n")

    if args.measured:
        for app in ("airfoil", "volna"):
            table = measured_speedups(app)
            print(table.render())
            table.save(f"measured_{app}", args.outdir)

    if args.ablations:
        for name, gen in ALL_ABLATIONS.items():
            table = gen()
            print(table.render())
            table.save(f"BENCH_{name}", args.outdir)
        # The loop-chain, tiling and kernelc ablations keep their
        # acceptance-artifact names.
        table = loop_chain_ablation()
        print(table.render())
        table.save("ablation_loop_chain", args.outdir)
        table = tiling_ablation()
        print(table.render())
        table.save("ablation_tiling", args.outdir)
        table = kernelc_ablation()
        print(table.render())
        table.save("ablation_kernelc", args.outdir)
        table = aero_ablation()
        print(table.render())
        table.save("ablation_aero", args.outdir)
        table = native_ablation()
        print(table.render())
        table.save("ablation_native", args.outdir)
        table = matfree_ablation()
        print(table.render())
        table.save("ablation_matfree", args.outdir)
        table = autotune_ablation()
        print(table.render())
        table.save("ablation_autotune", args.outdir)
        from .warmstart import cold_warm_ablation

        table = cold_warm_ablation()
        print(table.render())
        table.save("ablation_cold_warm", args.outdir)

    print(f"Results under {args.outdir or RESULTS_DIR}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
