"""Benchmark harness regenerating every table and figure of the paper."""

from .figures import ALL_FIGURES, phi_tuning_time
from .harness import RESULTS_DIR, FigureSeries, ReportTable
from .measured import MEASURED_CONFIGS, measured_speedups, time_app
from .tables import ALL_TABLES

__all__ = [
    "ALL_FIGURES",
    "ALL_TABLES",
    "FigureSeries",
    "MEASURED_CONFIGS",
    "RESULTS_DIR",
    "ReportTable",
    "measured_speedups",
    "phi_tuning_time",
    "time_app",
]
