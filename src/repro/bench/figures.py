"""Generators for every figure of the paper's evaluation (5-9).

Figures are bar/line charts in the paper; here each regenerates as a
:class:`~repro.bench.harness.FigureSeries` carrying exactly the numbers
the bars/lines would plot.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..perfmodel import (
    AUTOVEC_OPENMP,
    CUDA,
    CUDA_BLOCK_PERMUTE,
    CUDA_FULL_PERMUTE,
    MACHINES,
    OPENCL,
    SCALAR_MPI,
    SCALAR_OPENMP,
    VEC_BLOCK_PERMUTE,
    VEC_FULL_PERMUTE,
    VEC_MPI,
    VEC_OPENMP,
    predict_app,
)
from .harness import FigureSeries
from .tables import _workload

#: (case label, workload key, dtype) — the three workloads every figure
#: sweeps: Airfoil SP + DP on the 2.8M mesh and Volna SP.
CASES: List[Tuple[str, str, object]] = [
    ("Airfoil Single", "airfoil-large", np.float32),
    ("Airfoil Double", "airfoil-large", np.float64),
    ("Volna", "volna", np.float32),
]


def _totals(machine, cfg) -> List[float]:
    out = []
    for _, wl_key, dtype in CASES:
        wl = _workload(wl_key)
        out.append(round(predict_app(wl, MACHINES[machine], cfg, dtype).total_s, 2))
    return out


def figure5() -> FigureSeries:
    """Fig 5: baseline (non-vectorized) runtimes."""
    f = FigureSeries(
        "Figure 5 - Baseline performance (non-vectorized)",
        "Case", [c[0] for c in CASES],
    )
    f.add_series("CPU 1 MPI", _totals("CPU 1", SCALAR_MPI))
    f.add_series("CPU 1 OpenMP", _totals("CPU 1", SCALAR_OPENMP))
    f.add_series("CPU 2 MPI", _totals("CPU 2", SCALAR_MPI))
    f.add_series("CPU 2 OpenMP", _totals("CPU 2", SCALAR_OPENMP))
    f.add_series("K40", _totals("K40", CUDA))
    f.note("Paper shape: K40 fastest, CPU2 ~ 2x CPU1, MPI <= OpenMP.")
    return f


def figure6() -> FigureSeries:
    """Fig 6: explicit vectorization and OpenCL on the two CPUs."""
    cases = [
        f"{m} {c}"
        for m in ("CPU1", "CPU2")
        for c in ("Airfoil SP", "Airfoil DP", "Volna SP")
    ]
    f = FigureSeries(
        "Figure 6 - Vectorization with intrinsics and OpenCL (CPUs)",
        "Case", cases,
    )
    series = {
        "MPI": SCALAR_MPI, "MPI vectorized": VEC_MPI,
        "OpenMP": SCALAR_OPENMP, "OpenMP vectorized": VEC_OPENMP,
        "OpenCL": OPENCL,
    }
    for label, cfg in series.items():
        vals = []
        for mname in ("CPU 1", "CPU 2"):
            vals.extend(_totals(mname, cfg))
        f.add_series(label, vals)
    f.note(
        "Paper shape: intrinsics ~2x in SP / 1.1-1.4x in DP; pure MPI "
        "beats hybrid on CPUs; OpenCL close to plain OpenMP."
    )
    return f


def figure7() -> FigureSeries:
    """Fig 7: Xeon Phi across all execution strategies."""
    f = FigureSeries(
        "Figure 7 - Xeon Phi performance",
        "Case", [c[0] for c in CASES],
    )
    series = {
        "Scalar MPI": SCALAR_MPI,
        "Scalar MPI+OpenMP": SCALAR_OPENMP,
        "Auto-vectorized MPI+OpenMP": AUTOVEC_OPENMP,
        "OpenCL": OPENCL,
        "Vectorized MPI": VEC_MPI,
        "Vectorized MPI+OpenMP": VEC_OPENMP,
    }
    for label, cfg in series.items():
        f.add_series(label, _totals("Xeon Phi", cfg))
    f.note(
        "Paper shape: intrinsics 2.0-2.2x (SP) / 1.7-1.8x (DP) over "
        "scalar; auto-vectorization worse than scalar; hybrid beats "
        "pure MPI on the Phi."
    )
    return f


def figure8a() -> FigureSeries:
    """Fig 8a: coloring-scheme ablation on K40 and Xeon Phi."""
    f = FigureSeries(
        "Figure 8a - Coloring approaches (Airfoil 2.8M)",
        "Scheme", ["Original", "Full Permute", "Block Permute"],
    )
    wl = _workload("airfoil-large")
    combos = {
        "K40 Single": ("K40", np.float32,
                       (CUDA, CUDA_FULL_PERMUTE, CUDA_BLOCK_PERMUTE)),
        "K40 Double": ("K40", np.float64,
                       (CUDA, CUDA_FULL_PERMUTE, CUDA_BLOCK_PERMUTE)),
        "Phi Single": ("Xeon Phi", np.float32,
                       (VEC_OPENMP, VEC_FULL_PERMUTE, VEC_BLOCK_PERMUTE)),
        "Phi Double": ("Xeon Phi", np.float64,
                       (VEC_OPENMP, VEC_FULL_PERMUTE, VEC_BLOCK_PERMUTE)),
    }
    for label, (mname, dtype, cfgs) in combos.items():
        f.add_series(
            label,
            [round(predict_app(wl, MACHINES[mname], c, dtype).total_s, 2)
             for c in cfgs],
        )
    f.note(
        "Paper shape: the original two-level coloring wins on both; "
        "full permute beats block permute on the K40 (tiny cache), the "
        "reverse on the Phi."
    )
    return f


#: The MPI x OpenMP splits of Fig 8b (processes x threads = 240).
FIG8B_COMBOS = ["1x240", "6x40", "10x24", "12x20", "20x12", "30x8", "60x4"]
FIG8B_BLOCK_SIZES = [256, 512, 1024, 1536, 2048]


def phi_tuning_time(
    base_total: float, nranks: int, threads: int, block_size: int,
    n_cells: int = 2_880_000,
) -> float:
    """Fig 8b surface model: hybrid-split and block-size penalties.

    Three effects on top of the best-case runtime (Section 6.5):
    messaging cost grows with the process count, thread-level overhead
    grows with threads per process, and the block size trades cache
    locality (small blocks lose reuse) against load balance (the optimal
    block grows with the process count as each rank's thread pool
    shrinks, until imbalance bites — the paper's stated trend).
    """
    bs_opt = 256.0 * np.sqrt(nranks)
    locality = 0.10 * max(0.0, bs_opt / block_size - 1.0) ** 0.5
    imbalance = 0.06 * max(0.0, block_size / bs_opt - 1.0) ** 0.7
    msg = 0.0008 * nranks
    thread_overhead = 0.12 * threads / 240.0
    return base_total * (1.0 + msg + thread_overhead + locality + imbalance)


def figure8b() -> FigureSeries:
    """Fig 8b: MPI x OpenMP split and block-size tuning on the Phi."""
    f = FigureSeries(
        "Figure 8b - MPI x OpenMP and block-size tuning (Phi, Airfoil DP)",
        "Combo", FIG8B_COMBOS,
    )
    wl = _workload("airfoil-large")
    base = predict_app(
        wl, MACHINES["Xeon Phi"], VEC_OPENMP, np.float64
    ).total_s * 0.72  # best-case (fully tuned) baseline
    for bs in FIG8B_BLOCK_SIZES:
        vals = []
        for combo in FIG8B_COMBOS:
            nr, th = (int(v) for v in combo.split("x"))
            vals.append(round(phi_tuning_time(base, nr, th, bs), 2))
        f.add_series(f"block={bs}", vals)
    f.note(
        "Paper shape: runtime 25-40s; larger block sizes preferred as "
        "process count grows; extremes (1x240, 60x4) are worst."
    )
    return f


def figure9() -> FigureSeries:
    """Fig 9: best runtimes across all platforms."""
    f = FigureSeries(
        "Figure 9 - Best execution times across platforms",
        "Case", [c[0] for c in CASES],
    )
    best = {
        "CPU 1": VEC_MPI, "CPU 2": VEC_MPI,
        "Xeon Phi": VEC_OPENMP, "K40": CUDA,
    }
    for mname, cfg in best.items():
        f.add_series(mname, _totals(mname, cfg))
    f.note(
        "Paper shape: Phi ~ CPU 1; CPU 2 40-80% faster than CPU 1; "
        "K40 2.5-3x CPU 1 and ~2.5x the Phi."
    )
    return f


ALL_FIGURES = {
    "figure5": figure5, "figure6": figure6, "figure7": figure7,
    "figure8a": figure8a, "figure8b": figure8b, "figure9": figure9,
}
