"""Benchmark harness: table/figure rendering and result persistence.

Every table and figure of the paper regenerates as a :class:`ReportTable`
(rows of dicts) or a :class:`FigureSeries` (named data series — we print
the series a plot would show, since the evaluation is textual).  Both
render as aligned ASCII and write themselves under ``bench_results/``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Default output directory (repo-root relative when run from the repo).
RESULTS_DIR = Path("bench_results")


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class ReportTable:
    """An aligned-text table with provenance metadata.

    ``meta`` records the knob settings a table was produced under
    (layout, batch mode, steps, ...) so persisted JSON artifacts are
    self-describing — the ablation tables rely on this to make
    AoS-vs-SoA / batched-vs-chunked / cached-vs-cold runs comparable
    across machines and commits.
    """

    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def add(self, **row) -> None:
        self.rows.append(row)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def add_speedup_column(
        self, time_col: str, out_col: str = "speedup", baseline_row: int = 0
    ) -> None:
        """Append ``out_col`` = baseline time / row time to every row.

        Call this while ``time_col`` still holds unrounded times (round
        for display afterwards) so the ratios keep full precision.
        """
        if not self.rows:
            return
        base = float(self.rows[baseline_row][time_col])
        for r in self.rows:
            t = float(r[time_col])
            r[out_col] = round(base / t, 2) if t else float("inf")

    # ------------------------------------------------------------------
    def render(self) -> str:
        if not self.rows:
            return f"== {self.title} ==\n(no rows)\n"
        cols = list(dict.fromkeys(c for r in self.rows for c in r))
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in self.rows))
            for c in cols
        }
        lines = [f"== {self.title} =="]
        if self.meta:
            lines.append(
                "cfg: " + "  ".join(f"{k}={v}" for k, v in self.meta.items())
            )
        lines.append("  ".join(c.ljust(widths[c]) for c in cols))
        lines.append("  ".join("-" * widths[c] for c in cols))
        for r in self.rows:
            lines.append(
                "  ".join(_fmt(r.get(c, "")).ljust(widths[c]) for c in cols)
            )
        for n in self.notes:
            lines.append(f"note: {n}")
        return "\n".join(lines) + "\n"

    def save(self, name: str, directory: Optional[Path] = None) -> Path:
        directory = Path(directory) if directory else RESULTS_DIR
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.txt"
        path.write_text(self.render())
        (directory / f"{name}.json").write_text(
            json.dumps({"title": self.title, "rows": self.rows,
                        "notes": self.notes, "meta": self.meta},
                       indent=2, default=str)
        )
        return path

    # ------------------------------------------------------------------
    def column(self, name: str) -> List[object]:
        return [r[name] for r in self.rows]

    def row_for(self, key_col: str, key) -> Dict[str, object]:
        for r in self.rows:
            if r.get(key_col) == key:
                return r
        raise KeyError(f"No row with {key_col}={key!r} in {self.title!r}")


@dataclass
class FigureSeries:
    """Named data series standing in for one figure's plotted content."""

    title: str
    x_label: str
    x: Sequence[object] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, values: Sequence[float]) -> None:
        values = list(values)
        if self.x and len(values) != len(self.x):
            raise ValueError(
                f"series {name!r} has {len(values)} points, x has {len(self.x)}"
            )
        self.series[name] = values

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        table = ReportTable(self.title)
        for i, xv in enumerate(self.x):
            row = {self.x_label: xv}
            for name, vals in self.series.items():
                row[name] = vals[i]
            table.add(**row)
        table.notes = self.notes
        return table.render()

    def save(self, name: str, directory: Optional[Path] = None) -> Path:
        directory = Path(directory) if directory else RESULTS_DIR
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.txt"
        path.write_text(self.render())
        (directory / f"{name}.json").write_text(
            json.dumps(
                {"title": self.title, "x_label": self.x_label,
                 "x": list(self.x), "series": self.series,
                 "notes": self.notes},
                indent=2, default=str,
            )
        )
        return path
