"""Cross-process warm-start tooling: the artifact store's CI gate.

The persistent store (:mod:`repro.store`) promises that a second
process running the same workload replays everything from disk — zero
plan construction, zero tiling inspection, zero kernel emission, zero
native compiles.  This module makes that promise executable:

``python -m repro.bench.warmstart run --out stats.json``
    runs the aero + airfoil quick workloads in *this* process (one
    process = one cold-or-warm measurement; the store under
    ``$REPRO_CACHE_DIR`` decides which) and dumps the per-kind store
    counters plus the wall time;

``python -m repro.bench.warmstart check cold.json warm.json``
    enforces the warm-start acceptance on two such dumps: the warm
    process must show ``disk_hits > 0`` and ``builds == 0`` for plan /
    chain / tiled / kernelc, and ``compiles == 0`` for native;

``python -m repro.bench.warmstart corrupt --fraction 0.3 --seed 7``
    garbles a deterministic random subset of the store's files, for the
    corrupt-cache smoke (tier-1 must still pass against the damaged
    store, with ``corrupt`` counted — never raised).

``cold_warm_ablation()`` wraps the same run in two subprocesses
sharing a fresh store and reports the measured process-level warm-start
speedup (``ablation_cold_warm``, guarded by the bench-regression
baseline like every other fast path).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

#: Kinds the warm acceptance pins: a replaying process must hit disk
#: and construct nothing for each of these.
CHECKED_KINDS = ("plan", "chain", "tiled", "kernelc")

#: All persistent kinds dumped for the CI artifact.
PERSISTED_KINDS = ("plan", "chain", "tiled", "kernelc", "native", "tune")


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def run_workload(apps: List[str], steps: int = 2) -> Dict:
    """One cold-or-warm measurement in the current process.

    ``aero`` runs Picard steps (assembly + CG) on the vectorized
    backend, chained + tiled — exercising the plan, chain, tiled and
    kernelc stores.  ``airfoil`` replays its chain on the native
    backend when a C compiler is available (vectorized otherwise) —
    exercising the native ``.so`` store.  The store under
    ``$REPRO_CACHE_DIR`` decides whether this process is cold or warm.
    """
    from .. import store
    from ..kernelc import compiler_available, native_cache_stats
    from ..mesh import make_airfoil_mesh
    from .measured import time_app

    t0 = time.perf_counter()
    if "aero" in apps:
        time_app("aero", "vectorized", "two_level", {},
                 mesh=make_airfoil_mesh(24, 12), steps=steps,
                 chained=True, tiling="auto")
    if "airfoil" in apps:
        backend = "native" if compiler_available() else "vectorized"
        time_app("airfoil", backend, "two_level", {},
                 mesh=make_airfoil_mesh(24, 12), steps=steps,
                 chained=True)
    wall = time.perf_counter() - t0
    return {
        "apps": list(apps),
        "steps": steps,
        "workload_s": wall,
        "cache_dir": os.environ.get("REPRO_CACHE_DIR", ""),
        "compiler_available": bool(compiler_available()),
        "native": dict(native_cache_stats()),
        "stats": {k: store.store_stats(k) for k in PERSISTED_KINDS},
    }


# ----------------------------------------------------------------------
# check
# ----------------------------------------------------------------------
def check_warm(cold: Dict, warm: Dict) -> List[str]:
    """The warm-start acceptance.  Returns failure messages (empty = pass)."""
    failures: List[str] = []
    for kind in CHECKED_KINDS:
        c, w = cold["stats"][kind], warm["stats"][kind]
        if c["builds"] == 0:
            failures.append(
                f"{kind}: cold process built nothing (builds == 0) — "
                f"the workload no longer exercises this store"
            )
        if w["disk_hits"] <= 0:
            failures.append(
                f"{kind}: warm process shows disk_hits == "
                f"{w['disk_hits']} (expected > 0)"
            )
        if w["builds"] != 0:
            failures.append(
                f"{kind}: warm process still performed "
                f"{w['builds']} expensive construction(s) "
                f"(expected builds == 0)"
            )
    if warm["native"]["compiles"] != 0:
        failures.append(
            f"native: warm process invoked the C compiler "
            f"{warm['native']['compiles']} time(s) (expected 0)"
        )
    if cold["compiler_available"] and cold["native"]["compiles"] > 0 \
            and warm["native"]["disk_hits"] <= 0:
        failures.append(
            "native: cold process compiled but the warm process did "
            "not load any .so from the store"
        )
    return failures


# ----------------------------------------------------------------------
# corrupt
# ----------------------------------------------------------------------
def corrupt_store(root: Path, fraction: float, seed: int) -> List[str]:
    """Garble a deterministic random subset of the store's files.

    Half the victims are truncated mid-document, half overwritten with
    non-pickle garbage — both shapes the store must count (``corrupt``)
    and survive.  Returns the relative paths touched.
    """
    files = sorted(
        p for p in root.rglob("*")
        if p.is_file() and not p.name.startswith(".")
    )
    rng = random.Random(seed)
    n = max(1, int(len(files) * fraction)) if files else 0
    victims = rng.sample(files, n)
    touched = []
    for i, path in enumerate(victims):
        if i % 2 == 0:
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        else:
            path.write_bytes(b"\x00corrupt artifact smoke\xff")
        touched.append(str(path.relative_to(root)))
    return touched


# ----------------------------------------------------------------------
# ablation
# ----------------------------------------------------------------------
def cold_warm_ablation(steps: int = 2):
    """Cold vs warm *process* wall time for the aero Picard workload.

    Two subprocesses run the identical workload against one fresh
    shared store: the first pays plan construction, tiling inspection
    and kernel emission; the second replays everything from disk
    (``ablation_cold_warm`` is the acceptance artifact: the warm
    process must not be slower, and the warm-start counters must show
    a genuine replay — the ``check`` subcommand's acceptance, inlined).
    """
    from .harness import ReportTable

    t = ReportTable("Ablation: cold vs warm process start (artifact store)")
    t.meta.update({"app": "aero", "steps": steps,
                   "knob": "persistent artifact store"})
    with tempfile.TemporaryDirectory(prefix="repro-warmstart-") as tmp:
        dumps = []
        for _ in ("cold", "warm"):
            out = _spawn_run(Path(tmp) / "store", ["aero"], steps)
            dumps.append(out)
        cold, warm = dumps
        failures = check_warm(cold, warm)
        t.meta["warm_acceptance_failures"] = failures
        for label, d in (("cold", cold), ("warm", warm)):
            stats = d["stats"]
            t.add(
                app="aero",
                process=label,
                **{
                    "workload s": round(d["workload_s"], 3),
                    "warm speedup": round(
                        cold["workload_s"] / d["workload_s"], 2
                    ),
                    "plan builds": stats["plan"]["builds"],
                    "chain builds": stats["chain"]["builds"],
                    "tiled builds": stats["tiled"]["builds"],
                    "kernelc builds": stats["kernelc"]["builds"],
                    "disk hits": sum(
                        stats[k]["disk_hits"] for k in CHECKED_KINDS
                    ),
                },
            )
    t.note(
        "Both processes run the identical aero Picard workload "
        "(vectorized, chained + tiled) against one shared "
        "REPRO_CACHE_DIR.  The warm row replays persisted plans, "
        "fused chains, tiled schedules and generated kernels with "
        "zero expensive constructions; `warm speedup` is whole-"
        "workload wall time, so it bundles every avoided inspector."
    )
    if failures:
        t.note("WARM ACCEPTANCE FAILED: " + "; ".join(failures))
    return t


def _spawn_run(cache_dir: Path, apps: List[str], steps: int) -> Dict:
    src = Path(__file__).resolve().parents[2]
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    out = subprocess.run(
        [sys.executable, "-m", "repro.bench.warmstart", "run",
         "--apps", ",".join(apps), "--steps", str(steps)],
        env=env, capture_output=True, text=True,
    )
    if out.returncode != 0:
        raise RuntimeError(
            f"warmstart run subprocess failed:\n{out.stderr[-2000:]}"
        )
    return json.loads(out.stdout)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.warmstart",
        description="Warm-start acceptance tooling for the artifact store.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="run the workload, dump counters")
    p_run.add_argument("--apps", default="aero,airfoil")
    p_run.add_argument("--steps", type=int, default=2)
    p_run.add_argument("--out", default=None, metavar="FILE")

    p_check = sub.add_parser("check", help="enforce the warm acceptance")
    p_check.add_argument("cold", metavar="COLD_JSON")
    p_check.add_argument("warm", metavar="WARM_JSON")

    p_cor = sub.add_parser("corrupt", help="garble a store subset")
    p_cor.add_argument("--fraction", type=float, default=0.3)
    p_cor.add_argument("--seed", type=int, default=7)
    p_cor.add_argument("--root", default=None,
                       help="store root (default: $REPRO_CACHE_DIR)")

    args = parser.parse_args(argv)

    if args.cmd == "run":
        dump = run_workload(
            [a for a in args.apps.split(",") if a], steps=args.steps
        )
        text = json.dumps(dump, indent=2, default=str)
        if args.out:
            Path(args.out).write_text(text)
        print(text)
        return 0

    if args.cmd == "check":
        cold = json.loads(Path(args.cold).read_text())
        warm = json.loads(Path(args.warm).read_text())
        failures = check_warm(cold, warm)
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print(
            "warm-start acceptance OK: "
            + ", ".join(
                f"{k} disk_hits={warm['stats'][k]['disk_hits']}"
                for k in CHECKED_KINDS
            )
            + f", native compiles={warm['native']['compiles']}"
        )
        return 0

    if args.cmd == "corrupt":
        root = Path(args.root or os.environ.get("REPRO_CACHE_DIR", ""))
        if not str(root) or not root.is_dir():
            print("corrupt: no store directory (set $REPRO_CACHE_DIR "
                  "or --root)", file=sys.stderr)
            return 1
        touched = corrupt_store(root, args.fraction, args.seed)
        print(f"garbled {len(touched)} file(s) under {root}:")
        for rel in touched:
            print(f"  {rel}")
        return 0

    return 2


if __name__ == "__main__":
    sys.exit(main())
