"""Measured (wall-clock) experiments on this machine's Python backends.

The analytical model reconstructs the paper's 2013 hardware; these
functions measure what *our* implementation actually achieves here:
the scalar-interpreter vs batched-NumPy gap plays the role of the
scalar-vs-intrinsics gap (one interpreted instruction per element vs one
per vector), so the headline "vectorization pays ~2x" claim has a live,
measured counterpart.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..apps.airfoil import AirfoilSim
from ..apps.volna import VolnaSim
from ..core import Runtime, make_backend
from ..mesh import UnstructuredMesh, make_airfoil_mesh, make_tri_mesh
from .harness import ReportTable

#: Backend configurations measured, mirroring the paper's strategies.
MEASURED_CONFIGS = {
    "scalar (sequential)": ("sequential", "two_level", {}),
    "scalar generated stub (codegen)": ("codegen", "two_level", {}),
    "scalar colored (openmp)": ("openmp", "two_level", {}),
    "SIMT (opencl analogue)": ("simt", "two_level", {"device": "cpu"}),
    "vectorized (intrinsics analogue)": ("vectorized", "two_level", {}),
    "vectorized full permute": ("vectorized", "full_permute", {}),
    "vectorized block permute": ("vectorized", "block_permute", {}),
    "auto-vectorized (autovec)": ("autovec", "full_permute", {}),
}


def time_app(
    app: str,
    backend: str,
    scheme: str,
    options: Dict,
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 2,
    block_size: int = 256,
    repeats: int = 1,
) -> float:
    """Median wall-clock seconds for ``steps`` solver steps."""
    times = []
    for _ in range(max(1, repeats)):
        rt = Runtime(
            backend=make_backend(backend, **options),
            scheme=scheme, block_size=block_size,
        )
        if app == "airfoil":
            sim = AirfoilSim(
                mesh if mesh is not None else make_airfoil_mesh(48, 24),
                runtime=rt,
            )
        elif app == "volna":
            sim = VolnaSim(
                mesh if mesh is not None else make_tri_mesh(
                    28, 21, 100_000.0, 75_000.0
                ),
                dtype=np.float64, runtime=rt,
            )
        else:
            raise ValueError(f"Unknown app {app!r}")
        sim.step()  # warm-up: builds and caches all plans
        t0 = time.perf_counter()
        sim.run(steps)
        times.append((time.perf_counter() - t0) / steps)
    return float(np.median(times))


def measured_speedups(
    app: str = "airfoil",
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 2,
    configs: Optional[Dict] = None,
) -> ReportTable:
    """Wall-clock per-step times and speedups over the scalar backend."""
    configs = configs if configs is not None else MEASURED_CONFIGS
    t = ReportTable(f"Measured backend performance - {app} (this machine)")
    base = None
    for label, (backend, scheme, options) in configs.items():
        dt = time_app(app, backend, scheme, options, mesh=mesh, steps=steps)
        if base is None:
            base = dt
        t.add(
            Backend=label,
            **{"s/step": round(dt, 4), "speedup": round(base / dt, 2)},
        )
    t.note(
        "Python analogue of the paper's scalar-vs-intrinsics gap: "
        "batched NumPy execution is the SIMD stand-in (DESIGN.md S3)."
    )
    return t
