"""Measured (wall-clock) experiments on this machine's Python backends.

The analytical model reconstructs the paper's 2013 hardware; these
functions measure what *our* implementation actually achieves here:
the scalar-interpreter vs batched-NumPy gap plays the role of the
scalar-vs-intrinsics gap (one interpreted instruction per element vs one
per vector), so the headline "vectorization pays ~2x" claim has a live,
measured counterpart.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from ..apps.aero import AeroSim
from ..apps.airfoil import AirfoilSim
from ..apps.volna import VolnaSim
from ..core import Runtime, make_backend
from ..mesh import UnstructuredMesh, make_airfoil_mesh, make_tri_mesh
from .harness import ReportTable

#: Backend configurations measured, mirroring the paper's strategies.
#: "vectorized" defaults to the whole-color batched fast path; the
#: chunked entry keeps the hardware-faithful per-chunk loop for contrast.
MEASURED_CONFIGS = {
    "scalar (sequential)": ("sequential", "two_level", {}),
    "scalar generated stub (codegen)": ("codegen", "two_level", {}),
    "scalar colored (openmp)": ("openmp", "two_level", {}),
    "SIMT (opencl analogue)": ("simt", "two_level", {"device": "cpu"}),
    "vectorized chunked (vec=8)": ("vectorized", "two_level", {"vec": 8}),
    "vectorized (intrinsics analogue)": ("vectorized", "two_level", {}),
    "vectorized full permute": ("vectorized", "full_permute", {}),
    "vectorized block permute": ("vectorized", "block_permute", {}),
    "auto-vectorized (autovec)": ("autovec", "full_permute", {}),
}


def time_app(
    app: str,
    backend: str,
    scheme: str,
    options: Dict,
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 2,
    block_size: int = 256,
    repeats: int = 1,
    layout: Optional[str] = None,
    cold_caches: bool = False,
    chained: Optional[bool] = False,
    tiling=None,
    strip_vector_forms: bool = False,
    operator: Optional[str] = None,
    cg_tol: Optional[float] = None,
    warm_steps: int = 1,
) -> float:
    """Median wall-clock seconds for ``steps`` solver steps.

    ``layout`` selects the Dat storage layout the sim allocates under
    (``"aos"``/``"soa"``); ``cold_caches=True`` drops the runtime's plan
    and loop caches before every step, so each step pays full plan
    construction and gather-index rebuild — the caching ablation's
    baseline.  ``chained=True`` runs the time step as a deferred loop
    chain (trace → memoized fused schedule) instead of eager per-loop
    dispatch; ``tiling`` additionally lowers the chain to a sparse-tiled
    schedule (``"auto"`` or a seed tile size — see ``repro/tiling``).
    ``strip_vector_forms=True`` removes any explicitly attached
    ``Kernel.vector`` callables so the batched backends must run
    kernelc-generated kernels (the kernelc ablation's knob; a no-op
    when the app ships only scalar kernels).

    ``backend="auto"`` measures the auto-tuning runtime: the sim is
    built under ``Runtime("auto")`` (probe + decide happens during
    construction, outside the timed region) and then timed on whatever
    configuration the tuner picked; pass ``chained=None`` to leave the
    dispatch mode to the tuner too.

    ``operator`` and ``cg_tol`` are aero-only: the operator realization
    knob ("assembled"/"matfree"; ``None`` keeps the driver default,
    which under ``backend="auto"`` leaves the axis to the tuner) and an
    override for the fixed CG tolerance (the matfree ablation measures
    the assembly-dominated loose-tolerance regime).  ``warm_steps``
    runs extra untimed steps beyond the cache warm-up — aero's early
    Picard steps spend far more CG iterations than the warm-started
    steady state, so build-phase ablations warm past them.
    """
    times = []
    for _ in range(max(1, repeats)):
        if backend == "auto":
            rt = Runtime(
                backend="auto", scheme=scheme, block_size=block_size,
                layout=layout,
            )
        else:
            rt = Runtime(
                backend=make_backend(backend, **options),
                scheme=scheme, block_size=block_size, layout=layout,
            )
        if app == "airfoil":
            sim = AirfoilSim(
                mesh if mesh is not None else make_airfoil_mesh(48, 24),
                runtime=rt, chained=chained, tiling=tiling,
            )
        elif app == "volna":
            sim = VolnaSim(
                mesh if mesh is not None else make_tri_mesh(
                    28, 21, 100_000.0, 75_000.0
                ),
                dtype=np.float64, runtime=rt, chained=chained,
                tiling=tiling,
            )
        elif app == "aero":
            # One "step" = one Picard iteration (assembly + CG solve);
            # fixed solver controls keep steps comparable across
            # backends (the iterate sequence is bitwise identical, so
            # every backend runs the same CG iteration count).
            sim = AeroSim(
                mesh if mesh is not None else make_airfoil_mesh(24, 12),
                runtime=rt, chained=chained, tiling=tiling,
                cg_tol=1e-8 if cg_tol is None else cg_tol, cg_maxiter=100,
                **({} if operator is None else {"operator": operator}),
            )
        else:
            raise ValueError(f"Unknown app {app!r}")
        if strip_vector_forms:
            for k in sim.kernels.values():
                k.vector = None
        for _ in range(max(1, warm_steps)):  # builds and caches all plans
            sim.step()
        if cold_caches:
            t0 = time.perf_counter()
            for _ in range(steps):
                rt.clear_caches()
                sim.step()
        else:
            t0 = time.perf_counter()
            sim.run(steps)
        times.append((time.perf_counter() - t0) / steps)
    return float(np.median(times))


def measured_speedups(
    app: str = "airfoil",
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 2,
    configs: Optional[Dict] = None,
) -> ReportTable:
    """Wall-clock per-step times and speedups over the scalar backend."""
    configs = configs if configs is not None else MEASURED_CONFIGS
    t = ReportTable(f"Measured backend performance - {app} (this machine)")
    for label, (backend, scheme, options) in configs.items():
        dt = time_app(app, backend, scheme, options, mesh=mesh, steps=steps)
        t.add(Backend=label, **{"s/step": dt})
    # Speedups from the raw times; round for display only afterwards.
    t.add_speedup_column("s/step")
    for r in t.rows:
        r["s/step"] = round(float(r["s/step"]), 4)
    t.note(
        "Python analogue of the paper's scalar-vs-intrinsics gap: "
        "batched NumPy execution is the SIMD stand-in "
        "(docs/architecture.md section 4)."
    )
    return t


# ----------------------------------------------------------------------
# Ablations for the layout / batching / caching knobs.
# ----------------------------------------------------------------------

def batch_ablation(
    app: str = "airfoil",
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 3,
    schemes=("two_level", "full_permute", "block_permute"),
) -> ReportTable:
    """Whole-color mega-batch vs chunked execution, per scheme.

    The headline number for the fast path: the same vectorized backend
    run (a) chunked at a hardware-faithful vec=8, (b) chunked with
    unbounded lanes (the old vec=None behaviour: one batched call per
    block/color *slice*), and (c) whole-color batched with cached gather
    indices (one fused call per conflict-free color).
    """
    t = ReportTable(
        f"Ablation: whole-color batched vs chunked execution - {app}"
    )
    t.meta.update({"app": app, "steps": steps, "knob": "batch"})
    for scheme in schemes:
        chunk8 = time_app(app, "vectorized", scheme, {"vec": 8},
                          mesh=mesh, steps=steps)
        chunk = time_app(app, "vectorized", scheme, {"batch": "chunk"},
                         mesh=mesh, steps=steps)
        color = time_app(app, "vectorized", scheme, {},
                         mesh=mesh, steps=steps)
        t.add(
            scheme=scheme,
            **{
                "chunked vec=8 ms/step": round(chunk8 * 1e3, 2),
                "chunked ms/step": round(chunk * 1e3, 2),
                "whole-color ms/step": round(color * 1e3, 2),
                "speedup vs chunked": round(chunk / color, 2),
                "speedup vs vec=8": round(chunk8 / color, 2),
            },
        )
    t.note(
        "Whole-color batching executes an entire conflict-free color as "
        "one fused gather/kernel/scatter with plan-cached indices "
        "(core/plan.py Phase); chunked loops pay per-chunk Python "
        "dispatch, the analogue of the function-pointer overhead OP2's "
        "code generation removes."
    )
    return t


def layout_ablation(
    app: str = "airfoil",
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 3,
) -> ReportTable:
    """AoS vs SoA Dat storage under the batched backends (paper Sec. 5)."""
    configs = {
        "vectorized two_level": ("vectorized", "two_level", {}),
        "vectorized full permute": ("vectorized", "full_permute", {}),
        "autovec full permute": ("autovec", "full_permute", {}),
        "SIMT (opencl analogue)": ("simt", "two_level", {"device": "cpu"}),
    }
    t = ReportTable(f"Ablation: AoS vs SoA data layout - {app}")
    t.meta.update({"app": app, "steps": steps, "knob": "layout"})
    for label, (backend, scheme, options) in configs.items():
        aos = time_app(app, backend, scheme, options, mesh=mesh,
                       steps=steps, layout="aos")
        soa = time_app(app, backend, scheme, options, mesh=mesh,
                       steps=steps, layout="soa")
        t.add(
            Backend=label,
            **{
                "AoS ms/step": round(aos * 1e3, 2),
                "SoA ms/step": round(soa * 1e3, 2),
                "SoA speedup": round(aos / soa, 2),
            },
        )
    t.note(
        "Results are bitwise layout-independent (Dat presents the same "
        "logical view); only gather/scatter memory order changes.  NumPy "
        "fancy-indexing absorbs much of the locality gap the paper "
        "measures on real SIMD/GPU hardware."
    )
    return t


def cache_ablation(
    app: str = "airfoil",
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 3,
) -> ReportTable:
    """Warm plan/loop/gather-index caches vs cold re-planning each step."""
    t = ReportTable(f"Ablation: cached vs cold planning - {app}")
    t.meta.update({"app": app, "steps": steps, "knob": "plan cache"})
    for label, (backend, scheme, options) in {
        "vectorized whole-color": ("vectorized", "two_level", {}),
        "vectorized full permute": ("vectorized", "full_permute", {}),
    }.items():
        warm = time_app(app, backend, scheme, options, mesh=mesh,
                        steps=steps)
        cold = time_app(app, backend, scheme, options, mesh=mesh,
                        steps=steps, cold_caches=True)
        t.add(
            Backend=label,
            **{
                "cold ms/step": round(cold * 1e3, 2),
                "warm ms/step": round(warm * 1e3, 2),
                "caching speedup": round(cold / warm, 2),
            },
        )
    t.note(
        "Cold runs clear the runtime's two-level plan cache before every "
        "step: each step pays coloring, plan build and gather-index "
        "reconstruction.  Warm runs re-derive nothing — OP2's "
        "plan-reuse argument, measured."
    )
    return t


def loop_chain_ablation(
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 20,
) -> ReportTable:
    """Chained (deferred, fused, memoized) vs eager warm execution.

    Both sides run with warm plan/loop caches — the comparison isolates
    what the loop-chain redesign adds *on top of* plan caching: no
    per-loop validation or cache lookups, fused adjacent direct loops,
    and a precompiled replay program with prebound views, gather
    indices and buffers (``ablation_loop_chain`` is the acceptance
    artifact: chained ≥ 1.2x on the vectorized backend).
    """
    configs = {
        ("airfoil", "vectorized two_level"): ("airfoil", "vectorized",
                                              "two_level", {}),
        ("airfoil", "vectorized full permute"): ("airfoil", "vectorized",
                                                 "full_permute", {}),
        ("airfoil", "autovec full permute"): ("airfoil", "autovec",
                                              "full_permute", {}),
        ("airfoil", "scalar (sequential)"): ("airfoil", "sequential",
                                             "two_level", {}),
        ("volna", "vectorized two_level"): ("volna", "vectorized",
                                            "two_level", {}),
    }
    t = ReportTable(
        "Ablation: deferred loop chain vs eager dispatch (warm caches)"
    )
    t.meta.update({"steps": steps, "knob": "loop chain"})
    for (app, label), (app_, backend, scheme, options) in configs.items():
        m = mesh if app == "airfoil" else None
        eager = time_app(app_, backend, scheme, options, mesh=m,
                         steps=steps, chained=False)
        chained = time_app(app_, backend, scheme, options, mesh=m,
                           steps=steps, chained=True)
        t.add(
            app=app,
            Backend=label,
            **{
                "eager ms/step": round(eager * 1e3, 3),
                "chained ms/step": round(chained * 1e3, 3),
                "chained speedup": round(eager / chained, 2),
            },
        )
    t.note(
        "Chained steps trace par_loops into a LoopChain, replay a "
        "memoized pre-fused schedule (runtime chain cache), and on the "
        "batched backends execute through prepared per-phase programs "
        "(core/chain.py, backends/vectorized.py).  The sequential row "
        "shows the generic fallback: correctness without the fast path."
    )
    return t


def tiling_ablation(
    steps: int = 10,
    tile_sizes=("auto", 4096, 16384),
    meshes=None,
) -> ReportTable:
    """Sparse-tiled vs fused chained execution, tile size × backend.

    Both sides are warm deferred chains replaying prepared programs —
    the comparison isolates what tile-major execution adds on top of
    the fused fast path: consecutive loops of a time-step segment walk
    one cache-resident tile at a time instead of streaming the whole
    mesh per loop (``ablation_tiling`` is the acceptance artifact:
    warm tiled ≥ 1.1x over warm fused for at least one backend /
    mesh-size point at paper-scale meshes).
    """
    from ..mesh import tile_local_renumber

    if meshes is None:
        meshes = {
            ("airfoil", "480x240"): make_airfoil_mesh(480, 240),
            ("airfoil", "720x360"): make_airfoil_mesh(720, 360),
            ("volna", "340x255"): make_tri_mesh(
                340, 255, 100_000.0, 75_000.0
            ),
        }
    configs = {
        "vectorized two_level": ("vectorized", "two_level", {}),
        "vectorized block permute": ("vectorized", "block_permute", {}),
    }
    t = ReportTable(
        "Ablation: sparse-tiled vs fused loop-chain execution (warm)"
    )
    t.meta.update({"steps": steps, "knob": "sparse tiling",
                   "tile_sizes": [str(s) for s in tile_sizes]})
    # One renumbered mesh per entry, shared by every config and tile
    # size, keeps fused-vs-tiled apples-to-apples; the renumbering
    # granularity follows the largest concrete size in the sweep.
    renumber_size = max(
        (s for s in tile_sizes if isinstance(s, int)), default=16384
    )
    for (app, mesh_name), mesh in meshes.items():
        # Tile-locally renumbered input: the mesh-side half of the
        # optimization (contiguous per-tile edge slices).
        mesh = tile_local_renumber(mesh, renumber_size)
        for label, (backend, scheme, options) in configs.items():
            fused = time_app(app, backend, scheme, options, mesh=mesh,
                             steps=steps, chained=True)
            row = {
                "app": app,
                "mesh": mesh_name,
                "Backend": label,
                "fused ms/step": round(fused * 1e3, 2),
            }
            best = 0.0
            for size in tile_sizes:
                tiled = time_app(app, backend, scheme, options, mesh=mesh,
                                 steps=steps, chained=True, tiling=size)
                row[f"tile={size} ms/step"] = round(tiled * 1e3, 2)
                best = max(best, fused / tiled)
            row["best tiled speedup"] = round(best, 2)
            t.add(**row)
    t.note(
        "Tiled chains replay the sparse-tiling inspector's schedule "
        "(repro/tiling): per tile, every loop of a dependency segment "
        "executes its slice while the tile's Dats are cache-resident; "
        "results are bitwise identical to fused and eager execution. "
        "Meshes are tile-locally renumbered (mesh/renumber.py)."
    )
    return t


def kernelc_ablation(
    steps: int = 5,
    meshes=None,
) -> ReportTable:
    """Generated vector kernels vs scalar codegen stubs (warm caches).

    The kernel-compiler acceptance artifact: per app, the same time step
    run (a) scalar interpreted (``sequential``), (b) through the
    generated *scalar* stubs (``codegen`` — the Fig 2b specialization),
    and (c) on the vectorized backend with kernelc-**generated** batched
    kernels (any explicitly attached ``Kernel.vector`` is stripped, so
    this column always measures the vector emitter's output).  The
    one-off generated-vs-hand-written acceptance comparison (bar: warm
    generated-vec within 5% of hand-vec) was recorded before the
    hand-written kernels were deleted and lives in
    ``bench_results/ablation_kernelc_predeletion.json``.
    """
    if meshes is None:
        meshes = {
            ("airfoil", "96x48"): make_airfoil_mesh(96, 48),
            ("volna", "64x48"): make_tri_mesh(64, 48, 100_000.0, 75_000.0),
        }
    t = ReportTable(
        "Ablation: kernelc-generated vector kernels vs scalar codegen"
    )
    t.meta.update({"steps": steps, "knob": "kernel compiler"})
    for (app, mesh_name), mesh in meshes.items():
        scalar = time_app(app, "sequential", "two_level", {}, mesh=mesh,
                          steps=steps)
        stub = time_app(app, "codegen", "two_level", {}, mesh=mesh,
                        steps=steps)
        generated = time_app(app, "vectorized", "two_level", {}, mesh=mesh,
                             steps=steps, repeats=5,
                             strip_vector_forms=True)
        t.add(
            app=app,
            mesh=mesh_name,
            **{
                "scalar ms/step": round(scalar * 1e3, 2),
                "codegen stub ms/step": round(stub * 1e3, 2),
                "generated vec ms/step": round(generated * 1e3, 2),
                "vec speedup vs stub": round(stub / generated, 2),
            },
        )
    t.note(
        "Applications write only scalar kernels; repro.kernelc parses "
        "them into an IR and emits both the specialized scalar stubs "
        "(codegen backend) and the batched vector kernels every batched "
        "backend runs (docs/architecture.md, kernel compilation).  "
        "Results are bitwise identical across all columns."
    )
    return t


def aero_ablation(
    steps: int = 3,
    mesh: Optional[UnstructuredMesh] = None,
    repeats: int = 3,
) -> ReportTable:
    """The aero workload across backends and execution modes.

    One step is a whole Picard iteration — density evaluation, sparse
    assembly through the Mat staging, canonical CSR fold, padded-row
    SpMV and the CG solve — so this table measures the FEM
    assemble+solve pipeline end to end.  Results are bitwise identical
    across every row (the aero acceptance property), so the comparison
    is pure execution efficiency: scalar interpretation vs generated
    scalar stubs vs batched vectorized execution, eager vs chained vs
    tiled dispatch.
    """
    if mesh is None:
        mesh = make_airfoil_mesh(72, 36)
    configs = {
        "scalar (sequential)": ("sequential", "two_level", {}, False, None),
        "scalar generated stub (codegen)": ("codegen", "two_level", {},
                                            False, None),
        "vectorized eager": ("vectorized", "two_level", {}, False, None),
        "vectorized chained": ("vectorized", "two_level", {}, True, None),
        "vectorized tiled (auto)": ("vectorized", "two_level", {}, True,
                                    "auto"),
        "autovec chained": ("autovec", "full_permute", {}, True, None),
    }
    t = ReportTable("Ablation: aero FEM assembly + CG solve (warm caches)")
    t.meta.update({
        "app": "aero", "steps": steps, "knob": "aero pipeline",
        "mesh_cells": mesh.cells.size,
    })
    times = {}
    for label, (backend, scheme, options, chained, tiling) in configs.items():
        times[label] = time_app(
            "aero", backend, scheme, options, mesh=mesh, steps=steps,
            repeats=repeats, chained=chained, tiling=tiling,
        )
    base = times["scalar (sequential)"]
    eager = times["vectorized eager"]
    for label, dt in times.items():
        t.add(
            Backend=label,
            **{
                "ms/step": round(dt * 1e3, 3),
                "speedup vs scalar": round(base / dt, 2),
                "speedup vs vec eager": round(eager / dt, 2),
            },
        )
    t.note(
        "Aero assembles a sparse operator (core/mat.py: element-local "
        "staging + canonical CSR fold) and solves it with the par_loop "
        "CG (repro/solve); all rows produce bitwise-identical CSR values "
        "and solutions (docs/architecture.md, sparse matrices)."
    )
    return t


def native_ablation(
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 10,
    repeats: int = 3,
) -> ReportTable:
    """Native C chain replay vs the batched-NumPy fast path (warm).

    Every row replays a warm memoized loop chain; the comparison
    isolates what chain-level native compilation adds on top of the
    vectorized replay programs: one C translation unit per chain with
    gathers, compute and scatters fused and the SoA/AoS index
    arithmetic baked in, entered once per step through cffi
    (``ablation_native`` is the acceptance artifact: warm native ≥ 2x
    over warm generated-vec for the airfoil chain).
    """
    from ..kernelc import compiler_available, native_cache_stats

    if mesh is None:
        mesh = make_airfoil_mesh(48, 24)
    configs = {
        ("airfoil", "native chained"): ("airfoil", "native", True, None),
        ("airfoil", "native tiled (auto)"): ("airfoil", "native", True,
                                             "auto"),
        ("airfoil", "vectorized chained"): ("airfoil", "vectorized", True,
                                            None),
        ("airfoil", "scalar (sequential)"): ("airfoil", "sequential",
                                             False, None),
        ("volna", "native chained"): ("volna", "native", True, None),
        ("volna", "vectorized chained"): ("volna", "vectorized", True,
                                          None),
    }
    t = ReportTable(
        "Ablation: native C chain replay vs vectorized fast path (warm)"
    )
    t.meta.update({
        "steps": steps, "knob": "native chain JIT",
        "compiler_available": bool(compiler_available()),
    })
    times = {}
    for key, (app, backend, chained, tiling) in configs.items():
        m = mesh if app == "airfoil" else None
        times[key] = time_app(
            app, backend, "two_level", {}, mesh=m, steps=steps,
            repeats=repeats, chained=chained, tiling=tiling,
        )
    for (app, label), dt in times.items():
        vec = times[(app, "vectorized chained")]
        t.add(
            app=app,
            Backend=label,
            **{
                "ms/step": round(dt * 1e3, 3),
                "native speedup vs vec": round(vec / dt, 2),
            },
        )
    t.meta["native_cache"] = native_cache_stats()
    t.note(
        "The native backend compiles each traced chain into a single C "
        "shared object (repro/kernelc/native.py) and replays it through "
        "cffi; results are bitwise identical to sequential eager on "
        "every row.  Without a C compiler the native rows silently run "
        "the vectorized path (ratio ~1.0) — see the compiler_available "
        "meta flag."
    )
    return t


def matfree_ablation(
    mesh: Optional[UnstructuredMesh] = None,
    steps: int = 5,
    repeats: int = 5,
    cg_tol: float = 1e-3,
) -> ReportTable:
    """Assembled CSR vs generated matrix-free operator (warm, native).

    The matrix-free acceptance artifact: the same warm-started aero
    Picard steps run with (a) the assembled pipeline (element staging →
    host CSR fold → Dirichlet masking → padded-row SpMV), (b) the
    matrix-free operator (generated A·p action kernels, no host work in
    the hot path), and (c) ``backend="auto"`` with the operator axis
    left to the tuner.  A loose CG tolerance plus warm-started timing
    (the first Picard steps, with their long cold CG solves, run
    untimed) keeps the steps assembly-dominated — the regime the
    operator knob exists for.  All
    three rows produce bitwise-identical solutions (pinned by
    ``tests/test_matfree.py``), so the ratios are pure execution cost
    (acceptance: warm matfree ≥ 1.2x warm assembled; guarded by
    ``repro.bench.regression``).
    """
    from ..kernelc import compiler_available

    if mesh is None:
        mesh = make_airfoil_mesh(96, 48)
    t = ReportTable(
        "Ablation: assembled CSR vs matrix-free operator - aero (warm)"
    )
    t.meta.update({
        "app": "aero", "steps": steps, "repeats": repeats,
        "knob": "operator", "cg_tol": cg_tol,
        "mesh_cells": mesh.cells.size,
        "compiler_available": bool(compiler_available()),
    })
    times = {}
    for operator in ("assembled", "matfree", "auto"):
        auto = operator == "auto"
        times[operator] = time_app(
            "aero", "auto" if auto else "native", "two_level", {},
            mesh=mesh, steps=steps, repeats=repeats,
            chained=None if auto else True,
            operator=None if auto else operator, cg_tol=cg_tol,
            warm_steps=4,
        )
    base = times["assembled"]
    for operator, dt in times.items():
        # The auto row reports under its own column: the tuner may
        # legitimately pick assembled on machines where matfree does
        # not pay, so its ratio is informational, not a guarded
        # fast-path entry (bench/regression.py keys on the metric name).
        metric = ("auto vs assembled" if operator == "auto"
                  else "speedup vs assembled")
        t.add(
            operator=operator,
            **{
                "ms/step": round(dt * 1e3, 3),
                metric: round(base / dt, 2),
            },
        )
    t.note(
        "Matfree rebuilds the operator coefficients per Picard step as "
        "ordinary generated par_loops (repro/solve/matfree.py) and "
        "never calls Mat.assemble(); the auto row lets the tuner "
        "negotiate the operator axis alongside backend/layout/dispatch "
        "(docs/architecture.md, matrix-free operators)."
    )
    return t


def autotune_ablation(
    steps: int = 3,
    repeats: int = 5,
    meshes=None,
) -> ReportTable:
    """``backend="auto"`` vs the best hand-picked configuration per app.

    The auto-tuning acceptance artifact: for each app, every plausible
    hand-picked configuration is timed (median of ``repeats``), and the
    same workload runs under ``Runtime("auto")`` — probing and decision
    application happen during sim construction, outside the timed
    region, so the auto column measures the *tuned steady state*.  The
    guarded ratio is best-hand-time / auto-time: ≥ 1.0 means the tuner
    matched or beat every hand pick; ``repro.bench.regression`` fails
    CI below 0.90 (auto more than 10% behind the best hand pick).
    """
    from ..kernelc import compiler_available
    from ..tune import tune_cache_stats

    if meshes is None:
        meshes = {
            "airfoil": make_airfoil_mesh(24, 12),
            "volna": make_tri_mesh(20, 15, 100_000.0, 75_000.0),
            "aero": make_airfoil_mesh(16, 8),
        }
    hand = {
        "vectorized eager": ("vectorized", False, None),
        "vectorized chained": ("vectorized", True, None),
        "vectorized tiled (auto)": ("vectorized", True, "auto"),
    }
    if compiler_available():
        hand["native chained"] = ("native", True, None)
    t = ReportTable(
        "Ablation: auto-tuned runtime vs best hand-picked configuration"
    )
    t.meta.update({"steps": steps, "repeats": repeats, "knob": "autotune"})
    for app, mesh in meshes.items():
        hand_times = {}
        for label, (backend, chained, tiling) in hand.items():
            hand_times[label] = time_app(
                app, backend, "two_level", {}, mesh=mesh, steps=steps,
                repeats=repeats, chained=chained, tiling=tiling,
            )
        auto = time_app(
            app, "auto", "two_level", {}, mesh=mesh, steps=steps,
            repeats=repeats, chained=None,
        )
        best_label = min(hand_times, key=hand_times.get)
        best = hand_times[best_label]
        t.add(
            app=app,
            **{
                "auto ms/step": round(auto * 1e3, 3),
                "best hand ms/step": round(best * 1e3, 3),
                "best hand config": best_label,
                "auto vs best": round(best / auto, 2),
            },
        )
    t.meta["tune_cache"] = tune_cache_stats()
    t.note(
        "Runtime(\"auto\") profiles the traced chain, ranks candidate "
        "(backend, layout, dispatch, tile) configurations with the "
        "perfmodel roofline, probes the top few, and persists the "
        "winner in the on-disk tuning DB (repro/tune); later runs "
        "replay the decision with zero probes.  Ratios near 1.0 mean "
        "the tuner found the best hand pick on its own."
    )
    return t


#: Registry of measured ablation artifacts (`python -m repro.bench --ablations`).
def _cold_warm_ablation(**kw):
    # Deferred import: warmstart imports time_app from this module.
    from .warmstart import cold_warm_ablation

    return cold_warm_ablation(**kw)


ALL_ABLATIONS = {
    "ablation_batch": batch_ablation,
    "ablation_layout": layout_ablation,
    "ablation_cache": cache_ablation,
    "ablation_cold_warm": _cold_warm_ablation,
}
