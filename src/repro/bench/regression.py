"""Bench-regression smoke: guard the warm fast paths in CI.

Compares the medians produced by ``python -m repro.bench --quick``
against a committed baseline (``bench_results/baseline_quick.json``)
and fails when any **warm fast-path entry** regresses by more than the
tolerance (default 25%).

What is compared
----------------
Raw per-step milliseconds do not transfer between machines, so the
baseline stores each fast-path entry as its *in-run speedup ratio*
(fast path vs the same run's own baseline column — batched vs chunked,
chained vs eager, generated-vec vs stub, ...).  A >25% drop in such a
ratio means the fast path itself slowed relative to everything else —
a real regression — while a uniformly slower CI runner cancels out.

Usage::

    # CI / local check (after `python -m repro.bench --quick`):
    PYTHONPATH=src python -m repro.bench.regression

    # Regenerate the committed baseline (run on a quiet machine):
    PYTHONPATH=src python -m repro.bench --quick && \
        PYTHONPATH=src python -m repro.bench.regression --update

    # Tighten against noise: repeat --quick and merge with `--update
    # --min` (keeps the lowest ratio seen per entry).

Tolerance can be overridden with ``--tolerance`` or the
``BENCH_REGRESSION_TOLERANCE`` environment variable (fraction, e.g.
``0.25``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .harness import RESULTS_DIR

#: Default committed baseline location.
BASELINE_PATH = RESULTS_DIR / "baseline_quick.json"

#: Default allowed slowdown of a warm fast-path ratio.
DEFAULT_TOLERANCE = 0.25

#: Which --quick artifacts feed the guard: (artifact name, key columns,
#: ratio metric, row filter).  The filter keeps only genuine fast-path
#: rows (scalar baselines are the denominators, not guarded entries).
SPECS: List[Tuple[str, Tuple[str, ...], str, Optional[str]]] = [
    ("BENCH_quick_batch", ("scheme",), "speedup vs chunked", None),
    ("ablation_loop_chain", ("app", "Backend"), "chained speedup",
     "scalar"),
    ("ablation_tiling", ("app", "mesh", "Backend"), "best tiled speedup",
     None),
    ("ablation_kernelc", ("app", "mesh"), "vec speedup vs stub", None),
    ("ablation_aero", ("Backend",), "speedup vs vec eager", "scalar"),
    ("ablation_native", ("app", "Backend"), "native speedup vs vec",
     "scalar"),
    ("ablation_matfree", ("operator",), "speedup vs assembled",
     "assembled"),
    ("ablation_autotune", ("app",), "auto vs best", None),
    ("ablation_cold_warm", ("app", "process"), "warm speedup", "cold"),
]

#: Absolute floor for the auto-tuner ratio (best-hand-time / auto-time):
#: independent of the committed baseline, CI fails whenever the tuned
#: configuration runs more than 10% behind the best hand pick.
AUTOTUNE_FLOOR = 0.90

#: Absolute floor for the matrix-free operator: warm matfree Picard
#: steps must beat warm assembled by at least this ratio on the native
#: backend (the matrix-free acceptance bar), baseline or not.
MATFREE_FLOOR = 1.2

#: Absolute floor for the warm-start ratio (cold process wall time /
#: warm process wall time): a warm process replaying every artifact
#: from the store must not run slower than the cold one, baseline or
#: not (deserialization beating construction is the store's point).
COLD_WARM_FLOOR = 1.0


def _load_rows(results_dir: Path, artifact: str) -> Optional[List[Dict]]:
    path = results_dir / f"{artifact}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text()).get("rows", [])


def collect_entries(results_dir: Path) -> List[Dict]:
    """Harvest every guarded fast-path ratio from the --quick artifacts."""
    entries: List[Dict] = []
    for artifact, key_cols, metric, exclude in SPECS:
        rows = _load_rows(results_dir, artifact)
        if rows is None:
            continue
        for row in rows:
            if metric not in row:
                continue
            if exclude is not None and any(
                exclude in str(row.get(c, "")).lower() for c in key_cols
            ):
                continue
            entries.append({
                "artifact": artifact,
                "key": {c: row.get(c) for c in key_cols},
                "metric": metric,
                "value": float(row[metric]),
            })
    return entries


def _find_row(rows: List[Dict], key: Dict) -> Optional[Dict]:
    for row in rows:
        if all(row.get(c) == v for c, v in key.items()):
            return row
    return None


def check(
    baseline_path: Path, results_dir: Path, tolerance: float
) -> List[str]:
    """Return a list of failure messages (empty = pass)."""
    if not baseline_path.exists():
        return [
            f"baseline {baseline_path} missing; generate it with "
            "`python -m repro.bench --quick && python -m "
            "repro.bench.regression --update`"
        ]
    baseline = json.loads(baseline_path.read_text())
    failures: List[str] = []
    entries = baseline.get("entries", [])
    if not entries:
        # An empty baseline would wave every regression through — the
        # exact silent-pass failure mode this guard exists to prevent.
        return [
            f"baseline {baseline_path} has no entries; regenerate it with "
            "`python -m repro.bench --quick && python -m "
            "repro.bench.regression --update`"
        ]
    for entry in entries:
        artifact = entry["artifact"]
        rows = _load_rows(results_dir, artifact)
        label = f"{artifact} {entry['key']} [{entry['metric']}]"
        if rows is None:
            failures.append(f"{label}: artifact {artifact}.json missing "
                            f"under {results_dir} (did --quick run?)")
            continue
        row = _find_row(rows, entry["key"])
        if row is None or entry["metric"] not in row:
            failures.append(f"{label}: entry vanished from the artifact")
            continue
        current = float(row[entry["metric"]])
        floor = float(entry["value"]) * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{label}: ratio {current:.3g} fell below "
                f"{floor:.3g} (baseline {entry['value']:.3g} "
                f"- {tolerance:.0%} tolerance)"
            )
    # Coverage drift: a fresh fast-path entry with no baseline key
    # would run forever unguarded.  Fail loudly so the baseline gets
    # regenerated alongside the new bench row.
    known = {
        (e["artifact"], tuple(sorted(e["key"].items())), e["metric"])
        for e in entries
    }
    for fresh in collect_entries(results_dir):
        key = (fresh["artifact"], tuple(sorted(fresh["key"].items())),
               fresh["metric"])
        if key not in known:
            failures.append(
                f"{fresh['artifact']} {fresh['key']} "
                f"[{fresh['metric']}]: fresh entry missing from the "
                f"baseline — regenerate it with --update so the new "
                f"fast path is guarded"
            )
        # The auto-tuner additionally carries an absolute acceptance
        # bar (auto within 10% of the best hand pick), not just the
        # relative no-worse-than-baseline guard.
        if (fresh["artifact"] == "ablation_autotune"
                and fresh["value"] < AUTOTUNE_FLOOR):
            failures.append(
                f"ablation_autotune {fresh['key']}: auto-tuned run is "
                f"{fresh['value']:.2f}x the best hand-picked "
                f"configuration (floor {AUTOTUNE_FLOOR})"
            )
        # The matrix-free operator carries its own absolute acceptance
        # bar: warm matfree must clear warm assembled by MATFREE_FLOOR
        # on the native backend (the auto row only needs the relative
        # baseline guard — the tuner may legitimately pick assembled
        # on machines where matfree does not pay).
        if (fresh["artifact"] == "ablation_matfree"
                and fresh["key"].get("operator") == "matfree"
                and fresh["value"] < MATFREE_FLOOR):
            failures.append(
                f"ablation_matfree: warm matrix-free steps are only "
                f"{fresh['value']:.2f}x warm assembled "
                f"(floor {MATFREE_FLOOR})"
            )
        # The warm-start ablation's absolute bar: a process replaying
        # from the artifact store must not lose to the cold build.
        if (fresh["artifact"] == "ablation_cold_warm"
                and fresh["value"] < COLD_WARM_FLOOR):
            failures.append(
                f"ablation_cold_warm: warm process ran at "
                f"{fresh['value']:.2f}x the cold one "
                f"(floor {COLD_WARM_FLOOR}) — the store is not paying"
            )
    # The warm-start ablation also embeds its counter acceptance
    # (disk_hits > 0, builds == 0, native compiles == 0) in the
    # artifact's meta — surface any failure recorded there.
    cw_path = results_dir / "ablation_cold_warm.json"
    if cw_path.exists():
        meta = json.loads(cw_path.read_text()).get("meta", {})
        for msg in meta.get("warm_acceptance_failures", []) or []:
            failures.append(f"ablation_cold_warm acceptance: {msg}")
    return failures


def update(
    baseline_path: Path, results_dir: Path, tolerance: float,
    merge_min: bool = False,
) -> int:
    entries = collect_entries(results_dir)
    if not entries:
        print(f"no --quick artifacts found under {results_dir}; run "
              "`python -m repro.bench --quick` first", file=sys.stderr)
        return 1
    if merge_min and baseline_path.exists():
        # Conservative baseline: keep the *lowest* ratio seen across
        # several --quick runs, so one lucky run cannot set a floor a
        # noisier CI machine then trips over.
        previous = {
            (e["artifact"], tuple(sorted(e["key"].items())), e["metric"]):
                float(e["value"])
            for e in json.loads(baseline_path.read_text()).get("entries", [])
        }
        for e in entries:
            key = (e["artifact"], tuple(sorted(e["key"].items())),
                   e["metric"])
            if key in previous:
                e["value"] = min(e["value"], previous[key])
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(json.dumps({
        "description": (
            "Committed warm fast-path ratios from `python -m repro.bench "
            "--quick`; checked in CI by `python -m repro.bench.regression` "
            "(>tolerance drop fails)."
        ),
        "regen": (
            "PYTHONPATH=src python -m repro.bench --quick && "
            "PYTHONPATH=src python -m repro.bench.regression --update"
        ),
        "tolerance": tolerance,
        "entries": entries,
    }, indent=2) + "\n")
    print(f"baseline updated: {baseline_path} ({len(entries)} entries)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.regression",
        description="Compare --quick bench medians against the committed "
                    "baseline; fail on fast-path regressions.",
    )
    parser.add_argument("--baseline", default=str(BASELINE_PATH))
    parser.add_argument("--results", default=str(RESULTS_DIR))
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_TOLERANCE",
                                     DEFAULT_TOLERANCE)),
        help="allowed fractional slowdown (default 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from the current bench_results",
    )
    parser.add_argument(
        "--min", action="store_true", dest="merge_min",
        help="with --update: keep the lower of the old and new ratio "
             "per entry (conservative baseline across repeated runs)",
    )
    args = parser.parse_args(argv)
    baseline_path = Path(args.baseline)
    results_dir = Path(args.results)
    if args.update:
        return update(baseline_path, results_dir, args.tolerance,
                      merge_min=args.merge_min)
    failures = check(baseline_path, results_dir, args.tolerance)
    if failures:
        print("bench regression check FAILED:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    n = len(json.loads(baseline_path.read_text())["entries"])
    print(f"bench regression check passed ({n} warm fast-path entries "
          f"within {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
