"""Shared test/benchmark helpers: the backend matrix and runtime factory.

This lives in the package (rather than in a ``conftest.py``) so that both
``tests/`` and ``benchmarks/`` can import it unambiguously — the two
trees each carry their own ``conftest.py``, and a bare ``from conftest
import ...`` resolves to whichever pytest imported first (the seed's
collection error).  Importing from ``repro.testing`` is order-independent.
"""

from __future__ import annotations

import os

#: (backend name, scheme, options) matrix every equivalence test sweeps.
BACKEND_MATRIX = [
    ("sequential", "two_level", {}),
    ("codegen", "two_level", {}),
    ("openmp", "two_level", {}),
    ("vectorized", "two_level", {}),
    ("vectorized", "full_permute", {}),
    ("vectorized", "block_permute", {}),
    ("simt", "two_level", {"device": "cpu"}),
    ("simt", "two_level", {"device": "phi"}),
    ("autovec", "full_permute", {}),
    ("autovec", "block_permute", {}),
    ("native", "two_level", {}),
]


def _apply_backend_override(matrix):
    """``REPRO_BACKEND=<name>`` restricts the matrix to one backend (the
    CI native/fallback jobs force ``native``).  Unknown names get a
    single default-scheme row so the sweep still exercises them."""
    forced = os.environ.get("REPRO_BACKEND")
    if not forced:
        return matrix
    subset = [row for row in matrix if row[0] == forced]
    return subset or [(forced, "two_level", {})]


BACKEND_MATRIX = _apply_backend_override(BACKEND_MATRIX)

#: Dat storage layouts the layout-equivalence tests sweep.
LAYOUT_MATRIX = ["aos", "soa"]


def runtime_for(name: str, scheme: str, options: dict, block_size: int = 64,
                layout: str | None = None):
    """Isolated :class:`~repro.core.Runtime` for one matrix entry."""
    from repro.core import Runtime, make_backend

    if name == "auto":
        # The auto-tuning sentinel is resolved by Runtime itself (there
        # is no "auto" Backend class to construct).
        return Runtime(
            backend="auto", block_size=block_size, scheme=scheme,
            layout=layout,
        )
    return Runtime(
        backend=make_backend(name, **options),
        block_size=block_size,
        scheme=scheme,
        layout=layout,
    )
