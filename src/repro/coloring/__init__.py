"""Race-free execution orderings: conflict graphs, coloring, permutations.

This package implements the three execution schemes the paper evaluates
(Section 4 / Fig 8a): the original two-level coloring, "full permute" and
"block permute".
"""

from .block import (
    BlockLayout,
    color_blocks,
    is_valid_block_coloring,
    make_blocks,
)
from .conflict import conflict_targets, is_valid_coloring, racing_slots
from .greedy import color_elements, greedy_color, jp_color
from .permute import (
    BlockPermutation,
    Permutation,
    block_permute,
    element_colors_by_block,
    full_permute,
)
from .tiles import color_tiles, is_valid_tile_coloring, pack_tile_targets

__all__ = [
    "BlockLayout",
    "BlockPermutation",
    "Permutation",
    "block_permute",
    "color_blocks",
    "color_elements",
    "color_tiles",
    "conflict_targets",
    "element_colors_by_block",
    "full_permute",
    "greedy_color",
    "is_valid_block_coloring",
    "is_valid_coloring",
    "is_valid_tile_coloring",
    "jp_color",
    "make_blocks",
    "pack_tile_targets",
    "racing_slots",
]
