"""Race-free execution orderings: conflict graphs, coloring, permutations.

This package implements the three execution schemes the paper evaluates
(Section 4 / Fig 8a): the original two-level coloring, "full permute" and
"block permute".
"""

from .block import (
    BlockLayout,
    color_blocks,
    is_valid_block_coloring,
    make_blocks,
)
from .conflict import conflict_targets, is_valid_coloring, racing_slots
from .greedy import color_elements, greedy_color, jp_color
from .permute import (
    BlockPermutation,
    Permutation,
    block_permute,
    element_colors_by_block,
    full_permute,
)

__all__ = [
    "BlockLayout",
    "BlockPermutation",
    "Permutation",
    "block_permute",
    "color_blocks",
    "color_elements",
    "conflict_targets",
    "element_colors_by_block",
    "full_permute",
    "greedy_color",
    "is_valid_block_coloring",
    "is_valid_coloring",
    "jp_color",
    "make_blocks",
    "racing_slots",
]
