"""Mini-partitioning and block coloring (the paper's two-level scheme).

OP2 splits an iteration set into contiguous *blocks* (mini-partitions) and
colors the blocks so that no two same-colored blocks touch the same
indirect target; blocks of one color then run concurrently on OpenMP
threads / CUDA thread blocks / OpenCL work-groups with no synchronization
(paper Section 3).  Inside each block a second, element-level coloring
serializes the indirect increments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class BlockLayout:
    """Contiguous mini-partition layout of an iteration set."""

    n_elements: int
    block_size: int
    offsets: np.ndarray  # (nblocks + 1,) element offsets

    @property
    def nblocks(self) -> int:
        return len(self.offsets) - 1

    def block_range(self, b: int) -> Tuple[int, int]:
        return int(self.offsets[b]), int(self.offsets[b + 1])

    def sizes(self) -> np.ndarray:
        return np.diff(self.offsets)


def make_blocks(n_elements: int, block_size: int) -> BlockLayout:
    """Split ``[0, n_elements)`` into contiguous blocks of ``block_size``.

    The final block absorbs the remainder, matching OP2's plan
    construction; block size is the tuning knob of paper Fig 8b.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if n_elements == 0:
        return BlockLayout(0, block_size, np.zeros(1, dtype=np.int64))
    nblocks = max(1, n_elements // block_size)
    offsets = np.minimum(
        np.arange(nblocks + 1, dtype=np.int64) * block_size, n_elements
    )
    offsets[-1] = n_elements
    return BlockLayout(n_elements, block_size, offsets)


def color_blocks(
    layout: BlockLayout, targets: Optional[np.ndarray], extent: int
) -> Tuple[np.ndarray, int]:
    """Greedy coloring of blocks against shared conflict targets.

    Two blocks conflict when any element of one shares a conflict target
    with any element of the other.  The greedy sweep mirrors
    :func:`repro.coloring.greedy.greedy_color` at block granularity: per
    sweep, a block is admitted if none of its targets is claimed yet.
    """
    nblocks = layout.nblocks
    colors = np.zeros(nblocks, dtype=np.int32)
    if targets is None or nblocks == 0:
        return colors, 1 if nblocks else 0
    colors[:] = -1
    extent = max(extent, int(targets.max(initial=-1)) + 1)

    # Pre-compute each block's unique target list once: repeated sweeps
    # then only touch deduplicated indices.
    block_targets: List[np.ndarray] = []
    for b in range(nblocks):
        lo, hi = layout.block_range(b)
        block_targets.append(np.unique(targets[lo:hi].reshape(-1)))

    claimed = np.zeros(extent, dtype=bool)
    color = 0
    remaining = nblocks
    while remaining:
        claimed[:] = False
        for b in range(nblocks):
            if colors[b] >= 0:
                continue
            tgts = block_targets[b]
            if claimed[tgts].any():
                continue
            claimed[tgts] = True
            colors[b] = color
            remaining -= 1
        color += 1
    return colors, color


def is_valid_block_coloring(
    layout: BlockLayout, colors: np.ndarray, targets: Optional[np.ndarray]
) -> bool:
    """Validation helper: same-colored blocks must share no target."""
    if targets is None:
        return True
    ncolors = int(colors.max(initial=-1)) + 1
    for c in range(ncolors):
        seen: set = set()
        for b in np.nonzero(colors == c)[0]:
            lo, hi = layout.block_range(int(b))
            tgts = set(np.unique(targets[lo:hi]).tolist())
            if seen & tgts:
                return False
            seen |= tgts
    return True
