"""Element coloring algorithms.

Two interchangeable strategies:

* :func:`greedy_color` — the OP2-style sequential sweep (paper Section 3,
  citing Poole & Ortega's multicolor ordering): repeatedly sweep the
  element list, claiming conflict targets; every sweep becomes one color.
  Produces few colors, but the claim step is inherently serial.
* :func:`jp_color` — a vectorized Jones–Plassmann-style rounds algorithm:
  per round, every uncolored element bids a priority on each of its
  targets with ``np.minimum.at`` and wins when it holds the minimum on all
  of them.  Slightly more colors, but each round is whole-array NumPy —
  the implementation the library uses for large meshes.

Both return a dense ``colors`` array and the color count, and both satisfy
:func:`repro.coloring.conflict.is_valid_coloring` (property-tested).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def greedy_color(targets: Optional[np.ndarray], n_elements: int, extent: int = 0
                 ) -> Tuple[np.ndarray, int]:
    """Sequential multi-sweep greedy coloring (OP2's reference scheme)."""
    colors = np.zeros(n_elements, dtype=np.int32)
    if targets is None or n_elements == 0:
        return colors, 1 if n_elements else 0
    colors[:] = -1
    extent = max(extent, int(targets.max(initial=-1)) + 1)
    claimed = np.zeros(extent, dtype=bool)
    color = 0
    remaining = n_elements
    while remaining:
        claimed[:] = False
        for e in range(n_elements):
            if colors[e] >= 0:
                continue
            tgts = targets[e]
            if claimed[tgts].any():
                continue
            claimed[tgts] = True
            colors[e] = color
            remaining -= 1
        color += 1
    return colors, color


def jp_color(
    targets: Optional[np.ndarray],
    n_elements: int,
    extent: int = 0,
    seed: int = 12345,
) -> Tuple[np.ndarray, int]:
    """Vectorized rounds coloring (Jones–Plassmann flavour).

    Every round, each uncolored element stamps its priority onto all of its
    conflict targets; elements that own the minimum on every target are
    mutually non-conflicting and receive the round's color.  Progress is
    guaranteed: the globally-minimal uncolored priority always wins.
    """
    colors = np.zeros(n_elements, dtype=np.int32)
    if targets is None or n_elements == 0:
        return colors, 1 if n_elements else 0
    colors[:] = -1
    extent = max(extent, int(targets.max(initial=-1)) + 1)
    rng = np.random.default_rng(seed)
    # Random static priorities decouple color structure from element order,
    # keeping round counts low on adversarial orderings.
    prio = rng.permutation(n_elements).astype(np.int64)

    uncolored = np.arange(n_elements, dtype=np.int64)
    k = targets.shape[1]
    color = 0
    best = np.empty(extent, dtype=np.int64)
    while uncolored.size:
        best[:] = np.iinfo(np.int64).max
        t = targets[uncolored]          # (m, k)
        p = prio[uncolored]             # (m,)
        np.minimum.at(best, t.reshape(-1), np.repeat(p, k))
        wins = (best[t] == p[:, None]).all(axis=1)
        winners = uncolored[wins]
        colors[winners] = color
        color += 1
        uncolored = uncolored[~wins]
    return colors, color


def color_elements(
    targets: Optional[np.ndarray],
    n_elements: int,
    extent: int = 0,
    method: str = "auto",
    seed: int = 12345,
) -> Tuple[np.ndarray, int]:
    """Color elements with the configured strategy.

    ``auto`` picks the serial greedy sweep for small problems (fewer
    colors) and the vectorized rounds algorithm beyond 4096 elements.
    """
    if method == "auto":
        method = "greedy" if n_elements <= 4096 else "jp"
    if method == "greedy":
        return greedy_color(targets, n_elements, extent)
    if method == "jp":
        return jp_color(targets, n_elements, extent, seed=seed)
    raise ValueError(f"Unknown coloring method {method!r}")
