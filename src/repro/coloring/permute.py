"""Full-permute and block-permute execution orderings (paper Section 4).

Beyond the original two-level coloring (which serializes indirect
increments inside a block), the paper introduces two orderings that make
*vector lanes* independent so scatters need no serialization:

* **full permute** — one global element coloring; elements execute sorted
  by color.  Trivial parallelism, but temporal locality is destroyed
  because all same-colored elements run before any reuse can happen.
* **block permute** — elements are permuted *within* their block by color,
  so lanes stay independent while block-level cache locality survives;
  the price is that formerly-contiguous direct accesses become gathers.

Both produce a permutation (a bijection over elements, property-tested)
plus color offsets describing the independent groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .block import BlockLayout
from .greedy import color_elements


@dataclass(frozen=True)
class Permutation:
    """Color-sorted execution order.

    ``order[k]`` is the element executed in slot ``k``; slots
    ``[color_offsets[c], color_offsets[c+1])`` form color group ``c``,
    inside which every element is independent of every other.
    """

    order: np.ndarray          # (n,) int64 bijection
    color_offsets: np.ndarray  # (ncolors + 1,)

    @property
    def ncolors(self) -> int:
        return len(self.color_offsets) - 1

    def color_slice(self, c: int) -> np.ndarray:
        lo, hi = int(self.color_offsets[c]), int(self.color_offsets[c + 1])
        return self.order[lo:hi]


def full_permute(
    targets: Optional[np.ndarray],
    n_elements: int,
    extent: int = 0,
    method: str = "auto",
) -> Permutation:
    """Global color-sorted ordering ("full permute")."""
    colors, ncolors = color_elements(targets, n_elements, extent, method=method)
    if n_elements == 0:
        return Permutation(
            np.zeros(0, dtype=np.int64), np.zeros(1, dtype=np.int64)
        )
    # Stable sort keeps ascending element order inside each color, which
    # preserves whatever locality the base numbering had.
    order = np.argsort(colors, kind="stable").astype(np.int64)
    counts = np.bincount(colors, minlength=ncolors)
    offsets = np.zeros(ncolors + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return Permutation(order, offsets)


@dataclass(frozen=True)
class BlockPermutation:
    """Per-block color-sorted orderings ("block permute").

    For block ``b``, elements ``order[off[b]:off[b+1]]`` are grouped by
    color with boundaries ``color_offsets[b]`` (local to the block).
    """

    layout: BlockLayout
    order: np.ndarray                 # (n,) bijection, blocks contiguous
    color_offsets: List[np.ndarray]   # per block, (ncolors_b + 1,) abs offsets

    def block_color_slice(self, b: int, c: int) -> np.ndarray:
        off = self.color_offsets[b]
        return self.order[int(off[c]) : int(off[c + 1])]

    def block_ncolors(self, b: int) -> int:
        return len(self.color_offsets[b]) - 1


def block_permute(
    layout: BlockLayout,
    targets: Optional[np.ndarray],
    extent: int = 0,
    method: str = "auto",
) -> BlockPermutation:
    """Per-block color-sorted ordering ("block permute")."""
    n = layout.n_elements
    order = np.empty(n, dtype=np.int64)
    color_offsets: List[np.ndarray] = []
    for b in range(layout.nblocks):
        lo, hi = layout.block_range(b)
        size = hi - lo
        if targets is None:
            order[lo:hi] = np.arange(lo, hi, dtype=np.int64)
            color_offsets.append(np.array([lo, hi], dtype=np.int64))
            continue
        colors, ncolors = color_elements(
            targets[lo:hi], size, extent, method=method
        )
        local = np.argsort(colors, kind="stable").astype(np.int64)
        order[lo:hi] = lo + local
        counts = np.bincount(colors, minlength=ncolors)
        off = np.zeros(ncolors + 1, dtype=np.int64)
        np.cumsum(counts, out=off[1:])
        color_offsets.append(off + lo)
    return BlockPermutation(layout, order, color_offsets)


def element_colors_by_block(
    layout: BlockLayout,
    targets: Optional[np.ndarray],
    extent: int = 0,
    method: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Second-level (within-block) element colors for two-level plans.

    Returns the per-element color array and per-block color counts; used
    by the original OP2 scheme where increments are applied color-by-color
    inside a block (paper Fig 3a's ``colors[n]`` array).
    """
    n = layout.n_elements
    colors = np.zeros(n, dtype=np.int32)
    ncolors = np.ones(layout.nblocks, dtype=np.int32)
    if targets is None:
        return colors, ncolors
    for b in range(layout.nblocks):
        lo, hi = layout.block_range(b)
        c, nc = color_elements(targets[lo:hi], hi - lo, extent, method=method)
        colors[lo:hi] = c
        ncolors[b] = nc
    return colors, ncolors
