"""Tile-level conflict coloring for sparse-tiled loop chains.

Generalizes the element-coloring machinery to the *tile graph*: the
"elements" are whole tiles of a :class:`~repro.tiling.schedule.
TiledSchedule` segment, and two tiles conflict when any of their loop
slices write a common Dat row — the same shared-target notion
:mod:`repro.coloring.conflict` uses for elements, lifted one level.
Rather than reimplementing a graph coloring, each tile's written rows
are packed into the dense ``(n_tiles, max_targets)`` matrix the
existing :func:`repro.coloring.greedy.greedy_color` sweep consumes
(rows with fewer targets are padded with globally-unique dummy ids, so
padding can never create a conflict), and validity is checked with the
same :func:`repro.coloring.conflict.is_valid_coloring`.

Same-colored tiles write disjoint data and could execute concurrently
on a parallel machine — the classic sparse-tiling wavefront artifact.
The serial executors ignore the colors (ascending tile order is what
preserves bitwise identity); property tests assert their validity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .conflict import is_valid_coloring
from .greedy import greedy_color


def pack_tile_targets(
    tile_rows: Sequence[Sequence[Tuple[int, np.ndarray]]],
) -> Tuple[Optional[np.ndarray], int]:
    """Pack per-tile written rows into a dense conflict-target matrix.

    ``tile_rows[t]`` is a sequence of ``(dat uid, row array)`` pairs for
    tile ``t``.  Rows of distinct Dats are offset into disjoint id
    ranges (sharing a row of *different* Dats is no conflict), each
    tile's ids are deduplicated, and all tiles are padded to the widest
    tile with globally-unique dummy ids.

    Returns ``(targets, extent)`` with ``targets`` of shape
    ``(n_tiles, k)`` (or ``None`` when no tile writes anything) and
    ``extent`` the exclusive upper bound of the id space.
    """
    offsets: Dict[int, int] = {}
    extent = 0
    unique_per_tile: List[np.ndarray] = []
    for rows in tile_rows:
        ids = []
        for uid, arr in rows:
            arr = np.asarray(arr, dtype=np.int64)
            if uid not in offsets:
                offsets[uid] = None  # reserve; extent assigned below
            ids.append((uid, arr))
        unique_per_tile.append(ids)
    # Assign offsets after a full pass so each Dat's range covers its
    # largest observed row.
    max_row: Dict[int, int] = {}
    for ids in unique_per_tile:
        for uid, arr in ids:
            if arr.size:
                max_row[uid] = max(max_row.get(uid, -1), int(arr.max()))
    for uid in offsets:
        offsets[uid] = extent
        extent += max_row.get(uid, -1) + 1

    packed_rows: List[np.ndarray] = []
    for ids in unique_per_tile:
        if ids:
            merged = np.concatenate(
                [arr + offsets[uid] for uid, arr in ids]
            )
            packed_rows.append(np.unique(merged))
        else:
            packed_rows.append(np.empty(0, dtype=np.int64))

    width = max((r.size for r in packed_rows), default=0)
    if width == 0:
        return None, extent
    targets = np.empty((len(packed_rows), width), dtype=np.int64)
    pad = extent
    for t, r in enumerate(packed_rows):
        targets[t, : r.size] = r
        n_pad = width - r.size
        if n_pad:
            targets[t, r.size :] = np.arange(pad, pad + n_pad, dtype=np.int64)
            pad += n_pad
    return targets, pad


def color_tiles(
    tile_rows: Sequence[Sequence[Tuple[int, np.ndarray]]],
) -> Tuple[np.ndarray, int]:
    """Conflict-color tiles by their written rows.

    Reuses the serial greedy sweep (tile counts are small — tens to
    hundreds — so the vectorized rounds algorithm has no edge here).
    Returns ``(colors, n_colors)`` like :func:`~repro.coloring.greedy.
    color_elements`.
    """
    n_tiles = len(tile_rows)
    targets, extent = pack_tile_targets(tile_rows)
    if targets is None:
        return np.zeros(n_tiles, dtype=np.int32), 1 if n_tiles else 0
    return greedy_color(targets, n_tiles, extent)


def is_valid_tile_coloring(
    colors: np.ndarray,
    tile_rows: Sequence[Sequence[Tuple[int, np.ndarray]]],
) -> bool:
    """No two same-colored tiles write a common Dat row."""
    targets, _ = pack_tile_targets(tile_rows)
    return is_valid_coloring(np.asarray(colors), targets)
